//! Per-plan service metrics: request counters, the coalesced-batch-size
//! histogram, launch accounting and a fixed-size latency ring.
//!
//! Everything on the request path is either an atomic counter or a write
//! into a pre-allocated ring under a short lock, so recording a request
//! allocates nothing — the serving layer inherits the engine's
//! zero-allocation steady state.  Reading a [`MetricsSnapshot`] is the only
//! operation that sorts/copies, and it happens off the request path.

use parking_lot::Mutex;
use psmd_core::PlanCacheStats;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of buckets of the coalesced-batch-size histogram.
pub const BATCH_BUCKETS: usize = 7;

/// Human-readable labels of the histogram buckets, in order.
pub const BATCH_BUCKET_LABELS: [&str; BATCH_BUCKETS] =
    ["1", "2", "3-4", "5-8", "9-16", "17-32", "33+"];

/// The histogram bucket a coalesced batch of `k` requests falls into.
pub fn batch_bucket(k: usize) -> usize {
    match k {
        0..=1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        17..=32 => 5,
        _ => 6,
    }
}

/// Number of buckets of the abandon-latency histogram (time from the
/// whole-window cancellation trip to the launch actually abandoning).
pub const ABANDON_BUCKETS: usize = 6;

/// Human-readable upper bounds of the abandon-latency buckets, in order.
pub const ABANDON_BUCKET_LABELS: [&str; ABANDON_BUCKETS] =
    ["<100us", "<1ms", "<10ms", "<100ms", "<1s", ">=1s"];

/// The histogram bucket an abandon latency of `micros` microseconds falls
/// into.
pub fn abandon_bucket(micros: u64) -> usize {
    match micros {
        0..=99 => 0,
        100..=999 => 1,
        1_000..=9_999 => 2,
        10_000..=99_999 => 3,
        100_000..=999_999 => 4,
        _ => 5,
    }
}

/// Capacity of the latency ring: the snapshot percentiles are computed over
/// the most recent this-many completed requests.
const LATENCY_RING: usize = 1024;

struct LatencyRing {
    samples: Box<[u64; LATENCY_RING]>,
    head: usize,
    len: usize,
}

impl LatencyRing {
    fn new() -> Self {
        Self {
            samples: Box::new([0; LATENCY_RING]),
            head: 0,
            len: 0,
        }
    }

    fn record(&mut self, micros: u64) {
        self.samples[self.head] = micros;
        self.head = (self.head + 1) % LATENCY_RING;
        self.len = (self.len + 1).min(LATENCY_RING);
    }

    fn percentiles(&self) -> (u64, u64) {
        if self.len == 0 {
            return (0, 0);
        }
        let mut sorted: Vec<u64> = self.samples[..self.len].to_vec();
        sorted.sort_unstable();
        // Nearest-rank percentile: the smallest sample with at least
        // p * len samples at or below it.
        let at = |p: f64| {
            let rank = (p * self.len as f64).ceil() as usize;
            sorted[rank.clamp(1, self.len) - 1]
        };
        (at(0.50), at(0.99))
    }
}

/// Live per-plan counters, owned by the plan's coalescing queue.
pub struct Metrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    busy_rejected: AtomicU64,
    deadline_expired: AtomicU64,
    launches: AtomicU64,
    launches_saved: AtomicU64,
    coalesced_total: AtomicU64,
    cancelled_launches: AtomicU64,
    detached_slots: AtomicU64,
    batch_histogram: [AtomicU64; BATCH_BUCKETS],
    abandon_histogram: [AtomicU64; ABANDON_BUCKETS],
    queue_depth: AtomicUsize,
    max_queue_depth: AtomicUsize,
    inflight: AtomicUsize,
    latencies: Mutex<LatencyRing>,
}

impl Metrics {
    pub(crate) fn new() -> Self {
        Self {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            busy_rejected: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            launches: AtomicU64::new(0),
            launches_saved: AtomicU64::new(0),
            coalesced_total: AtomicU64::new(0),
            cancelled_launches: AtomicU64::new(0),
            detached_slots: AtomicU64::new(0),
            batch_histogram: [const { AtomicU64::new(0) }; BATCH_BUCKETS],
            abandon_histogram: [const { AtomicU64::new(0) }; ABANDON_BUCKETS],
            queue_depth: AtomicUsize::new(0),
            max_queue_depth: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            latencies: Mutex::new(LatencyRing::new()),
        }
    }

    pub(crate) fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_busy(&self) {
        self.busy_rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// One launch serving `k` coalesced requests.
    pub(crate) fn record_launch(&self, k: usize) {
        self.launches.fetch_add(1, Ordering::Relaxed);
        self.launches_saved
            .fetch_add(k.saturating_sub(1) as u64, Ordering::Relaxed);
        self.coalesced_total.fetch_add(k as u64, Ordering::Relaxed);
        self.batch_histogram[batch_bucket(k)].fetch_add(1, Ordering::Relaxed);
    }

    /// A follower detached from its coalesced window after its own deadline
    /// passed; its slot result will be discarded on scatter.
    pub(crate) fn record_detached(&self) {
        self.detached_slots.fetch_add(1, Ordering::Relaxed);
    }

    /// A launch whose entire window expired was abandoned mid-flight,
    /// `abandon_micros` microseconds after the cancellation tripped.
    pub(crate) fn record_cancelled_launch(&self, abandon_micros: u64) {
        self.cancelled_launches.fetch_add(1, Ordering::Relaxed);
        self.abandon_histogram[abandon_bucket(abandon_micros)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_completed(&self, latency_micros: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latencies.lock().record(latency_micros);
    }

    pub(crate) fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Admission: increments in-flight and reports the previous value so the
    /// caller can compare against its limit; [`Metrics::exit`] undoes it.
    pub(crate) fn enter(&self) -> usize {
        self.inflight.fetch_add(1, Ordering::AcqRel)
    }

    pub(crate) fn exit(&self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }

    /// A consistent-enough snapshot of every counter (individually atomic;
    /// the set is racy under concurrent traffic, which is fine for
    /// monitoring).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let (p50_us, p99_us) = self.latencies.lock().percentiles();
        let mut batch_histogram = [0u64; BATCH_BUCKETS];
        for (out, bucket) in batch_histogram.iter_mut().zip(self.batch_histogram.iter()) {
            *out = bucket.load(Ordering::Relaxed);
        }
        let mut abandon_histogram = [0u64; ABANDON_BUCKETS];
        for (out, bucket) in abandon_histogram
            .iter_mut()
            .zip(self.abandon_histogram.iter())
        {
            *out = bucket.load(Ordering::Relaxed);
        }
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            busy_rejected: self.busy_rejected.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            launches: self.launches.load(Ordering::Relaxed),
            launches_saved: self.launches_saved.load(Ordering::Relaxed),
            coalesced_total: self.coalesced_total.load(Ordering::Relaxed),
            cancelled_launches: self.cancelled_launches.load(Ordering::Relaxed),
            detached_slots: self.detached_slots.load(Ordering::Relaxed),
            batch_histogram,
            abandon_histogram,
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
            p50_us,
            p99_us,
            plan_cache: None,
            pool_rendezvous: None,
        }
    }
}

/// A point-in-time copy of a plan's service metrics.
///
/// Produced by [`Metrics::snapshot`]; [`Service::metrics`](crate::Service::metrics)
/// additionally fills the engine-level fields (`plan_cache`,
/// `pool_rendezvous`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests submitted (admitted or rejected).
    pub submitted: u64,
    /// Requests answered with a successful evaluation.
    pub completed: u64,
    /// Requests rejected at admission because too many were in flight.
    pub busy_rejected: u64,
    /// Requests whose deadline expired while queued; rejected without a
    /// launch.
    pub deadline_expired: u64,
    /// Coalesced evaluation launches performed.
    pub launches: u64,
    /// Launches avoided by coalescing: for every launch serving `k`
    /// requests, `k - 1` launches were saved over the one-launch-per-request
    /// baseline.
    pub launches_saved: u64,
    /// Total requests served across all launches (`completed` requests pass
    /// through exactly one launch, so in a quiet moment
    /// `coalesced_total == completed`).
    pub coalesced_total: u64,
    /// Launches abandoned mid-flight because every waiter of their window
    /// had detached or the whole window's latest deadline passed.
    pub cancelled_launches: u64,
    /// Followers that detached from a coalesced window after their own
    /// deadline passed (their slot result was discarded on scatter).
    pub detached_slots: u64,
    /// Histogram of coalesced batch sizes; bucket boundaries are
    /// [`BATCH_BUCKET_LABELS`].
    pub batch_histogram: [u64; BATCH_BUCKETS],
    /// Histogram of abandon latencies (cancellation trip to launch
    /// abandonment); bucket boundaries are [`ABANDON_BUCKET_LABELS`].
    pub abandon_histogram: [u64; ABANDON_BUCKETS],
    /// Queue depth after the most recent drain.
    pub queue_depth: usize,
    /// Largest queue depth observed at enqueue time.
    pub max_queue_depth: usize,
    /// Requests currently admitted and not yet resolved.
    pub inflight: usize,
    /// Median request latency (submit to response) over the latency ring,
    /// in microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency over the latency ring, in
    /// microseconds.
    pub p99_us: u64,
    /// Engine plan-cache statistics; `None` in a queue-level snapshot.
    pub plan_cache: Option<PlanCacheStats>,
    /// Engine worker-pool rendezvous counter; `None` in a queue-level
    /// snapshot.
    pub pool_rendezvous: Option<u64>,
}

impl MetricsSnapshot {
    /// Mean coalesced batch size over all launches so far (0 when nothing
    /// launched yet).
    pub fn mean_batch(&self) -> f64 {
        if self.launches == 0 {
            0.0
        } else {
            self.coalesced_total as f64 / self.launches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_sizes() {
        assert_eq!(batch_bucket(1), 0);
        assert_eq!(batch_bucket(2), 1);
        assert_eq!(batch_bucket(3), 2);
        assert_eq!(batch_bucket(4), 2);
        assert_eq!(batch_bucket(5), 3);
        assert_eq!(batch_bucket(8), 3);
        assert_eq!(batch_bucket(9), 4);
        assert_eq!(batch_bucket(16), 4);
        assert_eq!(batch_bucket(17), 5);
        assert_eq!(batch_bucket(32), 5);
        assert_eq!(batch_bucket(33), 6);
        assert_eq!(batch_bucket(1000), 6);
    }

    #[test]
    fn launch_accounting_sums_saved_launches() {
        let m = Metrics::new();
        m.record_launch(1);
        m.record_launch(4);
        m.record_launch(8);
        let s = m.snapshot();
        assert_eq!(s.launches, 3);
        assert_eq!(s.launches_saved, 3 + 7);
        assert_eq!(s.coalesced_total, 13);
        assert_eq!(s.batch_histogram[0], 1);
        assert_eq!(s.batch_histogram[2], 1);
        assert_eq!(s.batch_histogram[3], 1);
        assert!((s.mean_batch() - 13.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn abandon_buckets_partition_the_latencies() {
        assert_eq!(abandon_bucket(0), 0);
        assert_eq!(abandon_bucket(99), 0);
        assert_eq!(abandon_bucket(100), 1);
        assert_eq!(abandon_bucket(999), 1);
        assert_eq!(abandon_bucket(1_000), 2);
        assert_eq!(abandon_bucket(99_999), 3);
        assert_eq!(abandon_bucket(100_000), 4);
        assert_eq!(abandon_bucket(1_000_000), 5);
    }

    #[test]
    fn cancellation_counters_reach_the_snapshot() {
        let m = Metrics::new();
        m.record_detached();
        m.record_detached();
        m.record_cancelled_launch(250);
        let s = m.snapshot();
        assert_eq!(s.detached_slots, 2);
        assert_eq!(s.cancelled_launches, 1);
        assert_eq!(s.abandon_histogram[abandon_bucket(250)], 1);
        assert_eq!(s.abandon_histogram.iter().sum::<u64>(), 1);
    }

    #[test]
    fn latency_ring_reports_percentiles() {
        let m = Metrics::new();
        for i in 1..=100 {
            m.record_completed(i);
        }
        let s = m.snapshot();
        assert_eq!(s.completed, 100);
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p99_us, 99);
    }

    #[test]
    fn ring_keeps_only_the_most_recent_window() {
        let m = Metrics::new();
        for _ in 0..LATENCY_RING {
            m.record_completed(1_000_000);
        }
        for _ in 0..LATENCY_RING {
            m.record_completed(5);
        }
        let s = m.snapshot();
        assert_eq!(s.p50_us, 5);
        assert_eq!(s.p99_us, 5);
    }
}
