//! The line-delimited JSON wire protocol over a std TCP listener.
//!
//! One request per line, one reply per line.  Every reply carries
//! `"ok": true|false`; failures add `"error"`.  Operations:
//!
//! * `{"op":"ping"}` — liveness probe;
//! * `{"op":"compile","plan":ID,"precision":"2d","num_variables":N,
//!   "degree":D,"constant":C,"monomials":[{"coefficient":A,
//!   "variables":[..]},..]}` — compile and register a plan (`precision`
//!   defaults to the engine's, `constant` to 0);
//! * `{"op":"eval","plan":ID,"inputs":[[c0,c1,..] per variable]}` —
//!   evaluate; the reply carries `value`, `gradient` and `coalesced` (how
//!   many concurrent requests shared the launch);
//! * `{"op":"metrics","plan":ID}` — the plan's [`MetricsSnapshot`] fields.
//!
//! Each connection gets its own thread, so concurrent `eval` lines from
//! different connections reach the plan queue concurrently and coalesce —
//! the wire path exercises exactly the in-process protocol.
//!
//! [`MetricsSnapshot`]: crate::MetricsSnapshot

use crate::json::{num_array, obj, Json};
use crate::service::{ServeError, Service};
use psmd_multidouble::Precision;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running wire server: accepts connections until shut down (or
/// dropped).
pub struct WireServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Binds a listener (use port 0 for an ephemeral port) and starts the
    /// accept loop on a background thread.
    pub fn bind(service: Arc<Service>, addr: &str) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    let _ = handle_connection(service, stream);
                });
            }
        });
        Ok(WireServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.  Already
    /// established connections finish on their own threads.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(service: Arc<Service>, stream: TcpStream) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_line(&service, &line);
        writer.write_all(reply.to_string().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

fn error_reply(message: impl Into<String>) -> Json {
    obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.into())),
    ])
}

fn handle_line(service: &Service, line: &str) -> Json {
    let request = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return error_reply(format!("bad json: {e}")),
    };
    let Some(op) = request.get("op").and_then(Json::as_str) else {
        return error_reply("missing 'op'");
    };
    let result = match op {
        "ping" => Ok(obj(vec![
            ("ok", Json::Bool(true)),
            ("pong", Json::Bool(true)),
        ])),
        "compile" => op_compile(service, &request),
        "eval" => op_eval(service, &request),
        "metrics" => op_metrics(service, &request),
        other => Err(format!("unknown op '{other}'")),
    };
    match result {
        Ok(reply) => reply,
        Err(message) => error_reply(message),
    }
}

fn plan_id(request: &Json) -> Result<&str, String> {
    request
        .get("plan")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing 'plan'".to_string())
}

fn serve_err(e: ServeError) -> String {
    e.to_string()
}

fn op_compile(service: &Service, request: &Json) -> Result<Json, String> {
    let id = plan_id(request)?;
    let precision = match request.get("precision").and_then(Json::as_str) {
        Some(label) => {
            Precision::parse_label(label).ok_or_else(|| format!("unknown precision '{label}'"))?
        }
        None => service.engine().precision(),
    };
    let num_variables = request
        .get("num_variables")
        .and_then(Json::as_usize)
        .ok_or_else(|| "missing 'num_variables'".to_string())?;
    let degree = request
        .get("degree")
        .and_then(Json::as_usize)
        .ok_or_else(|| "missing 'degree'".to_string())?;
    let constant = request
        .get("constant")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let monomials_json = request
        .get("monomials")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing 'monomials'".to_string())?;
    let mut monomials = Vec::with_capacity(monomials_json.len());
    for (i, m) in monomials_json.iter().enumerate() {
        let coefficient = m
            .get("coefficient")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("monomial {i}: missing 'coefficient'"))?;
        let variables = m
            .get("variables")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("monomial {i}: missing 'variables'"))?
            .iter()
            .map(|v| {
                v.as_usize()
                    .ok_or_else(|| format!("monomial {i}: non-integer variable index"))
            })
            .collect::<Result<Vec<usize>, String>>()?;
        monomials.push((coefficient, variables));
    }
    service
        .register_f64(id, precision, num_variables, degree, constant, &monomials)
        .map_err(serve_err)?;
    Ok(obj(vec![
        ("ok", Json::Bool(true)),
        ("plan", Json::Str(id.to_string())),
        ("precision", Json::Str(precision.label().to_string())),
    ]))
}

fn op_eval(service: &Service, request: &Json) -> Result<Json, String> {
    let id = plan_id(request)?;
    let inputs_json = request
        .get("inputs")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing 'inputs'".to_string())?;
    let mut inputs = Vec::with_capacity(inputs_json.len());
    for (v, series) in inputs_json.iter().enumerate() {
        let coeffs = series
            .as_array()
            .ok_or_else(|| format!("input {v} is not an array"))?
            .iter()
            .map(|c| {
                c.as_f64()
                    .ok_or_else(|| format!("input {v}: non-numeric coefficient"))
            })
            .collect::<Result<Vec<f64>, String>>()?;
        inputs.push(coeffs);
    }
    let evaluation = service.submit_f64(id, &inputs).map_err(serve_err)?;
    Ok(obj(vec![
        ("ok", Json::Bool(true)),
        ("value", num_array(&evaluation.value)),
        (
            "gradient",
            Json::Arr(evaluation.gradient.iter().map(|g| num_array(g)).collect()),
        ),
        ("coalesced", Json::Num(evaluation.coalesced as f64)),
    ]))
}

fn op_metrics(service: &Service, request: &Json) -> Result<Json, String> {
    let id = plan_id(request)?;
    let snapshot = service.metrics(id).map_err(serve_err)?;
    let histogram = snapshot
        .batch_histogram
        .iter()
        .map(|&n| Json::Num(n as f64))
        .collect();
    let abandon_histogram = snapshot
        .abandon_histogram
        .iter()
        .map(|&n| Json::Num(n as f64))
        .collect();
    Ok(obj(vec![
        ("ok", Json::Bool(true)),
        ("submitted", Json::Num(snapshot.submitted as f64)),
        ("completed", Json::Num(snapshot.completed as f64)),
        ("busy_rejected", Json::Num(snapshot.busy_rejected as f64)),
        (
            "deadline_expired",
            Json::Num(snapshot.deadline_expired as f64),
        ),
        ("launches", Json::Num(snapshot.launches as f64)),
        ("launches_saved", Json::Num(snapshot.launches_saved as f64)),
        (
            "cancelled_launches",
            Json::Num(snapshot.cancelled_launches as f64),
        ),
        ("detached_slots", Json::Num(snapshot.detached_slots as f64)),
        ("mean_batch", Json::Num(snapshot.mean_batch())),
        ("batch_histogram", Json::Arr(histogram)),
        ("abandon_histogram", Json::Arr(abandon_histogram)),
        ("queue_depth", Json::Num(snapshot.queue_depth as f64)),
        ("p50_us", Json::Num(snapshot.p50_us as f64)),
        ("p99_us", Json::Num(snapshot.p99_us as f64)),
        (
            "plan_cache_hits",
            Json::Num(snapshot.plan_cache.map_or(0, |c| c.hits) as f64),
        ),
        (
            "pool_rendezvous",
            Json::Num(snapshot.pool_rendezvous.unwrap_or(0) as f64),
        ),
    ]))
}
