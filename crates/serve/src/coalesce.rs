//! The per-plan coalescing queue: concurrent single-point requests against
//! one plan are merged into one batched launch.
//!
//! # How a request travels
//!
//! A submitting thread parks a `Slot` (its request payload plus a
//! mutex/condvar pair) in the plan's queue and then competes for
//! **leadership** with a single atomic flag — flat combining, with no
//! dedicated collector thread:
//!
//! * the thread that wins the CAS becomes the *leader*: it drains the queue
//!   in windows of at most `max_batch` slots, moves the staged payloads into
//!   a reusable scratch batch, performs **one** engine launch for the whole
//!   window (`plan.request(&batch).into(&mut out).run()`), scatters the
//!   per-instance results back into the slots and wakes each waiter, then
//!   repeats until the queue is empty and releases the flag;
//! * every other thread is a *follower*: it waits on its own slot's condvar
//!   with a short timeout and re-contends for leadership on every wakeup, so
//!   the queue is drained even when the current leader departs.
//!
//! Evaluation therefore always runs on a *requester* thread.  That keeps
//! the thread count bounded by the callers, lets a zero-worker engine serve
//! requests (the degenerate single-threaded configuration used by the
//! allocation gate), and gives the batched run the same per-thread
//! allocation profile as a direct `plan.request(..)` call.
//!
//! Coalesced results are **bitwise identical** to uncoalesced ones: a batch
//! instance is computed by the same schedule, arithmetic and operation
//! order as a single evaluation (an engine invariant, tested in
//! `psmd-core`), so callers cannot observe whether their request shared a
//! launch — except through [`Response::coalesced`] and the metrics.
//!
//! Deadlines are enforced *before* launch — the leader rejects overdue
//! slots while staging — **and during it**:
//!
//! * a follower whose own deadline passes while its window is in flight
//!   **detaches**: its slot flips to `Detached`, it resolves to
//!   [`ServeError::DeadlineExceeded`] and its result is discarded on
//!   scatter, without poisoning the batch for surviving waiters;
//! * when every waiter of a window has detached, or the *latest* deadline
//!   of an all-deadline window passes, the detaching follower trips the
//!   queue's [`CancelToken`] and the leader's in-flight launch is
//!   **abandoned** at the next block boundary (partial results discarded,
//!   workspace returned to the pool clean).
//!
//! Both paths are visible in the metrics as
//! [`detached_slots`](crate::MetricsSnapshot::detached_slots) and
//! [`cancelled_launches`](crate::MetricsSnapshot::cancelled_launches).

use crate::metrics::Metrics;
use crate::service::{Request, Response, ServeError};
use parking_lot::{Condvar, Mutex};
use psmd_core::{BatchEvaluation, CancelToken, EvalOutput, Evaluation, Plan};
use psmd_multidouble::Coeff;
use psmd_series::Series;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a follower parks on its own condvar before re-contending for
/// leadership.  Purely a liveness backstop: the common wakeup is the
/// leader's notify when the result lands.
const FOLLOWER_PARK: Duration = Duration::from_millis(1);

/// One request's rendezvous point between the submitting thread and the
/// leader that serves it.
struct Slot<C: Coeff> {
    state: Mutex<SlotState<C>>,
    cv: Condvar,
    /// The request's deadline, copied out at submit time so the waiter can
    /// still see it after a leader moved the payload away.
    deadline: Option<Instant>,
}

enum SlotState<C: Coeff> {
    /// Waiting in the queue; the leader takes the payload from here.
    Queued(Request<C>, Instant),
    /// A leader moved the payload into its staging batch; the result is
    /// coming.  The epoch names the window, so a detach can be attributed
    /// to the right launch.
    Taken { window_epoch: u64 },
    /// The waiter's own deadline passed mid-window and it gave up on the
    /// result; the leader discards this slot's instance on scatter.  The
    /// waiter keeps waiting for the terminal `Done` — the pointer contract
    /// below needs the leader's write to land before the slot can die.
    Detached,
    /// The result (or rejection) is ready for the submitter to take.
    Done(Result<Response<C>, ServeError>),
    /// The submitter took the result (terminal; tickets use it to make
    /// `wait` idempotent-safe against their own drop glue).
    Finished,
}

/// Bookkeeping of the leader's current window, shared with detaching
/// followers.  One leader runs at a time, so one meta per queue suffices —
/// opening a window bumps the epoch, which makes stale detach notes from
/// earlier windows miss.
#[derive(Default)]
struct WindowMeta {
    /// The current window's identity; `SlotState::Taken` carries it.
    epoch: u64,
    /// True once staging is complete and `total`/`max_deadline` are final;
    /// only then may a detach trip the whole-window cancel.
    finalized: bool,
    /// Slots staged into the window.
    total: usize,
    /// Staged slots whose waiters have detached.
    detached: usize,
    /// Latest deadline across the window when **every** member has one;
    /// `None` when some waiter is willing to wait forever (the window is
    /// then never whole-window cancelled while that waiter survives).
    max_deadline: Option<Instant>,
    /// When the whole-window cancellation tripped (abandon latency is
    /// measured from here).
    cancelled_at: Option<Instant>,
}

/// A queue entry: a raw pointer to a slot owned by a submitting thread's
/// stack frame or by a [`Ticket`]'s allocation.
///
/// Safety contract: the slot outlives its presence in the queue *and* any
/// leader's use of the pointer.  Both submitters uphold it the same way —
/// they do not release the slot until they observed `Done` (or removed the
/// pointer from the queue themselves, under the queue lock, while it was
/// still `Queued`).
struct SlotPtr<C: Coeff>(NonNull<Slot<C>>);

// The pointer crosses threads inside the queue; the pointee is a
// mutex-protected rendezvous designed for exactly that.
unsafe impl<C: Coeff> Send for SlotPtr<C> {}

/// Leader-only staging area, reused across drains so the steady state
/// allocates nothing: the batch vectors, the staged slot pointers and both
/// output buffers keep their capacity between launches.
struct LeaderScratch<C: Coeff> {
    /// Slots staged for the current window, with their payloads and submit
    /// timestamps moved out of the queue states.
    staged: Vec<(NonNull<Slot<C>>, Request<C>, Instant)>,
    /// The input vectors of the staged requests (moved, and handed back in
    /// the responses).
    batch: Vec<Vec<Series<C>>>,
    /// Reused output for windows of two or more requests.
    batch_out: EvalOutput<C>,
    /// Reused output for single-request windows, which run the (identical
    /// but cheaper) single-evaluation path.
    single_out: EvalOutput<C>,
}

// The staged pointers only live inside a leader's drain, which finishes
// before the corresponding submitters can release their slots.
unsafe impl<C: Coeff> Send for LeaderScratch<C> {}

impl<C: Coeff> LeaderScratch<C> {
    fn new() -> Self {
        Self {
            staged: Vec::new(),
            batch: Vec::new(),
            batch_out: EvalOutput::Batch(BatchEvaluation::empty()),
            single_out: EvalOutput::Single(Evaluation::empty()),
        }
    }
}

/// The coalescing queue of one registered plan.
///
/// Shared by every submitter of that plan; see the [module
/// documentation](self) for the protocol.
pub struct PlanQueue<C: Coeff> {
    plan: Arc<Plan<C>>,
    max_batch: usize,
    max_inflight: usize,
    queue: Mutex<VecDeque<SlotPtr<C>>>,
    leader: AtomicBool,
    scratch: Mutex<LeaderScratch<C>>,
    /// The current window's bookkeeping (see [`WindowMeta`]).
    window: Mutex<WindowMeta>,
    /// One reusable cancellation token, re-armed per window, so arming a
    /// launch allocates nothing in the steady state.
    cancel: CancelToken,
    metrics: Metrics,
}

impl<C: Coeff> fmt::Debug for PlanQueue<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanQueue")
            .field("max_batch", &self.max_batch)
            .field("max_inflight", &self.max_inflight)
            .field("queue_depth", &self.queue_depth())
            .finish_non_exhaustive()
    }
}

impl<C: Coeff> PlanQueue<C> {
    pub(crate) fn new(plan: Arc<Plan<C>>, max_batch: usize, max_inflight: usize) -> Self {
        Self {
            plan,
            max_batch: max_batch.max(1),
            max_inflight: max_inflight.max(1),
            queue: Mutex::new(VecDeque::new()),
            leader: AtomicBool::new(false),
            scratch: Mutex::new(LeaderScratch::new()),
            window: Mutex::new(WindowMeta::default()),
            cancel: CancelToken::new(),
            metrics: Metrics::new(),
        }
    }

    /// The plan this queue serves.
    pub fn plan(&self) -> &Arc<Plan<C>> {
        &self.plan
    }

    /// The largest number of requests one launch may serve.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The admission limit: requests in flight beyond it are rejected with
    /// [`ServeError::Busy`].
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// This queue's live metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Number of requests currently parked in the queue (racy snapshot).
    pub fn queue_depth(&self) -> usize {
        self.queue.lock().len()
    }

    /// Submits a request and blocks until its response (or rejection) is
    /// ready.  The calling thread takes part in the coalescing protocol: it
    /// may end up evaluating its own request — and its neighbors' — as the
    /// leader.
    pub fn submit(&self, request: Request<C>) -> Result<Response<C>, ServeError> {
        let slot = self.admit(request)?;
        // The slot lives on this stack frame; `wait_resolved` does not
        // return until the queue and every leader are done with it.
        let result = self.wait_resolved(&slot, true);
        self.metrics.exit();
        result
    }

    /// Submits a request without blocking on the result: the returned
    /// [`Ticket`] resolves it on [`Ticket::wait`].  Until some thread waits
    /// (or another submitter drains the queue), the request just sits in
    /// the queue — which is exactly what the deterministic staged-load
    /// harness and the admission tests need.
    pub fn submit_async(self: &Arc<Self>, request: Request<C>) -> Result<Ticket<C>, ServeError> {
        // Admission, as in `submit`, but the slot lives on the heap so it
        // can outlive this call.
        self.metrics.record_submitted();
        let was = self.metrics.enter();
        if was >= self.max_inflight {
            self.metrics.exit();
            self.metrics.record_busy();
            return Err(ServeError::Busy {
                inflight: was,
                limit: self.max_inflight,
            });
        }
        let deadline = request.deadline;
        let slot = Arc::new(Slot {
            state: Mutex::new(SlotState::Queued(request, Instant::now())),
            cv: Condvar::new(),
            deadline,
        });
        self.enqueue(NonNull::from(&*slot));
        Ok(Ticket {
            queue: Arc::clone(self),
            slot,
            resolved: false,
        })
    }

    /// Drains whatever is queued right now on the calling thread, without
    /// submitting anything.  A no-op on an empty queue; used to flush
    /// async-submitted requests and by tests of the degenerate empty drain.
    pub fn drain_now(&self) {
        if self.try_lead() {
            self.drain_as_leader();
            self.release_lead();
        }
    }

    /// Admission control + enqueue for the blocking path.  On success the
    /// caller MUST run `wait_resolved` before the returned slot drops.
    fn admit(&self, request: Request<C>) -> Result<Slot<C>, ServeError> {
        self.metrics.record_submitted();
        let was = self.metrics.enter();
        if was >= self.max_inflight {
            self.metrics.exit();
            self.metrics.record_busy();
            return Err(ServeError::Busy {
                inflight: was,
                limit: self.max_inflight,
            });
        }
        let deadline = request.deadline;
        Ok(Slot {
            state: Mutex::new(SlotState::Queued(request, Instant::now())),
            cv: Condvar::new(),
            deadline,
        })
    }

    fn enqueue(&self, ptr: NonNull<Slot<C>>) {
        let mut queue = self.queue.lock();
        queue.push_back(SlotPtr(ptr));
        self.metrics.set_queue_depth(queue.len());
    }

    /// The shared wait loop of blocking submits and ticket waits: park on
    /// the slot, contend for leadership, until the slot is `Done`.
    ///
    /// The blocking path enqueues here (`enqueue_first`, so the address the
    /// queue sees is the slot's final stack address); the async path
    /// enqueued its heap slot at submit time.
    fn wait_resolved(
        &self,
        slot: &Slot<C>,
        enqueue_first: bool,
    ) -> Result<Response<C>, ServeError> {
        if enqueue_first {
            self.enqueue(NonNull::from(slot));
        }
        loop {
            if let Some(result) = self.take_done(slot) {
                return result;
            }
            if self.try_lead() {
                self.drain_as_leader();
                self.release_lead();
                // Our slot was either served by this drain or taken by a
                // previous leader whose launch is still in flight; loop.
                continue;
            }
            let mut state = slot.state.lock();
            match &*state {
                SlotState::Done(_) => continue, // re-checked (and taken) at loop head
                SlotState::Taken { window_epoch }
                    if slot.deadline.is_some_and(|d| Instant::now() >= d) =>
                {
                    // Our deadline passed while our window is in flight:
                    // detach.  We still loop for the leader's terminal
                    // `Done` write — the slot pointer must stay valid until
                    // the leader is done with it.
                    let epoch = *window_epoch;
                    *state = SlotState::Detached;
                    drop(state);
                    self.metrics.record_detached();
                    self.note_detached(epoch);
                }
                _ => {
                    let _ = slot.cv.wait_for(&mut state, FOLLOWER_PARK);
                }
            }
        }
    }

    /// A follower detached from window `window_epoch`: count it and, when
    /// the whole window is now dead — every waiter detached, or the
    /// window's latest deadline passed — trip the cancellation token so the
    /// leader's in-flight launch abandons its remaining blocks.
    fn note_detached(&self, window_epoch: u64) {
        let now = Instant::now();
        let mut meta = self.window.lock();
        if meta.epoch != window_epoch {
            return; // stale: that window is already over
        }
        meta.detached += 1;
        if meta.finalized
            && meta.cancelled_at.is_none()
            && (meta.detached >= meta.total || meta.max_deadline.is_some_and(|d| now >= d))
        {
            meta.cancelled_at = Some(now);
            self.cancel.cancel();
        }
    }

    fn take_done(&self, slot: &Slot<C>) -> Option<Result<Response<C>, ServeError>> {
        let mut state = slot.state.lock();
        if matches!(&*state, SlotState::Done(_)) {
            let SlotState::Done(result) = std::mem::replace(&mut *state, SlotState::Finished)
            else {
                unreachable!("matched Done above")
            };
            Some(result)
        } else {
            None
        }
    }

    /// Removes a slot's pointer from the queue if it is still there
    /// (ticket drop glue).  Returns true when removed.
    fn remove_from_queue(&self, slot: &Slot<C>) -> bool {
        let target = NonNull::from(slot);
        let mut queue = self.queue.lock();
        let before = queue.len();
        queue.retain(|p| p.0 != target);
        let removed = queue.len() != before;
        self.metrics.set_queue_depth(queue.len());
        removed
    }

    fn try_lead(&self) -> bool {
        self.leader
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    fn release_lead(&self) {
        self.leader.store(false, Ordering::Release);
    }

    /// The leader's work loop: drain windows until the queue is empty.
    fn drain_as_leader(&self) {
        let mut scratch = self.scratch.lock();
        let scratch: &mut LeaderScratch<C> = &mut scratch;
        loop {
            debug_assert!(scratch.staged.is_empty() && scratch.batch.is_empty());
            // Open a new window: bumping the epoch invalidates detach notes
            // from earlier windows, and the token can be re-armed because
            // the previous window's launch (the only poller) is over.
            let epoch = {
                let mut meta = self.window.lock();
                meta.epoch += 1;
                meta.finalized = false;
                meta.total = 0;
                meta.detached = 0;
                meta.max_deadline = None;
                meta.cancelled_at = None;
                meta.epoch
            };
            self.cancel.reset();
            // Stage up to `max_batch` queued slots.  Payloads move out
            // under each slot's lock; overdue requests are rejected here,
            // before any launch.
            {
                let mut queue = self.queue.lock();
                let now = Instant::now();
                while scratch.staged.len() < self.max_batch {
                    let Some(SlotPtr(ptr)) = queue.pop_front() else {
                        break;
                    };
                    // Safety: the pointer is in the queue, so its submitter
                    // is still waiting on it (see `SlotPtr`).
                    let slot = unsafe { ptr.as_ref() };
                    let mut state = slot.state.lock();
                    let SlotState::Queued(request, start) = std::mem::replace(
                        &mut *state,
                        SlotState::Taken {
                            window_epoch: epoch,
                        },
                    ) else {
                        unreachable!("queued pointers always hold Queued slots")
                    };
                    if request.deadline.is_some_and(|deadline| now >= deadline) {
                        self.metrics.record_expired();
                        *state = SlotState::Done(Err(ServeError::DeadlineExceeded));
                        slot.cv.notify_one();
                        continue;
                    }
                    drop(state);
                    scratch.staged.push((ptr, request, start));
                }
                self.metrics.set_queue_depth(queue.len());
            }
            if scratch.staged.is_empty() {
                return;
            }
            self.launch_window(scratch);
        }
    }

    /// One coalesced launch: finalize the window, evaluate it with the
    /// queue's cancellation token armed, scatter results — discarding the
    /// instances of detached slots, and every instance when the launch was
    /// abandoned mid-flight.
    fn launch_window(&self, scratch: &mut LeaderScratch<C>) {
        let LeaderScratch {
            staged,
            batch,
            batch_out,
            single_out,
        } = scratch;
        let k = staged.len();
        // Finalize the window before launching: the window becomes
        // whole-window cancellable only when every member carries a
        // deadline (the latest of them bounds the window's useful life).
        let mut latest = None;
        let mut all_deadlined = true;
        for (_, request, _) in staged.iter() {
            match request.deadline {
                Some(d) => latest = Some(latest.map_or(d, |m: Instant| std::cmp::max(m, d))),
                None => all_deadlined = false,
            }
        }
        {
            let mut meta = self.window.lock();
            meta.finalized = true;
            meta.total = k;
            meta.max_deadline = if all_deadlined { latest } else { None };
            // Followers that detached during staging could not trip yet.
            if meta.detached >= meta.total && meta.cancelled_at.is_none() {
                meta.cancelled_at = Some(Instant::now());
                self.cancel.cancel();
            }
        }
        for (_, request, _) in staged.iter_mut() {
            batch.push(std::mem::take(&mut request.inputs));
        }
        self.metrics.record_launch(k);
        let run = catch_unwind(AssertUnwindSafe(|| {
            if k == 1 {
                self.plan
                    .request(&batch[0])
                    .cancel(&self.cancel)
                    .into(single_out)
                    .run();
            } else {
                self.plan
                    .request(&*batch)
                    .cancel(&self.cancel)
                    .into(batch_out)
                    .run();
            }
        }));
        let failure = run.err().map(|payload| {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "evaluation panicked".to_string());
            ServeError::Rejected(message)
        });
        let abandoned = failure.is_none()
            && if k == 1 {
                single_out.timings().cancelled
            } else {
                batch_out.timings().cancelled
            };
        if abandoned {
            let abandon_micros = {
                let meta = self.window.lock();
                meta.cancelled_at
                    .map_or(0, |at| at.elapsed().as_micros() as u64)
            };
            self.metrics.record_cancelled_launch(abandon_micros);
        }
        for (i, (ptr, mut request, start)) in staged.drain(..).enumerate() {
            // Safety: as in `drain_as_leader` — the submitter waits until
            // `Done` lands, so the pointer is valid; after the notify under
            // the lock we never touch it again.
            let slot = unsafe { ptr.as_ref() };
            let mut state = slot.state.lock();
            // The detach check and the terminal write must share one lock
            // hold, or a follower could detach in between and miss its
            // rejection.
            let detached = matches!(&*state, SlotState::Detached);
            let result = if let Some(error) = &failure {
                Err(error.clone())
            } else if abandoned || detached {
                // The whole launch was abandoned, or this waiter gave up:
                // its instance (partial or complete) is discarded.  Counted
                // under `deadline_expired` like a pre-launch rejection, so
                // the submitted = completed + expired + busy identity holds.
                self.metrics.record_expired();
                Err(ServeError::DeadlineExceeded)
            } else {
                // Swap the result into the caller's reuse buffers and
                // hand the input vectors back, so a closed-loop client
                // recycles every allocation.
                match (&mut *single_out, &mut *batch_out) {
                    (EvalOutput::Single(single), _) if k == 1 => {
                        std::mem::swap(single, &mut request.reuse);
                    }
                    (_, EvalOutput::Batch(batched)) if k > 1 => {
                        std::mem::swap(&mut batched.instances[i], &mut request.reuse);
                    }
                    _ => unreachable!("scratch outputs keep their variants"),
                }
                self.metrics
                    .record_completed(start.elapsed().as_micros() as u64);
                Ok(Response {
                    evaluation: request.reuse,
                    inputs: std::mem::take(&mut batch[i]),
                    coalesced: k,
                })
            };
            *state = SlotState::Done(result);
            slot.cv.notify_one();
        }
        batch.clear();
    }
}

/// A pending asynchronous request: resolves on [`Ticket::wait`].
///
/// Dropping an unresolved ticket cancels the request if it is still queued,
/// or waits for the in-flight result and discards it — either way the
/// queue's bookkeeping stays consistent.
pub struct Ticket<C: Coeff> {
    queue: Arc<PlanQueue<C>>,
    slot: Arc<Slot<C>>,
    resolved: bool,
}

impl<C: Coeff> fmt::Debug for Ticket<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket")
            .field("resolved", &self.resolved)
            .finish_non_exhaustive()
    }
}

impl<C: Coeff> Ticket<C> {
    /// Blocks until the response is ready, taking part in the coalescing
    /// protocol like a blocking submit (the first waiter of a quiet queue
    /// becomes the leader and drains everything queued before it, which is
    /// what makes staged loads deterministic).
    pub fn wait(mut self) -> Result<Response<C>, ServeError> {
        let result = self.queue.wait_resolved(&self.slot, false);
        self.queue.metrics.exit();
        self.resolved = true;
        result
    }
}

impl<C: Coeff> Drop for Ticket<C> {
    fn drop(&mut self) {
        if self.resolved {
            return;
        }
        loop {
            if self.queue.remove_from_queue(&self.slot) {
                // Still queued: cancel in place.  The state necessarily
                // holds the payload (leaders only take payloads of pointers
                // they popped).
                *self.slot.state.lock() = SlotState::Finished;
                break;
            }
            let mut state = self.slot.state.lock();
            match &*state {
                SlotState::Done(_) | SlotState::Finished => break,
                // A leader owns it right now; its result is imminent.
                _ => {
                    let _ = self.slot.cv.wait_for(&mut state, FOLLOWER_PARK);
                }
            }
        }
        self.queue.metrics.exit();
    }
}
