//! The service object: named plans, admission control and the value-level
//! (`f64`) entry points the wire protocol builds on.
//!
//! A [`Service`] wraps one [`Engine`] and a registry of compiled plans,
//! each fronted by its own coalescing [`PlanQueue`].  Registration goes
//! through the engine's *fallible* compile path ([`Engine::try_compile`]),
//! so a malformed source arriving over a wire degrades into an error reply
//! instead of aborting the process.

use crate::coalesce::{PlanQueue, Ticket};
use crate::metrics::MetricsSnapshot;
use parking_lot::Mutex;
use psmd_core::{Engine, Evaluation, Plan, PolySource};
use psmd_multidouble::{Coeff, Md, Precision};
use psmd_series::Series;
use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why the service rejected a request or registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control: too many requests in flight for this plan.
    Busy {
        /// In-flight requests at rejection time.
        inflight: usize,
        /// The plan's admission limit.
        limit: usize,
    },
    /// The request's deadline expired before its result could be
    /// delivered: either it was still queued at staging time (rejected
    /// without a launch), or its coalesced window was already in flight —
    /// the waiter detached and the launch's result for this slot was
    /// discarded (see the protocol notes on [`crate::PlanQueue`]).
    DeadlineExceeded,
    /// No plan is registered under the given id.
    UnknownPlan(String),
    /// The operation is structurally unsupported (system sources, precision
    /// mismatches, malformed inputs).
    Rejected(String),
    /// The source failed the engine's structural validation.
    Invalid(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Busy { inflight, limit } => {
                write!(f, "busy: {inflight} requests in flight (limit {limit})")
            }
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::UnknownPlan(id) => write!(f, "unknown plan '{id}'"),
            ServeError::Rejected(m) => write!(f, "rejected: {m}"),
            ServeError::Invalid(m) => write!(f, "invalid: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<psmd_core::Error> for ServeError {
    fn from(e: psmd_core::Error) -> Self {
        ServeError::Invalid(e.to_string())
    }
}

/// Service configuration: the coalescing window and the admission limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Largest number of requests one coalesced launch may serve.
    pub max_batch: usize,
    /// Admission limit per plan; 0 derives it from the engine's workspace
    /// pool: `(parallelism + 2) * max_batch`, i.e. as many requests as the
    /// pool's workspace capacity absorbs in full windows.
    pub max_inflight: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_inflight: 0,
            default_deadline: None,
        }
    }
}

impl ServeConfig {
    fn resolve_inflight(&self, parallelism: usize) -> usize {
        if self.max_inflight > 0 {
            self.max_inflight
        } else {
            (parallelism + 2) * self.max_batch.max(1)
        }
    }
}

/// One evaluation request: the input series, reusable result buffers and an
/// optional deadline.
///
/// The `reuse` evaluation's buffers receive the result; passing the
/// previous response's buffers back (see [`Response::into_request`]) makes
/// a closed-loop client allocation-free in the steady state.
pub struct Request<C: Coeff> {
    /// One input series per variable.
    pub inputs: Vec<Series<C>>,
    /// Buffers for the result (grown on first use, reused afterwards).
    pub reuse: Evaluation<C>,
    /// Reject the request without launching if it is still queued at this
    /// instant.
    pub deadline: Option<Instant>,
}

impl<C: Coeff> Request<C> {
    /// A request evaluating at `inputs`, with fresh result buffers and no
    /// deadline.
    pub fn new(inputs: Vec<Series<C>>) -> Self {
        Self {
            inputs,
            reuse: Evaluation::empty(),
            deadline: None,
        }
    }

    /// Sets the deadline.
    pub fn deadline(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Provides result buffers to reuse.
    pub fn reusing(mut self, reuse: Evaluation<C>) -> Self {
        self.reuse = reuse;
        self
    }
}

/// A served evaluation: the result, the input buffers handed back for
/// reuse, and how many requests shared the launch.
pub struct Response<C: Coeff> {
    /// Value and gradient at the request's inputs.
    pub evaluation: Evaluation<C>,
    /// The request's input vectors, returned to the caller.
    pub inputs: Vec<Series<C>>,
    /// Size of the coalesced batch this request rode in (1 = it had the
    /// launch to itself).
    pub coalesced: usize,
}

impl<C: Coeff> fmt::Debug for Response<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Response")
            .field("coalesced", &self.coalesced)
            .field("num_inputs", &self.inputs.len())
            .finish_non_exhaustive()
    }
}

impl<C: Coeff> Response<C> {
    /// Turns the response back into a request reusing both the input and
    /// the result buffers — the closed-loop steady state.  Overwrite
    /// `inputs` with the next evaluation point before submitting.
    pub fn into_request(self) -> Request<C> {
        Request {
            inputs: self.inputs,
            reuse: self.evaluation,
            deadline: None,
        }
    }
}

/// A value-level evaluation result for callers (wire clients, FFI) that
/// never see a coefficient type: every multi-double coefficient is rounded
/// to its leading double.
#[derive(Debug, Clone, PartialEq)]
pub struct F64Evaluation {
    /// `p(z)` coefficients, constant term first.
    pub value: Vec<f64>,
    /// `dp/dx_i (z)` coefficients per variable.
    pub gradient: Vec<Vec<f64>>,
    /// Size of the coalesced batch the request rode in.
    pub coalesced: usize,
}

/// Precision-erased handle to a plan's queue: what the registry stores
/// alongside the typed `Arc<PlanQueue<C>>`.
trait QueueHandle: Send + Sync {
    fn snapshot(&self) -> MetricsSnapshot;
    fn drain_now(&self);
}

impl<C: Coeff> QueueHandle for PlanQueue<C> {
    fn snapshot(&self) -> MetricsSnapshot {
        self.metrics().snapshot()
    }
    fn drain_now(&self) {
        PlanQueue::drain_now(self)
    }
}

struct PlanEntry {
    handle: Arc<dyn QueueHandle>,
    typed: Arc<dyn Any + Send + Sync>,
    precision: Option<Precision>,
}

/// A long-lived evaluation service: one engine, a registry of named plans,
/// and a coalescing queue per plan.
///
/// ```
/// use psmd_core::{Engine, Monomial, Polynomial};
/// use psmd_multidouble::Dd;
/// use psmd_serve::{Request, ServeConfig, Service};
/// use psmd_series::Series;
///
/// let engine = Engine::builder().threads(0).try_build().unwrap();
/// let service = Service::new(engine, ServeConfig::default());
/// let d = 2;
/// let c = |x: f64| Series::constant(Dd::from_f64(x), d);
/// let p = Polynomial::new(2, c(1.0), vec![Monomial::new(c(3.0), vec![0, 1])]);
/// service.register("p", p).unwrap();
///
/// let z = vec![
///     Series::<Dd>::from_f64_coeffs(&[1.0, 1.0, 0.0]),
///     Series::<Dd>::from_f64_coeffs(&[1.0, -1.0, 0.0]),
/// ];
/// let response = service.submit("p", Request::new(z)).unwrap();
/// assert_eq!(response.evaluation.value.coeff(0).to_f64(), 4.0);
/// ```
pub struct Service {
    engine: Engine,
    config: ServeConfig,
    plans: Mutex<HashMap<String, PlanEntry>>,
}

impl Service {
    /// A service over the given engine.
    pub fn new(engine: Engine, config: ServeConfig) -> Self {
        Self {
            engine,
            config,
            plans: Mutex::new(HashMap::new()),
        }
    }

    /// The engine behind the service.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The service configuration.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Ids of every registered plan, sorted.
    pub fn plan_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.plans.lock().keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Compiles and registers a plan under `id`, replacing any previous
    /// registration.  Goes through [`Engine::try_compile`]; system sources
    /// are rejected (their batched evaluation is unsupported, so they
    /// cannot be coalesced).
    pub fn register<C: Coeff>(
        &self,
        id: &str,
        source: impl Into<PolySource<C>>,
    ) -> Result<Arc<PlanQueue<C>>, ServeError> {
        self.register_tagged(id, source, None)
    }

    fn register_tagged<C: Coeff>(
        &self,
        id: &str,
        source: impl Into<PolySource<C>>,
        precision: Option<Precision>,
    ) -> Result<Arc<PlanQueue<C>>, ServeError> {
        let source = source.into();
        if matches!(source, PolySource::System(_)) {
            return Err(ServeError::Rejected(
                "system sources cannot be served: batched system evaluation is unsupported, \
                 so their requests cannot share launches"
                    .to_string(),
            ));
        }
        let plan = self.engine.try_compile(source)?;
        let max_inflight = self
            .config
            .resolve_inflight(self.engine.pool().parallelism());
        let queue = Arc::new(PlanQueue::new(plan, self.config.max_batch, max_inflight));
        let entry = PlanEntry {
            handle: Arc::clone(&queue) as Arc<dyn QueueHandle>,
            typed: Arc::clone(&queue) as Arc<dyn Any + Send + Sync>,
            precision,
        };
        self.plans.lock().insert(id.to_string(), entry);
        Ok(queue)
    }

    /// The coalescing queue of a registered plan, typed at `C`.
    pub fn queue<C: Coeff>(&self, id: &str) -> Result<Arc<PlanQueue<C>>, ServeError> {
        let plans = self.plans.lock();
        let entry = plans
            .get(id)
            .ok_or_else(|| ServeError::UnknownPlan(id.to_string()))?;
        Arc::clone(&entry.typed)
            .downcast::<PlanQueue<C>>()
            .map_err(|_| {
                ServeError::Rejected(format!(
                    "plan '{id}' is registered at a different coefficient type"
                ))
            })
    }

    /// The compiled plan behind a registration, typed at `C`.
    pub fn plan<C: Coeff>(&self, id: &str) -> Result<Arc<Plan<C>>, ServeError> {
        Ok(Arc::clone(self.queue::<C>(id)?.plan()))
    }

    /// Submits a request against a registered plan and blocks for the
    /// response; see [`PlanQueue::submit`] for the coalescing protocol.
    pub fn submit<C: Coeff>(
        &self,
        id: &str,
        request: Request<C>,
    ) -> Result<Response<C>, ServeError> {
        let queue = self.queue::<C>(id)?;
        self.validate_shape(queue.plan(), &request)?;
        queue.submit(self.apply_default_deadline(request))
    }

    /// Submits without blocking; the returned [`Ticket`] resolves the
    /// response on [`Ticket::wait`].
    pub fn submit_async<C: Coeff>(
        &self,
        id: &str,
        request: Request<C>,
    ) -> Result<Ticket<C>, ServeError> {
        let queue = self.queue::<C>(id)?;
        self.validate_shape(queue.plan(), &request)?;
        queue.submit_async(self.apply_default_deadline(request))
    }

    fn apply_default_deadline<C: Coeff>(&self, mut request: Request<C>) -> Request<C> {
        if request.deadline.is_none() {
            if let Some(budget) = self.config.default_deadline {
                request.deadline = Some(Instant::now() + budget);
            }
        }
        request
    }

    /// Rejects malformed inputs at admission, before they can reach (and
    /// panic) a coalesced launch that other callers share.
    fn validate_shape<C: Coeff>(
        &self,
        plan: &Arc<Plan<C>>,
        request: &Request<C>,
    ) -> Result<(), ServeError> {
        let want_vars = plan.source().num_variables();
        if request.inputs.len() != want_vars {
            return Err(ServeError::Rejected(format!(
                "expected {want_vars} input series, got {}",
                request.inputs.len()
            )));
        }
        let want_degree = plan.source().degree();
        for (v, series) in request.inputs.iter().enumerate() {
            if series.degree() != want_degree {
                return Err(ServeError::Rejected(format!(
                    "input series {v} has degree {} but the plan expects {want_degree}",
                    series.degree()
                )));
            }
        }
        Ok(())
    }

    /// Drains a plan's queue on the calling thread (a no-op when empty).
    pub fn flush(&self, id: &str) -> Result<(), ServeError> {
        let plans = self.plans.lock();
        let entry = plans
            .get(id)
            .ok_or_else(|| ServeError::UnknownPlan(id.to_string()))?;
        let handle = Arc::clone(&entry.handle);
        drop(plans);
        handle.drain_now();
        Ok(())
    }

    /// A plan's metrics snapshot, completed with the engine-level fields
    /// (plan-cache statistics and the worker pool's rendezvous counter).
    pub fn metrics(&self, id: &str) -> Result<MetricsSnapshot, ServeError> {
        let plans = self.plans.lock();
        let entry = plans
            .get(id)
            .ok_or_else(|| ServeError::UnknownPlan(id.to_string()))?;
        let handle = Arc::clone(&entry.handle);
        drop(plans);
        let mut snapshot = handle.snapshot();
        snapshot.plan_cache = Some(self.engine.cache_stats());
        snapshot.pool_rendezvous = Some(self.engine.rendezvous_count() as u64);
        Ok(snapshot)
    }

    /// The runtime precision a plan was registered at through the
    /// value-level API (`None` for plans registered through the typed
    /// [`Service::register`]).
    pub fn precision_of(&self, id: &str) -> Result<Option<Precision>, ServeError> {
        let plans = self.plans.lock();
        plans
            .get(id)
            .map(|e| e.precision)
            .ok_or_else(|| ServeError::UnknownPlan(id.to_string()))
    }
}

/// Dispatches a block over the `Md<N>` type of a runtime [`Precision`].
macro_rules! with_precision {
    ($precision:expr, $ty:ident, $body:block) => {
        match $precision {
            Precision::D1 => {
                type $ty = Md<1>;
                $body
            }
            Precision::D2 => {
                type $ty = Md<2>;
                $body
            }
            Precision::D3 => {
                type $ty = Md<3>;
                $body
            }
            Precision::D4 => {
                type $ty = Md<4>;
                $body
            }
            Precision::D5 => {
                type $ty = Md<5>;
                $body
            }
            Precision::D8 => {
                type $ty = Md<8>;
                $body
            }
            Precision::D10 => {
                type $ty = Md<10>;
                $body
            }
        }
    };
}

impl Service {
    /// Registers a single polynomial given as plain doubles at a runtime
    /// precision — the wire protocol's `compile` operation.  Each monomial
    /// is a `(coefficient, variables)` pair.
    pub fn register_f64(
        &self,
        id: &str,
        precision: Precision,
        num_variables: usize,
        degree: usize,
        constant: f64,
        monomials: &[(f64, Vec<usize>)],
    ) -> Result<(), ServeError> {
        // Validate the monomials by hand first: the typed constructors
        // panic on malformed variable tuples, and a wire request must get
        // an error reply instead.
        for (i, (_, variables)) in monomials.iter().enumerate() {
            if variables.is_empty() {
                return Err(ServeError::Invalid(format!(
                    "monomial {i} has no variables; fold constants into the constant term"
                )));
            }
            if !variables.windows(2).all(|w| w[0] < w[1]) {
                return Err(ServeError::Invalid(format!(
                    "monomial {i}: variable indices must be strictly increasing, got {variables:?}"
                )));
            }
            if let Some(&v) = variables.iter().find(|&&v| v >= num_variables) {
                return Err(ServeError::Invalid(format!(
                    "monomial {i} references variable {v} but the polynomial has {num_variables}"
                )));
            }
        }
        with_precision!(precision, C, {
            let constant = Series::constant(C::from_f64(constant), degree);
            let monomials = monomials
                .iter()
                .map(|(coefficient, variables)| {
                    psmd_core::Monomial::new(
                        Series::constant(C::from_f64(*coefficient), degree),
                        variables.clone(),
                    )
                })
                .collect();
            let poly = psmd_core::Polynomial::new(num_variables, constant, monomials);
            self.register_tagged::<C>(id, poly, Some(precision))?;
        });
        Ok(())
    }

    /// Evaluates a plan registered through [`Service::register_f64`] at
    /// inputs given as plain doubles (`inputs[v]` holds the coefficients of
    /// variable `v`, constant term first) — the wire protocol's `eval`
    /// operation.  Blocks for the (possibly coalesced) response.
    pub fn submit_f64(&self, id: &str, inputs: &[Vec<f64>]) -> Result<F64Evaluation, ServeError> {
        let Some(precision) = self.precision_of(id)? else {
            return Err(ServeError::Rejected(format!(
                "plan '{id}' was not registered through the value-level API; submit typed \
                 requests through `Service::submit`"
            )));
        };
        with_precision!(precision, C, {
            let series: Vec<Series<C>> = inputs
                .iter()
                .map(|coeffs| Series::from_f64_coeffs(coeffs))
                .collect();
            let response = self.submit::<C>(id, Request::new(series))?;
            let to_f64 = |s: &Series<C>| -> Vec<f64> {
                (0..=s.degree()).map(|i| s.coeff(i).to_f64()).collect()
            };
            Ok(F64Evaluation {
                value: to_f64(&response.evaluation.value),
                gradient: response.evaluation.gradient.iter().map(to_f64).collect(),
                coalesced: response.coalesced,
            })
        })
    }
}
