//! A minimal JSON value, parser and writer for the wire protocol.
//!
//! The workspace vendors no serialization framework (the build environment
//! has no registry access), so the line-delimited wire protocol hand-rolls
//! the small JSON subset it needs: objects, arrays, strings, finite
//! numbers, booleans and null.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as a double).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, with insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// The member of an object, if this is an object containing the key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= usize::MAX as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl std::fmt::Display for Json {
    /// Serializes the value on one line (no trailing newline).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out);
        f.write_str(&out)
    }
}

/// Convenience: an object builder for replies.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Convenience: an array of numbers.
pub fn num_array(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|&x| Json::Num(x)).collect())
}

fn write_value(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                // JSON has no Inf/NaN; null is the conventional stand-in.
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (i, (key, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected '{literal}' at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number bytes");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&escape) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match escape {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape '{hex}'"))?;
                        *pos += 4;
                        // Surrogate pairs are not needed by the protocol;
                        // map them to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("invalid escape '\\{}'", other as char)),
                }
            }
            _ => {
                // Collect the full UTF-8 sequence starting at this byte.
                let start = *pos - 1;
                let len = utf8_len(b);
                let end = start + len;
                let chunk = bytes
                    .get(start..end)
                    .and_then(|c| std::str::from_utf8(c).ok())
                    .ok_or_else(|| format!("invalid UTF-8 at byte {start}"))?;
                out.push_str(chunk);
                *pos = end;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected a string key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_shapes() {
        let text = r#"{"op":"eval","plan":"p1","inputs":[[1,1,0],[1,-1,0]],"deep":{"a":[true,false,null]}}"#;
        let parsed = Json::parse(text).unwrap();
        assert_eq!(parsed.get("op").unwrap().as_str(), Some("eval"));
        let inputs = parsed.get("inputs").unwrap().as_array().unwrap();
        assert_eq!(inputs[1].as_array().unwrap()[1].as_f64(), Some(-1.0));
        let reparsed = Json::parse(&parsed.to_string()).unwrap();
        assert_eq!(parsed, reparsed);
    }

    #[test]
    fn parses_numbers_and_escapes() {
        assert_eq!(Json::parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(Json::parse("0.25").unwrap().as_f64(), Some(0.25));
        let s = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(s.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("'single'").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn as_usize_requires_exact_integers() {
        assert_eq!(Json::parse("7").unwrap().as_usize(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_usize(), None);
        assert_eq!(Json::parse("-1").unwrap().as_usize(), None);
    }

    #[test]
    fn escapes_control_characters_on_write() {
        let s = Json::Str("a\u{1}b\"c".to_string());
        assert_eq!(s.to_string(), "\"a\\u0001b\\\"c\"");
        assert_eq!(Json::parse(&s.to_string()).unwrap(), s);
    }
}
