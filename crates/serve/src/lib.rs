//! # psmd-serve
//!
//! A long-lived evaluation service over the [`psmd_core::Engine`]: named
//! plans, **request coalescing**, admission control and per-plan metrics,
//! with an optional line-delimited JSON wire protocol on a TCP listener.
//!
//! The paper's central economics are that one wide launch beats many
//! narrow ones: a single polynomial's job layers rarely fill the machine,
//! so independent evaluation points should share launches (Section 5 —
//! the schedule "depends only on the structure of the monomials").  The
//! engine's batched path exploits that for callers who *have* a batch in
//! hand; this crate extends it to callers who do not know about each
//! other: concurrent single-point requests against the same plan are
//! merged into one batched launch by a flat-combining queue
//! ([`PlanQueue`]), and every caller gets back exactly the bits a private
//! launch would have produced.
//!
//! * [`Service`] — the registry: compile-and-register named plans
//!   (through the engine's fallible `try_compile` path), submit typed or
//!   value-level (`f64`) requests, read [`MetricsSnapshot`]s.
//! * [`PlanQueue`] — the per-plan coalescer: blocking [`PlanQueue::submit`],
//!   asynchronous [`PlanQueue::submit_async`] returning a [`Ticket`],
//!   backpressure via [`ServeError::Busy`], deadlines enforced both before
//!   launch (overdue requests are rejected at staging) and *in flight*: a
//!   waiter whose deadline passes mid-window detaches, and when a whole
//!   window's deadlines have passed the leader abandons the launch through
//!   a cooperative [`psmd_core::CancelToken`] — observable as
//!   [`MetricsSnapshot::detached_slots`] and
//!   [`MetricsSnapshot::cancelled_launches`].
//! * [`WireServer`] — the NDJSON-over-TCP front end
//!   (`ping` / `compile` / `eval` / `metrics`).
//!
//! Evaluation always runs on requester threads (there is no collector
//! thread), so a service on a zero-worker engine is a correct, fully
//! sequential configuration — and the closed-loop steady state inherits
//! the engine's zero-allocation guarantee: responses hand the input and
//! result buffers back ([`Response::into_request`]), and the leader's
//! staging batch, outputs and workspaces are all pooled.

#![warn(missing_docs)]

pub mod coalesce;
pub mod json;
pub mod metrics;
pub mod service;
pub mod wire;

pub use coalesce::{PlanQueue, Ticket};
pub use metrics::{
    abandon_bucket, batch_bucket, Metrics, MetricsSnapshot, ABANDON_BUCKETS, ABANDON_BUCKET_LABELS,
    BATCH_BUCKETS, BATCH_BUCKET_LABELS,
};
pub use service::{F64Evaluation, Request, Response, ServeConfig, ServeError, Service};
pub use wire::WireServer;
