//! Regenerates every table and figure of the paper's evaluation section.
//!
//! Usage:
//!
//! ```text
//! table_harness <command> [options]
//!
//! commands:
//!   table1 table2 table3 table4 table5 table6 table7 table8
//!   figure2 figure3 figure4 figure5 figure6
//!   tflops
//!   batch          measured batched-vs-looped evaluation comparison
//!   system         measured fused-system-vs-per-polynomial-loop comparison
//!   graph          measured graph-executor-vs-layered-barrier comparison
//!   engine         measured compile-once/evaluate-many amortization of the
//!                  Engine/Plan API (plan-cache hits, per-eval cost)
//!   workspace      measured workspace-reuse comparison (pooled evaluate vs
//!                  zero-allocation reused-output path) plus the steady-state
//!                  allocation count from a counting global allocator (the
//!                  deterministic zero-alloc gate)
//!   kernels        measured convolution kernel ladder (zero-insertion vs
//!                  Karatsuba vs digit-FFT) per precision and degree, with
//!                  the Auto crossover resolution of each row
//!   simd           measured SIMD lane tier: forced-width batched
//!                  evaluation vs the scalar batch path per precision and
//!                  lane width, with a bitwise-identity verdict per row
//!                  (the detected ISA and auto width ride along as
//!                  ungated text)
//!   serve          serving-layer load generator: deterministic staged
//!                  coalescing windows plus threaded closed-loop clients
//!                  against a psmd-serve Service
//!   track          adaptive-precision homotopy path tracking: a seeded
//!                  16-path family tracked batched (one coalesced launch
//!                  per corrector sweep) and one path at a time; all path
//!                  and escalation counts are deterministic and
//!                  exact-gated, the timings tolerance-gated
//!   compare        compare a current JSON report against a baseline and
//!                  exit non-zero on perf regressions (the CI gate)
//!   all            run every command above (except batch, system, graph,
//!                  engine, workspace and compare)
//!
//! options:
//!   --measure      add measured CPU rows (reduced polynomials, degrees <= 31)
//!   --full         measured rows use the full paper polynomials and degrees
//!                  (can take a long time at high precision and degree)
//!   --seed <u64>   random seed for coefficients and inputs (default 1)
//!   --batch <n>    batch size for the batch command (default 32); passing
//!                  this option also runs the batch report after any command
//!   --equations <m> system size for the system command (default 4)
//!   --json         emit a machine-readable JSON report instead of text
//!                  (supported by table2, batch, system, graph, engine,
//!                  workspace, kernels, simd, serve and track;
//!                  used by the CI perf-snapshot job).  stdout carries only
//!                  the JSON document; progress and notes go to stderr.
//!   --baseline <file>       baseline report for the compare command
//!   --current <file>        current report for the compare command
//!   --tolerance-pct <N>     allowed timing regression in percent for the
//!                           compare command (default 50; deterministic
//!                           counts must always match exactly)
//! ```
//!
//! Per-device millisecond columns are *modeled* with the analytic
//! roofline/occupancy model of `psmd-device` (the efficiency of every device
//! is calibrated once from the paper's Table 3; see EXPERIMENTS.md).
//! Measured rows are CPU wall-clock numbers from the worker-pool simulator
//! and are reported for shape comparison, not for absolute agreement.

use psmd_bench::{
    banner, log2, modeled_double_ops, modeled_run, ms, pct, JsonReport, JsonValue, Scale,
    ShapeCache, TestPolynomial, TextTable, PAPER_DEGREES, REDUCED_DEGREES,
};
use psmd_bench::{measured_run, TimingRow};
use psmd_core::{Engine, Polynomial, Schedule};
use psmd_device::{gpu_by_key, max_degree, paper_gpus};
use psmd_multidouble::{CostModel, Md, Precision};
use psmd_runtime::WorkerPool;
// The `workspace` report's instrument for its deterministic steady-state
// allocation count: the shared per-thread counting allocator (the measured
// engine is zero-worker, so the measuring thread runs every kernel itself;
// see `psmd_bench::alloc_counter`).
#[global_allocator]
static ALLOCATOR: psmd_bench::CountingAllocator = psmd_bench::CountingAllocator;

/// Allocator calls the calling thread makes during `f`.
fn count_allocs(f: impl FnOnce()) -> u64 {
    psmd_bench::measure_allocs(f).allocs
}

/// Command-line options.
#[derive(Debug, Clone)]
struct Options {
    command: String,
    measure: bool,
    full: bool,
    seed: u64,
    batch: Option<usize>,
    equations: usize,
    json: bool,
    baseline: Option<String>,
    current: Option<String>,
    tolerance_pct: f64,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = String::from("all");
    let mut measure = false;
    let mut full = false;
    let mut seed = 1u64;
    let mut batch = None;
    let mut equations = 4usize;
    let mut json = false;
    let mut baseline = None;
    let mut current = None;
    let mut tolerance_pct = 50.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--measure" => measure = true,
            "--full" => {
                full = true;
                measure = true;
            }
            "--json" => json = true,
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs an integer argument");
            }
            "--batch" => {
                i += 1;
                batch = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--batch needs an integer argument"),
                );
            }
            "--equations" => {
                i += 1;
                equations = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--equations needs an integer argument");
            }
            "--baseline" => {
                i += 1;
                baseline = Some(args.get(i).expect("--baseline needs a file path").clone());
            }
            "--current" => {
                i += 1;
                current = Some(args.get(i).expect("--current needs a file path").clone());
            }
            "--tolerance-pct" => {
                i += 1;
                tolerance_pct = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--tolerance-pct needs a numeric argument");
            }
            "--help" | "-h" => {
                println!("see the module documentation at the top of table_harness.rs");
                std::process::exit(0);
            }
            other if !other.starts_with("--") => command = other.to_string(),
            other => panic!("unknown option {other}"),
        }
        i += 1;
    }
    Options {
        command,
        measure,
        full,
        seed,
        batch,
        equations,
        json,
        baseline,
        current,
        tolerance_pct,
    }
}

fn main() {
    let opts = parse_args();
    if opts.command == "compare" {
        compare_command(&opts);
        return;
    }
    let mut cache = ShapeCache::new();
    // One engine for every measured run: it owns the default-sized worker
    // pool and the plan cache that amortizes schedule construction across
    // the sweeps.
    let engine = Engine::new();
    let run = |cmd: &str| opts.command == "all" || opts.command == cmd;
    if run("table1") {
        table1();
    }
    if run("table2") {
        table2(&opts);
    }
    if run("table3") {
        table3(&mut cache, &opts, &engine);
    }
    if run("table4") {
        table4(&mut cache, &opts, &engine);
    }
    if run("table5") {
        scalability_table(&mut cache, TestPolynomial::P1, "Table 5", &opts, &engine);
    }
    if run("table6") {
        scalability_table(&mut cache, TestPolynomial::P2, "Table 6", &opts, &engine);
    }
    if run("table7") {
        scalability_table(&mut cache, TestPolynomial::P3, "Table 7", &opts, &engine);
    }
    if run("table8") {
        table8(&opts, &engine);
    }
    if run("figure2") {
        figure2(&mut cache, &opts, &engine);
    }
    if run("figure3") {
        figure3(&mut cache);
    }
    if run("figure4") {
        figure4(&mut cache);
    }
    if run("figure5") {
        figure5(&mut cache);
    }
    if run("figure6") {
        figure6(&mut cache);
    }
    if run("tflops") {
        tflops(&mut cache);
    }
    // The batch and system reports are measured (not modeled), so they run
    // only when asked for explicitly — by their command or, for batch, by
    // the `--batch` option.  In `--json` mode stdout must stay a single
    // JSON document, so the implicit batch trigger only fires for the
    // `batch` command itself.
    if opts.command == "batch" || (opts.batch.is_some() && !opts.json) {
        batch_report(&opts, &engine);
    }
    if opts.command == "system" {
        system_report(&opts, &engine);
    }
    if opts.command == "graph" {
        graph_report(&opts);
    }
    if opts.command == "engine" {
        engine_report(&opts);
    }
    if opts.command == "workspace" {
        workspace_report(&opts);
    }
    if opts.command == "kernels" {
        kernels_report(&opts);
    }
    if opts.command == "simd" {
        simd_report(&opts);
    }
    if opts.command == "serve" {
        serve_report(&opts);
    }
    if opts.command == "track" {
        track_report(&opts);
    }
}

/// The path-tracking report: a seeded 16-path multilinear family (four
/// independent `{x + y − s, x·y − p}` blocks, `p < 0`) tracked to an
/// endpoint tolerance of 1e-40, which forces every path up the precision
/// ladder past double-double.  One row tracks all paths batched (one
/// coalesced launch per corrector sweep), one row tracks them one at a
/// time; every count — paths, convergences, escalations per precision,
/// corrector launches, steps, Newton iterations — is deterministic and
/// exact-gated by `bench/baselines/BENCH_track.json`, while the wall-clock
/// timings are tolerance-gated and the batched-vs-serial ratios ride along
/// ungated as `*_speedup`.
fn track_report(opts: &Options) {
    use psmd_track::{HomotopySpec, MonomialSpec, PolySpec, TrackOptions, TrackOutcome, Tracker};

    emit_banner(
        opts,
        &banner(
            "Path tracking: batched adaptive-precision continuation vs \
             one-path-at-a-time (measured CPU)",
        ),
    );

    // Seeded xorshift target constants, as in examples/path_tracking.rs.
    let mut state = opts.seed ^ 0x005e_ed0f_da7a_2026;
    let mut next_unit = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let blocks = 4usize;
    let block = |x: usize, s: f64, p: f64| {
        vec![
            PolySpec {
                constant: vec![-s],
                monomials: vec![
                    MonomialSpec::constant_coeff(1.0, vec![x]),
                    MonomialSpec::constant_coeff(1.0, vec![x + 1]),
                ],
            },
            PolySpec {
                constant: vec![-p],
                monomials: vec![MonomialSpec::constant_coeff(1.0, vec![x, x + 1])],
            },
        ]
    };
    let mut start = Vec::new();
    let mut target = Vec::new();
    for k in 0..blocks {
        let s = 0.1 + 0.8 * next_unit();
        let p = -1.2 - 1.3 * next_unit();
        start.extend(block(2 * k, 0.0, -1.0));
        target.extend(block(2 * k, s, p));
    }
    let spec = HomotopySpec::new(2 * blocks, 0, start, target);
    let starts: Vec<Vec<f64>> = (0..1usize << blocks)
        .map(|bits| {
            (0..blocks)
                .flat_map(|k| {
                    if bits >> k & 1 == 0 {
                        [1.0, -1.0]
                    } else {
                        [-1.0, 1.0]
                    }
                })
                .collect()
        })
        .collect();
    let options = TrackOptions {
        final_tolerance: 1e-40,
        ..TrackOptions::default()
    };
    let tracker = Tracker::new(spec, options).expect("a valid seeded family");
    let engine = Engine::new();

    eprintln!("track: {} paths batched...", starts.len());
    let t0 = std::time::Instant::now();
    let batched = tracker.track(&engine, &starts).expect("tracking runs");
    let batched_ms = t0.elapsed().as_secs_f64() * 1e3;

    eprintln!("track: {} paths one at a time...", starts.len());
    let t0 = std::time::Instant::now();
    let serial: Vec<TrackOutcome> = starts
        .iter()
        .map(|s| {
            tracker
                .track(&engine, std::slice::from_ref(s))
                .expect("tracking runs")
        })
        .collect();
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    let serial_launches: usize = serial.iter().map(|o| o.stats.corrector_launches).sum();
    let serial_converged: usize = serial.iter().map(|o| o.stats.converged).sum();
    let serial_steps: usize = serial.iter().map(|o| o.stats.steps).sum();
    let serial_iterations: usize = serial.iter().map(|o| o.stats.newton_iterations).sum();
    for (i, lone) in serial.iter().enumerate() {
        assert_eq!(
            lone.reports[0].solution_limbs, batched.reports[i].solution_limbs,
            "path {i}: batched and serial endpoints must be bitwise equal"
        );
    }
    assert!(
        batched.stats.corrector_launches < serial_launches,
        "batched tracking must issue fewer corrector launches than serial"
    );

    let esc_count = |outcome: &TrackOutcome, p: Precision| -> usize {
        outcome
            .stats
            .escalations_by_precision
            .iter()
            .find(|(q, _)| *q == p)
            .map_or(0, |(_, c)| *c)
    };
    let serial_esc = |p: Precision| -> usize { serial.iter().map(|o| esc_count(o, p)).sum() };

    let mut t = TextTable::new(vec![
        "kind",
        "paths",
        "converged",
        "escalated",
        "launches",
        "steps",
        "iters",
        "time (ms)",
    ]);
    let mut json = JsonReport::new("track");
    let mut emit = |kind: &str,
                    converged: usize,
                    escalated: usize,
                    esc: [usize; 7],
                    launches: usize,
                    steps: usize,
                    iterations: usize,
                    wall_ms: f64,
                    speedup: f64| {
        if opts.json {
            let mut fields = vec![
                ("kind", JsonValue::Text(kind.to_string())),
                ("paths", JsonValue::Integer(starts.len() as i64)),
                ("converged", JsonValue::Integer(converged as i64)),
                ("escalated_paths", JsonValue::Integer(escalated as i64)),
            ];
            let names = [
                "esc_1d", "esc_2d", "esc_3d", "esc_4d", "esc_5d", "esc_8d", "esc_10d",
            ];
            for (name, count) in names.iter().zip(esc.iter()) {
                fields.push((name, JsonValue::Integer(*count as i64)));
            }
            fields.push(("corrector_launches", JsonValue::Integer(launches as i64)));
            fields.push(("steps", JsonValue::Integer(steps as i64)));
            fields.push(("newton_iterations", JsonValue::Integer(iterations as i64)));
            fields.push(("track_ms", JsonValue::Number(wall_ms)));
            fields.push(("launch_speedup", JsonValue::Number(speedup)));
            json.add_row(fields);
        } else {
            t.add_row(vec![
                kind.to_string(),
                starts.len().to_string(),
                converged.to_string(),
                escalated.to_string(),
                launches.to_string(),
                steps.to_string(),
                iterations.to_string(),
                ms(wall_ms),
            ]);
        }
    };

    let batched_esc: Vec<usize> = Precision::ALL
        .iter()
        .map(|&p| esc_count(&batched, p))
        .collect();
    emit(
        "batched",
        batched.stats.converged,
        batched.stats.escalated_paths,
        batched_esc.clone().try_into().unwrap(),
        batched.stats.corrector_launches,
        batched.stats.steps,
        batched.stats.newton_iterations,
        batched_ms,
        serial_launches as f64 / batched.stats.corrector_launches.max(1) as f64,
    );
    let serial_escalated: usize = serial.iter().map(|o| o.stats.escalated_paths).sum();
    let serial_escs: Vec<usize> = Precision::ALL.iter().map(|&p| serial_esc(p)).collect();
    emit(
        "serial",
        serial_converged,
        serial_escalated,
        serial_escs.try_into().unwrap(),
        serial_launches,
        serial_steps,
        serial_iterations,
        serial_ms,
        1.0,
    );

    if opts.json {
        print!("{json}");
    } else {
        print!("{t}");
        println!(
            "\nbatched tracking: {} launches for {} paths vs {} serial \
             ({:.1}x fewer); every escalation and endpoint bitwise equal.",
            batched.stats.corrector_launches,
            starts.len(),
            serial_launches,
            serial_launches as f64 / batched.stats.corrector_launches.max(1) as f64,
        );
    }
}

/// The serving-layer load report: deterministic staged coalescing runs
/// (parked tickets drained in exact FIFO windows — every counter a pure
/// function of `(requests, max_batch)`) and threaded closed-loop load
/// generation (concurrent clients recycling their response buffers).  This
/// report produces `bench/baselines/BENCH_serve.json`: the staged counters
/// and the closed-loop identities are exact-gated, the timings
/// tolerance-gated, and the measured coalescing ratio rides along as an
/// ungated `*_speedup` field.
fn serve_report(opts: &Options) {
    emit_banner(
        opts,
        &banner(
            "Serving layer: staged coalescing windows (deterministic) and \
             closed-loop concurrent load (measured CPU)",
        ),
    );
    let mut t = TextTable::new(vec![
        "kind",
        "poly",
        "degree",
        "requests",
        "window/clients",
        "launches",
        "saved",
        "coalesce",
        "time (ms)",
        "p99 (ms)",
    ]);
    let mut json = JsonReport::new("serve");
    let degree = 8;

    // Staged runs: the window packing is exact — ceil(requests/max_batch)
    // launches, FIFO slices, reproducible histograms.  The last scenario
    // parks dead-on-arrival tickets too, so the JSON rows demonstrate that
    // an expired deadline is reported as `deadline_expired`, distinct from
    // the admission-control `busy_rejected` counter.
    for (requests, expired, max_batch) in
        [(16usize, 0usize, 4usize), (32, 0, 8), (10, 0, 4), (9, 3, 4)]
    {
        eprintln!("serve: staged {requests} requests (+{expired} expired), window {max_batch}...");
        let row = psmd_bench::staged_run(
            TestPolynomial::P1,
            degree,
            requests,
            expired,
            max_batch,
            opts.seed,
        );
        assert_eq!(
            row.completed + row.deadline_expired + row.busy_rejected,
            (row.requests + row.expired) as u64,
            "staged accounting identity violated"
        );
        if opts.json {
            let mut fields = vec![
                ("kind", JsonValue::Text("staged".to_string())),
                ("poly", JsonValue::Text(row.poly.label().to_string())),
                ("degree", JsonValue::Integer(row.degree as i64)),
                ("requests", JsonValue::Integer(row.requests as i64)),
                ("expired", JsonValue::Integer(row.expired as i64)),
                ("max_batch", JsonValue::Integer(row.max_batch as i64)),
                ("launches", JsonValue::Integer(row.launches as i64)),
                (
                    "launches_saved",
                    JsonValue::Integer(row.launches_saved as i64),
                ),
                ("completed", JsonValue::Integer(row.completed as i64)),
                (
                    "busy_rejected",
                    JsonValue::Integer(row.busy_rejected as i64),
                ),
                (
                    "deadline_expired",
                    JsonValue::Integer(row.deadline_expired as i64),
                ),
                (
                    "cancelled_launches",
                    JsonValue::Integer(row.cancelled_launches as i64),
                ),
                (
                    "detached_slots",
                    JsonValue::Integer(row.detached_slots as i64),
                ),
                ("drain_ms", JsonValue::Number(row.drain_ms)),
            ];
            let bucket_names = [
                "hist_0", "hist_1", "hist_2", "hist_3", "hist_4", "hist_5", "hist_6",
            ];
            for (name, count) in bucket_names.iter().zip(row.batch_histogram.iter()) {
                fields.push((name, JsonValue::Integer(*count as i64)));
            }
            json.add_row(fields);
        } else {
            t.add_row(vec![
                "staged".to_string(),
                row.poly.label().to_string(),
                row.degree.to_string(),
                if row.expired > 0 {
                    format!("{}+{}exp", row.requests, row.expired)
                } else {
                    row.requests.to_string()
                },
                row.max_batch.to_string(),
                row.launches.to_string(),
                row.launches_saved.to_string(),
                format!("{:.2}x", row.completed as f64 / row.launches.max(1) as f64),
                ms(row.drain_ms),
                "-".to_string(),
            ]);
        }
    }

    // Closed-loop runs: real concurrency, so the launch count is timing
    // dependent; the request count and the admission counters stay exact.
    for clients in [4usize, 8] {
        let per_client = 16;
        eprintln!("serve: closed loop, {clients} clients x {per_client}...");
        let row =
            psmd_bench::closed_loop_run(TestPolynomial::P1, degree, clients, per_client, opts.seed);
        assert_eq!(
            row.launches + row.launches_saved + row.busy_rejected,
            row.requests,
            "serve accounting identity violated"
        );
        if opts.json {
            json.add_row(vec![
                ("kind", JsonValue::Text("closed_loop".to_string())),
                ("poly", JsonValue::Text(row.poly.label().to_string())),
                ("degree", JsonValue::Integer(row.degree as i64)),
                ("clients", JsonValue::Integer(row.clients as i64)),
                ("per_client", JsonValue::Integer(row.per_client as i64)),
                ("requests", JsonValue::Integer(row.requests as i64)),
                (
                    "busy_rejected",
                    JsonValue::Integer(row.busy_rejected as i64),
                ),
                (
                    "coalesce_speedup",
                    JsonValue::Number(row.mean_batch.max(1.0)),
                ),
                ("total_ms", JsonValue::Number(row.total_ms)),
                ("p50_ms", JsonValue::Number(row.p50_ms)),
                ("p99_ms", JsonValue::Number(row.p99_ms)),
            ]);
        } else {
            t.add_row(vec![
                "closed-loop".to_string(),
                row.poly.label().to_string(),
                row.degree.to_string(),
                row.requests.to_string(),
                clients.to_string(),
                row.launches.to_string(),
                row.launches_saved.to_string(),
                format!("{:.2}x", row.mean_batch.max(1.0)),
                ms(row.total_ms),
                ms(row.p99_ms),
            ]);
        }
    }

    if opts.json {
        print!("{json}");
    } else {
        print!("{t}");
        println!(
            "(staged rows park N tickets and drain them on one thread: exactly\n\
             ceil(N / window) launches, bit-reproducible; closed-loop rows run real\n\
             concurrent clients, so their launch count varies — the identity\n\
             launches + saved + busy == requests always holds)"
        );
    }
}

/// The convolution kernel ladder: zero-insertion schoolbook vs Karatsuba
/// short product vs compensated digit-FFT, measured per (precision, degree)
/// on the same seeded operands, with the `Auto` crossover resolution of
/// each row.  This report produces `bench/baselines/BENCH_kernels.json`
/// and is the measurement behind `psmd_core::crossover`.
fn kernels_report(opts: &Options) {
    emit_banner(
        opts,
        &banner(
            "Convolution kernel ladder: schoolbook vs Karatsuba vs digit-FFT \
             (mean ms per convolution, measured on one core)",
        ),
    );
    let mut t = TextTable::new(vec![
        "precision",
        "degree",
        "schoolbook (ms)",
        "karatsuba (ms)",
        "fft (ms)",
        "auto (ms)",
        "auto kernel",
        "auto speedup",
    ]);
    let mut json = JsonReport::new("kernels");
    for prec in Precision::ALL {
        for d in psmd_bench::KERNEL_LADDER_DEGREES {
            eprintln!("kernels: measuring {} at degree {d}...", prec.label());
            let row = psmd_bench::kernel_ladder_row(prec, d, opts.seed);
            if opts.json {
                json.add_row(vec![
                    ("precision", JsonValue::Text(row.precision.to_string())),
                    ("limbs", JsonValue::Integer(row.limbs as i64)),
                    ("degree", JsonValue::Integer(row.degree as i64)),
                    ("schoolbook_ms", JsonValue::Number(row.schoolbook_ms)),
                    ("karatsuba_ms", JsonValue::Number(row.karatsuba_ms)),
                    ("fft_ms", JsonValue::Number(row.fft_ms)),
                    ("auto_ms", JsonValue::Number(row.auto_ms)),
                    ("auto_kernel", JsonValue::Text(row.auto_label().to_string())),
                    ("auto_speedup", JsonValue::Number(row.auto_speedup())),
                    (
                        "schoolbook_mults",
                        JsonValue::Integer(row.schoolbook_mults as i64),
                    ),
                    (
                        "karatsuba_mults",
                        JsonValue::Integer(row.karatsuba_mults as i64),
                    ),
                    ("fft_points", JsonValue::Integer(row.fft_points as i64)),
                    ("fft_planes", JsonValue::Integer(row.fft_planes as i64)),
                    (
                        "fft_digit_bits",
                        JsonValue::Integer(row.fft_digit_bits as i64),
                    ),
                ]);
            } else {
                t.add_row(vec![
                    row.precision.to_string(),
                    d.to_string(),
                    ms(row.schoolbook_ms),
                    ms(row.karatsuba_ms),
                    ms(row.fft_ms),
                    ms(row.auto_ms),
                    row.auto_label().to_string(),
                    format!("{:.2}x", row.auto_speedup()),
                ]);
            }
        }
    }
    if opts.json {
        print!("{json}");
    } else {
        print!("{t}");
        println!(
            "(each cell is the mean wall clock of one raw convolution on seeded random\n\
             operands; the auto column re-reports the kernel the measured crossover\n\
             table of psmd_core::crossover selects for that precision and degree)"
        );
    }
}

/// Workspace reuse: the pooled and the zero-allocation reused-output
/// steady states against the cold first evaluation,
/// plus the counting-allocator measurement of the steady state.
///
/// The allocation count runs on a dedicated **zero-worker** engine (every
/// kernel executes inline on the measuring thread, so the count covers the
/// entire evaluation and is deterministic: the committed baseline pins it at
/// exactly zero); timings run on the shared default engine.
fn workspace_report(opts: &Options) {
    let engine = Engine::new();
    let alloc_engine = Engine::builder().threads(0).build();
    let evals = 16usize;
    let (scale, degrees, label): (Scale, Vec<usize>, &str) = if opts.full {
        (Scale::Full, PAPER_DEGREES.to_vec(), "full")
    } else {
        (Scale::Reduced, REDUCED_DEGREES.to_vec(), "reduced")
    };
    emit_banner(
        opts,
        &banner(&format!(
            "Workspace reuse: pooled evaluation vs zero-allocation output reuse \
             ({evals} steady evaluations per mode; {label} polynomials, double-double, \
             measured CPU)"
        )),
    );
    let mut t = TextTable::new(vec![
        "poly",
        "degree",
        "cold (ms)",
        "pooled (ms)",
        "reused (ms)",
        "reuse speedup",
        "arena coeffs",
        "steady allocs",
    ]);
    let mut json = JsonReport::new("workspace");
    for poly in TestPolynomial::ALL {
        for &d in &degrees {
            eprintln!("workspace: measuring {} at degree {d}...", poly.label());
            let cmp = psmd_bench::workspace_comparison(
                &engine,
                poly,
                Precision::D2,
                d,
                scale,
                evals,
                opts.seed,
            );
            // The deterministic zero-allocation gate: steady-state
            // the reused-output path on the inline engine must not touch the
            // allocator at all.
            let plan =
                alloc_engine.compile_any(poly.any_polynomial(Precision::D2, d, scale, opts.seed));
            let inputs = poly.any_inputs(Precision::D2, d, scale, opts.seed);
            let mut out = plan.request(&inputs).run();
            plan.request(&inputs).into(&mut out).run();
            let steady_allocs = count_allocs(|| {
                for _ in 0..4 {
                    plan.request(&inputs).into(&mut out).run();
                }
            });
            if opts.json {
                json.add_row(vec![
                    ("poly", JsonValue::Text(poly.label().to_string())),
                    ("degree", JsonValue::Integer(d as i64)),
                    ("evals", JsonValue::Integer(cmp.evals as i64)),
                    ("cold_ms", JsonValue::Number(cmp.cold_ms)),
                    ("pooled_ms", JsonValue::Number(cmp.pooled_ms)),
                    ("reused_ms", JsonValue::Number(cmp.reused_ms)),
                    (
                        "reuse_speedup",
                        JsonValue::Number(cmp.pooled_ms / cmp.reused_ms.max(1e-9)),
                    ),
                    ("arena_coeffs", JsonValue::Integer(cmp.arena_coeffs as i64)),
                    (
                        "scratch_lane_coeffs",
                        JsonValue::Integer(cmp.scratch_lane_coeffs as i64),
                    ),
                    ("steady_allocs", JsonValue::Integer(steady_allocs as i64)),
                ]);
            } else {
                t.add_row(vec![
                    poly.label().to_string(),
                    d.to_string(),
                    ms(cmp.cold_ms),
                    ms(cmp.pooled_ms),
                    ms(cmp.reused_ms),
                    format!("{:.2}x", cmp.pooled_ms / cmp.reused_ms.max(1e-9)),
                    cmp.arena_coeffs.to_string(),
                    steady_allocs.to_string(),
                ]);
            }
        }
    }
    if opts.json {
        print!("{json}");
    } else {
        print!("{t}");
        println!(
            "(arena and per-worker scratch live in pooled workspaces; the steady-allocs\n\
             column counts allocator calls over 4 steady-state reused-output calls on a\n\
             zero-worker engine — the committed baseline pins it at exactly 0)"
        );
    }
}

/// The CI perf-regression gate: compares a current JSON report against a
/// committed baseline and exits non-zero on regressions (timings beyond the
/// tolerance, or any deterministic count drift).
fn compare_command(opts: &Options) {
    let baseline_path = opts
        .baseline
        .as_deref()
        .expect("compare needs --baseline <file>");
    let current_path = opts
        .current
        .as_deref()
        .expect("compare needs --current <file>");
    let baseline = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let current = std::fs::read_to_string(current_path)
        .unwrap_or_else(|e| panic!("cannot read current {current_path}: {e}"));
    match psmd_bench::compare_reports(&baseline, &current, opts.tolerance_pct) {
        Ok(summary) => {
            print!(
                "compare {current_path} against {baseline_path} (tolerance {}%):\n{}",
                opts.tolerance_pct,
                summary.render()
            );
            if !summary.is_pass() {
                eprintln!(
                    "perf regression detected; regenerate bench/baselines/ if intentional, \
                     or apply the perf-regression-ok PR label to override the gate"
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("compare failed: {e}");
            std::process::exit(2);
        }
    }
}

/// Prints a report heading: to stdout normally, to stderr in JSON mode
/// (stdout must stay a single valid JSON document for the tee'd CI
/// artifacts).
fn emit_banner(opts: &Options, heading: &str) {
    if opts.json {
        eprint!("{heading}");
    } else {
        print!("{heading}");
    }
}

/// Dependency-driven graph executor vs the layered barrier-per-layer
/// reference on the same schedules.
///
/// Uses a dedicated engine with at least three workers so the rendezvous
/// counts in the report are machine-independent (a zero-worker pool would
/// take the inline fast path and report zero rendezvous).
fn graph_report(opts: &Options) {
    let workers = WorkerPool::default_worker_threads().max(3);
    let engine = Engine::builder().threads(workers).build();
    let (scale, degrees, label): (Scale, Vec<usize>, &str) = if opts.full {
        (Scale::Full, PAPER_DEGREES.to_vec(), "full")
    } else {
        (Scale::Reduced, REDUCED_DEGREES.to_vec(), "reduced")
    };
    emit_banner(
        opts,
        &banner(&format!(
            "Graph executor: dependency-driven work stealing (one rendezvous per \
             evaluation) vs layered barriers ({label} polynomials, double-double, \
             measured CPU, {workers} workers)"
        )),
    );
    let mut t = TextTable::new(vec![
        "poly",
        "degree",
        "layered (ms)",
        "graph (ms)",
        "speedup",
        "barriers",
        "rendezvous",
        "blocks",
        "critical path",
    ]);
    let mut json = JsonReport::new("graph");
    for poly in TestPolynomial::ALL {
        for &d in &degrees {
            // Progress goes to stderr so `--json | tee BENCH_graph.json`
            // stays a single valid JSON document on stdout.
            eprintln!("graph: measuring {} at degree {d}...", poly.label());
            let cmp =
                psmd_bench::graph_comparison(&engine, poly, Precision::D2, d, scale, opts.seed);
            if opts.json {
                json.add_row(vec![
                    ("poly", JsonValue::Text(poly.label().to_string())),
                    ("degree", JsonValue::Integer(d as i64)),
                    ("layered_ms", JsonValue::Number(cmp.layered.wall_ms)),
                    ("graph_ms", JsonValue::Number(cmp.graph.wall_ms)),
                    (
                        "layered_rendezvous",
                        JsonValue::Integer(cmp.layered_rendezvous as i64),
                    ),
                    (
                        "graph_rendezvous",
                        JsonValue::Integer(cmp.graph_rendezvous as i64),
                    ),
                    ("layers", JsonValue::Integer(cmp.layers as i64)),
                    ("blocks", JsonValue::Integer(cmp.blocks as i64)),
                    ("edges", JsonValue::Integer(cmp.edges as i64)),
                    (
                        "critical_path",
                        JsonValue::Integer(cmp.critical_path as i64),
                    ),
                ]);
            } else {
                t.add_row(vec![
                    poly.label().to_string(),
                    d.to_string(),
                    ms(cmp.layered.wall_ms),
                    ms(cmp.graph.wall_ms),
                    format!("{:.2}x", cmp.layered.wall_ms / cmp.graph.wall_ms.max(1e-9)),
                    cmp.layered_rendezvous.to_string(),
                    cmp.graph_rendezvous.to_string(),
                    cmp.blocks.to_string(),
                    cmp.critical_path.to_string(),
                ]);
            }
        }
    }
    if opts.json {
        print!("{json}");
    } else {
        print!("{t}");
        println!(
            "(the layered path pays one pool rendezvous per multi-block layer; the graph\n\
             path releases blocks as their predecessors retire and pays exactly one)"
        );
    }
}

/// Compile-once/evaluate-many amortization of the Engine/Plan API: the
/// one-time schedule compile, the (free) cached recompile, and the repeated
/// per-evaluation cost.
///
/// Uses a dedicated engine with at least three workers so the deterministic
/// rendezvous-per-evaluation column is machine-independent.
fn engine_report(opts: &Options) {
    let workers = WorkerPool::default_worker_threads().max(3);
    let engine = Engine::builder().threads(workers).build();
    let evals = 16usize;
    let (scale, degrees, label): (Scale, Vec<usize>, &str) = if opts.full {
        (Scale::Full, PAPER_DEGREES.to_vec(), "full")
    } else {
        (Scale::Reduced, REDUCED_DEGREES.to_vec(), "reduced")
    };
    emit_banner(
        opts,
        &banner(&format!(
            "Engine amortization: compile once, evaluate many ({evals} evaluations per \
             plan; {label} polynomials, double-double, measured CPU, {workers} workers)"
        )),
    );
    let mut t = TextTable::new(vec![
        "poly",
        "degree",
        "compile (ms)",
        "cached compile (ms)",
        "first eval (ms)",
        "mean eval (ms)",
        "compile/eval",
        "cache hits",
        "rendezvous/eval",
    ]);
    let mut json = JsonReport::new("engine");
    for poly in TestPolynomial::ALL {
        for &d in &degrees {
            eprintln!("engine: measuring {} at degree {d}...", poly.label());
            let rec = psmd_bench::engine_amortization(
                &engine,
                poly,
                Precision::D2,
                d,
                scale,
                evals,
                opts.seed,
            );
            if opts.json {
                json.add_row(vec![
                    ("poly", JsonValue::Text(poly.label().to_string())),
                    ("degree", JsonValue::Integer(d as i64)),
                    ("compile_ms", JsonValue::Number(rec.compile_ms)),
                    (
                        "cached_compile_ms",
                        JsonValue::Number(rec.cached_compile_ms),
                    ),
                    ("cache_hits", JsonValue::Integer(rec.cache_hits as i64)),
                    ("evals", JsonValue::Integer(rec.evals as i64)),
                    ("first_eval_ms", JsonValue::Number(rec.first_eval_ms)),
                    ("mean_eval_ms", JsonValue::Number(rec.mean_eval_ms)),
                    (
                        "rendezvous_per_eval",
                        JsonValue::Integer(rec.rendezvous_per_eval as i64),
                    ),
                ]);
            } else {
                t.add_row(vec![
                    poly.label().to_string(),
                    d.to_string(),
                    ms(rec.compile_ms),
                    ms(rec.cached_compile_ms),
                    ms(rec.first_eval_ms),
                    ms(rec.mean_eval_ms),
                    format!("{:.1}x", rec.compile_ms / rec.mean_eval_ms.max(1e-9)),
                    rec.cache_hits.to_string(),
                    rec.rendezvous_per_eval.to_string(),
                ]);
            }
        }
    }
    if opts.json {
        print!("{json}");
    } else {
        print!("{t}");
        println!(
            "(the schedule is the expensive artifact: compiling it costs a multiple of one\n\
             evaluation, recompiling a structurally identical polynomial is a cache hit)"
        );
    }
}

/// Fused system evaluation (one merged schedule, one launch per shared
/// layer) vs a loop of per-polynomial evaluations.
fn system_report(opts: &Options, engine: &Engine) {
    let equations = opts.equations;
    let (scale, degrees, label): (Scale, Vec<usize>, &str) = if opts.full {
        (Scale::Full, PAPER_DEGREES.to_vec(), "full")
    } else {
        (Scale::Reduced, REDUCED_DEGREES.to_vec(), "reduced")
    };
    emit_banner(
        opts,
        &banner(&format!(
            "System evaluation: {equations} equations fused into one schedule vs a \
             per-polynomial loop ({label} polynomials, double-double, measured CPU)"
        )),
    );
    let mut t = TextTable::new(vec![
        "poly",
        "degree",
        "fused (ms)",
        "looped par (ms)",
        "looped seq (ms)",
        "speedup vs loop",
        "launches",
        "launches (loop)",
    ]);
    let mut json = JsonReport::new("system");
    for poly in TestPolynomial::ALL {
        for &d in &degrees {
            eprintln!("system: measuring {} at degree {d}...", poly.label());
            let cmp = psmd_bench::system_comparison(
                engine,
                poly,
                Precision::D2,
                d,
                scale,
                equations,
                opts.seed,
            );
            if opts.json {
                json.add_row(vec![
                    ("poly", JsonValue::Text(poly.label().to_string())),
                    ("degree", JsonValue::Integer(d as i64)),
                    ("equations", JsonValue::Integer(equations as i64)),
                    ("fused_ms", JsonValue::Number(cmp.fused.wall_ms)),
                    (
                        "looped_parallel_ms",
                        JsonValue::Number(cmp.looped_parallel.wall_ms),
                    ),
                    (
                        "looped_sequential_ms",
                        JsonValue::Number(cmp.looped_sequential.wall_ms),
                    ),
                    (
                        "fused_launches",
                        JsonValue::Integer(cmp.fused_launches as i64),
                    ),
                    (
                        "looped_launches",
                        JsonValue::Integer(cmp.looped_launches as i64),
                    ),
                    (
                        "unique_monomials",
                        JsonValue::Integer(cmp.unique_monomials as i64),
                    ),
                    (
                        "total_monomials",
                        JsonValue::Integer(cmp.total_monomials as i64),
                    ),
                ]);
            } else {
                t.add_row(vec![
                    poly.label().to_string(),
                    d.to_string(),
                    ms(cmp.fused.wall_ms),
                    ms(cmp.looped_parallel.wall_ms),
                    ms(cmp.looped_sequential.wall_ms),
                    format!(
                        "{:.2}x",
                        cmp.looped_parallel.wall_ms / cmp.fused.wall_ms.max(1e-9)
                    ),
                    cmp.fused_launches.to_string(),
                    cmp.looped_launches.to_string(),
                ]);
            }
        }
    }
    if opts.json {
        print!("{json}");
    } else {
        print!("{t}");
        println!(
            "(one pool launch per merged layer carries all {equations} equations; the loop\n\
             column issues one launch per layer per equation)"
        );
    }
}

/// Batched multi-series evaluation vs a loop of per-polynomial launches.
fn batch_report(opts: &Options, engine: &Engine) {
    let batch = opts.batch.unwrap_or(32);
    let (scale, degrees, label): (Scale, Vec<usize>, &str) = if opts.full {
        (Scale::Full, PAPER_DEGREES.to_vec(), "full")
    } else {
        (Scale::Reduced, REDUCED_DEGREES.to_vec(), "reduced")
    };
    emit_banner(
        opts,
        &banner(&format!(
            "Batched evaluation: {batch} instances per launch vs per-polynomial launches \
             ({label} polynomials, double-double, measured CPU)"
        )),
    );
    let mut t = TextTable::new(vec![
        "poly",
        "degree",
        "batched (ms)",
        "looped par (ms)",
        "looped seq (ms)",
        "speedup vs loop",
        "launches",
        "launches (loop)",
    ]);
    let mut json = JsonReport::new("batch");
    for poly in TestPolynomial::ALL {
        for &d in &degrees {
            eprintln!("batch: measuring {} at degree {d}...", poly.label());
            let cmp = psmd_bench::batched_comparison(
                engine,
                poly,
                Precision::D2,
                d,
                scale,
                batch,
                opts.seed,
            );
            if opts.json {
                json.add_row(vec![
                    ("poly", JsonValue::Text(poly.label().to_string())),
                    ("degree", JsonValue::Integer(d as i64)),
                    ("batch", JsonValue::Integer(batch as i64)),
                    ("batched_ms", JsonValue::Number(cmp.batched.wall_ms)),
                    (
                        "looped_parallel_ms",
                        JsonValue::Number(cmp.looped_parallel.wall_ms),
                    ),
                    (
                        "looped_sequential_ms",
                        JsonValue::Number(cmp.looped_sequential.wall_ms),
                    ),
                    (
                        "batched_launches",
                        JsonValue::Integer(cmp.batched_launches as i64),
                    ),
                    (
                        "looped_launches",
                        JsonValue::Integer(cmp.looped_launches as i64),
                    ),
                ]);
            } else {
                t.add_row(vec![
                    poly.label().to_string(),
                    d.to_string(),
                    ms(cmp.batched.wall_ms),
                    ms(cmp.looped_parallel.wall_ms),
                    ms(cmp.looped_sequential.wall_ms),
                    format!(
                        "{:.2}x",
                        cmp.looped_parallel.wall_ms / cmp.batched.wall_ms.max(1e-9)
                    ),
                    cmp.batched_launches.to_string(),
                    cmp.looped_launches.to_string(),
                ]);
            }
        }
    }
    if opts.json {
        print!("{json}");
    } else {
        print!("{t}");
        println!(
            "(one pool launch per layer carries the whole batch: the launch column is the\n\
             layer count of the schedule, independent of the batch size)"
        );
    }
}

/// The SIMD lane-tier report: for each precision of the ladder's working
/// set and each supported lane width, one batch evaluated under
/// `SimdMode::ForceWidth` and under `SimdMode::Scalar` on the same inputs.
/// The per-row `lane_identity` flag is the bitwise-identity invariant as a
/// deterministic exact-gated count (always 1; a 0 is a kernel bug and fails
/// the compare gate before it fails any test suite).  Timings are
/// tolerance-gated; the speedup ratio and the machine-dependent detection
/// row ride along ungated.
fn simd_report(opts: &Options) {
    use psmd_core::SimdMode;
    use psmd_multidouble::lanes::{detect_isa, detected_lane_width};

    let (scale, degree, label): (Scale, usize, &str) = if opts.full {
        (Scale::Full, 15, "full")
    } else {
        (Scale::Reduced, 7, "reduced")
    };
    let poly = TestPolynomial::P1;
    let batch = opts.batch.unwrap_or(16);
    let precisions = [Precision::D2, Precision::D4, Precision::D8];
    emit_banner(
        opts,
        &banner(&format!(
            "SIMD lane tier: forced-width batched evaluation vs scalar batch \
             ({label} {}, degree {degree}, batch {batch}, measured CPU)",
            poly.label()
        )),
    );
    let isa = detect_isa();
    let auto_width = detected_lane_width();
    eprintln!(
        "simd: detected {} (auto lane width {auto_width})",
        isa.name()
    );
    let mut t = TextTable::new(vec![
        "precision",
        "width",
        "scalar (ms)",
        "lanes (ms)",
        "speedup",
        "identical",
    ]);
    let mut json = JsonReport::new("simd");
    // The detection row: machine-dependent, so every field besides the row
    // identity is text (the compare gate skips text fields).
    json.add_row(vec![
        ("precision", JsonValue::Text("detected".to_string())),
        ("isa", JsonValue::Text(isa.name().to_string())),
        ("auto_width", JsonValue::Text(auto_width.to_string())),
    ]);
    for precision in precisions {
        for width in SimdMode::SUPPORTED_WIDTHS {
            eprintln!("simd: measuring {} at width {width}...", precision.label());
            let cmp = psmd_bench::simd_comparison(
                poly, precision, degree, scale, batch, width, opts.seed,
            );
            assert_eq!(
                cmp.reported_width, width,
                "the lane run must report its forced width"
            );
            if opts.json {
                json.add_row(vec![
                    ("precision", JsonValue::Text(precision.label().to_string())),
                    ("width", JsonValue::Integer(width as i64)),
                    ("batch", JsonValue::Integer(batch as i64)),
                    ("degree", JsonValue::Integer(degree as i64)),
                    ("lane_identity", JsonValue::Integer(cmp.identical as i64)),
                    ("scalar_ms", JsonValue::Number(cmp.scalar.wall_ms)),
                    ("lanes_ms", JsonValue::Number(cmp.lanes.wall_ms)),
                    (
                        "lanes_speedup",
                        JsonValue::Number(cmp.scalar.wall_ms / cmp.lanes.wall_ms.max(1e-9)),
                    ),
                ]);
            } else {
                t.add_row(vec![
                    precision.label().to_string(),
                    width.to_string(),
                    ms(cmp.scalar.wall_ms),
                    ms(cmp.lanes.wall_ms),
                    format!("{:.2}x", cmp.scalar.wall_ms / cmp.lanes.wall_ms.max(1e-9)),
                    if cmp.identical { "yes" } else { "NO" }.to_string(),
                ]);
            }
            assert!(
                cmp.identical,
                "{} width {width}: lane tier diverged from the scalar batch path",
                precision.label()
            );
        }
    }
    if opts.json {
        print!("{json}");
    } else {
        print!("{t}");
        println!(
            "(forced widths beyond the hardware's vector units run the portable lane code\n\
             with identical bits; detected here: {} with auto width {auto_width})",
            isa.name()
        );
    }
}

/// Table 1: the five GPUs.
fn table1() {
    print!("{}", banner("Table 1: GPU characteristics"));
    let mut t = TextTable::new(vec![
        "NVIDIA GPU",
        "CUDA",
        "#MP",
        "#cores/MP",
        "#cores",
        "GHz",
        "host CPU",
        "host GHz",
    ]);
    for g in paper_gpus() {
        t.add_row(vec![
            g.name.to_string(),
            format!("{:.1}", g.cuda_capability),
            g.multiprocessors.to_string(),
            g.cores_per_mp.to_string(),
            g.total_cores().to_string(),
            format!("{:.2}", g.ghz),
            g.host_cpu.to_string(),
            format!("{:.2}", g.host_ghz),
        ]);
    }
    print!("{t}");
}

/// Table 2: characteristics of the test polynomials (ours vs the paper).
fn table2(opts: &Options) {
    emit_banner(opts, &banner("Table 2: test polynomials"));
    let mut t = TextTable::new(vec![
        "poly",
        "n",
        "m",
        "N",
        "#cnv (ours)",
        "#cnv (paper)",
        "#add (ours)",
        "#add (paper)",
    ]);
    let mut json = JsonReport::new("table2");
    for poly in TestPolynomial::ALL {
        let p: Polynomial<Md<2>> = poly.build(0, 1);
        let s = Schedule::build(&p);
        if opts.json {
            json.add_row(vec![
                ("poly", JsonValue::Text(poly.label().to_string())),
                ("n", JsonValue::Integer(poly.num_variables() as i64)),
                (
                    "m",
                    JsonValue::Integer(poly.variables_per_monomial() as i64),
                ),
                ("N", JsonValue::Integer(poly.num_monomials() as i64)),
                (
                    "convolutions",
                    JsonValue::Integer(s.convolution_jobs() as i64),
                ),
                (
                    "convolutions_paper",
                    JsonValue::Integer(poly.paper_convolutions() as i64),
                ),
                ("additions", JsonValue::Integer(s.addition_jobs() as i64)),
                (
                    "additions_paper",
                    JsonValue::Integer(poly.paper_additions() as i64),
                ),
            ]);
        } else {
            t.add_row(vec![
                poly.label().to_string(),
                poly.num_variables().to_string(),
                poly.variables_per_monomial().to_string(),
                poly.num_monomials().to_string(),
                s.convolution_jobs().to_string(),
                poly.paper_convolutions().to_string(),
                s.addition_jobs().to_string(),
                poly.paper_additions().to_string(),
            ]);
        }
    }
    if opts.json {
        print!("{json}");
        return;
    }
    print!("{t}");
    println!(
        "note: p3 needs 3 convolutions per 2-variable monomial in our scheme (24,384);\n\
         the paper reports 24,256 (0.5% difference, documented in EXPERIMENTS.md)."
    );
}

/// Table 3: p1 at degree 152 in deca-double precision on the five GPUs.
fn table3(cache: &mut ShapeCache, opts: &Options, engine: &Engine) {
    print!(
        "{}",
        banner("Table 3: p1, degree 152, deca double (modeled per device)")
    );
    let mut t = TextTable::new(vec![
        "time (ms)",
        "C2050",
        "K20C",
        "P100",
        "V100",
        "RTX 2080",
    ]);
    let rows: Vec<TimingRow> = paper_gpus()
        .iter()
        .map(|g| {
            modeled_run(
                cache,
                TestPolynomial::P1,
                g,
                Precision::D10,
                152,
                CostModel::Paper,
            )
        })
        .collect();
    let paper = [
        (
            "convolution",
            vec![12947.26, 11290.22, 1060.03, 634.29, 10002.32],
        ),
        ("addition", vec![10.72, 11.13, 1.37, 0.77, 5.01]),
        ("sum", vec![12957.98, 11301.35, 1061.40, 635.05, 10007.34]),
        ("wall clock", vec![12964.0, 11309.0, 1066.0, 640.0, 10024.0]),
    ];
    let pick = |row: &TimingRow, which: &str| match which {
        "convolution" => row.convolution_ms,
        "addition" => row.addition_ms,
        "sum" => row.sum_ms(),
        _ => row.wall_ms,
    };
    for (which, paper_vals) in &paper {
        let mut cells = vec![format!("{which} (modeled)")];
        cells.extend(rows.iter().map(|r| ms(pick(r, which))));
        t.add_row(cells);
        let mut cells = vec![format!("{which} (paper)")];
        cells.extend(paper_vals.iter().map(|&v| ms(v)));
        t.add_row(cells);
    }
    print!("{t}");
    if opts.measure {
        let (scale, degree, label) = measured_setting(opts, 152);
        let row = measured_run(
            engine,
            TestPolynomial::P1,
            Precision::D10,
            degree,
            scale,
            opts.seed,
        );
        println!(
            "measured CPU ({label}, degree {degree}, deca double): conv {} ms, add {} ms, wall {} ms",
            ms(row.convolution_ms),
            ms(row.addition_ms),
            ms(row.wall_ms)
        );
    }
}

/// Table 4: p2 and p3 at degree 152 in deca-double on P100 and V100.
fn table4(cache: &mut ShapeCache, opts: &Options, engine: &Engine) {
    print!(
        "{}",
        banner("Table 4: p2 and p3, degree 152, deca double (modeled, P100/V100)")
    );
    let p100 = gpu_by_key("p100").unwrap();
    let v100 = gpu_by_key("v100").unwrap();
    let mut t = TextTable::new(vec![
        "time (ms)",
        "p2 P100",
        "p2 V100",
        "p3 P100",
        "p3 V100",
    ]);
    let runs = [
        modeled_run(
            cache,
            TestPolynomial::P2,
            &p100,
            Precision::D10,
            152,
            CostModel::Paper,
        ),
        modeled_run(
            cache,
            TestPolynomial::P2,
            &v100,
            Precision::D10,
            152,
            CostModel::Paper,
        ),
        modeled_run(
            cache,
            TestPolynomial::P3,
            &p100,
            Precision::D10,
            152,
            CostModel::Paper,
        ),
        modeled_run(
            cache,
            TestPolynomial::P3,
            &v100,
            Precision::D10,
            152,
            CostModel::Paper,
        ),
    ];
    let paper = [
        ("convolution", [1700.49, 1115.03, 1566.58, 926.53]),
        ("addition", [1.24, 0.67, 3.43, 1.92]),
        ("sum", [1701.72, 1115.71, 1570.01, 928.45]),
        ("wall clock", [1729.0, 1142.0, 1583.0, 941.0]),
    ];
    let pick = |row: &TimingRow, which: &str| match which {
        "convolution" => row.convolution_ms,
        "addition" => row.addition_ms,
        "sum" => row.sum_ms(),
        _ => row.wall_ms,
    };
    for (which, paper_vals) in &paper {
        let mut cells = vec![format!("{which} (modeled)")];
        cells.extend(runs.iter().map(|r| ms(pick(r, which))));
        t.add_row(cells);
        let mut cells = vec![format!("{which} (paper)")];
        cells.extend(paper_vals.iter().map(|&v| ms(v)));
        t.add_row(cells);
    }
    print!("{t}");
    let wall_ratio_p2 = runs[0].wall_ms / runs[1].wall_ms;
    let wall_ratio_p3 = runs[2].wall_ms / runs[3].wall_ms;
    println!(
        "modeled P100/V100 wall-clock ratios: p2 {:.2} (paper 1.51), p3 {:.2} (paper 1.68)",
        wall_ratio_p2, wall_ratio_p3
    );
    if opts.measure {
        for poly in [TestPolynomial::P2, TestPolynomial::P3] {
            let (scale, degree, label) = measured_setting(opts, 152);
            let row = measured_run(engine, poly, Precision::D10, degree, scale, opts.seed);
            println!(
                "measured CPU {} ({label}, degree {degree}, deca double): conv {} ms, add {} ms, wall {} ms",
                poly.label(),
                ms(row.convolution_ms),
                ms(row.addition_ms),
                ms(row.wall_ms)
            );
        }
    }
}

/// Tables 5, 6, 7: scalability in the degree and the precision.
fn scalability_table(
    cache: &mut ShapeCache,
    poly: TestPolynomial,
    title: &str,
    opts: &Options,
    engine: &Engine,
) {
    print!(
        "{}",
        banner(&format!(
            "{title}: {} times (ms, modeled on the V100) for increasing degree and precision",
            poly.label()
        ))
    );
    let v100 = gpu_by_key("v100").unwrap();
    let mut headers = vec!["precision".to_string(), "metric".to_string()];
    headers.extend(PAPER_DEGREES.iter().map(|d| format!("d={d}")));
    let mut t = TextTable::new(headers);
    for prec in Precision::ALL {
        let dmax = max_degree(&v100, prec);
        let mut conv_cells = vec![prec.label().to_string(), "cnv".to_string()];
        let mut add_cells = vec![prec.label().to_string(), "add".to_string()];
        let mut wall_cells = vec![prec.label().to_string(), "wall".to_string()];
        for &d in &PAPER_DEGREES {
            if d > dmax {
                // The paper leaves these cells empty: the block does not fit
                // in shared memory (e.g. deca double beyond degree 152).
                conv_cells.push("-".to_string());
                add_cells.push("-".to_string());
                wall_cells.push("-".to_string());
                continue;
            }
            let row = modeled_run(cache, poly, &v100, prec, d, CostModel::Paper);
            conv_cells.push(ms(row.convolution_ms));
            add_cells.push(ms(row.addition_ms));
            wall_cells.push(ms(row.wall_ms));
        }
        t.add_row(conv_cells);
        t.add_row(add_cells);
        t.add_row(wall_cells);
    }
    print!("{t}");
    if opts.measure {
        let (scale, _, label) = measured_setting(opts, 0);
        let degrees: Vec<usize> = if opts.full {
            PAPER_DEGREES.to_vec()
        } else {
            REDUCED_DEGREES.to_vec()
        };
        println!(
            "\nmeasured CPU wall clock (ms), {label} variant of {}:",
            poly.label()
        );
        let mut headers = vec!["precision".to_string()];
        headers.extend(degrees.iter().map(|d| format!("d={d}")));
        let mut mt = TextTable::new(headers);
        for prec in Precision::ALL {
            let mut cells = vec![prec.label().to_string()];
            for &d in &degrees {
                if d > max_degree(&v100, prec) {
                    cells.push("-".to_string());
                    continue;
                }
                let row = measured_run(engine, poly, prec, d, scale, opts.seed);
                cells.push(ms(row.wall_ms));
            }
            mt.add_row(cells);
        }
        print!("{mt}");
    }
}

/// Table 8: wall-clock fluctuation over ten runs, fixed seed vs varying seed.
fn table8(opts: &Options, engine: &Engine) {
    print!(
        "{}",
        banner("Table 8: wall clock fluctuation over 10 runs (measured CPU)")
    );
    let (scale, degree, label) = if opts.full {
        (Scale::Full, 152, "full p3")
    } else {
        (Scale::Reduced, 31, "reduced p3")
    };
    let precision = Precision::D10;
    let run_once = |seed: u64| {
        measured_run(engine, TestPolynomial::P3, precision, degree, scale, seed).wall_ms
    };
    let fixed: Vec<f64> = (0..10).map(|_| run_once(1)).collect();
    let varying: Vec<f64> = (0..10).map(|k| run_once(1 + k as u64)).collect();
    let stats = |xs: &[f64]| {
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(0.0f64, f64::max);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        (min, mean, max)
    };
    let mut t = TextTable::new(vec!["runs", "min (ms)", "mean (ms)", "max (ms)"]);
    let (min, mean, max) = stats(&fixed);
    t.add_row(vec![
        "fixed seed one".to_string(),
        ms(min),
        ms(mean),
        ms(max),
    ]);
    let (min, mean, max) = stats(&varying);
    t.add_row(vec![
        "different seeds".to_string(),
        ms(min),
        ms(mean),
        ms(max),
    ]);
    print!("{t}");
    println!(
        "({label}, degree {degree}, deca double; the paper reports a spread of ~5 ms around 943 ms on the V100)"
    );
}

/// Figure 2: addition kernel times of p1 for increasing degrees and all
/// precisions.
fn figure2(cache: &mut ShapeCache, opts: &Options, engine: &Engine) {
    print!(
        "{}",
        banner("Figure 2: addition kernel times for p1 (ms, modeled on the V100)")
    );
    let v100 = gpu_by_key("v100").unwrap();
    let degrees = [0usize, 8, 15, 31, 63, 95, 127, 152];
    let mut headers = vec!["precision".to_string()];
    headers.extend(degrees.iter().map(|d| format!("d={d}")));
    let mut t = TextTable::new(headers);
    for prec in Precision::ALL {
        let mut cells = vec![prec.label().to_string()];
        for &d in &degrees {
            if d > max_degree(&v100, prec) {
                cells.push("-".to_string());
                continue;
            }
            let row = modeled_run(cache, TestPolynomial::P1, &v100, prec, d, CostModel::Paper);
            cells.push(format!("{:.3}", row.addition_ms));
        }
        t.add_row(cells);
    }
    print!("{t}");
    if opts.measure {
        let (scale, _, label) = measured_setting(opts, 0);
        println!("\nmeasured CPU addition kernel times (ms), {label} p1:");
        let mut headers = vec!["precision".to_string()];
        headers.extend(REDUCED_DEGREES.iter().map(|d| format!("d={d}")));
        let mut mt = TextTable::new(headers);
        for prec in Precision::ALL {
            let mut cells = vec![prec.label().to_string()];
            for &d in &REDUCED_DEGREES {
                let row = measured_run(engine, TestPolynomial::P1, prec, d, scale, opts.seed);
                cells.push(format!("{:.3}", row.addition_ms));
            }
            mt.add_row(cells);
        }
        print!("{mt}");
    }
}

/// Figure 3: addition kernel times of p1, p2, p3 at degree 152 across the
/// precisions.
fn figure3(cache: &mut ShapeCache) {
    print!(
        "{}",
        banner("Figure 3: addition kernel times at degree 152 (ms, modeled on the V100)")
    );
    let v100 = gpu_by_key("v100").unwrap();
    let mut headers = vec!["poly".to_string()];
    headers.extend(Precision::ALL.iter().map(|p| p.label().to_string()));
    let mut t = TextTable::new(headers);
    for poly in TestPolynomial::ALL {
        let mut cells = vec![poly.label().to_string()];
        for prec in Precision::ALL {
            let row = modeled_run(cache, poly, &v100, prec, 152, CostModel::Paper);
            cells.push(format!("{:.3}", row.addition_ms));
        }
        t.add_row(cells);
    }
    print!("{t}");
    println!(
        "(p3 has 64x more monomials than p2 but its addition time stays within ~3x, as in the paper)"
    );
}

/// Figure 4: percentage of the wall clock spent inside kernels.
fn figure4(cache: &mut ShapeCache) {
    print!(
        "{}",
        banner(
            "Figure 4: kernel time as a percentage of the wall clock, degree 152 (modeled, V100)"
        )
    );
    let v100 = gpu_by_key("v100").unwrap();
    let mut headers = vec!["poly".to_string()];
    headers.extend(Precision::ALL.iter().map(|p| p.label().to_string()));
    let mut t = TextTable::new(headers);
    for poly in TestPolynomial::ALL {
        let mut cells = vec![poly.label().to_string()];
        for prec in Precision::ALL {
            let row = modeled_run(cache, poly, &v100, prec, 152, CostModel::Paper);
            cells.push(pct(row.kernel_percentage()));
        }
        t.add_row(cells);
    }
    print!("{t}");
    println!("(low percentages in double precision, above 95% for octo and deca double, as in the paper)");
}

/// Figure 5: log2 of the wall clock for p1, p2, p3 at degree 191 in 1d, 2d,
/// 4d, 8d precision.
fn figure5(cache: &mut ShapeCache) {
    print!(
        "{}",
        banner("Figure 5: log2 wall clock (ms) at degree 191 (modeled, V100)")
    );
    let v100 = gpu_by_key("v100").unwrap();
    let precisions = [Precision::D1, Precision::D2, Precision::D4, Precision::D8];
    let mut headers = vec!["poly".to_string()];
    headers.extend(precisions.iter().map(|p| p.label().to_string()));
    let mut t = TextTable::new(headers);
    for poly in TestPolynomial::ALL {
        let mut cells = vec![poly.label().to_string()];
        for prec in precisions {
            let row = modeled_run(cache, poly, &v100, prec, 191, CostModel::Paper);
            cells.push(log2(row.wall_ms));
        }
        t.add_row(cells);
    }
    print!("{t}");
}

/// Figure 6: log2 of the wall clock for p1 in 4d, 5d, 8d, 10d precision at
/// degrees 31, 63 and 127.
fn figure6(cache: &mut ShapeCache) {
    print!(
        "{}",
        banner("Figure 6: log2 wall clock (ms) for p1 (modeled, V100)")
    );
    let v100 = gpu_by_key("v100").unwrap();
    let precisions = [Precision::D4, Precision::D5, Precision::D8, Precision::D10];
    let degrees = [31usize, 63, 127];
    let mut headers = vec!["precision".to_string()];
    headers.extend(degrees.iter().map(|d| format!("d={d}")));
    let mut t = TextTable::new(headers);
    for prec in precisions {
        let mut cells = vec![prec.label().to_string()];
        for &d in &degrees {
            let row = modeled_run(cache, TestPolynomial::P1, &v100, prec, d, CostModel::Paper);
            cells.push(log2(row.wall_ms));
        }
        t.add_row(cells);
    }
    print!("{t}");
    println!("(doubling the number of coefficients adds about one to the log2 time, as in Figure 6 of the paper)");
}

/// The TFLOPS computation of Section 6.2.
fn tflops(cache: &mut ShapeCache) {
    print!(
        "{}",
        banner("Section 6.2: throughput of p1, degree 152, deca double")
    );
    let total = modeled_double_ops(
        cache,
        TestPolynomial::P1,
        Precision::D10,
        152,
        CostModel::Paper,
    );
    println!("total double operations (paper cost model): {total:.0} (paper: 1,336,226,651,784)");
    for key in ["p100", "v100"] {
        let gpu = gpu_by_key(key).unwrap();
        let row = modeled_run(
            cache,
            TestPolynomial::P1,
            &gpu,
            Precision::D10,
            152,
            CostModel::Paper,
        );
        let tf = total / (row.wall_ms * 1e-3) / 1e12;
        println!(
            "{:>8}: modeled wall clock {} ms -> {:.2} TFLOPS (paper: 1.25 TFLOPS on the P100)",
            gpu.name,
            ms(row.wall_ms),
            tf
        );
    }
}

/// Picks the scale and degree of measured runs from the options.
fn measured_setting(opts: &Options, full_degree: usize) -> (Scale, usize, &'static str) {
    if opts.full {
        (Scale::Full, full_degree, "full")
    } else {
        (Scale::Reduced, 31, "reduced")
    }
}
