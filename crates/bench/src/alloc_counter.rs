//! A per-thread counting allocator for allocation-regression gates.
//!
//! [`CountingAllocator`] defers all real work to the system allocator and,
//! while a [`measure_allocs`] call is in flight, counts the **measuring
//! thread's** allocator traffic into const-initialized thread-local cells
//! (which never allocate themselves).  Per-thread counting is the right
//! discipline for the zero-allocation gates: the zero-worker engines under
//! test run every kernel inline on the measuring thread, and unrelated
//! process threads — parked pool workers, the libtest harness waking
//! periodically — must not pollute the count.
//!
//! The type cannot register itself: each gating binary declares its own
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOCATOR: psmd_bench::CountingAllocator = psmd_bench::CountingAllocator;
//! ```
//!
//! and then calls [`measure_allocs`]; without that registration the
//! returned counts are all zero.  Used by `table_harness workspace` (the
//! CI `steady_allocs` gate) and `tests/workspace_alloc.rs` (the
//! counting-allocator test of the release matrix).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The counting [`GlobalAlloc`] — see the [module documentation](self).
pub struct CountingAllocator;

/// Number of [`measure_allocs`] calls currently in flight (a nesting count,
/// not a flag: one thread finishing its measurement must not disable
/// counting for a measurement still running on another thread — that would
/// silently turn an allocation gate into a no-op).
static MEASURING: AtomicUsize = AtomicUsize::new(0);

fn counting() -> bool {
    MEASURING.load(Ordering::Relaxed) > 0
}

thread_local! {
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static TL_DEALLOCS: Cell<u64> = const { Cell::new(0) };
    static TL_BYTES: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting() {
            let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
            let _ = TL_BYTES.try_with(|c| c.set(c.get() + layout.size() as u64));
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if counting() {
            let _ = TL_DEALLOCS.try_with(|c| c.set(c.get() + 1));
        }
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting() {
            let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
            let _ = TL_BYTES.try_with(|c| c.set(c.get() + new_size as u64));
        }
        System.realloc(ptr, layout, new_size)
    }
}

/// The measuring thread's allocator traffic during one [`measure_allocs`]
/// call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocCounts {
    /// `alloc` + `realloc` calls.
    pub allocs: u64,
    /// `dealloc` calls.
    pub deallocs: u64,
    /// Bytes requested across all counted allocations.
    pub bytes: u64,
}

/// Runs `f` with counting enabled and returns what the calling thread
/// allocated during the call (all zero unless the process registered
/// [`CountingAllocator`] as its `#[global_allocator]`).
pub fn measure_allocs(f: impl FnOnce()) -> AllocCounts {
    TL_ALLOCS.with(|c| c.set(0));
    TL_DEALLOCS.with(|c| c.set(0));
    TL_BYTES.with(|c| c.set(0));
    MEASURING.fetch_add(1, Ordering::SeqCst);
    f();
    MEASURING.fetch_sub(1, Ordering::SeqCst);
    AllocCounts {
        allocs: TL_ALLOCS.with(Cell::get),
        deallocs: TL_DEALLOCS.with(Cell::get),
        bytes: TL_BYTES.with(Cell::get),
    }
}
