//! Sweep drivers: measured CPU runs and modeled GPU runs for the paper's
//! tables and figures.
//!
//! A *measured* run compiles the polynomial into an engine
//! [`AnyPlan`](psmd_core::AnyPlan) and
//! executes it on the engine's worker pool, reporting the same four times
//! the paper reports (convolution kernels, addition kernels, their sum, wall
//! clock).  A *modeled* run feeds the launch structure of the schedule into
//! the analytic device model of `psmd-device` and reports the predicted
//! times for one of the paper's five GPUs.
//!
//! Every measured driver is **value-level**: the precision is a runtime
//! [`Precision`] argument dispatched through the engine's precision-erased
//! plans, not a monomorphization macro at each call site.

pub use crate::polynomials::Scale;
use crate::polynomials::TestPolynomial;
use psmd_core::{workload_shape, Engine, ExecMode, Polynomial, Schedule};
use psmd_device::{model_evaluation, GpuSpec, WorkloadShape};
use psmd_multidouble::{CostModel, Md, Precision};
use psmd_runtime::KernelTimings;
use std::collections::HashMap;
use std::time::Instant;

/// One row of a timing table: the four times the paper reports, in
/// milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimingRow {
    /// Sum of all convolution kernel times.
    pub convolution_ms: f64,
    /// Sum of all addition kernel times.
    pub addition_ms: f64,
    /// Wall clock of the whole evaluation.
    pub wall_ms: f64,
}

impl TimingRow {
    /// Sum of convolution and addition kernel times.
    pub fn sum_ms(&self) -> f64 {
        self.convolution_ms + self.addition_ms
    }

    /// Percentage of the wall clock spent inside kernels (Figure 4).
    pub fn kernel_percentage(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            100.0 * self.sum_ms() / self.wall_ms
        }
    }
}

impl From<&KernelTimings> for TimingRow {
    fn from(t: &KernelTimings) -> Self {
        TimingRow {
            convolution_ms: t.convolution_ms(),
            addition_ms: t.addition_ms(),
            wall_ms: t.wall_clock_ms(),
        }
    }
}

/// Caches the launch structures of the full-scale test polynomials so that
/// modeled sweeps over many degrees and precisions stay cheap (the structure
/// does not depend on the degree or the precision).
#[derive(Default)]
pub struct ShapeCache {
    shapes: HashMap<&'static str, WorkloadShape>,
}

impl ShapeCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The launch structure of a test polynomial at full paper scale, with
    /// the degree field set to `degree`.
    pub fn shape(&mut self, poly: TestPolynomial, degree: usize) -> WorkloadShape {
        let entry = self.shapes.entry(poly.label()).or_insert_with(|| {
            // The structure is independent of the coefficient values and of
            // the truncation degree, so build it once at degree 0 in
            // double-double.
            let p: Polynomial<Md<2>> = poly.build(0, 1);
            let schedule = Schedule::build(&p);
            workload_shape(&schedule)
        });
        let mut shape = entry.clone();
        shape.degree = degree;
        shape
    }
}

/// Models one run of a test polynomial on a GPU.
pub fn modeled_run(
    cache: &mut ShapeCache,
    poly: TestPolynomial,
    gpu: &GpuSpec,
    precision: Precision,
    degree: usize,
    cost: CostModel,
) -> TimingRow {
    let shape = cache.shape(poly, degree);
    let m = model_evaluation(gpu, &shape, precision, cost);
    TimingRow {
        convolution_ms: m.convolution_ms,
        addition_ms: m.addition_ms,
        wall_ms: m.wall_clock_ms,
    }
}

/// Total double operations of one run (for throughput reporting).
pub fn modeled_double_ops(
    cache: &mut ShapeCache,
    poly: TestPolynomial,
    precision: Precision,
    degree: usize,
    cost: CostModel,
) -> f64 {
    cache.shape(poly, degree).total_double_ops(precision, cost)
}

/// Measures one run of a test polynomial on the engine at the given
/// precision: one `compile_any` (free after the first call thanks to the
/// plan cache), one evaluation on the engine's pool.
pub fn measured_run(
    engine: &Engine,
    poly: TestPolynomial,
    precision: Precision,
    degree: usize,
    scale: Scale,
    seed: u64,
) -> TimingRow {
    let plan = engine.compile_any(poly.any_polynomial(precision, degree, scale, seed));
    let inputs = poly.any_inputs(precision, degree, scale, seed);
    TimingRow::from(plan.request(&inputs).run().timings())
}

/// One measured comparison of the batched engine against per-polynomial
/// launches on the same batch of inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchComparison {
    /// Number of instances in the batch.
    pub batch: usize,
    /// One pool launch per layer for the whole batch (`Inputs::Batch`).
    pub batched: TimingRow,
    /// A loop of per-instance pool evaluations (the pre-batching behavior).
    pub looped_parallel: TimingRow,
    /// A loop of single-thread evaluations (the lower bound on overhead).
    pub looped_sequential: TimingRow,
    /// Kernel launches issued by the batched run (= layers of the schedule).
    pub batched_launches: usize,
    /// Kernel launches issued by the per-instance loop (= batch × layers).
    pub looped_launches: usize,
}

/// Measures batched evaluation against per-instance evaluation of one
/// engine plan at the given precision.
pub fn batched_comparison(
    engine: &Engine,
    poly: TestPolynomial,
    precision: Precision,
    degree: usize,
    scale: Scale,
    batch: usize,
    seed: u64,
) -> BatchComparison {
    let plan = engine.compile_any(poly.any_polynomial(precision, degree, scale, seed));
    let seeds: Vec<u64> = (0..batch).map(|i| seed.wrapping_add(i as u64)).collect();
    let batch_inputs = poly.any_batch_inputs(precision, degree, scale, &seeds);
    let batched_eval = plan.request(&batch_inputs).run();
    let batched = TimingRow::from(batched_eval.timings());
    let batched_launches =
        batched_eval.timings().convolution_launches + batched_eval.timings().addition_launches;
    let per_instance: Vec<_> = seeds
        .iter()
        .map(|&s| poly.any_inputs(precision, degree, scale, s))
        .collect();
    let mut looped = KernelTimings::new();
    for z in &per_instance {
        looped.merge(plan.request(z).run().timings());
    }
    let looped_launches = looped.convolution_launches + looped.addition_launches;
    let looped_parallel = TimingRow::from(&looped);
    let mut sequential = KernelTimings::new();
    for z in &per_instance {
        sequential.merge(plan.request(z).sequential().run().timings());
    }
    let looped_sequential = TimingRow::from(&sequential);
    BatchComparison {
        batch,
        batched,
        looped_parallel,
        looped_sequential,
        batched_launches,
        looped_launches,
    }
}

/// One measured comparison of the SIMD lane tier against the scalar batch
/// path at one forced lane width, on the same batch of inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimdComparison {
    /// The forced lane width of the lane run.
    pub width: usize,
    /// Number of instances in the batch.
    pub batch: usize,
    /// The scalar batch run ([`psmd_core::SimdMode::Scalar`]).
    pub scalar: TimingRow,
    /// The lane-group run ([`psmd_core::SimdMode::ForceWidth`]).
    pub lanes: TimingRow,
    /// Whether the two batched outputs are bitwise identical (the lane
    /// tier's hard invariant; anything but `true` is a kernel bug).
    pub identical: bool,
    /// The lane width the lane run's timings reported.
    pub reported_width: usize,
}

/// Measures the forced-width lane tier against the scalar batch path at one
/// precision, asserting nothing — the caller gates on
/// [`SimdComparison::identical`].
pub fn simd_comparison(
    poly: TestPolynomial,
    precision: Precision,
    degree: usize,
    scale: Scale,
    batch: usize,
    width: usize,
    seed: u64,
) -> SimdComparison {
    use psmd_core::{EvalOptions, SimdMode};
    let seeds: Vec<u64> = (0..batch).map(|i| seed.wrapping_add(i as u64)).collect();
    let batch_inputs = poly.any_batch_inputs(precision, degree, scale, &seeds);
    let engine_with = |simd: SimdMode| {
        Engine::builder()
            .options(EvalOptions::new().with_simd(simd))
            .build()
    };
    let scalar_engine = engine_with(SimdMode::Scalar);
    let scalar_plan =
        scalar_engine.compile_any(poly.any_polynomial(precision, degree, scale, seed));
    let scalar_eval = scalar_plan.request(&batch_inputs).run();
    let scalar = TimingRow::from(scalar_eval.timings());
    let lane_engine = engine_with(SimdMode::ForceWidth(width));
    let lane_plan = lane_engine.compile_any(poly.any_polynomial(precision, degree, scale, seed));
    let lane_eval = lane_plan.request(&batch_inputs).run();
    SimdComparison {
        width,
        batch,
        scalar,
        lanes: TimingRow::from(lane_eval.timings()),
        identical: scalar_eval.bitwise_eq(&lane_eval),
        reported_width: lane_eval.timings().simd_width,
    }
}

/// One measured comparison of the dependency-driven graph executor against
/// the layered (barrier-per-layer) reference on the same schedule and
/// inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphComparison {
    /// The layered reference run (one pool launch per job layer).
    pub layered: TimingRow,
    /// The graph-mode run (one task-graph launch for the whole evaluation).
    pub graph: TimingRow,
    /// Pool rendezvous paid by the layered run (single-block layers run
    /// inline and pay none).
    pub layered_rendezvous: usize,
    /// Pool rendezvous paid by the graph run (always 1 on a threaded pool).
    pub graph_rendezvous: usize,
    /// Job layers of the schedule (the barrier count of the paper's model).
    pub layers: usize,
    /// Total blocks (convolution plus addition jobs).
    pub blocks: usize,
    /// Dependency edges of the graph plan.
    pub edges: usize,
    /// Longest dependency chain of the graph plan, in blocks.
    pub critical_path: usize,
}

/// Measures graph-mode against layered execution at the given precision by
/// compiling the same source twice with per-plan option overrides.  Both
/// plans share the engine's pool and inputs; results are bitwise identical
/// by construction (and asserted here), so the comparison is purely about
/// launch overhead.  The rendezvous counts come straight from the new
/// `pool_rendezvous` timing field.
pub fn graph_comparison(
    engine: &Engine,
    poly: TestPolynomial,
    precision: Precision,
    degree: usize,
    scale: Scale,
    seed: u64,
) -> GraphComparison {
    let source = poly.any_polynomial(precision, degree, scale, seed);
    let layered = engine.compile_any_with_options(
        source.clone(),
        engine.options().with_exec_mode(ExecMode::Layered),
    );
    let graph =
        engine.compile_any_with_options(source, engine.options().with_exec_mode(ExecMode::Graph));
    let z = poly.any_inputs(precision, degree, scale, seed);
    // Warmup run per mode (builds the graph plan, wakes the pool) doubling
    // as the rendezvous measurement and the bitwise-identity check.
    let layered_eval = layered.request(&z).run();
    let graph_eval = graph.request(&z).run();
    assert!(
        layered_eval.bitwise_eq(&graph_eval),
        "graph mode must be bitwise identical to layered mode"
    );
    let layered_rendezvous = layered_eval.timings().pool_rendezvous;
    let graph_rendezvous = graph_eval.timings().pool_rendezvous;
    // Best-of-3 timed runs per mode: single evaluations are noisy and the
    // CI perf gate compares these numbers against committed baselines.
    let mut layered_t = *layered_eval.timings();
    let mut graph_t = *graph_eval.timings();
    for _ in 0..3 {
        let t = *layered.request(&z).run().timings();
        if t.wall_clock < layered_t.wall_clock {
            layered_t = t;
        }
        let t = *graph.request(&z).run().timings();
        if t.wall_clock < graph_t.wall_clock {
            graph_t = t;
        }
    }
    let stats = graph.stats();
    let graph_stats = graph.graph_stats();
    GraphComparison {
        layered: TimingRow::from(&layered_t),
        graph: TimingRow::from(&graph_t),
        layered_rendezvous,
        graph_rendezvous,
        layers: stats.convolution_layers + stats.addition_layers,
        blocks: graph_stats.blocks,
        edges: graph_stats.edges,
        critical_path: graph_stats.critical_path,
    }
}

/// One measured comparison of the fused system evaluator against a loop of
/// per-polynomial evaluations of the same system at the same inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemComparison {
    /// Number of equations in the system.
    pub equations: usize,
    /// One merged schedule, one pool launch per shared layer for the whole
    /// system (`PolySource::System`).
    pub fused: TimingRow,
    /// A loop of per-polynomial pool launches (the pre-system behavior).
    pub looped_parallel: TimingRow,
    /// A loop of single-thread per-polynomial evaluations (the lower bound
    /// on launch overhead).
    pub looped_sequential: TimingRow,
    /// Kernel launches issued by the fused run (= merged layer count).
    pub fused_launches: usize,
    /// Kernel launches issued by the per-polynomial loop (≈ equations ×
    /// per-equation layers).
    pub looped_launches: usize,
    /// Unique monomials after merging the equations' monomial sets.
    pub unique_monomials: usize,
    /// Total monomial instances across all equations.
    pub total_monomials: usize,
}

/// Measures the fused system plan against per-equation plans at the given
/// precision.
pub fn system_comparison(
    engine: &Engine,
    poly: TestPolynomial,
    precision: Precision,
    degree: usize,
    scale: Scale,
    equations: usize,
    seed: u64,
) -> SystemComparison {
    let fused_plan = engine.compile_any(poly.any_system(precision, equations, degree, scale, seed));
    let inputs = poly.any_inputs(precision, degree, scale, seed);
    let fused_eval = fused_plan.request(&inputs).run();
    let fused = TimingRow::from(fused_eval.timings());
    let fused_launches =
        fused_eval.timings().convolution_launches + fused_eval.timings().addition_launches;
    let mut looped = KernelTimings::new();
    let mut sequential = KernelTimings::new();
    for source in poly.any_system_equations(precision, equations, degree, scale, seed) {
        let plan = engine.compile_any(source);
        looped.merge(plan.request(&inputs).run().timings());
        sequential.merge(plan.request(&inputs).sequential().run().timings());
    }
    let looped_launches = looped.convolution_launches + looped.addition_launches;
    // Read the monomial counts off the merged schedule directly: stats()
    // would also build the (unused here) dependency-graph plan.
    let schedule = fused_plan.system_schedule().expect("system plan");
    SystemComparison {
        equations,
        fused,
        looped_parallel: TimingRow::from(&looped),
        looped_sequential: TimingRow::from(&sequential),
        fused_launches,
        looped_launches,
        unique_monomials: schedule.unique_monomials(),
        total_monomials: schedule.total_monomials(),
    }
}

/// One measured compile-once/evaluate-many amortization record of the
/// engine: how much the one-time compile costs, that the second compile is a
/// cache hit, and how cheap the repeated evaluations are.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineAmortization {
    /// Wall time of the first compile (schedule construction, a cache miss).
    pub compile_ms: f64,
    /// Wall time of the second compile of the same source (a cache hit).
    pub cached_compile_ms: f64,
    /// Plan-cache hits gained by the second compile (deterministically 1).
    pub cache_hits: usize,
    /// Number of timed evaluations.
    pub evals: usize,
    /// Wall time of the first evaluation.
    pub first_eval_ms: f64,
    /// Mean wall time over all `evals` evaluations.
    pub mean_eval_ms: f64,
    /// Pool rendezvous per evaluation (deterministic: the multi-block layer
    /// count in layered mode, 1 in graph mode, on a pool with workers).
    pub rendezvous_per_eval: usize,
}

/// Measures the engine's compile-once/evaluate-many amortization at the
/// given precision: one cold compile, one (cache-hitting) warm compile, then
/// `evals` evaluations of the shared plan.
pub fn engine_amortization(
    engine: &Engine,
    poly: TestPolynomial,
    precision: Precision,
    degree: usize,
    scale: Scale,
    evals: usize,
    seed: u64,
) -> EngineAmortization {
    assert!(evals > 0, "need at least one evaluation");
    let hits_before = engine.cache_stats().hits;
    let start = Instant::now();
    let plan = engine.compile_any(poly.any_polynomial(precision, degree, scale, seed));
    let compile_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let again = engine.compile_any(poly.any_polynomial(precision, degree, scale, seed));
    let cached_compile_ms = start.elapsed().as_secs_f64() * 1e3;
    let cache_hits = (engine.cache_stats().hits - hits_before) as usize;
    drop(again);
    let inputs = poly.any_inputs(precision, degree, scale, seed);
    let mut first_eval_ms = 0.0;
    let mut total_ms = 0.0;
    let mut rendezvous_per_eval = 0;
    for i in 0..evals {
        let out = plan.request(&inputs).run();
        let wall = out.timings().wall_clock_ms();
        if i == 0 {
            first_eval_ms = wall;
            rendezvous_per_eval = out.timings().pool_rendezvous;
        }
        total_ms += wall;
    }
    EngineAmortization {
        compile_ms,
        cached_compile_ms,
        cache_hits,
        evals,
        first_eval_ms,
        mean_eval_ms: total_ms / evals as f64,
        rendezvous_per_eval,
    }
}

/// One measured record of workspace reuse: the cold first evaluation (pool
/// empty, graph plan unbuilt), steady-state pooled evaluation (pooled
/// arena/scratch, fresh outputs) and the steady-state reused-output path
/// (everything reused — the zero-allocation path), plus the deterministic
/// buffer sizes the workspace holds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkspaceComparison {
    /// Number of steady-state evaluations timed per mode.
    pub evals: usize,
    /// Wall time of the first evaluation through a fresh plan (workspace
    /// warm-up, graph-plan construction).
    pub cold_ms: f64,
    /// Mean steady-state wall time of pooled evaluation (pooled workspace,
    /// freshly allocated outputs).
    pub pooled_ms: f64,
    /// Mean steady-state wall time of the reused-output path (pooled
    /// workspace, reused outputs — zero heap allocations).
    pub reused_ms: f64,
    /// Arena size of one evaluation, in coefficients (deterministic:
    /// schedule layout × degree).
    pub arena_coeffs: usize,
    /// Per-worker convolution-scratch size, in coefficients (deterministic).
    pub scratch_lane_coeffs: usize,
}

/// Measures workspace reuse on one engine plan at the given precision.
pub fn workspace_comparison(
    engine: &Engine,
    poly: TestPolynomial,
    precision: Precision,
    degree: usize,
    scale: Scale,
    evals: usize,
    seed: u64,
) -> WorkspaceComparison {
    assert!(evals > 0, "need at least one evaluation");
    let plan = engine.compile_any(poly.any_polynomial(precision, degree, scale, seed));
    let inputs = poly.any_inputs(precision, degree, scale, seed);
    let start = Instant::now();
    let mut out = plan.request(&inputs).run();
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    for _ in 0..evals {
        let _ = plan.request(&inputs).run();
    }
    let pooled_ms = start.elapsed().as_secs_f64() * 1e3 / evals as f64;
    // Warm the reused output, then time the zero-allocation path.
    plan.request(&inputs).into(&mut out).run();
    let start = Instant::now();
    for _ in 0..evals {
        plan.request(&inputs).into(&mut out).run();
    }
    let reused_ms = start.elapsed().as_secs_f64() * 1e3 / evals as f64;
    let arena_coeffs = plan
        .schedule()
        .expect("single-polynomial plan")
        .layout
        .total_coefficients();
    WorkspaceComparison {
        evals,
        cold_ms,
        pooled_ms,
        reused_ms,
        arena_coeffs,
        scratch_lane_coeffs: psmd_core::workspace::conv_scratch_coeffs(degree + 1),
    }
}

/// Double operations of a measured run's schedule (reduced or full scale),
/// for achieved-GFLOPS reporting.
pub fn measured_double_ops(
    poly: TestPolynomial,
    precision: Precision,
    degree: usize,
    scale: Scale,
    cost: CostModel,
) -> f64 {
    let p: Polynomial<Md<2>> = match scale {
        Scale::Reduced => poly.build_reduced(degree, 1),
        Scale::Full => poly.build(0, 1),
    };
    let schedule = Schedule::build(&p);
    let mut shape = workload_shape(&schedule);
    shape.degree = degree;
    shape.total_double_ops(precision, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psmd_device::gpu_by_key;

    fn test_engine(threads: usize) -> Engine {
        Engine::builder().threads(threads).build()
    }

    #[test]
    fn shape_cache_reuses_structures_across_degrees() {
        let mut cache = ShapeCache::new();
        let a = cache.shape(TestPolynomial::P1, 8);
        let b = cache.shape(TestPolynomial::P1, 152);
        assert_eq!(a.convolution_layers, b.convolution_layers);
        assert_eq!(a.degree, 8);
        assert_eq!(b.degree, 152);
        assert_eq!(b.convolution_jobs(), 16_380);
    }

    #[test]
    fn modeled_run_reproduces_table_3_for_v100() {
        let mut cache = ShapeCache::new();
        let v100 = gpu_by_key("v100").unwrap();
        let row = modeled_run(
            &mut cache,
            TestPolynomial::P1,
            &v100,
            Precision::D10,
            152,
            CostModel::Paper,
        );
        // Paper: 634.29 ms convolutions, 640 ms wall clock.
        assert!((row.convolution_ms - 634.29).abs() / 634.29 < 0.15);
        assert!((row.wall_ms - 640.0).abs() / 640.0 < 0.15);
        assert!(row.addition_ms < row.convolution_ms / 100.0);
    }

    #[test]
    fn measured_reduced_run_is_consistent() {
        let engine = test_engine(2);
        let row = measured_run(
            &engine,
            TestPolynomial::P1,
            Precision::D2,
            8,
            Scale::Reduced,
            42,
        );
        assert!(row.wall_ms > 0.0);
        assert!(row.sum_ms() <= row.wall_ms * 1.5);
        assert!(row.convolution_ms > 0.0);
    }

    #[test]
    fn graph_comparison_pays_one_rendezvous_and_matches_bitwise() {
        let engine = test_engine(3);
        let cmp = graph_comparison(
            &engine,
            TestPolynomial::P1,
            Precision::D2,
            8,
            Scale::Reduced,
            5,
        );
        // The whole evaluation is one pool rendezvous in graph mode; the
        // layered path pays one per multi-block layer.
        assert_eq!(cmp.graph_rendezvous, 1);
        assert!(cmp.layered_rendezvous > 1);
        assert!(cmp.layered_rendezvous <= cmp.layers);
        assert!(cmp.blocks > 0);
        assert!(cmp.edges > 0);
        // A dependency chain visits at most one block per layer, and the
        // deepest chain spans several layers.
        assert!(cmp.critical_path > 1);
        assert!(cmp.critical_path <= cmp.layers);
        assert!(cmp.graph.wall_ms > 0.0);
        assert!(cmp.layered.wall_ms > 0.0);
    }

    #[test]
    fn system_comparison_counts_launches_and_monomials() {
        let engine = test_engine(2);
        let equations = 3;
        let cmp = system_comparison(
            &engine,
            TestPolynomial::P1,
            Precision::D2,
            4,
            Scale::Reduced,
            equations,
            7,
        );
        assert_eq!(cmp.equations, equations);
        assert!(cmp.fused.wall_ms > 0.0);
        assert!(cmp.looped_parallel.wall_ms > 0.0);
        // The per-polynomial loop issues `equations` times the launches of
        // the fused run (same structure in every equation).
        assert_eq!(cmp.looped_launches, equations * cmp.fused_launches);
        // Independent random coefficients: nothing dedups, every instance is
        // unique.
        assert_eq!(cmp.total_monomials, equations * 210); // C(10,4) per equation
        assert_eq!(cmp.unique_monomials, cmp.total_monomials);
    }

    #[test]
    fn engine_amortization_hits_the_cache_and_repeats_cheaply() {
        let engine = test_engine(2);
        let record = engine_amortization(
            &engine,
            TestPolynomial::P1,
            Precision::D2,
            8,
            Scale::Reduced,
            4,
            3,
        );
        assert_eq!(record.cache_hits, 1);
        assert_eq!(record.evals, 4);
        assert!(record.compile_ms > 0.0);
        // The warm compile skips schedule construction; its absolute cost is
        // noisy (polynomial reconstruction + hashing), so only positivity is
        // asserted here — the cache hit itself is the deterministic signal.
        assert!(record.cached_compile_ms > 0.0);
        assert!(record.mean_eval_ms > 0.0);
        assert!(record.rendezvous_per_eval >= 1);
    }

    #[test]
    fn workspace_comparison_reports_deterministic_sizes() {
        let engine = test_engine(2);
        let cmp = workspace_comparison(
            &engine,
            TestPolynomial::P1,
            Precision::D2,
            8,
            Scale::Reduced,
            4,
            3,
        );
        assert_eq!(cmp.evals, 4);
        assert!(cmp.cold_ms > 0.0);
        assert!(cmp.pooled_ms > 0.0);
        assert!(cmp.reused_ms > 0.0);
        // The arena of the reduced p1 at degree 8: slots × (d + 1).
        assert_eq!(cmp.arena_coeffs % 9, 0);
        assert!(cmp.arena_coeffs > 0);
        // Two staging slots plus the 4(d+1) kernel scratch.
        assert_eq!(cmp.scratch_lane_coeffs, 6 * 9);
    }

    #[test]
    fn double_ops_increase_with_degree_and_precision() {
        let mut cache = ShapeCache::new();
        let small = modeled_double_ops(
            &mut cache,
            TestPolynomial::P1,
            Precision::D2,
            31,
            CostModel::Paper,
        );
        let big = modeled_double_ops(
            &mut cache,
            TestPolynomial::P1,
            Precision::D10,
            152,
            CostModel::Paper,
        );
        assert!(big > small * 10.0);
        // The paper's headline number: 1.336e12 double operations for p1 at
        // degree 152 in deca-double precision.
        assert!((big - 1_336_226_651_784.0).abs() < 1.0);
    }
}
