//! Sweep drivers: measured CPU runs and modeled GPU runs for the paper's
//! tables and figures.
//!
//! A *measured* run executes the accelerated evaluator on the CPU worker
//! pool and reports the same four times the paper reports (convolution
//! kernels, addition kernels, their sum, wall clock).  A *modeled* run feeds
//! the launch structure of the schedule into the analytic device model of
//! `psmd-device` and reports the predicted times for one of the paper's five
//! GPUs.

use crate::polynomials::TestPolynomial;
use psmd_core::{
    workload_shape, BatchEvaluator, ExecMode, Polynomial, Schedule, ScheduledEvaluator,
    SystemEvaluator,
};
use psmd_device::{model_evaluation, GpuSpec, WorkloadShape};
use psmd_multidouble::{Coeff, CostModel, Md, Precision, RandomCoeff};
use psmd_runtime::WorkerPool;
use psmd_series::Series;
use std::collections::HashMap;

/// Instantiates a generic measured-run driver at the `Md<N>` type matching a
/// runtime [`Precision`] value (the measured sweeps are monomorphized per
/// precision, the tables select one at runtime).
macro_rules! dispatch_precision {
    ($precision:expr, $func:ident($($arg:expr),* $(,)?)) => {
        match $precision {
            Precision::D1 => $func::<Md<1>>($($arg),*),
            Precision::D2 => $func::<Md<2>>($($arg),*),
            Precision::D3 => $func::<Md<3>>($($arg),*),
            Precision::D4 => $func::<Md<4>>($($arg),*),
            Precision::D5 => $func::<Md<5>>($($arg),*),
            Precision::D8 => $func::<Md<8>>($($arg),*),
            Precision::D10 => $func::<Md<10>>($($arg),*),
        }
    };
}

/// One row of a timing table: the four times the paper reports, in
/// milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimingRow {
    /// Sum of all convolution kernel times.
    pub convolution_ms: f64,
    /// Sum of all addition kernel times.
    pub addition_ms: f64,
    /// Wall clock of the whole evaluation.
    pub wall_ms: f64,
}

impl TimingRow {
    /// Sum of convolution and addition kernel times.
    pub fn sum_ms(&self) -> f64 {
        self.convolution_ms + self.addition_ms
    }

    /// Percentage of the wall clock spent inside kernels (Figure 4).
    pub fn kernel_percentage(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            100.0 * self.sum_ms() / self.wall_ms
        }
    }
}

/// Scale of a measured run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The reduced, CPU-affordable variant of the test polynomial.
    Reduced,
    /// The full polynomial exactly as in the paper.
    Full,
}

/// Caches the launch structures of the full-scale test polynomials so that
/// modeled sweeps over many degrees and precisions stay cheap (the structure
/// does not depend on the degree or the precision).
#[derive(Default)]
pub struct ShapeCache {
    shapes: HashMap<&'static str, WorkloadShape>,
}

impl ShapeCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The launch structure of a test polynomial at full paper scale, with
    /// the degree field set to `degree`.
    pub fn shape(&mut self, poly: TestPolynomial, degree: usize) -> WorkloadShape {
        let entry = self.shapes.entry(poly.label()).or_insert_with(|| {
            // The structure is independent of the coefficient values and of
            // the truncation degree, so build it once at degree 0 in
            // double-double.
            let p: Polynomial<Md<2>> = poly.build(0, 1);
            let schedule = Schedule::build(&p);
            workload_shape(&schedule)
        });
        let mut shape = entry.clone();
        shape.degree = degree;
        shape
    }
}

/// Models one run of a test polynomial on a GPU.
pub fn modeled_run(
    cache: &mut ShapeCache,
    poly: TestPolynomial,
    gpu: &GpuSpec,
    precision: Precision,
    degree: usize,
    cost: CostModel,
) -> TimingRow {
    let shape = cache.shape(poly, degree);
    let m = model_evaluation(gpu, &shape, precision, cost);
    TimingRow {
        convolution_ms: m.convolution_ms,
        addition_ms: m.addition_ms,
        wall_ms: m.wall_clock_ms,
    }
}

/// Total double operations of one run (for throughput reporting).
pub fn modeled_double_ops(
    cache: &mut ShapeCache,
    poly: TestPolynomial,
    precision: Precision,
    degree: usize,
    cost: CostModel,
) -> f64 {
    cache.shape(poly, degree).total_double_ops(precision, cost)
}

/// Measures one run of a test polynomial on the CPU worker pool at the given
/// precision (dispatching to the right `Md<N>` instantiation).
pub fn measured_run(
    poly: TestPolynomial,
    precision: Precision,
    degree: usize,
    scale: Scale,
    pool: &WorkerPool,
    seed: u64,
) -> TimingRow {
    dispatch_precision!(
        precision,
        measured_run_generic(poly, degree, scale, pool, seed)
    )
}

fn measured_run_generic<C: Coeff + RandomCoeff>(
    poly: TestPolynomial,
    degree: usize,
    scale: Scale,
    pool: &WorkerPool,
    seed: u64,
) -> TimingRow {
    let (p, z) = match scale {
        Scale::Reduced => (
            poly.build_reduced::<C>(degree, seed),
            poly.reduced_inputs::<C>(degree, seed),
        ),
        Scale::Full => (
            poly.build::<C>(degree, seed),
            poly.inputs::<C>(degree, seed),
        ),
    };
    let evaluator = ScheduledEvaluator::new(&p);
    let eval = evaluator.evaluate_parallel(&z, pool);
    TimingRow {
        convolution_ms: eval.timings.convolution_ms(),
        addition_ms: eval.timings.addition_ms(),
        wall_ms: eval.timings.wall_clock_ms(),
    }
}

/// One measured comparison of the batched engine against per-polynomial
/// launches on the same batch of inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchComparison {
    /// Number of instances in the batch.
    pub batch: usize,
    /// One pool launch per layer for the whole batch ([`BatchEvaluator`]).
    pub batched: TimingRow,
    /// A loop of per-polynomial pool launches (the pre-batching behavior).
    pub looped_parallel: TimingRow,
    /// A loop of single-thread evaluations (the lower bound on overhead).
    pub looped_sequential: TimingRow,
    /// Kernel launches issued by the batched run (= layers of the schedule).
    pub batched_launches: usize,
    /// Kernel launches issued by the per-polynomial loop (= batch × layers).
    pub looped_launches: usize,
}

/// Measures the batched engine against per-polynomial launches at the given
/// precision (dispatching to the right `Md<N>` instantiation).
pub fn batched_comparison(
    poly: TestPolynomial,
    precision: Precision,
    degree: usize,
    scale: Scale,
    batch: usize,
    pool: &WorkerPool,
    seed: u64,
) -> BatchComparison {
    dispatch_precision!(
        precision,
        batched_comparison_generic(poly, degree, scale, batch, pool, seed)
    )
}

fn batched_comparison_generic<C: Coeff + RandomCoeff>(
    poly: TestPolynomial,
    degree: usize,
    scale: Scale,
    batch: usize,
    pool: &WorkerPool,
    seed: u64,
) -> BatchComparison {
    let p: Polynomial<C> = match scale {
        Scale::Reduced => poly.build_reduced(degree, seed),
        Scale::Full => poly.build(degree, seed),
    };
    let inputs: Vec<Vec<Series<C>>> = (0..batch)
        .map(|i| match scale {
            Scale::Reduced => poly.reduced_inputs(degree, seed.wrapping_add(i as u64)),
            Scale::Full => poly.inputs(degree, seed.wrapping_add(i as u64)),
        })
        .collect();
    let evaluator = BatchEvaluator::new(&p);
    let single = ScheduledEvaluator::new(&p);
    let row = |t: &psmd_runtime::KernelTimings| TimingRow {
        convolution_ms: t.convolution_ms(),
        addition_ms: t.addition_ms(),
        wall_ms: t.wall_clock_ms(),
    };
    let batched_eval = evaluator.evaluate_parallel(&inputs, pool);
    let batched = row(&batched_eval.timings);
    let batched_launches =
        batched_eval.timings.convolution_launches + batched_eval.timings.addition_launches;
    let mut looped = psmd_runtime::KernelTimings::new();
    for z in &inputs {
        looped.merge(&single.evaluate_parallel(z, pool).timings);
    }
    let looped_launches = looped.convolution_launches + looped.addition_launches;
    let looped_parallel = row(&looped);
    let mut sequential = psmd_runtime::KernelTimings::new();
    for z in &inputs {
        sequential.merge(&single.evaluate_sequential(z).timings);
    }
    let looped_sequential = row(&sequential);
    BatchComparison {
        batch,
        batched,
        looped_parallel,
        looped_sequential,
        batched_launches,
        looped_launches,
    }
}

/// One measured comparison of the dependency-driven graph executor against
/// the layered (barrier-per-layer) reference on the same schedule and
/// inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphComparison {
    /// The layered reference run (one pool launch per job layer).
    pub layered: TimingRow,
    /// The graph-mode run (one task-graph launch for the whole evaluation).
    pub graph: TimingRow,
    /// Pool rendezvous paid by the layered run (single-block layers run
    /// inline and pay none).
    pub layered_rendezvous: usize,
    /// Pool rendezvous paid by the graph run (always 1 on a threaded pool).
    pub graph_rendezvous: usize,
    /// Job layers of the schedule (the barrier count of the paper's model).
    pub layers: usize,
    /// Total blocks (convolution plus addition jobs).
    pub blocks: usize,
    /// Dependency edges of the graph plan.
    pub edges: usize,
    /// Longest dependency chain of the graph plan, in blocks.
    pub critical_path: usize,
}

/// Measures graph-mode against layered execution at the given precision
/// (dispatching to the right `Md<N>` instantiation).  Both runs use the same
/// schedule and inputs; results are bitwise identical by construction (and
/// asserted here), so the comparison is purely about launch overhead.
pub fn graph_comparison(
    poly: TestPolynomial,
    precision: Precision,
    degree: usize,
    scale: Scale,
    pool: &WorkerPool,
    seed: u64,
) -> GraphComparison {
    dispatch_precision!(
        precision,
        graph_comparison_generic(poly, degree, scale, pool, seed)
    )
}

fn graph_comparison_generic<C: Coeff + RandomCoeff>(
    poly: TestPolynomial,
    degree: usize,
    scale: Scale,
    pool: &WorkerPool,
    seed: u64,
) -> GraphComparison {
    let (p, z): (Polynomial<C>, _) = match scale {
        Scale::Reduced => (
            poly.build_reduced(degree, seed),
            poly.reduced_inputs(degree, seed),
        ),
        Scale::Full => (poly.build(degree, seed), poly.inputs(degree, seed)),
    };
    let layered = ScheduledEvaluator::new(&p);
    let graph = ScheduledEvaluator::new(&p).with_exec_mode(ExecMode::Graph);
    let row = |t: &psmd_runtime::KernelTimings| TimingRow {
        convolution_ms: t.convolution_ms(),
        addition_ms: t.addition_ms(),
        wall_ms: t.wall_clock_ms(),
    };
    // Warmup run per mode (builds the graph plan, wakes the pool) doubling
    // as the rendezvous measurement and the bitwise-identity check.
    let before = pool.rendezvous_count();
    let layered_eval = layered.evaluate_parallel(&z, pool);
    let layered_rendezvous = pool.rendezvous_count() - before;
    let before = pool.rendezvous_count();
    let graph_eval = graph.evaluate_parallel(&z, pool);
    let graph_rendezvous = pool.rendezvous_count() - before;
    assert_eq!(
        layered_eval.value, graph_eval.value,
        "graph mode must be bitwise identical to layered mode"
    );
    assert_eq!(layered_eval.gradient, graph_eval.gradient);
    // Best-of-3 timed runs per mode: single evaluations are noisy and the
    // CI perf gate compares these numbers against committed baselines.
    let mut layered_t = layered_eval.timings;
    let mut graph_t = graph_eval.timings;
    for _ in 0..3 {
        let t = layered.evaluate_parallel(&z, pool).timings;
        if t.wall_clock < layered_t.wall_clock {
            layered_t = t;
        }
        let t = graph.evaluate_parallel(&z, pool).timings;
        if t.wall_clock < graph_t.wall_clock {
            graph_t = t;
        }
    }
    let schedule = layered.schedule();
    let plan = graph.graph_plan();
    GraphComparison {
        layered: row(&layered_t),
        graph: row(&graph_t),
        layered_rendezvous,
        graph_rendezvous,
        layers: schedule.convolution_layers.len() + schedule.addition_layers.len(),
        blocks: plan.blocks(),
        edges: plan.graph.num_edges(),
        critical_path: plan.graph.critical_path_len(),
    }
}

/// One measured comparison of the fused system evaluator against a loop of
/// per-polynomial evaluations of the same system at the same inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemComparison {
    /// Number of equations in the system.
    pub equations: usize,
    /// One merged schedule, one pool launch per shared layer for the whole
    /// system ([`SystemEvaluator`]).
    pub fused: TimingRow,
    /// A loop of per-polynomial pool launches (the pre-system behavior).
    pub looped_parallel: TimingRow,
    /// A loop of single-thread per-polynomial evaluations (the lower bound
    /// on launch overhead).
    pub looped_sequential: TimingRow,
    /// Kernel launches issued by the fused run (= merged layer count).
    pub fused_launches: usize,
    /// Kernel launches issued by the per-polynomial loop (≈ equations ×
    /// per-equation layers).
    pub looped_launches: usize,
    /// Unique monomials after merging the equations' monomial sets.
    pub unique_monomials: usize,
    /// Total monomial instances across all equations.
    pub total_monomials: usize,
}

/// Measures the fused system evaluator against per-polynomial evaluation at
/// the given precision (dispatching to the right `Md<N>` instantiation).
pub fn system_comparison(
    poly: TestPolynomial,
    precision: Precision,
    degree: usize,
    scale: Scale,
    equations: usize,
    pool: &WorkerPool,
    seed: u64,
) -> SystemComparison {
    dispatch_precision!(
        precision,
        system_comparison_generic(poly, degree, scale, equations, pool, seed)
    )
}

fn system_comparison_generic<C: Coeff + RandomCoeff>(
    poly: TestPolynomial,
    degree: usize,
    scale: Scale,
    equations: usize,
    pool: &WorkerPool,
    seed: u64,
) -> SystemComparison {
    let system: Vec<Polynomial<C>> = match scale {
        Scale::Reduced => poly.build_reduced_system(equations, degree, seed),
        Scale::Full => poly.build_system(equations, degree, seed),
    };
    let inputs: Vec<Series<C>> = match scale {
        Scale::Reduced => poly.reduced_inputs(degree, seed),
        Scale::Full => poly.inputs(degree, seed),
    };
    let row = |t: &psmd_runtime::KernelTimings| TimingRow {
        convolution_ms: t.convolution_ms(),
        addition_ms: t.addition_ms(),
        wall_ms: t.wall_clock_ms(),
    };
    let evaluator = SystemEvaluator::new(&system);
    let fused_eval = evaluator.evaluate_parallel(&inputs, pool);
    let fused = row(&fused_eval.timings);
    let fused_launches =
        fused_eval.timings.convolution_launches + fused_eval.timings.addition_launches;
    let mut looped = psmd_runtime::KernelTimings::new();
    for p in &system {
        looped.merge(
            &ScheduledEvaluator::new(p)
                .evaluate_parallel(&inputs, pool)
                .timings,
        );
    }
    let looped_launches = looped.convolution_launches + looped.addition_launches;
    let looped_parallel = row(&looped);
    let mut sequential = psmd_runtime::KernelTimings::new();
    for p in &system {
        sequential.merge(
            &ScheduledEvaluator::new(p)
                .evaluate_sequential(&inputs)
                .timings,
        );
    }
    let looped_sequential = row(&sequential);
    SystemComparison {
        equations,
        fused,
        looped_parallel,
        looped_sequential,
        fused_launches,
        looped_launches,
        unique_monomials: evaluator.schedule().unique_monomials(),
        total_monomials: evaluator.schedule().total_monomials(),
    }
}

/// Double operations of a measured run's schedule (reduced or full scale),
/// for achieved-GFLOPS reporting.
pub fn measured_double_ops(
    poly: TestPolynomial,
    precision: Precision,
    degree: usize,
    scale: Scale,
    cost: CostModel,
) -> f64 {
    let p: Polynomial<Md<2>> = match scale {
        Scale::Reduced => poly.build_reduced(degree, 1),
        Scale::Full => poly.build(0, 1),
    };
    let schedule = Schedule::build(&p);
    let mut shape = workload_shape(&schedule);
    shape.degree = degree;
    shape.total_double_ops(precision, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psmd_device::gpu_by_key;

    #[test]
    fn shape_cache_reuses_structures_across_degrees() {
        let mut cache = ShapeCache::new();
        let a = cache.shape(TestPolynomial::P1, 8);
        let b = cache.shape(TestPolynomial::P1, 152);
        assert_eq!(a.convolution_layers, b.convolution_layers);
        assert_eq!(a.degree, 8);
        assert_eq!(b.degree, 152);
        assert_eq!(b.convolution_jobs(), 16_380);
    }

    #[test]
    fn modeled_run_reproduces_table_3_for_v100() {
        let mut cache = ShapeCache::new();
        let v100 = gpu_by_key("v100").unwrap();
        let row = modeled_run(
            &mut cache,
            TestPolynomial::P1,
            &v100,
            Precision::D10,
            152,
            CostModel::Paper,
        );
        // Paper: 634.29 ms convolutions, 640 ms wall clock.
        assert!((row.convolution_ms - 634.29).abs() / 634.29 < 0.15);
        assert!((row.wall_ms - 640.0).abs() / 640.0 < 0.15);
        assert!(row.addition_ms < row.convolution_ms / 100.0);
    }

    #[test]
    fn measured_reduced_run_is_consistent() {
        let pool = WorkerPool::new(2);
        let row = measured_run(
            TestPolynomial::P1,
            Precision::D2,
            8,
            Scale::Reduced,
            &pool,
            42,
        );
        assert!(row.wall_ms > 0.0);
        assert!(row.sum_ms() <= row.wall_ms * 1.5);
        assert!(row.convolution_ms > 0.0);
    }

    #[test]
    fn graph_comparison_pays_one_rendezvous_and_matches_bitwise() {
        let pool = WorkerPool::new(3);
        let cmp = graph_comparison(
            TestPolynomial::P1,
            Precision::D2,
            8,
            Scale::Reduced,
            &pool,
            5,
        );
        // The whole evaluation is one pool rendezvous in graph mode; the
        // layered path pays one per multi-block layer.
        assert_eq!(cmp.graph_rendezvous, 1);
        assert!(cmp.layered_rendezvous > 1);
        assert!(cmp.layered_rendezvous <= cmp.layers);
        assert!(cmp.blocks > 0);
        assert!(cmp.edges > 0);
        // A dependency chain visits at most one block per layer, and the
        // deepest chain spans several layers.
        assert!(cmp.critical_path > 1);
        assert!(cmp.critical_path <= cmp.layers);
        assert!(cmp.graph.wall_ms > 0.0);
        assert!(cmp.layered.wall_ms > 0.0);
    }

    #[test]
    fn system_comparison_counts_launches_and_monomials() {
        let pool = WorkerPool::new(2);
        let equations = 3;
        let cmp = system_comparison(
            TestPolynomial::P1,
            Precision::D2,
            4,
            Scale::Reduced,
            equations,
            &pool,
            7,
        );
        assert_eq!(cmp.equations, equations);
        assert!(cmp.fused.wall_ms > 0.0);
        assert!(cmp.looped_parallel.wall_ms > 0.0);
        // The per-polynomial loop issues `equations` times the launches of
        // the fused run (same structure in every equation).
        assert_eq!(cmp.looped_launches, equations * cmp.fused_launches);
        // Independent random coefficients: nothing dedups, every instance is
        // unique.
        assert_eq!(cmp.total_monomials, equations * 210); // C(10,4) per equation
        assert_eq!(cmp.unique_monomials, cmp.total_monomials);
    }

    #[test]
    fn double_ops_increase_with_degree_and_precision() {
        let mut cache = ShapeCache::new();
        let small = modeled_double_ops(
            &mut cache,
            TestPolynomial::P1,
            Precision::D2,
            31,
            CostModel::Paper,
        );
        let big = modeled_double_ops(
            &mut cache,
            TestPolynomial::P1,
            Precision::D10,
            152,
            CostModel::Paper,
        );
        assert!(big > small * 10.0);
        // The paper's headline number: 1.336e12 double operations for p1 at
        // degree 152 in deca-double precision.
        assert!((big - 1_336_226_651_784.0).abs() < 1.0);
    }
}
