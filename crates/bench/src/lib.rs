//! # psmd-bench
//!
//! The benchmark harness of the reproduction: the paper's three test
//! polynomials (Table 2), measured CPU sweep drivers, modeled GPU sweep
//! drivers, and the plain-text reports that regenerate every table and
//! figure of the paper's evaluation section.
//!
//! The `table_harness` binary is the entry point:
//!
//! ```text
//! cargo run --release -p psmd-bench --bin table_harness -- all
//! cargo run --release -p psmd-bench --bin table_harness -- table3
//! cargo run --release -p psmd-bench --bin table_harness -- table5 --measure
//! ```

#![warn(missing_docs)]

pub mod alloc_counter;
pub mod compare;
pub mod kernels;
pub mod polynomials;
pub mod report;
pub mod serve_load;
pub mod sweep;

pub use alloc_counter::{measure_allocs, AllocCounts, CountingAllocator};
pub use compare::{compare_reports, parse_json, CompareSummary, Json, Regression};
pub use kernels::{kernel_label, kernel_ladder_row, KernelLadderRow, KERNEL_LADDER_DEGREES};
pub use polynomials::{Scale, TestPolynomial, PAPER_DEGREES, REDUCED_DEGREES};
pub use report::{banner, log2, ms, pct, JsonReport, JsonValue, TextTable};
pub use serve_load::{closed_loop_run, staged_run, LoadRow, StagedRow};
pub use sweep::{
    batched_comparison, engine_amortization, graph_comparison, measured_double_ops, measured_run,
    modeled_double_ops, modeled_run, simd_comparison, system_comparison, workspace_comparison,
    BatchComparison, EngineAmortization, GraphComparison, ShapeCache, SimdComparison,
    SystemComparison, TimingRow, WorkspaceComparison,
};
