//! Plain-text table formatting for the benchmark harness.
//!
//! The harness prints the same rows and series the paper reports; the
//! formatting here keeps columns aligned so the output can be compared to
//! the paper's tables at a glance (and diffed between runs).

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as there are headers).
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numeric-looking cells, left-align the rest.
                let numeric = cell
                    .chars()
                    .all(|c| c.is_ascii_digit() || ".,-+e%".contains(c))
                    && !cell.is_empty();
                if numeric {
                    line.push_str(&format!("{cell:>width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("{cell:<width$}", width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Formats a millisecond value with two decimals.
pub fn ms(value: f64) -> String {
    format!("{value:.2}")
}

/// Formats a ratio or percentage with two decimals.
pub fn pct(value: f64) -> String {
    format!("{value:.2}")
}

/// Base-2 logarithm used for the paper's Figure 5 and Figure 6 axes.
pub fn log2(value: f64) -> String {
    if value <= 0.0 {
        "-inf".to_string()
    } else {
        format!("{:.2}", value.log2())
    }
}

/// Prints a section banner.
pub fn banner(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

/// One value of a [`JsonReport`] cell (the offline environment has no serde,
/// so the perf-snapshot pipeline hand-rolls the small JSON subset it needs).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A floating-point number (non-finite values render as `null`).
    Number(f64),
    /// An integer.
    Integer(i64),
    /// A string (escaped on render).
    Text(String),
}

impl std::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonValue::Number(x) if x.is_finite() => write!(f, "{x}"),
            JsonValue::Number(_) => write!(f, "null"),
            JsonValue::Integer(i) => write!(f, "{i}"),
            JsonValue::Text(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\t' => write!(f, "\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
        }
    }
}

/// A machine-readable benchmark report: one named command plus a list of
/// uniform rows, rendered as a single JSON object.  Consumed by the CI
/// perf-snapshot job (`BENCH_*.json` artifacts).
#[derive(Debug, Clone, Default)]
pub struct JsonReport {
    command: String,
    rows: Vec<Vec<(String, JsonValue)>>,
}

impl JsonReport {
    /// Creates an empty report for the given harness command.
    pub fn new(command: &str) -> Self {
        Self {
            command: command.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends one row of key/value pairs.
    pub fn add_row(&mut self, fields: Vec<(&str, JsonValue)>) {
        self.rows.push(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        );
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the report has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the report as one JSON object
    /// (`{"command": ..., "rows": [...]}`).
    pub fn render(&self) -> String {
        let mut out = String::from("{\"command\": ");
        out.push_str(&JsonValue::Text(self.command.clone()).to_string());
        out.push_str(", \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('{');
            for (j, (key, value)) in row.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&JsonValue::Text(key.clone()).to_string());
                out.push_str(": ");
                out.push_str(&value.to_string());
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

impl std::fmt::Display for JsonReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "ms"]);
        t.add_row(vec!["convolution".to_string(), ms(1060.03)]);
        t.add_row(vec!["addition".to_string(), ms(1.37)]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("1060.03"));
        assert!(lines[3].contains("1.37"));
        // Columns align: both data lines have the same length.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_row_width_is_rejected() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.add_row(vec!["only one"]);
    }

    #[test]
    fn json_report_renders_valid_rows() {
        let mut r = JsonReport::new("system");
        r.add_row(vec![
            ("poly", JsonValue::Text("p1".to_string())),
            ("fused_ms", JsonValue::Number(1.25)),
            ("launches", JsonValue::Integer(9)),
        ]);
        r.add_row(vec![("nan", JsonValue::Number(f64::NAN))]);
        let s = r.render();
        assert_eq!(
            s,
            "{\"command\": \"system\", \"rows\": [\
             {\"poly\": \"p1\", \"fused_ms\": 1.25, \"launches\": 9}, \
             {\"nan\": null}]}"
        );
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn json_strings_are_escaped() {
        let v = JsonValue::Text("a\"b\\c\nd".to_string());
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn helpers_format_values() {
        assert_eq!(ms(12.345), "12.35");
        assert_eq!(pct(99.999), "100.00");
        assert_eq!(log2(8.0), "3.00");
        assert_eq!(log2(0.0), "-inf");
        assert!(banner("Table 3").contains("Table 3"));
    }
}
