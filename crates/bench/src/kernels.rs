//! Measured comparison of the convolution kernel ladder: the paper's
//! zero-insertion schoolbook kernel against the Karatsuba short product and
//! the compensated digit-FFT, per (precision, degree) pair.
//!
//! This is the measurement behind `crates/core/src/crossover.rs` and
//! `bench/baselines/BENCH_kernels.json`: each row times the three raw
//! kernels on the same seeded random operands and records which one the
//! `Auto` crossover table picks, together with the deterministic structure
//! numbers of the sub-quadratic kernels (operation counts, FFT transform
//! geometry).

use psmd_core::{auto_kernel, ConvolutionKernel};
use psmd_multidouble::{Coeff, Md, Precision, RandomCoeff};
use psmd_series::{
    convolution_mults, convolve_fft, convolve_karatsuba, convolve_zero_insertion, fft_digit_bits,
    fft_digit_planes, fft_points, fft_scratch_f64_len, karatsuba_scratch_len,
    zero_insertion_scratch_len, ConvAlgo,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One measured row of the kernel-ladder report.
#[derive(Debug, Clone)]
pub struct KernelLadderRow {
    /// Precision label ("dd", "qd", ...).
    pub precision: &'static str,
    /// Limbs per (real) component of the coefficient type.
    pub limbs: usize,
    /// Truncation degree of the convolution.
    pub degree: usize,
    /// Mean time of one zero-insertion (schoolbook) convolution.
    pub schoolbook_ms: f64,
    /// Mean time of one Karatsuba short-product convolution.
    pub karatsuba_ms: f64,
    /// Mean time of one digit-FFT convolution.
    pub fft_ms: f64,
    /// Mean time of one convolution through the kernel `Auto` resolves to.
    pub auto_ms: f64,
    /// The kernel `Auto` resolves to for this row.
    pub auto_kernel: ConvolutionKernel,
    /// Coefficient multiplications of the schoolbook kernel.
    pub schoolbook_mults: usize,
    /// Coefficient multiplications of the Karatsuba short product.
    pub karatsuba_mults: usize,
    /// Complex transform length of the digit-FFT.
    pub fft_points: usize,
    /// Digit planes per operand of the digit-FFT.
    pub fft_planes: usize,
    /// Bits per digit of the digit-FFT.
    pub fft_digit_bits: usize,
}

impl KernelLadderRow {
    /// Wall-clock speedup of the `Auto` choice over the schoolbook kernel.
    pub fn auto_speedup(&self) -> f64 {
        self.schoolbook_ms / self.auto_ms.max(1e-9)
    }

    /// Label of the kernel `Auto` resolves to.
    pub fn auto_label(&self) -> &'static str {
        kernel_label(self.auto_kernel)
    }
}

/// Short label of a kernel variant (for reports).
pub fn kernel_label(kernel: ConvolutionKernel) -> &'static str {
    match kernel {
        ConvolutionKernel::ZeroInsertion => "zero-insertion",
        ConvolutionKernel::Direct => "direct",
        ConvolutionKernel::Karatsuba => "karatsuba",
        ConvolutionKernel::Fft => "fft",
        ConvolutionKernel::Auto => "auto",
    }
}

/// Times `f` adaptively: repeats until at least ~20 ms of total work (or a
/// rep ceiling) and returns the mean milliseconds per call.
fn time_ms(mut f: impl FnMut()) -> f64 {
    // Warm the caches and scratch once, untimed.
    f();
    let mut reps = 1usize;
    loop {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        if elapsed >= 20.0 || reps >= 1 << 20 {
            return elapsed / reps as f64;
        }
        // Aim past the threshold next round instead of creeping up on it.
        let scale = (25.0 / elapsed.max(1e-3)).ceil() as usize;
        reps = (reps * scale.clamp(2, 1024)).min(1 << 20);
    }
}

fn ladder_row<const N: usize>(precision: Precision, degree: usize, seed: u64) -> KernelLadderRow {
    let n = degree + 1;
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<Md<N>> = (0..n)
        .map(|_| RandomCoeff::random_uniform(&mut rng))
        .collect();
    let y: Vec<Md<N>> = (0..n)
        .map(|_| RandomCoeff::random_uniform(&mut rng))
        .collect();
    let mut z = vec![Md::<N>::zero(); n];
    let mut zi_scratch = vec![Md::<N>::zero(); zero_insertion_scratch_len(n)];
    let mut k_scratch = vec![Md::<N>::zero(); karatsuba_scratch_len(n)];
    let mut f_scratch = vec![0.0f64; fft_scratch_f64_len::<Md<N>>(n)];

    let schoolbook_ms = time_ms(|| convolve_zero_insertion(&x, &y, &mut z, &mut zi_scratch));
    let karatsuba_ms = time_ms(|| convolve_karatsuba(&x, &y, &mut z, &mut k_scratch));
    let fft_ms = time_ms(|| convolve_fft(&x, &y, &mut z, &mut f_scratch));
    let resolved = auto_kernel(Md::<N>::component_limbs(), degree);
    let auto_ms = match resolved {
        ConvolutionKernel::Karatsuba => karatsuba_ms,
        ConvolutionKernel::Fft => fft_ms,
        _ => schoolbook_ms,
    };
    KernelLadderRow {
        precision: precision.label(),
        limbs: N,
        degree,
        schoolbook_ms,
        karatsuba_ms,
        fft_ms,
        auto_ms,
        auto_kernel: resolved,
        schoolbook_mults: convolution_mults(ConvAlgo::ZeroInsertion, degree),
        karatsuba_mults: convolution_mults(ConvAlgo::Karatsuba, degree),
        fft_points: fft_points(n),
        fft_planes: fft_digit_planes::<Md<N>>(n),
        fft_digit_bits: fft_digit_bits::<Md<N>>(n),
    }
}

/// Measures one kernel-ladder row: the three raw kernels on the same seeded
/// operands at `(precision, degree)`, plus the `Auto` resolution and the
/// deterministic structure numbers.
pub fn kernel_ladder_row(precision: Precision, degree: usize, seed: u64) -> KernelLadderRow {
    match precision {
        Precision::D1 => ladder_row::<1>(precision, degree, seed),
        Precision::D2 => ladder_row::<2>(precision, degree, seed),
        Precision::D3 => ladder_row::<3>(precision, degree, seed),
        Precision::D4 => ladder_row::<4>(precision, degree, seed),
        Precision::D5 => ladder_row::<5>(precision, degree, seed),
        Precision::D8 => ladder_row::<8>(precision, degree, seed),
        Precision::D10 => ladder_row::<10>(precision, degree, seed),
    }
}

/// The degrees the kernel-ladder report sweeps: the paper's degrees of
/// interest plus a fine grid around the measured crossovers (and the small
/// end, where schoolbook must win).
pub const KERNEL_LADDER_DEGREES: [usize; 9] = [8, 16, 24, 32, 48, 64, 96, 128, 160];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_row_structure_numbers_are_deterministic() {
        let a = kernel_ladder_row(Precision::D2, 32, 1);
        assert_eq!(a.limbs, 2);
        assert_eq!(a.degree, 32);
        assert_eq!(a.schoolbook_mults, 33 * 33);
        assert_eq!(
            a.karatsuba_mults,
            convolution_mults(ConvAlgo::Karatsuba, 32)
        );
        // n = 33 coefficients => 65-point linear convolution => 128-point FFT.
        assert_eq!(a.fft_points, 128);
        assert!(a.schoolbook_ms > 0.0 && a.karatsuba_ms > 0.0 && a.fft_ms > 0.0);
        assert_ne!(a.auto_kernel, ConvolutionKernel::Auto);
    }

    #[test]
    fn kernel_labels_cover_the_ladder() {
        assert_eq!(
            kernel_label(ConvolutionKernel::ZeroInsertion),
            "zero-insertion"
        );
        assert_eq!(kernel_label(ConvolutionKernel::Karatsuba), "karatsuba");
        assert_eq!(kernel_label(ConvolutionKernel::Fft), "fft");
    }
}
