//! Load generation against the serving layer (`psmd-serve`): deterministic
//! staged coalescing runs — the exact-gated CI baseline — and a threaded
//! closed-loop load harness whose timings feed the tolerance gate.
//!
//! The staged runs park a known number of tickets in a plan's queue and
//! then drain, so the window packing is a pure function of `(requests,
//! max_batch)`: `ceil(live / B)` launches, every counter reproducible to
//! the bit.  A staged run may also park `expired` tickets whose deadline
//! has already passed at submit time; the leader rejects those during
//! staging, so `deadline_expired` is exact too and the accounting identity
//! `completed + deadline_expired + busy_rejected == submitted` is gated on
//! every row.  The closed-loop runs drive real concurrent clients; there
//! the *identities* (`requests == completed`, `launches + launches_saved
//! == completed`) stay deterministic while the actual launch count depends
//! on thread timing, so only the identities and the timings are reported
//! for gating — the measured coalescing ratio rides along as an ungated
//! `*_speedup` field.

use crate::polynomials::TestPolynomial;
use psmd_core::Engine;
use psmd_multidouble::Dd;
use psmd_series::Series;
use psmd_serve::{MetricsSnapshot, Request, ServeConfig, ServeError, Service, BATCH_BUCKETS};
use std::sync::Barrier;
use std::time::Instant;

/// One deterministic staged coalescing measurement: `requests` live
/// tickets (plus optionally `expired` already-dead ones) parked, then
/// drained in FIFO windows of `max_batch`.
#[derive(Debug, Clone, PartialEq)]
pub struct StagedRow {
    /// The paper polynomial served.
    pub poly: TestPolynomial,
    /// Truncation degree of the inputs.
    pub degree: usize,
    /// Live tickets parked before the drain.
    pub requests: usize,
    /// Tickets parked with an already-passed deadline; the leader rejects
    /// each of these during staging with
    /// [`ServeError::DeadlineExceeded`], distinct from `Busy`.
    pub expired: usize,
    /// The coalescing window.
    pub max_batch: usize,
    /// Launches performed: exactly `ceil(requests / max_batch)` — expired
    /// tickets never occupy a window slot.
    pub launches: u64,
    /// Launches avoided versus one-launch-per-live-request.
    pub launches_saved: u64,
    /// Requests completed (all the live ones).
    pub completed: u64,
    /// Requests rejected at admission (zero for a staged run: the
    /// admission limit covers every parked ticket).
    pub busy_rejected: u64,
    /// Requests rejected with an expired deadline: exactly `expired`.
    pub deadline_expired: u64,
    /// Launches abandoned mid-flight by window cancellation (zero here:
    /// staged deadlines are decided before launch).
    pub cancelled_launches: u64,
    /// Waiters that detached from an in-flight window (zero here).
    pub detached_slots: u64,
    /// The batch-size histogram after the drain.
    pub batch_histogram: [u64; BATCH_BUCKETS],
    /// Wall time of the drain.
    pub drain_ms: f64,
}

/// Parks `requests` live single-point tickets — plus `expired` tickets
/// whose deadline has already passed — in a fresh service and drains them;
/// the returned counters are deterministic.
pub fn staged_run(
    poly: TestPolynomial,
    degree: usize,
    requests: usize,
    expired: usize,
    max_batch: usize,
    seed: u64,
) -> StagedRow {
    let engine = Engine::builder().threads(0).build();
    let service = Service::new(
        engine,
        ServeConfig {
            max_batch,
            max_inflight: (requests + expired).max(1),
            ..ServeConfig::default()
        },
    );
    let p = poly.build_reduced::<Dd>(degree, seed);
    service.register("staged", p).expect("register");
    let points: Vec<Vec<Series<Dd>>> = (0..requests + expired)
        .map(|i| poly.reduced_inputs::<Dd>(degree, seed.wrapping_add(i as u64 + 1)))
        .collect();

    // A deadline of "now" is already unmeetable by the time the leader
    // stages the window, so these tickets are rejected deterministically.
    let dead_on_arrival = Instant::now();
    let tickets: Vec<_> = points
        .into_iter()
        .enumerate()
        .map(|(i, z)| {
            let mut request = Request::new(z);
            if i >= requests {
                request = request.deadline(dead_on_arrival);
            }
            service
                .submit_async::<Dd>("staged", request)
                .expect("staged submit")
        })
        .collect();
    let start = Instant::now();
    for (i, ticket) in tickets.into_iter().enumerate() {
        match ticket.wait() {
            Ok(_) => assert!(i < requests, "expired ticket completed"),
            Err(ServeError::DeadlineExceeded) => {
                assert!(i >= requests, "live ticket expired")
            }
            Err(e) => panic!("staged wait failed: {e}"),
        }
    }
    let drain_ms = start.elapsed().as_secs_f64() * 1e3;

    let m = service.metrics("staged").expect("metrics");
    assert_eq!(
        m.completed + m.deadline_expired + m.busy_rejected,
        m.submitted,
        "staged accounting identity violated"
    );
    StagedRow {
        poly,
        degree,
        requests,
        expired,
        max_batch,
        launches: m.launches,
        launches_saved: m.launches_saved,
        completed: m.completed,
        busy_rejected: m.busy_rejected,
        deadline_expired: m.deadline_expired,
        cancelled_launches: m.cancelled_launches,
        detached_slots: m.detached_slots,
        batch_histogram: m.batch_histogram,
        drain_ms,
    }
}

/// One closed-loop load measurement: `clients` threads each submitting
/// `per_client` blocking requests back to back, recycling their response
/// buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadRow {
    /// The paper polynomial served.
    pub poly: TestPolynomial,
    /// Truncation degree of the inputs.
    pub degree: usize,
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Blocking requests per client.
    pub per_client: usize,
    /// Total requests: `clients * per_client`, all completed.
    pub requests: u64,
    /// Requests rejected at admission (zero for a closed loop within the
    /// derived admission limit).
    pub busy_rejected: u64,
    /// Mean requests per launch (>= 1; > 1 proves coalescing happened).
    pub mean_batch: f64,
    /// Launches performed (nondeterministic under concurrency; reported
    /// for the text table, gated only through the identities).
    pub launches: u64,
    /// Launches avoided by coalescing.
    pub launches_saved: u64,
    /// Wall time of the whole run.
    pub total_ms: f64,
    /// Median request latency, in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, in milliseconds.
    pub p99_ms: f64,
}

/// Runs `clients` concurrent closed-loop clients against one served plan
/// and reports the counters and latency percentiles.
pub fn closed_loop_run(
    poly: TestPolynomial,
    degree: usize,
    clients: usize,
    per_client: usize,
    seed: u64,
) -> LoadRow {
    let engine = Engine::new();
    let service = Service::new(engine, ServeConfig::default());
    let p = poly.build_reduced::<Dd>(degree, seed);
    service.register("load", p).expect("register");

    let barrier = Barrier::new(clients);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let service = &service;
            let barrier = &barrier;
            scope.spawn(move || {
                let z = poly.reduced_inputs::<Dd>(degree, seed.wrapping_add(c as u64 + 1));
                let mut request = Request::new(z.clone());
                barrier.wait();
                for _ in 0..per_client {
                    match service.submit::<Dd>("load", request) {
                        Ok(response) => {
                            let mut next = response.into_request();
                            next.inputs.clone_from_slice(&z);
                            request = next;
                        }
                        Err(ServeError::Busy { .. }) => {
                            // Counted by the service; resubmit the same
                            // point with fresh buffers.
                            request = Request::new(z.clone());
                        }
                        Err(e) => panic!("closed-loop submit failed: {e}"),
                    }
                }
            });
        }
    });
    let total_ms = start.elapsed().as_secs_f64() * 1e3;

    let m: MetricsSnapshot = service.metrics("load").expect("metrics");
    LoadRow {
        poly,
        degree,
        clients,
        per_client,
        requests: (clients * per_client) as u64,
        busy_rejected: m.busy_rejected,
        mean_batch: m.mean_batch(),
        launches: m.launches,
        launches_saved: m.launches_saved,
        total_ms,
        p50_ms: m.p50_us as f64 / 1e3,
        p99_ms: m.p99_us as f64 / 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_runs_pack_exact_windows() {
        let row = staged_run(TestPolynomial::P1, 4, 10, 0, 4, 7);
        assert_eq!(row.launches, 3);
        assert_eq!(row.launches_saved, 7);
        assert_eq!(row.completed, 10);
        assert_eq!(row.deadline_expired, 0);
        assert_eq!(row.batch_histogram[2], 2);
        assert_eq!(row.batch_histogram[1], 1);

        let row = staged_run(TestPolynomial::P1, 4, 8, 0, 8, 7);
        assert_eq!(row.launches, 1);
        assert_eq!(row.launches_saved, 7);
        assert_eq!(row.batch_histogram[3], 1);
    }

    #[test]
    fn staged_expired_tickets_are_rejected_not_busy() {
        let row = staged_run(TestPolynomial::P1, 4, 9, 3, 4, 7);
        // Dead-on-arrival tickets never occupy a window slot: the nine
        // live requests still pack into ceil(9/4) = 3 launches.
        assert_eq!(row.launches, 3);
        assert_eq!(row.completed, 9);
        assert_eq!(row.deadline_expired, 3);
        assert_eq!(row.busy_rejected, 0);
        assert_eq!(row.cancelled_launches, 0);
        assert_eq!(row.detached_slots, 0);
    }

    #[test]
    fn closed_loop_completes_every_request() {
        let row = closed_loop_run(TestPolynomial::P1, 4, 4, 6, 11);
        assert_eq!(row.requests, 24);
        assert_eq!(row.launches + row.launches_saved, 24 - row.busy_rejected);
        assert!(row.mean_batch >= 1.0 || row.launches == 0);
    }
}
