//! The paper's three test polynomials (Section 6.1, Table 2) and reduced
//! variants used for measured CPU runs.
//!
//! * `p1`: 16 variables, all 1,820 products of exactly four variables.
//! * `p2`: 128 variables, 128 monomials of 64 (consecutive) variables each —
//!   many more convolutions than additions.
//! * `p3`: 128 variables, all 8,128 products of two variables — as many
//!   convolutions as additions.
//!
//! The paper does not print the coefficient values; following PHCpack's
//! practice the coefficients are random, well-conditioned series drawn from a
//! seeded generator, which makes every run reproducible.

use psmd_core::{
    banded_supports, combinations, polynomial_with_supports, AnyInputs, AnyPolySource, Polynomial,
};
use psmd_multidouble::{Coeff, Md, Precision, RandomCoeff};
use psmd_series::Series;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scale of a measured run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The reduced, CPU-affordable variant of the test polynomial.
    Reduced,
    /// The full polynomial exactly as in the paper.
    Full,
}

/// Instantiates `$body` at the concrete `Md<N>` coefficient type matching a
/// runtime [`Precision`] value and converts the result into its
/// precision-erased `Any*` wrapper.  This is the one place the harness
/// monomorphizes over the precision: everything downstream works on
/// [`AnyPolySource`]/[`AnyInputs`]/`AnyPlan` values.
macro_rules! at_precision {
    ($precision:expr, $C:ident => $body:expr) => {
        match $precision {
            Precision::D1 => {
                type $C = Md<1>;
                $body.into()
            }
            Precision::D2 => {
                type $C = Md<2>;
                $body.into()
            }
            Precision::D3 => {
                type $C = Md<3>;
                $body.into()
            }
            Precision::D4 => {
                type $C = Md<4>;
                $body.into()
            }
            Precision::D5 => {
                type $C = Md<5>;
                $body.into()
            }
            Precision::D8 => {
                type $C = Md<8>;
                $body.into()
            }
            Precision::D10 => {
                type $C = Md<10>;
                $body.into()
            }
        }
    };
}

/// Identifier of one of the paper's test polynomials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestPolynomial {
    /// 16 variables, all quadruples: C(16,4) = 1820 monomials.
    P1,
    /// 128 variables, 128 monomials of 64 variables.
    P2,
    /// 128 variables, all pairs: C(128,2) = 8128 monomials.
    P3,
}

impl TestPolynomial {
    /// All three test polynomials in the paper's order.
    pub const ALL: [TestPolynomial; 3] =
        [TestPolynomial::P1, TestPolynomial::P2, TestPolynomial::P3];

    /// The label used in the paper ("p1", "p2", "p3").
    pub fn label(&self) -> &'static str {
        match self {
            TestPolynomial::P1 => "p1",
            TestPolynomial::P2 => "p2",
            TestPolynomial::P3 => "p3",
        }
    }

    /// Parses a label.
    pub fn parse(label: &str) -> Option<Self> {
        match label.to_ascii_lowercase().as_str() {
            "p1" => Some(TestPolynomial::P1),
            "p2" => Some(TestPolynomial::P2),
            "p3" => Some(TestPolynomial::P3),
            _ => None,
        }
    }

    /// Number of variables `n` (Table 2).
    pub fn num_variables(&self) -> usize {
        match self {
            TestPolynomial::P1 => 16,
            TestPolynomial::P2 | TestPolynomial::P3 => 128,
        }
    }

    /// Variables per monomial `m` (Table 2).
    pub fn variables_per_monomial(&self) -> usize {
        match self {
            TestPolynomial::P1 => 4,
            TestPolynomial::P2 => 64,
            TestPolynomial::P3 => 2,
        }
    }

    /// Number of monomials `N` (Table 2).
    pub fn num_monomials(&self) -> usize {
        match self {
            TestPolynomial::P1 => 1_820,
            TestPolynomial::P2 => 128,
            TestPolynomial::P3 => 8_128,
        }
    }

    /// Convolution job count reported in Table 2.
    pub fn paper_convolutions(&self) -> usize {
        match self {
            TestPolynomial::P1 => 16_380,
            TestPolynomial::P2 => 24_192,
            TestPolynomial::P3 => 24_256,
        }
    }

    /// Addition job count reported in Table 2.
    pub fn paper_additions(&self) -> usize {
        match self {
            TestPolynomial::P1 => 9_084,
            TestPolynomial::P2 => 8_192,
            TestPolynomial::P3 => 24_256,
        }
    }

    /// The monomial supports at full paper scale.
    pub fn supports(&self) -> Vec<Vec<usize>> {
        match self {
            TestPolynomial::P1 => combinations(16, 4),
            TestPolynomial::P2 => banded_supports(128, 64, 128),
            TestPolynomial::P3 => combinations(128, 2),
        }
    }

    /// The monomial supports of the reduced (CPU-friendly) variant: the same
    /// structural family at a smaller size.
    pub fn reduced_supports(&self) -> (usize, Vec<Vec<usize>>) {
        match self {
            // C(10,4) = 210 monomials of 4 variables.
            TestPolynomial::P1 => (10, combinations(10, 4)),
            // 24 monomials of 24 consecutive variables out of 48.
            TestPolynomial::P2 => (48, banded_supports(48, 24, 24)),
            // C(48,2) = 1128 pairs.
            TestPolynomial::P3 => (48, combinations(48, 2)),
        }
    }

    /// Builds the full-scale polynomial with random series coefficients.
    pub fn build<C: Coeff + RandomCoeff>(&self, degree: usize, seed: u64) -> Polynomial<C> {
        let mut rng = StdRng::seed_from_u64(seed);
        polynomial_with_supports(self.supports(), self.num_variables(), degree, &mut rng)
    }

    /// Builds the reduced polynomial with random series coefficients.
    pub fn build_reduced<C: Coeff + RandomCoeff>(&self, degree: usize, seed: u64) -> Polynomial<C> {
        let (n, supports) = self.reduced_supports();
        let mut rng = StdRng::seed_from_u64(seed);
        polynomial_with_supports(supports, n, degree, &mut rng)
    }

    /// Builds a full-scale *system* of `equations` polynomials sharing this
    /// test polynomial's monomial structure, with independent random
    /// coefficients per equation (the shape of the paper's Newton systems:
    /// every equation touches the same variables, none share coefficients).
    pub fn build_system<C: Coeff + RandomCoeff>(
        &self,
        equations: usize,
        degree: usize,
        seed: u64,
    ) -> Vec<Polynomial<C>> {
        (0..equations)
            .map(|e| self.build(degree, seed.wrapping_add(7919 * e as u64)))
            .collect()
    }

    /// Builds the reduced (CPU-friendly) variant of [`build_system`](Self::build_system).
    pub fn build_reduced_system<C: Coeff + RandomCoeff>(
        &self,
        equations: usize,
        degree: usize,
        seed: u64,
    ) -> Vec<Polynomial<C>> {
        (0..equations)
            .map(|e| self.build_reduced(degree, seed.wrapping_add(7919 * e as u64)))
            .collect()
    }

    /// Random input series for the full-scale polynomial.
    pub fn inputs<C: Coeff + RandomCoeff>(&self, degree: usize, seed: u64) -> Vec<Series<C>> {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x5eed));
        psmd_core::random_inputs(self.num_variables(), degree, &mut rng)
    }

    /// Random input series for the reduced polynomial.
    pub fn reduced_inputs<C: Coeff + RandomCoeff>(
        &self,
        degree: usize,
        seed: u64,
    ) -> Vec<Series<C>> {
        let (n, _) = self.reduced_supports();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x5eed));
        psmd_core::random_inputs(n, degree, &mut rng)
    }

    /// Builds the polynomial at the requested [`Scale`].
    pub fn build_at<C: Coeff + RandomCoeff>(
        &self,
        degree: usize,
        scale: Scale,
        seed: u64,
    ) -> Polynomial<C> {
        match scale {
            Scale::Reduced => self.build_reduced(degree, seed),
            Scale::Full => self.build(degree, seed),
        }
    }

    /// Random input series at the requested [`Scale`].
    pub fn inputs_at<C: Coeff + RandomCoeff>(
        &self,
        degree: usize,
        scale: Scale,
        seed: u64,
    ) -> Vec<Series<C>> {
        match scale {
            Scale::Reduced => self.reduced_inputs(degree, seed),
            Scale::Full => self.inputs(degree, seed),
        }
    }

    /// The polynomial as a precision-erased engine source: the precision is
    /// picked with a runtime [`Precision`] value instead of a type
    /// parameter.
    pub fn any_polynomial(
        &self,
        precision: Precision,
        degree: usize,
        scale: Scale,
        seed: u64,
    ) -> AnyPolySource {
        at_precision!(precision, C => self.build_at::<C>(degree, scale, seed))
    }

    /// A system of `equations` polynomials (independent coefficients per
    /// equation) as one precision-erased engine source.
    pub fn any_system(
        &self,
        precision: Precision,
        equations: usize,
        degree: usize,
        scale: Scale,
        seed: u64,
    ) -> AnyPolySource {
        at_precision!(precision, C => match scale {
            Scale::Reduced => self.build_reduced_system::<C>(equations, degree, seed),
            Scale::Full => self.build_system::<C>(equations, degree, seed),
        })
    }

    /// The equations of [`Self::any_system`] as individual single-polynomial
    /// sources (same per-equation seeds, so the polynomials match the fused
    /// system exactly) — for looped per-equation comparisons.
    pub fn any_system_equations(
        &self,
        precision: Precision,
        equations: usize,
        degree: usize,
        scale: Scale,
        seed: u64,
    ) -> Vec<AnyPolySource> {
        (0..equations)
            .map(|e| {
                self.any_polynomial(precision, degree, scale, seed.wrapping_add(7919 * e as u64))
            })
            .collect()
    }

    /// One input-series vector as precision-erased engine inputs.
    pub fn any_inputs(
        &self,
        precision: Precision,
        degree: usize,
        scale: Scale,
        seed: u64,
    ) -> AnyInputs {
        at_precision!(precision, C => self.inputs_at::<C>(degree, scale, seed))
    }

    /// A whole batch of input-series vectors (one per seed) as
    /// precision-erased engine inputs.
    pub fn any_batch_inputs(
        &self,
        precision: Precision,
        degree: usize,
        scale: Scale,
        seeds: &[u64],
    ) -> AnyInputs {
        at_precision!(precision, C => seeds
            .iter()
            .map(|&s| self.inputs_at::<C>(degree, scale, s))
            .collect::<Vec<_>>())
    }
}

/// The degrees used in the paper's scalability tables (Tables 5-7).
pub const PAPER_DEGREES: [usize; 10] = [0, 8, 15, 31, 63, 95, 127, 152, 159, 191];

/// The degrees used by default for measured CPU sweeps (a CPU-affordable
/// prefix of [`PAPER_DEGREES`]).
pub const REDUCED_DEGREES: [usize; 4] = [0, 8, 15, 31];

#[cfg(test)]
mod tests {
    use super::*;
    use psmd_core::Schedule;
    use psmd_multidouble::Dd;

    #[test]
    fn table_2_structure_counts() {
        for t in TestPolynomial::ALL {
            let supports = t.supports();
            assert_eq!(supports.len(), t.num_monomials(), "{}", t.label());
            assert!(supports
                .iter()
                .all(|s| s.len() == t.variables_per_monomial()));
            assert!(supports
                .iter()
                .all(|s| *s.last().unwrap() < t.num_variables()));
        }
    }

    #[test]
    fn p1_job_counts_match_table_2_exactly() {
        let p: Polynomial<Dd> = TestPolynomial::P1.build(0, 1);
        let s = Schedule::build(&p);
        assert_eq!(s.convolution_jobs(), 16_380);
        assert_eq!(s.addition_jobs(), 9_084);
        // The four convolution kernel launches of Section 6.1.
        assert_eq!(
            s.convolution_layer_sizes(),
            vec![3_640, 5_460, 5_460, 1_820]
        );
    }

    #[test]
    fn p2_job_counts_match_table_2_exactly() {
        let p: Polynomial<Dd> = TestPolynomial::P2.build(0, 1);
        let s = Schedule::build(&p);
        assert_eq!(s.convolution_jobs(), 24_192);
        assert_eq!(s.addition_jobs(), 8_192);
        // The first 31 convolution layers have 256 blocks each (Section 6.2).
        let sizes = s.convolution_layer_sizes();
        assert!(sizes[..31].iter().all(|&b| b == 256));
    }

    #[test]
    fn p3_job_counts_match_table_2_within_documented_deviation() {
        let p: Polynomial<Dd> = TestPolynomial::P3.build(0, 1);
        let s = Schedule::build(&p);
        // Our scheme needs 3 convolutions per two-variable monomial, i.e.
        // 24,384; the paper reports 24,256 (a 0.5% difference documented in
        // EXPERIMENTS.md).
        assert_eq!(s.convolution_jobs(), 3 * 8_128);
        assert!(
            (s.convolution_jobs() as i64 - TestPolynomial::P3.paper_convolutions() as i64).abs()
                <= 128
        );
        // The addition count matches the paper exactly.
        assert_eq!(s.addition_jobs(), 24_256);
    }

    #[test]
    fn reduced_variants_keep_the_structural_family() {
        for t in TestPolynomial::ALL {
            let (n, supports) = t.reduced_supports();
            assert!(n <= t.num_variables());
            assert!(!supports.is_empty());
            let width = supports[0].len();
            assert!(supports.iter().all(|s| s.len() == width));
            assert!(supports.iter().all(|s| *s.last().unwrap() < n));
        }
    }

    #[test]
    fn builders_are_reproducible() {
        let a: Polynomial<Dd> = TestPolynomial::P1.build_reduced(3, 7);
        let b: Polynomial<Dd> = TestPolynomial::P1.build_reduced(3, 7);
        assert_eq!(a, b);
        let c: Polynomial<Dd> = TestPolynomial::P1.build_reduced(3, 8);
        assert!(a != c);
        let za: Vec<Series<Dd>> = TestPolynomial::P1.reduced_inputs(3, 7);
        let zb: Vec<Series<Dd>> = TestPolynomial::P1.reduced_inputs(3, 7);
        assert_eq!(za, zb);
    }

    #[test]
    fn any_constructors_dispatch_on_the_precision_value() {
        let engine = psmd_core::Engine::builder().threads(0).build();
        for precision in [Precision::D1, Precision::D4, Precision::D10] {
            let source = TestPolynomial::P1.any_polynomial(precision, 2, Scale::Reduced, 7);
            assert_eq!(source.precision(), precision);
            let plan = engine.compile_any(source);
            assert_eq!(plan.precision(), precision);
            let inputs = TestPolynomial::P1.any_inputs(precision, 2, Scale::Reduced, 7);
            let out = plan.request(&inputs).run();
            assert_eq!(out.precision(), precision);
        }
        // The split system equations reproduce the fused system's
        // polynomials (same seeds), so the fused plan and the per-equation
        // plans describe the same mathematics.
        let fused = TestPolynomial::P1.any_system(Precision::D2, 3, 2, Scale::Reduced, 5);
        let split = TestPolynomial::P1.any_system_equations(Precision::D2, 3, 2, Scale::Reduced, 5);
        assert_eq!(split.len(), 3);
        let fused_stats = engine.compile_any(fused).stats();
        assert_eq!(fused_stats.equations, 3);
        assert_eq!(fused_stats.total_monomials, 3 * 210);
    }

    #[test]
    fn labels_round_trip() {
        for t in TestPolynomial::ALL {
            assert_eq!(TestPolynomial::parse(t.label()), Some(t));
        }
        assert_eq!(TestPolynomial::parse("p9"), None);
    }
}
