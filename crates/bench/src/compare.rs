//! Baseline comparison for the CI perf-regression gate.
//!
//! The perf-snapshot CI job writes one `BENCH_*.json` report per harness
//! mode (see [`crate::JsonReport`]); committed baselines live in
//! `bench/baselines/`.  The `table_harness compare` subcommand parses both
//! documents with the minimal JSON reader below (the offline environment has
//! no serde), matches rows positionally (reports are deterministic), and
//! flags:
//!
//! * any **integer** field that changed at all — launch, rendezvous, job and
//!   monomial counts are deterministic, so any drift is a structural change
//!   that needs a baseline update;
//! * any **timing** field (`*_ms`) that regressed beyond the tolerance —
//!   timings are machine-dependent, so the gate only fails when the current
//!   value exceeds `baseline * (1 + tolerance_pct / 100)` by more than an
//!   absolute 5 ms floor (sub-millisecond rows are below the timing
//!   resolution of a shared CI runner).
//!
//! Timing improvements and in-tolerance noise pass; a failing gate is
//! overridden by regenerating the baseline or by the documented CI label.

use std::collections::BTreeSet;
use std::fmt::Write as _;

/// A parsed JSON value (the subset [`crate::JsonReport`] emits).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Number(f64),
    /// A string.
    Text(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in document order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Text(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a JSON document (objects, arrays, strings, numbers, booleans and
/// null; no trailing garbage).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {pos}",
            char::from(c),
            pos = *pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Text(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of document".to_string()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("invalid \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            c => {
                // Copy the raw UTF-8 byte run of this character.
                let ch_len = utf8_len(c);
                let s = std::str::from_utf8(&bytes[*pos..*pos + ch_len])
                    .map_err(|_| format!("invalid utf-8 at byte {}", *pos))?;
                out.push_str(s);
                *pos += ch_len;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// One detected regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Row index and identity (the row's string fields).
    pub row: String,
    /// The offending field.
    pub field: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Human-readable reason.
    pub reason: String,
}

/// The outcome of comparing a current report against a baseline.
#[derive(Debug, Clone, Default)]
pub struct CompareSummary {
    /// Fields checked in total.
    pub checked: usize,
    /// Timing fields within tolerance (including improvements).
    pub passed: usize,
    /// Detected regressions, in row order.
    pub regressions: Vec<Regression>,
}

impl CompareSummary {
    /// True when no regression was found.
    pub fn is_pass(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Renders the summary as a report block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "checked {} fields: {} ok, {} regressed",
            self.checked,
            self.passed,
            self.regressions.len()
        );
        for r in &self.regressions {
            let _ = writeln!(
                out,
                "  REGRESSION {} / {}: baseline {} -> current {} ({})",
                r.row, r.field, r.baseline, r.current, r.reason
            );
        }
        out
    }
}

/// True for fields whose values are machine-dependent timings — higher is
/// worse, compared with tolerance.  Everything else numeric is treated as a
/// deterministic count and compared exactly, except [`is_ignored_field`].
fn is_timing_field(name: &str) -> bool {
    name.ends_with("_ms")
}

/// Derived ratio fields (higher is *better*, and machine-dependent): not
/// gated at all — the underlying `*_ms` fields carry the signal, and an
/// exact or higher-is-worse comparison would both misfire on them.
fn is_ignored_field(name: &str) -> bool {
    name == "speedup" || name.ends_with("_speedup")
}

/// Identity of a row: its string-valued fields plus the standard integer
/// identity fields, for readable diagnostics.
fn row_identity(row: &Json, index: usize) -> String {
    let mut parts = vec![format!("row {index}")];
    if let Json::Object(fields) = row {
        for (k, v) in fields {
            match v {
                Json::Text(s) => parts.push(format!("{k}={s}")),
                Json::Number(x) if matches!(k.as_str(), "degree" | "batch" | "equations") => {
                    parts.push(format!("{k}={x}"))
                }
                _ => {}
            }
        }
    }
    parts.join(" ")
}

/// Compares a current [`crate::JsonReport`] document against a baseline.
///
/// Rows are matched positionally (the harness emits them deterministically);
/// a row-count or command mismatch is reported as a regression of its own
/// (the baseline must be regenerated when the report schema changes).
/// `tolerance_pct` applies to `*_ms` timing fields; deterministic integer
/// fields must match exactly.  Timing fields missing from either side are
/// ignored; count fields present in the baseline must exist in the current
/// report.
pub fn compare_reports(
    baseline: &str,
    current: &str,
    tolerance_pct: f64,
) -> Result<CompareSummary, String> {
    let base = parse_json(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur = parse_json(current).map_err(|e| format!("current: {e}"))?;
    let mut summary = CompareSummary::default();
    let base_cmd = base.get("command").and_then(Json::as_str).unwrap_or("");
    let cur_cmd = cur.get("command").and_then(Json::as_str).unwrap_or("");
    if base_cmd != cur_cmd {
        return Err(format!(
            "command mismatch: baseline '{base_cmd}' vs current '{cur_cmd}'"
        ));
    }
    let base_rows = base
        .get("rows")
        .and_then(Json::as_array)
        .ok_or("baseline has no rows array")?;
    let cur_rows = cur
        .get("rows")
        .and_then(Json::as_array)
        .ok_or("current has no rows array")?;
    if base_rows.len() != cur_rows.len() {
        return Err(format!(
            "row count mismatch: baseline {} vs current {} (regenerate the baseline)",
            base_rows.len(),
            cur_rows.len()
        ));
    }
    for (i, (b_row, c_row)) in base_rows.iter().zip(cur_rows.iter()).enumerate() {
        let identity = row_identity(b_row, i);
        let Json::Object(b_fields) = b_row else {
            return Err(format!("baseline row {i} is not an object"));
        };
        let keys: BTreeSet<&String> = b_fields.iter().map(|(k, _)| k).collect();
        for key in keys {
            if is_ignored_field(key) {
                continue;
            }
            let Some(b_val) = b_row.get(key).and_then(Json::as_number) else {
                continue; // identity / text field
            };
            let c_val = c_row.get(key).and_then(Json::as_number);
            summary.checked += 1;
            if is_timing_field(key) {
                let Some(c_val) = c_val else {
                    summary.passed += 1; // timing dropped from the report
                    continue;
                };
                // Percentage tolerance plus an absolute 5 ms floor:
                // sub-millisecond rows are below the timing resolution of a
                // shared CI runner and must not flap the gate.
                let limit = (b_val * (1.0 + tolerance_pct / 100.0)).max(b_val + 5.0);
                if c_val > limit {
                    summary.regressions.push(Regression {
                        row: identity.clone(),
                        field: key.clone(),
                        baseline: b_val,
                        current: c_val,
                        reason: format!(
                            "exceeds baseline by more than {tolerance_pct}% (limit {limit:.3})"
                        ),
                    });
                } else {
                    summary.passed += 1;
                }
            } else {
                // Deterministic count: exact match required.
                match c_val {
                    Some(c_val) if c_val == b_val => summary.passed += 1,
                    Some(c_val) => summary.regressions.push(Regression {
                        row: identity.clone(),
                        field: key.clone(),
                        baseline: b_val,
                        current: c_val,
                        reason: "deterministic count changed (regenerate the baseline if \
                                 intentional)"
                            .to_string(),
                    }),
                    None => summary.regressions.push(Regression {
                        row: identity.clone(),
                        field: key.clone(),
                        baseline: b_val,
                        current: f64::NAN,
                        reason: "field missing from the current report".to_string(),
                    }),
                }
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{"command": "graph", "rows": [
        {"poly": "p1", "degree": 8, "layered_ms": 10.0, "graph_ms": 5.0, "graph_rendezvous": 1},
        {"poly": "p2", "degree": 8, "layered_ms": 20.0, "graph_ms": 9.0, "graph_rendezvous": 1}]}"#;

    #[test]
    fn parser_round_trips_a_report() {
        let doc = parse_json(BASE).unwrap();
        assert_eq!(doc.get("command").and_then(Json::as_str), Some("graph"));
        let rows = doc.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("poly").and_then(Json::as_str), Some("p1"));
        assert_eq!(rows[1].get("graph_ms").and_then(Json::as_number), Some(9.0));
    }

    #[test]
    fn parser_handles_escapes_null_and_nesting() {
        let doc =
            parse_json(r#"{"a": "x\"y\\z\nw", "b": null, "c": [1, -2.5e1, true, false]}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_str), Some("x\"y\\z\nw"));
        assert_eq!(doc.get("b"), Some(&Json::Null));
        let c = doc.get("c").and_then(Json::as_array).unwrap();
        assert_eq!(c[1].as_number(), Some(-25.0));
        assert_eq!(c[2], Json::Bool(true));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("nope").is_err());
    }

    #[test]
    fn identical_reports_pass() {
        let summary = compare_reports(BASE, BASE, 10.0).unwrap();
        assert!(summary.is_pass());
        assert_eq!(summary.checked, summary.passed);
    }

    #[test]
    fn timing_within_tolerance_and_improvements_pass() {
        let current = BASE
            .replace("\"layered_ms\": 10.0", "\"layered_ms\": 10.9")
            .replace("\"graph_ms\": 5.0", "\"graph_ms\": 1.0");
        let summary = compare_reports(BASE, &current, 10.0).unwrap();
        assert!(summary.is_pass(), "{}", summary.render());
    }

    #[test]
    fn timing_regression_beyond_tolerance_fails() {
        let current = BASE.replace("\"graph_ms\": 5.0", "\"graph_ms\": 50.0");
        let summary = compare_reports(BASE, &current, 25.0).unwrap();
        assert!(!summary.is_pass());
        assert_eq!(summary.regressions.len(), 1);
        assert_eq!(summary.regressions[0].field, "graph_ms");
        assert!(summary.regressions[0].row.contains("p1"));
    }

    #[test]
    fn deterministic_count_drift_fails_regardless_of_tolerance() {
        let current = BASE.replace("\"graph_rendezvous\": 1}]", "\"graph_rendezvous\": 3}]");
        let summary = compare_reports(BASE, &current, 1000.0).unwrap();
        assert!(!summary.is_pass());
        assert_eq!(summary.regressions[0].field, "graph_rendezvous");
    }

    #[test]
    fn speedup_ratio_fields_are_not_gated_in_either_direction() {
        // Higher-is-better ratios carry no independent signal (the *_ms
        // fields are gated); neither an improvement nor a drop may trip the
        // gate, and exact matching must not apply to them either.
        let base =
            r#"{"command": "graph", "rows": [{"poly": "p1", "layered_ms": 10.0, "speedup": 1.4}]}"#;
        let better = base.replace("1.4", "7.0");
        let worse = base.replace("1.4", "0.1");
        assert!(compare_reports(base, &better, 10.0).unwrap().is_pass());
        assert!(compare_reports(base, &worse, 10.0).unwrap().is_pass());
    }

    #[test]
    fn row_count_and_command_mismatches_are_errors() {
        let fewer = r#"{"command": "graph", "rows": [{"poly": "p1"}]}"#;
        assert!(compare_reports(BASE, fewer, 10.0).is_err());
        let other = BASE.replace("\"command\": \"graph\"", "\"command\": \"batch\"");
        assert!(compare_reports(BASE, &other, 10.0).is_err());
    }

    #[test]
    fn missing_count_field_fails() {
        let current = BASE.replace(", \"graph_rendezvous\": 1}]", "}]");
        let summary = compare_reports(BASE, &current, 10.0).unwrap();
        assert!(!summary.is_pass());
        assert!(summary.regressions[0].reason.contains("missing"));
    }
}
