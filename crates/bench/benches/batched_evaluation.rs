//! Batched multi-series evaluation benchmarks.
//!
//! The batch engine evaluates many input-series vectors against one cached
//! schedule with a single pool launch per job layer (`batch × jobs` blocks),
//! instead of one launch per polynomial per layer.  At small degrees a
//! single polynomial's layers hold too few jobs to fill the worker pool, so
//! the per-polynomial loop starves the workers; the batched launch keeps
//! them busy.  This bench measures that effect on the reduced p1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psmd_bench::TestPolynomial;
use psmd_core::{BatchEvaluator, Polynomial, ScheduledEvaluator};
use psmd_multidouble::Dd;
use psmd_runtime::WorkerPool;
use psmd_series::Series;
use std::hint::black_box;
use std::time::Duration;

fn batch_inputs(poly: TestPolynomial, degree: usize, size: usize) -> Vec<Vec<Series<Dd>>> {
    (0..size)
        .map(|i| poly.reduced_inputs(degree, 1 + i as u64))
        .collect()
}

/// Batched launch vs a loop of per-polynomial launches, increasing batch
/// sizes, reduced p1 at a small degree (where single launches starve the
/// pool).
fn batched_vs_looped(c: &mut Criterion) {
    let degree = 8;
    let p: Polynomial<Dd> = TestPolynomial::P1.build_reduced(degree, 1);
    let evaluator = BatchEvaluator::new(&p);
    let single = ScheduledEvaluator::new(&p);
    let pool = WorkerPool::with_default_parallelism();
    // One launch per layer for the whole batch — not one per polynomial:
    // launches stay at layer-count while blocks scale with the batch.
    let probe = evaluator.evaluate_parallel(&batch_inputs(TestPolynomial::P1, degree, 4), &pool);
    assert_eq!(
        probe.timings.convolution_launches,
        evaluator.schedule().convolution_layers.len()
    );
    assert_eq!(
        probe.timings.convolution_blocks,
        4 * evaluator.schedule().convolution_jobs()
    );
    let mut group = c.benchmark_group("batched_reduced_p1_d8_2d");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for &size in &[4usize, 16, 64] {
        let batch = batch_inputs(TestPolynomial::P1, degree, size);
        group.bench_function(
            BenchmarkId::new("batched_one_launch_per_layer", size),
            |b| {
                b.iter(|| {
                    let r = evaluator.evaluate_parallel(black_box(&batch), &pool);
                    black_box(r.instances.len())
                })
            },
        );
        group.bench_function(
            BenchmarkId::new("looped_per_polynomial_launches", size),
            |b| {
                b.iter(|| {
                    let mut n = 0usize;
                    for inputs in &batch {
                        let r = single.evaluate_parallel(black_box(inputs), &pool);
                        n += r.gradient.len();
                    }
                    black_box(n)
                })
            },
        );
        group.bench_function(BenchmarkId::new("looped_sequential_baseline", size), |b| {
            b.iter(|| {
                let mut n = 0usize;
                for inputs in &batch {
                    let r = single.evaluate_sequential(black_box(inputs));
                    n += r.gradient.len();
                }
                black_box(n)
            })
        });
    }
    group.finish();
}

/// Schedule-construction amortization: building the schedule per polynomial
/// vs building it once for the whole batch.
fn schedule_amortization(c: &mut Criterion) {
    let degree = 4;
    let p: Polynomial<Dd> = TestPolynomial::P1.build_reduced(degree, 1);
    let batch = batch_inputs(TestPolynomial::P1, degree, 16);
    let mut group = c.benchmark_group("schedule_amortization_reduced_p1_d4");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    group.bench_function("rebuild_schedule_per_instance", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for inputs in &batch {
                let ev = ScheduledEvaluator::new(black_box(&p));
                acc += ev.evaluate_sequential(inputs).gradient.len();
            }
            black_box(acc)
        })
    });
    group.bench_function("build_schedule_once_batched", |b| {
        b.iter(|| {
            let ev = BatchEvaluator::new(black_box(&p));
            black_box(ev.evaluate_sequential(&batch).len())
        })
    });
    group.finish();
}

criterion_group!(benches, batched_vs_looped, schedule_amortization);
criterion_main!(benches);
