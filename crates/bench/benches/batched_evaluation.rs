//! Batched multi-series evaluation benchmarks.
//!
//! A single-polynomial plan evaluates many input-series vectors against one
//! cached schedule with a single pool launch per job layer (`batch × jobs`
//! blocks), instead of one launch per polynomial per layer.  At small
//! degrees a single polynomial's layers hold too few jobs to fill the
//! worker pool, so the per-polynomial loop starves the workers; the batched
//! launch keeps them busy.  This bench measures that effect on the reduced
//! p1 through the engine's unified `Inputs::Batch` path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psmd_bench::TestPolynomial;
use psmd_core::{Engine, Polynomial};
use psmd_multidouble::Dd;
use psmd_series::Series;
use std::hint::black_box;
use std::time::Duration;

fn batch_inputs(poly: TestPolynomial, degree: usize, size: usize) -> Vec<Vec<Series<Dd>>> {
    (0..size)
        .map(|i| poly.reduced_inputs(degree, 1 + i as u64))
        .collect()
}

/// Batched launch vs a loop of per-instance evaluations, increasing batch
/// sizes, reduced p1 at a small degree (where single launches starve the
/// pool).
fn batched_vs_looped(c: &mut Criterion) {
    let degree = 8;
    let p: Polynomial<Dd> = TestPolynomial::P1.build_reduced(degree, 1);
    let engine = Engine::new();
    let plan = engine.compile(p);
    let layers = plan.schedule().unwrap().convolution_layers.len();
    let jobs = plan.schedule().unwrap().convolution_jobs();
    // One launch per layer for the whole batch — not one per polynomial:
    // launches stay at layer-count while blocks scale with the batch.
    let probe = plan
        .request(&batch_inputs(TestPolynomial::P1, degree, 4))
        .run()
        .into_batch();
    assert_eq!(probe.timings.convolution_launches, layers);
    assert_eq!(probe.timings.convolution_blocks, 4 * jobs);
    let mut group = c.benchmark_group("batched_reduced_p1_d8_2d");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for &size in &[4usize, 16, 64] {
        let batch = batch_inputs(TestPolynomial::P1, degree, size);
        group.bench_function(
            BenchmarkId::new("batched_one_launch_per_layer", size),
            |b| {
                b.iter(|| {
                    let r = plan.request(black_box(&batch)).run().into_batch();
                    black_box(r.instances.len())
                })
            },
        );
        group.bench_function(
            BenchmarkId::new("looped_per_polynomial_launches", size),
            |b| {
                b.iter(|| {
                    let mut n = 0usize;
                    for inputs in &batch {
                        let r = plan.request(black_box(inputs)).run().into_single();
                        n += r.gradient.len();
                    }
                    black_box(n)
                })
            },
        );
        group.bench_function(BenchmarkId::new("looped_sequential_baseline", size), |b| {
            b.iter(|| {
                let mut n = 0usize;
                for inputs in &batch {
                    let r = plan
                        .request(black_box(inputs))
                        .sequential()
                        .run()
                        .into_single();
                    n += r.gradient.len();
                }
                black_box(n)
            })
        });
    }
    group.finish();
}

/// Schedule-construction amortization: compiling per instance (plan cache
/// disabled) vs compiling once and evaluating the whole batch through the
/// shared plan.
fn schedule_amortization(c: &mut Criterion) {
    let degree = 4;
    let p: Polynomial<Dd> = TestPolynomial::P1.build_reduced(degree, 1);
    let batch = batch_inputs(TestPolynomial::P1, degree, 16);
    let cold = Engine::builder().plan_cache_capacity(0).build();
    let warm = Engine::new();
    let shared = warm.compile(p.clone());
    let mut group = c.benchmark_group("schedule_amortization_reduced_p1_d4");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    group.bench_function("recompile_plan_per_instance", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for inputs in &batch {
                let plan = cold.compile(black_box(p.clone()));
                acc += plan
                    .request(inputs)
                    .sequential()
                    .run()
                    .into_single()
                    .gradient
                    .len();
            }
            black_box(acc)
        })
    });
    group.bench_function("compile_once_batched", |b| {
        b.iter(|| black_box(shared.request(&batch).sequential().run().into_batch().len()))
    });
    group.finish();
}

criterion_group!(benches, batched_vs_looped, schedule_amortization);
criterion_main!(benches);
