//! Scalar multiple-double operation benchmarks.
//!
//! These measure the cost overhead of each precision relative to plain
//! doubles, the quantity the paper's Section 6.3 discusses (the "cost
//! overhead factor of double double over double is typically a factor of
//! about five") and the input to the achieved-GFLOPS numbers in
//! EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psmd_multidouble::{Md, RandomCoeff};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench_precision<const N: usize>(c: &mut Criterion, label: &str) {
    let mut rng = StdRng::seed_from_u64(7);
    let xs: Vec<Md<N>> = (0..256)
        .map(|_| RandomCoeff::random_uniform(&mut rng))
        .collect();
    let ys: Vec<Md<N>> = (0..256)
        .map(|_| RandomCoeff::random_uniform(&mut rng))
        .collect();
    let mut group = c.benchmark_group("multidouble");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(500));
    group.bench_function(BenchmarkId::new("add", label), |b| {
        b.iter(|| {
            let mut acc = Md::<N>::ZERO;
            for (x, y) in xs.iter().zip(ys.iter()) {
                acc = acc.add(&black_box(x.add(y)));
            }
            black_box(acc)
        })
    });
    group.bench_function(BenchmarkId::new("mul", label), |b| {
        b.iter(|| {
            let mut acc = Md::<N>::ZERO;
            for (x, y) in xs.iter().zip(ys.iter()) {
                acc = acc.add(&black_box(x.mul(y)));
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_precision::<1>(c, "1d");
    bench_precision::<2>(c, "2d");
    bench_precision::<3>(c, "3d");
    bench_precision::<4>(c, "4d");
    bench_precision::<5>(c, "5d");
    bench_precision::<8>(c, "8d");
    bench_precision::<10>(c, "10d");
}

criterion_group!(multidouble_ops, benches);
criterion_main!(multidouble_ops);
