//! Convolution kernel benchmarks (Section 2 of the paper).
//!
//! Two ablations:
//!
//! * zero-insertion kernel versus the direct (thread-divergent) formula, the
//!   design choice the paper motivates in Section 2;
//! * scaling of one convolution with the truncation degree (the O(d^2)
//!   growth underlying Figure 6) and with the precision (Figure 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psmd_multidouble::{Dd, Deca, Md, RandomCoeff};
use psmd_series::{convolve_seq, convolve_zero_insertion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn random_series<const N: usize>(rng: &mut StdRng, d: usize) -> Vec<Md<N>> {
    (0..=d).map(|_| RandomCoeff::random_uniform(rng)).collect()
}

/// Zero-insertion vs direct kernel at a fixed degree (double-double).
fn kernel_ablation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let d = 63;
    let x: Vec<Dd> = random_series(&mut rng, d);
    let y: Vec<Dd> = random_series(&mut rng, d);
    let mut group = c.benchmark_group("convolution_kernel_ablation");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(600));
    group.bench_function("zero_insertion_d63_2d", |b| {
        let mut z = vec![Dd::ZERO; d + 1];
        let mut scratch = vec![Dd::ZERO; 4 * (d + 1)];
        b.iter(|| {
            convolve_zero_insertion(black_box(&x), black_box(&y), &mut z, &mut scratch);
            black_box(z[d])
        })
    });
    group.bench_function("direct_d63_2d", |b| {
        let mut z = vec![Dd::ZERO; d + 1];
        b.iter(|| {
            convolve_seq(black_box(&x), black_box(&y), &mut z);
            black_box(z[d])
        })
    });
    group.finish();
}

/// One convolution as a function of the truncation degree (deca-double), the
/// quadratic scaling of Figure 6.
fn degree_scaling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut group = c.benchmark_group("convolution_degree_scaling_10d");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(600));
    for d in [15usize, 31, 63] {
        let x: Vec<Deca> = random_series(&mut rng, d);
        let y: Vec<Deca> = random_series(&mut rng, d);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let mut z = vec![Deca::ZERO; d + 1];
            let mut scratch = vec![Deca::ZERO; 4 * (d + 1)];
            b.iter(|| {
                convolve_zero_insertion(black_box(&x), black_box(&y), &mut z, &mut scratch);
                black_box(z[d])
            })
        });
    }
    group.finish();
}

/// One convolution at a fixed degree for increasing precision (Figure 5's
/// precision axis).
fn precision_scaling(c: &mut Criterion) {
    fn bench_one<const N: usize>(
        group: &mut criterion::BenchmarkGroup<criterion::measurement::WallTime>,
        label: &str,
    ) {
        let mut rng = StdRng::seed_from_u64(9);
        let d = 31;
        let x: Vec<Md<N>> = random_series(&mut rng, d);
        let y: Vec<Md<N>> = random_series(&mut rng, d);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut z = vec![Md::<N>::ZERO; d + 1];
            let mut scratch = vec![Md::<N>::ZERO; 4 * (d + 1)];
            b.iter(|| {
                convolve_zero_insertion(black_box(&x), black_box(&y), &mut z, &mut scratch);
                black_box(z[d])
            })
        });
    }
    let mut group = c.benchmark_group("convolution_precision_scaling_d31");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(600));
    bench_one::<1>(&mut group, "1d");
    bench_one::<2>(&mut group, "2d");
    bench_one::<4>(&mut group, "4d");
    bench_one::<8>(&mut group, "8d");
    bench_one::<10>(&mut group, "10d");
    group.finish();
}

criterion_group!(
    convolution_kernels,
    kernel_ablation,
    degree_scaling,
    precision_scaling
);
criterion_main!(convolution_kernels);
