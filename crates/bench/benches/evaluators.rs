//! Evaluator benchmarks: naive baseline vs the paper's scheduled algorithm,
//! sequential vs block-parallel execution (the speedups behind Table 3).

use criterion::{criterion_group, criterion_main, Criterion};
use psmd_bench::TestPolynomial;
use psmd_core::{evaluate_naive, ConvolutionKernel, Polynomial, ScheduledEvaluator};
use psmd_multidouble::Dd;
use psmd_runtime::WorkerPool;
use psmd_series::Series;
use std::hint::black_box;
use std::time::Duration;

fn evaluator_comparison(c: &mut Criterion) {
    let degree = 15;
    let p: Polynomial<Dd> = TestPolynomial::P1.build_reduced(degree, 1);
    let z: Vec<Series<Dd>> = TestPolynomial::P1.reduced_inputs(degree, 1);
    let evaluator = ScheduledEvaluator::new(&p);
    let direct = ScheduledEvaluator::new(&p).with_kernel(ConvolutionKernel::Direct);
    let pool = WorkerPool::with_default_parallelism();
    let mut group = c.benchmark_group("evaluators_reduced_p1_d15_2d");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    group.bench_function("naive_baseline", |b| {
        b.iter(|| black_box(evaluate_naive(&p, &z).value.coeff(0)))
    });
    group.bench_function("scheduled_sequential", |b| {
        b.iter(|| black_box(evaluator.evaluate_sequential(&z).value.coeff(0)))
    });
    group.bench_function("scheduled_sequential_direct_kernel", |b| {
        b.iter(|| black_box(direct.evaluate_sequential(&z).value.coeff(0)))
    });
    group.bench_function("scheduled_parallel", |b| {
        b.iter(|| black_box(evaluator.evaluate_parallel(&z, &pool).value.coeff(0)))
    });
    group.finish();
}

fn schedule_construction(c: &mut Criterion) {
    let p: Polynomial<Dd> = TestPolynomial::P1.build_reduced(0, 1);
    let mut group = c.benchmark_group("schedule_construction");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(800));
    group.bench_function("reduced_p1", |b| {
        b.iter(|| black_box(psmd_core::Schedule::build(&p).convolution_jobs()))
    });
    group.finish();
}

criterion_group!(evaluators, evaluator_comparison, schedule_construction);
criterion_main!(evaluators);
