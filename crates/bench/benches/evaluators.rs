//! Evaluator benchmarks: naive baseline vs the paper's scheduled algorithm,
//! sequential vs block-parallel execution (the speedups behind Table 3).

use criterion::{criterion_group, criterion_main, Criterion};
use psmd_bench::TestPolynomial;
use psmd_core::{evaluate_naive, ConvolutionKernel, Engine, EvalOptions, Polynomial};
use psmd_multidouble::Dd;
use psmd_series::Series;
use std::hint::black_box;
use std::time::Duration;

fn evaluator_comparison(c: &mut Criterion) {
    let degree = 15;
    let p: Polynomial<Dd> = TestPolynomial::P1.build_reduced(degree, 1);
    let z: Vec<Series<Dd>> = TestPolynomial::P1.reduced_inputs(degree, 1);
    let engine = Engine::new();
    let plan = engine.compile(p.clone());
    let direct = engine.compile_with_options(
        p.clone(),
        EvalOptions::new().with_kernel(ConvolutionKernel::Direct),
    );
    let mut group = c.benchmark_group("evaluators_reduced_p1_d15_2d");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    group.bench_function("naive_baseline", |b| {
        b.iter(|| black_box(evaluate_naive(&p, &z).value.coeff(0)))
    });
    group.bench_function("scheduled_sequential", |b| {
        b.iter(|| {
            black_box(
                plan.request(&z)
                    .sequential()
                    .run()
                    .into_single()
                    .value
                    .coeff(0),
            )
        })
    });
    group.bench_function("scheduled_sequential_direct_kernel", |b| {
        b.iter(|| {
            black_box(
                direct
                    .request(&z)
                    .sequential()
                    .run()
                    .into_single()
                    .value
                    .coeff(0),
            )
        })
    });
    group.bench_function("scheduled_parallel", |b| {
        b.iter(|| black_box(plan.request(&z).run().into_single().value.coeff(0)))
    });
    group.finish();
}

fn schedule_construction(c: &mut Criterion) {
    let p: Polynomial<Dd> = TestPolynomial::P1.build_reduced(0, 1);
    let mut group = c.benchmark_group("schedule_construction");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(800));
    group.bench_function("reduced_p1", |b| {
        b.iter(|| black_box(psmd_core::Schedule::build(&p).convolution_jobs()))
    });
    // The same construction through the engine with the plan cache hitting:
    // the steady-state cost of `Engine::compile` for a known polynomial.
    let engine = Engine::new();
    let _warm = engine.compile(p.clone());
    group.bench_function("reduced_p1_engine_cache_hit", |b| {
        b.iter(|| {
            let plan = engine.compile(p.clone());
            black_box(plan.schedule().unwrap().convolution_jobs())
        })
    });
    group.finish();
}

criterion_group!(evaluators, evaluator_comparison, schedule_construction);
criterion_main!(evaluators);
