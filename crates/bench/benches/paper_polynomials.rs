//! Benchmarks over the (reduced) paper test polynomials — the measured
//! counterparts of Tables 3-7 and Figures 2-6 at CPU-affordable sizes.
//!
//! * `table3_4`: p1/p2/p3 at one degree and precision (block-parallel).
//! * `tables5to7_degrees`: degree scaling of p1 (Tables 5-7, Figure 6).
//! * `figures2to5_precisions`: precision scaling of p1 (Figures 2-5).
//!
//! Every run goes through the engine's precision-erased plans: the
//! precision is a [`Precision`] *value*, and the plan cache amortizes
//! schedule construction across iterations exactly like a serving process
//! would.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psmd_bench::{Scale, TestPolynomial};
use psmd_core::Engine;
use psmd_multidouble::Precision;
use std::hint::black_box;
use std::time::Duration;

fn run_reduced(engine: &Engine, poly: TestPolynomial, precision: Precision, degree: usize) -> f64 {
    let plan = engine.compile_any(poly.any_polynomial(precision, degree, Scale::Reduced, 1));
    let inputs = poly.any_inputs(precision, degree, Scale::Reduced, 1);
    plan.request(&inputs).run().timings().wall_clock_ms()
}

/// The three test polynomials at a common degree/precision (Tables 3 and 4).
fn table3_4(c: &mut Criterion) {
    let engine = Engine::new();
    let mut group = c.benchmark_group("tables3_4_reduced_d15_2d");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    for poly in TestPolynomial::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(poly.label()),
            &poly,
            |b, &poly| b.iter(|| black_box(run_reduced(&engine, poly, Precision::D2, 15))),
        );
    }
    group.finish();
}

/// Degree scaling of reduced p1 in double-double (Tables 5-7, Figure 6).
fn tables5to7_degrees(c: &mut Criterion) {
    let engine = Engine::new();
    let mut group = c.benchmark_group("tables5to7_reduced_p1_2d_degrees");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    for d in [0usize, 8, 15, 31] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| black_box(run_reduced(&engine, TestPolynomial::P1, Precision::D2, d)))
        });
    }
    group.finish();
}

/// Precision scaling of reduced p1 at degree 15 (Figures 2-5).
fn figures2to5_precisions(c: &mut Criterion) {
    let engine = Engine::new();
    let mut group = c.benchmark_group("figures2to5_reduced_p1_d15_precisions");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    for precision in [
        Precision::D1,
        Precision::D2,
        Precision::D4,
        Precision::D8,
        Precision::D10,
    ] {
        group.bench_function(precision.label(), |b| {
            b.iter(|| black_box(run_reduced(&engine, TestPolynomial::P1, precision, 15)))
        });
    }
    group.finish();
}

criterion_group!(
    paper_polynomials,
    table3_4,
    tables5to7_degrees,
    figures2to5_precisions
);
criterion_main!(paper_polynomials);
