//! Benchmarks over the (reduced) paper test polynomials — the measured
//! counterparts of Tables 3-7 and Figures 2-6 at CPU-affordable sizes.
//!
//! * `table3_4`: p1/p2/p3 at one degree and precision (block-parallel).
//! * `tables5to7_degrees`: degree scaling of p1 (Tables 5-7, Figure 6).
//! * `figures2to5_precisions`: precision scaling of p1 (Figures 2-5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psmd_bench::TestPolynomial;
use psmd_core::{Polynomial, ScheduledEvaluator};
use psmd_multidouble::{Coeff, Md, RandomCoeff};
use psmd_runtime::WorkerPool;
use psmd_series::Series;
use std::hint::black_box;
use std::time::Duration;

fn run_reduced<C: Coeff + RandomCoeff>(
    poly: TestPolynomial,
    degree: usize,
    pool: &WorkerPool,
) -> f64 {
    let p: Polynomial<C> = poly.build_reduced(degree, 1);
    let z: Vec<Series<C>> = poly.reduced_inputs(degree, 1);
    let evaluator = ScheduledEvaluator::new(&p);
    evaluator
        .evaluate_parallel(&z, pool)
        .value
        .coeff(0)
        .magnitude()
}

/// The three test polynomials at a common degree/precision (Tables 3 and 4).
fn table3_4(c: &mut Criterion) {
    let pool = WorkerPool::with_default_parallelism();
    let mut group = c.benchmark_group("tables3_4_reduced_d15_2d");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    for poly in TestPolynomial::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(poly.label()),
            &poly,
            |b, &poly| b.iter(|| black_box(run_reduced::<Md<2>>(poly, 15, &pool))),
        );
    }
    group.finish();
}

/// Degree scaling of reduced p1 in double-double (Tables 5-7, Figure 6).
fn tables5to7_degrees(c: &mut Criterion) {
    let pool = WorkerPool::with_default_parallelism();
    let mut group = c.benchmark_group("tables5to7_reduced_p1_2d_degrees");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    for d in [0usize, 8, 15, 31] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| black_box(run_reduced::<Md<2>>(TestPolynomial::P1, d, &pool)))
        });
    }
    group.finish();
}

/// Precision scaling of reduced p1 at degree 15 (Figures 2-5).
fn figures2to5_precisions(c: &mut Criterion) {
    let pool = WorkerPool::with_default_parallelism();
    let mut group = c.benchmark_group("figures2to5_reduced_p1_d15_precisions");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    group.bench_function("1d", |b| {
        b.iter(|| black_box(run_reduced::<Md<1>>(TestPolynomial::P1, 15, &pool)))
    });
    group.bench_function("2d", |b| {
        b.iter(|| black_box(run_reduced::<Md<2>>(TestPolynomial::P1, 15, &pool)))
    });
    group.bench_function("4d", |b| {
        b.iter(|| black_box(run_reduced::<Md<4>>(TestPolynomial::P1, 15, &pool)))
    });
    group.bench_function("8d", |b| {
        b.iter(|| black_box(run_reduced::<Md<8>>(TestPolynomial::P1, 15, &pool)))
    });
    group.bench_function("10d", |b| {
        b.iter(|| black_box(run_reduced::<Md<10>>(TestPolynomial::P1, 15, &pool)))
    });
    group.finish();
}

criterion_group!(
    paper_polynomials,
    table3_4,
    tables5to7_degrees,
    figures2to5_precisions
);
criterion_main!(paper_polynomials);
