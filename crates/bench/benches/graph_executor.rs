//! Graph-executor benchmarks: dependency-driven work stealing vs layered
//! barrier launches.
//!
//! The layered reference pays one pool rendezvous per job layer — a deep
//! schedule at a small degree is almost entirely rendezvous overhead on a
//! CPU.  The graph executor pays one rendezvous per evaluation and releases
//! every block the moment its operands are ready, so the win grows with the
//! layer count (p2's 16-variable monomials have the deepest chains).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psmd_bench::TestPolynomial;
use psmd_core::{Engine, EvalOptions, ExecMode, Polynomial};
use psmd_multidouble::Dd;
use psmd_series::Series;
use std::hint::black_box;
use std::time::Duration;

/// Layered vs graph execution of single evaluations across the three test
/// polynomials (reduced scale, double-double).
fn layered_vs_graph(c: &mut Criterion) {
    let degree = 8;
    let engine = Engine::new();
    let mut group = c.benchmark_group("graph_executor_reduced_d8_2d");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for poly in TestPolynomial::ALL {
        let p: Polynomial<Dd> = poly.build_reduced(degree, 1);
        let inputs: Vec<Series<Dd>> = poly.reduced_inputs(degree, 1);
        let layered = engine.compile(p.clone());
        let graph =
            engine.compile_with_options(p, EvalOptions::new().with_exec_mode(ExecMode::Graph));
        // Same schedule, same jobs: results are bitwise identical.
        assert!(layered
            .request(&inputs)
            .run()
            .bitwise_eq(&graph.request(&inputs).run()));
        group.bench_function(BenchmarkId::new("layered_barriers", poly.label()), |bch| {
            bch.iter(|| {
                let r = layered.request(black_box(&inputs)).run().into_single();
                black_box(r.value.degree())
            })
        });
        group.bench_function(
            BenchmarkId::new("graph_work_stealing", poly.label()),
            |bch| {
                bch.iter(|| {
                    let r = graph.request(black_box(&inputs)).run().into_single();
                    black_box(r.value.degree())
                })
            },
        );
    }
    group.finish();
}

/// The same comparison on a fused system evaluation, where the merged
/// schedule multiplies the blocks per layer but keeps the layer count.
fn system_layered_vs_graph(c: &mut Criterion) {
    let degree = 6;
    let m = 4;
    let engine = Engine::new();
    let system: Vec<Polynomial<Dd>> = TestPolynomial::P1.build_reduced_system(m, degree, 1);
    let inputs: Vec<Series<Dd>> = TestPolynomial::P1.reduced_inputs(degree, 1);
    let layered = engine.compile(system.clone());
    let graph =
        engine.compile_with_options(system, EvalOptions::new().with_exec_mode(ExecMode::Graph));
    assert!(layered
        .request(&inputs)
        .run()
        .bitwise_eq(&graph.request(&inputs).run()));
    let mut group = c.benchmark_group("graph_executor_system_reduced_p1_d6_2d");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function(BenchmarkId::new("layered_barriers", m), |bch| {
        bch.iter(|| {
            let r = layered.request(black_box(&inputs)).run().into_system();
            black_box(r.values.len())
        })
    });
    group.bench_function(BenchmarkId::new("graph_work_stealing", m), |bch| {
        bch.iter(|| {
            let r = graph.request(black_box(&inputs)).run().into_system();
            black_box(r.values.len())
        })
    });
    group.finish();
}

criterion_group!(benches, layered_vs_graph, system_layered_vs_graph);
criterion_main!(benches);
