//! Fused polynomial-system evaluation benchmarks.
//!
//! A system plan merges the monomial sets of all `m` equations into one
//! deduplicated schedule and runs each job layer as a single pool launch
//! covering every equation, producing all values plus the full `m × n`
//! Jacobian in one pass.  The alternative — one single-polynomial plan per
//! equation — issues `m` times the launches and rebuilds per-equation
//! schedules.  This bench measures both effects on a reduced p1 system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psmd_bench::TestPolynomial;
use psmd_core::{Engine, Polynomial};
use psmd_multidouble::Dd;
use psmd_series::Series;
use std::hint::black_box;
use std::time::Duration;

/// Fused system launch vs a loop of per-equation launches for growing
/// system sizes, reduced p1 at a small degree (where per-equation layers
/// are too small to fill the pool).
fn fused_vs_looped(c: &mut Criterion) {
    let degree = 8;
    let engine = Engine::new();
    let inputs: Vec<Series<Dd>> = TestPolynomial::P1.reduced_inputs(degree, 1);
    let mut group = c.benchmark_group("system_reduced_p1_d8_2d");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for &m in &[2usize, 4, 8] {
        let system: Vec<Polynomial<Dd>> = TestPolynomial::P1.build_reduced_system(m, degree, 1);
        let fused = engine.compile(system.clone());
        // One launch per merged layer for the whole system, not per equation.
        let probe = fused.request(&inputs).run().into_system();
        assert_eq!(
            probe.timings.convolution_launches,
            fused.system_schedule().unwrap().convolution_layers.len()
        );
        let singles: Vec<_> = system.iter().map(|p| engine.compile(p.clone())).collect();
        group.bench_function(BenchmarkId::new("fused_one_launch_per_layer", m), |b| {
            b.iter(|| {
                let r = fused.request(black_box(&inputs)).run().into_system();
                black_box(r.values.len())
            })
        });
        group.bench_function(BenchmarkId::new("looped_per_equation_launches", m), |b| {
            b.iter(|| {
                let mut n = 0usize;
                for single in &singles {
                    let r = single.request(black_box(&inputs)).run().into_single();
                    n += r.gradient.len();
                }
                black_box(n)
            })
        });
    }
    group.finish();
}

/// Schedule amortization across Newton-style repeated evaluations: compile
/// the merged plan once and reuse it, vs recompiling per-equation plans at
/// every evaluation (plan cache disabled to model the cold path).
fn schedule_reuse(c: &mut Criterion) {
    let degree = 4;
    let m = 4;
    let system: Vec<Polynomial<Dd>> = TestPolynomial::P1.build_reduced_system(m, degree, 1);
    let inputs: Vec<Series<Dd>> = TestPolynomial::P1.reduced_inputs(degree, 1);
    let cold = Engine::builder().plan_cache_capacity(0).build();
    let warm = Engine::new();
    let merged = warm.compile(system.clone());
    let mut group = c.benchmark_group("system_schedule_reuse_reduced_p1_d4");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    group.bench_function("recompile_plans_per_evaluation", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for p in &system {
                let plan = cold.compile(black_box(p.clone()));
                acc += plan
                    .request(&inputs)
                    .sequential()
                    .run()
                    .into_single()
                    .gradient
                    .len();
            }
            black_box(acc)
        })
    });
    group.bench_function("compile_merged_plan_once", |b| {
        b.iter(|| {
            black_box(
                merged
                    .request(&inputs)
                    .sequential()
                    .run()
                    .into_system()
                    .values
                    .len(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, fused_vs_looped, schedule_reuse);
criterion_main!(benches);
