//! A cohort: every path currently tracked at one precision, corrected by
//! **one** coalesced batched launch per sweep.
//!
//! Each live path owns a lane (its iterate, tangent, Jacobian and linear
//! solver buffers).  A [`Cohort::round`] stages every live lane's trial
//! iterate into one [`Inputs::Batch`] request against the stacked `[G; F]`
//! plan, runs it as a single fused launch sequence, then advances every
//! lane's state machine — predict, correct, accept, reject or escalate —
//! from its slice of the batched result.  All round-to-round buffers are
//! reused, so the steady-state corrector sweep allocates nothing; only
//! construction and escalation (which rebuilds lanes at a wider precision)
//! allocate.

use psmd_core::{
    try_solve_linearized_into, Engine, Error, EvalOutput, Inputs, LinearSolveWorkspace,
    SystemBatchEvaluation, SystemEvaluation, Workspace,
};
use psmd_multidouble::{Precision, RealCoeff};
use psmd_series::Series;

use crate::control::{next_precision, roundoff, stall_floor};
use crate::homotopy::Homotopy;
use crate::report::{PathStatus, TrackReport};
use crate::spec::HomotopySpec;
use crate::TrackOptions;

/// A path frozen between precisions: everything needed to resume tracking
/// at a wider coefficient type, with the iterate stored as raw limb vectors
/// (`x_limbs[var][coeff][limb]`) so the transfer is exact — zero-extending
/// a renormalized expansion widens it without rounding.
#[derive(Debug, Clone)]
pub(crate) struct RawPath {
    pub path: usize,
    pub t: f64,
    pub step: f64,
    pub x_limbs: Vec<Vec<Vec<f64>>>,
    pub steps: usize,
    pub rejected_steps: usize,
    pub corrector_iterations: usize,
    pub residuals: Vec<f64>,
    pub last_residual: f64,
    pub start_precision: Precision,
    pub escalations: Vec<Precision>,
}

impl RawPath {
    /// A fresh path at `t = 0` from a start solution (one `f64` per
    /// variable; higher series coefficients start at zero).
    pub fn fresh(path: usize, start: &[f64], options: &TrackOptions) -> Self {
        Self {
            path,
            t: 0.0,
            step: options.initial_step,
            x_limbs: start.iter().map(|&c| vec![vec![c]]).collect(),
            steps: 0,
            rejected_steps: 0,
            corrector_iterations: 0,
            residuals: Vec::new(),
            last_residual: f64::INFINITY,
            start_precision: options.start_precision,
            escalations: Vec::new(),
        }
    }
}

/// What ended a lane's life in this cohort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    Converged,
    Failed,
    Escalate,
}

/// Which evaluation the lane is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Evaluating at the accepted point to (re)build the tangent and issue
    /// the first prediction — a lane's state right after construction.
    Priming,
    /// Evaluating at the trial iterate of a predictor step.
    Correcting,
}

/// One path's state and scratch buffers at this cohort's precision.
struct Lane<C> {
    path: usize,
    /// Accepted point and parameter.
    x: Vec<Series<C>>,
    t: f64,
    /// Trial iterate and parameter the next evaluation targets.
    x_trial: Vec<Series<C>>,
    t_trial: f64,
    /// Tangent `dx/dt` at the accepted point (valid once primed).
    dxdt: Vec<Series<C>>,
    /// Scratch: combined residual, Jacobian, solve right-hand side, update.
    h: Vec<Series<C>>,
    jac: Vec<Vec<Series<C>>>,
    rhs: Vec<Series<C>>,
    delta: Vec<Series<C>>,
    solver: LinearSolveWorkspace<C>,
    step: f64,
    iters_this_step: usize,
    steps: usize,
    rejected_steps: usize,
    corrector_iterations: usize,
    residuals: Vec<f64>,
    last_residual: f64,
    start_precision: Precision,
    escalations: Vec<Precision>,
    phase: Phase,
    fate: Option<Fate>,
}

impl<C: RealCoeff> Lane<C> {
    fn absorb(raw: RawPath, n: usize, degree: usize, options: &TrackOptions) -> Self {
        let dpv = C::doubles_per_value();
        let mut pad = vec![0.0; dpv];
        let x: Vec<Series<C>> = raw
            .x_limbs
            .iter()
            .map(|coeffs| {
                let mut s = Series::zero(degree);
                for (k, limbs) in coeffs.iter().enumerate() {
                    let take = limbs.len().min(dpv);
                    pad[..take].copy_from_slice(&limbs[..take]);
                    pad[take..].fill(0.0);
                    s.set_coeff(k, C::from_limbs(&pad));
                }
                s
            })
            .collect();
        let mut residuals = raw.residuals;
        residuals.truncate(options.residual_log);
        residuals.reserve(options.residual_log - residuals.len());
        Self {
            path: raw.path,
            x_trial: x.clone(),
            x,
            t: raw.t,
            t_trial: raw.t,
            dxdt: vec![Series::zero(degree); n],
            h: vec![Series::zero(degree); n],
            jac: vec![vec![Series::zero(degree); n]; n],
            rhs: vec![Series::zero(degree); n],
            delta: vec![Series::zero(degree); n],
            solver: LinearSolveWorkspace::new(),
            step: raw.step.clamp(options.min_step, options.max_step),
            iters_this_step: 0,
            steps: raw.steps,
            rejected_steps: raw.rejected_steps,
            corrector_iterations: raw.corrector_iterations,
            residuals,
            last_residual: raw.last_residual,
            start_precision: raw.start_precision,
            escalations: raw.escalations,
            phase: Phase::Priming,
            fate: None,
        }
    }

    fn export(&self) -> RawPath {
        let dpv = C::doubles_per_value();
        RawPath {
            path: self.path,
            t: self.t,
            step: self.step,
            x_limbs: self
                .x
                .iter()
                .map(|s| {
                    s.coeffs()
                        .iter()
                        .map(|c| {
                            let mut limbs = vec![0.0; dpv];
                            c.write_limbs(&mut limbs);
                            limbs
                        })
                        .collect()
                })
                .collect(),
            steps: self.steps,
            rejected_steps: self.rejected_steps,
            corrector_iterations: self.corrector_iterations,
            residuals: self.residuals.clone(),
            last_residual: self.last_residual,
            start_precision: self.start_precision,
            escalations: self.escalations.clone(),
        }
    }

    fn report(&self, precision: Precision) -> TrackReport {
        let raw = self.export();
        TrackReport {
            path: raw.path,
            status: match self.fate {
                Some(Fate::Converged) => PathStatus::Converged,
                Some(Fate::Failed) | Some(Fate::Escalate) | None => PathStatus::Failed,
            },
            t: raw.t,
            steps: raw.steps,
            rejected_steps: raw.rejected_steps,
            corrector_iterations: raw.corrector_iterations,
            final_residual: raw.last_residual,
            residual_trajectory: raw.residuals,
            start_precision: raw.start_precision,
            final_precision: precision,
            escalations: raw.escalations,
            solution: self
                .x
                .iter()
                .map(|s| s.coeffs().iter().map(RealCoeff::to_f64).collect())
                .collect(),
            solution_limbs: raw.x_limbs,
        }
    }

    fn record(&mut self, residual: f64) {
        self.last_residual = residual;
        if self.residuals.len() < self.residuals.capacity() {
            self.residuals.push(residual);
        }
    }

    /// Escalates to the next rung if the ladder allows, else fails.
    fn escalate_or_fail(&mut self, precision: Precision, options: &TrackOptions) {
        self.fate = match next_precision(precision) {
            Some(next) if next <= options.max_precision => Some(Fate::Escalate),
            _ => Some(Fate::Failed),
        };
    }

    /// Euler prediction from the accepted point along the cached tangent.
    fn predict(&mut self) {
        let t_next = (self.t + self.step).min(1.0);
        let dt = C::from_f64(t_next - self.t);
        for (xt, (x, dx)) in self
            .x_trial
            .iter_mut()
            .zip(self.x.iter().zip(self.dxdt.iter()))
        {
            for k in 0..x.coeffs().len() {
                xt.set_coeff(k, x.coeff(k).add(&dt.mul(&dx.coeff(k))));
            }
        }
        self.t_trial = t_next;
        self.iters_this_step = 0;
        self.phase = Phase::Correcting;
    }

    /// Rejects the trial step: shrink and re-predict from the accepted
    /// point (the cached tangent makes this launch-free), escalating when
    /// the step underflows.
    fn reject(&mut self, precision: Precision, options: &TrackOptions) {
        self.rejected_steps += 1;
        self.step *= options.shrink;
        if self.step < options.min_step {
            self.escalate_or_fail(precision, options);
        } else {
            self.predict();
        }
    }

    /// From a raw evaluation at the accepted point: build the tangent
    /// system, solve it, check the conditioning signal and issue the next
    /// prediction.
    fn prime_and_predict(
        &mut self,
        hom: &Homotopy<C>,
        eval: &SystemEvaluation<C>,
        precision: Precision,
        options: &TrackOptions,
    ) -> Result<(), Error> {
        hom.combine_jacobian_into(eval, self.t, &mut self.jac);
        hom.minus_dt_into(eval, &mut self.rhs);
        match try_solve_linearized_into(&self.jac, &self.rhs, &mut self.solver, &mut self.dxdt) {
            Ok(()) => {
                let t_next = (self.t + self.step).min(1.0);
                // The conditioning signal: when the pivot-ratio estimate
                // says this precision cannot express the demanded
                // tolerance, escalate before burning corrector sweeps.
                if self.solver.conditioning() * roundoff(precision) > options.tolerance_at(t_next) {
                    self.escalate_or_fail(precision, options);
                } else {
                    self.predict();
                }
                Ok(())
            }
            Err(Error::Numerical(_)) => {
                // Singular at this precision: a wider mantissa may separate
                // the pivots.
                self.escalate_or_fail(precision, options);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Advances the state machine from this round's evaluation of
    /// `x_trial`.
    fn process(
        &mut self,
        hom: &Homotopy<C>,
        eval: &SystemEvaluation<C>,
        precision: Precision,
        options: &TrackOptions,
    ) -> Result<(), Error> {
        if self.phase == Phase::Priming {
            // The evaluation is at the accepted point; record where it
            // stands and issue the first prediction of this cohort.
            hom.combine_value_into(eval, self.t, &mut self.h);
            self.record(residual_norm(&self.h));
            return self.prime_and_predict(hom, eval, precision, options);
        }

        hom.combine_value_into(eval, self.t_trial, &mut self.h);
        let residual = residual_norm(&self.h);
        self.record(residual);
        let tol = options.tolerance_at(self.t_trial);

        if residual <= tol {
            // Accept: the evaluation at hand is exactly at the new accepted
            // point, so it primes the next prediction for free.
            for (x, xt) in self.x.iter_mut().zip(self.x_trial.iter()) {
                x.copy_from_coeffs(xt.coeffs());
            }
            self.t = self.t_trial;
            self.steps += 1;
            if self.t >= 1.0 {
                self.fate = Some(Fate::Converged);
                return Ok(());
            }
            if self.steps >= options.max_steps {
                self.fate = Some(Fate::Failed);
                return Ok(());
            }
            if self.iters_this_step <= options.fast_iterations {
                self.step = (self.step * options.grow).min(options.max_step);
            }
            return self.prime_and_predict(hom, eval, precision, options);
        }

        if !residual.is_finite() || residual > options.divergence_threshold {
            self.reject(precision, options);
            return Ok(());
        }

        if self.iters_this_step >= options.max_corrector_iterations {
            // Exhausted.  Stuck at this precision's roundoff floor means
            // the iterate is as converged as the mantissa can express —
            // escalate; a genuinely bad step is shrunk instead.
            if residual <= stall_floor(precision) {
                self.escalate_or_fail(precision, options);
            } else {
                self.reject(precision, options);
            }
            return Ok(());
        }

        // One Newton update: J(x, t)·δ = −H(x, t), x += δ.
        hom.combine_jacobian_into(eval, self.t_trial, &mut self.jac);
        for (h, r) in self.h.iter().zip(self.rhs.iter_mut()) {
            h.neg_into(r);
        }
        match try_solve_linearized_into(&self.jac, &self.rhs, &mut self.solver, &mut self.delta) {
            Ok(()) => {
                if self.solver.conditioning() * roundoff(precision) > tol {
                    self.escalate_or_fail(precision, options);
                    return Ok(());
                }
                for (xt, d) in self.x_trial.iter_mut().zip(self.delta.iter()) {
                    xt.add_assign(d);
                }
                self.iters_this_step += 1;
                self.corrector_iterations += 1;
                Ok(())
            }
            Err(Error::Numerical(_)) => {
                self.escalate_or_fail(precision, options);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }
}

/// Max-magnitude residual norm over all equations of a combined `H`.
fn residual_norm<C: RealCoeff>(h: &[Series<C>]) -> f64 {
    h.iter().map(Series::max_magnitude).fold(0.0, f64::max)
}

/// Everything a cohort hands back when its last lane goes terminal.
pub(crate) struct CohortOutcome {
    /// Reports of the lanes that converged or failed here.
    pub reports: Vec<TrackReport>,
    /// Lanes that want a wider precision, frozen as raw paths.
    pub escalated: Vec<RawPath>,
    /// Coalesced batched launches this cohort issued.
    pub corrector_launches: usize,
}

/// All paths live at one precision, plus the shared batched-evaluation
/// plumbing: the staged input batch, the reused output and the one
/// workspace every sweep borrows its arena from.
pub(crate) struct Cohort<C: RealCoeff> {
    homotopy: Homotopy<C>,
    precision: Precision,
    lanes: Vec<Lane<C>>,
    /// Lane indices staged this round, in batch-slot order.
    live: Vec<usize>,
    batch: Vec<Vec<Series<C>>>,
    out: EvalOutput<C>,
    ws: Workspace<C>,
    corrector_launches: usize,
}

impl<C: RealCoeff> Cohort<C> {
    pub fn new(
        spec: &HomotopySpec,
        engine: &Engine,
        options: &TrackOptions,
        precision: Precision,
        raws: Vec<RawPath>,
    ) -> Result<Self, Error> {
        let homotopy = Homotopy::<C>::compile(spec, engine, options)?;
        let n = homotopy.num_variables();
        let degree = homotopy.degree();
        let lanes: Vec<Lane<C>> = raws
            .into_iter()
            .map(|raw| Lane::absorb(raw, n, degree, options))
            .collect();
        let batch = vec![vec![Series::zero(degree); n]; lanes.len()];
        let ws = homotopy.plan().create_workspace();
        Ok(Self {
            homotopy,
            precision,
            live: Vec::with_capacity(lanes.len()),
            batch,
            lanes,
            out: EvalOutput::SystemBatch(SystemBatchEvaluation::empty()),
            ws,
            corrector_launches: 0,
        })
    }

    /// Runs one coalesced corrector sweep over every live lane: stage all
    /// trial iterates, evaluate them in **one** batched launch, advance
    /// every state machine.  Returns `false` when no lane is live anymore.
    pub fn round(&mut self, options: &TrackOptions) -> Result<bool, Error> {
        self.live.clear();
        for (i, lane) in self.lanes.iter().enumerate() {
            if lane.fate.is_none() {
                self.live.push(i);
            }
        }
        if self.live.is_empty() {
            return Ok(false);
        }
        for (slot, &i) in self.live.iter().enumerate() {
            for (staged, xt) in self.batch[slot]
                .iter_mut()
                .zip(self.lanes[i].x_trial.iter())
            {
                staged.copy_from_coeffs(xt.coeffs());
            }
        }
        self.homotopy
            .plan()
            .request(Inputs::Batch(&self.batch[..self.live.len()]))
            .workspace(&mut self.ws)
            .into(&mut self.out)
            .run();
        self.corrector_launches += 1;
        let evals = self
            .out
            .as_system_batch()
            .expect("a batched system request fills a SystemBatch output");
        for (slot, &i) in self.live.iter().enumerate() {
            self.lanes[i].process(
                &self.homotopy,
                &evals.instances[slot],
                self.precision,
                options,
            )?;
        }
        Ok(true)
    }

    /// Tears the cohort down into reports and escalation requests.
    pub fn finish(self) -> CohortOutcome {
        let mut reports = Vec::new();
        let mut escalated = Vec::new();
        for lane in &self.lanes {
            match lane.fate {
                Some(Fate::Escalate) => escalated.push(lane.export()),
                _ => reports.push(lane.report(self.precision)),
            }
        }
        CohortOutcome {
            reports,
            escalated,
            corrector_launches: self.corrector_launches,
        }
    }
}
