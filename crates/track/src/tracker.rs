//! The tracker front-end: runtime precision dispatch over the `Md<N>`
//! ladder and the escalation loop.
//!
//! A [`Tracker`] owns a validated [`HomotopySpec`] and [`TrackOptions`];
//! [`Tracker::track`] walks the precision ladder lazily: every path starts
//! in a cohort at the start precision, and a cohort at the next rung is
//! built **only** when some path demanded it — through
//! [`Engine::try_compile`]'s structurally-keyed plan cache, so tracking the
//! same family twice (or escalating twice to the same rung) recompiles
//! nothing.

use psmd_core::{Engine, Error};
use psmd_multidouble::{Dd, Deca, Md1, Od, Pd, Precision, Qd, Td};

use crate::cohort::{Cohort, CohortOutcome, RawPath};
use crate::control::next_precision;
use crate::report::{PathStatus, TrackOutcome, TrackReport, TrackStats};
use crate::spec::HomotopySpec;
use crate::TrackOptions;

/// A cohort at whichever rung of the precision ladder it runs on.
enum AnyCohort {
    D1(Cohort<Md1>),
    D2(Cohort<Dd>),
    D3(Cohort<Td>),
    D4(Cohort<Qd>),
    D5(Cohort<Pd>),
    D8(Cohort<Od>),
    D10(Cohort<Deca>),
}

/// Dispatches a method over the concrete cohort type.
macro_rules! with_cohort {
    ($any:expr, $c:ident => $body:expr) => {
        match $any {
            AnyCohort::D1($c) => $body,
            AnyCohort::D2($c) => $body,
            AnyCohort::D3($c) => $body,
            AnyCohort::D4($c) => $body,
            AnyCohort::D5($c) => $body,
            AnyCohort::D8($c) => $body,
            AnyCohort::D10($c) => $body,
        }
    };
}

impl AnyCohort {
    fn new(
        spec: &HomotopySpec,
        engine: &Engine,
        options: &TrackOptions,
        precision: Precision,
        raws: Vec<RawPath>,
    ) -> Result<Self, Error> {
        Ok(match precision {
            Precision::D1 => AnyCohort::D1(Cohort::new(spec, engine, options, precision, raws)?),
            Precision::D2 => AnyCohort::D2(Cohort::new(spec, engine, options, precision, raws)?),
            Precision::D3 => AnyCohort::D3(Cohort::new(spec, engine, options, precision, raws)?),
            Precision::D4 => AnyCohort::D4(Cohort::new(spec, engine, options, precision, raws)?),
            Precision::D5 => AnyCohort::D5(Cohort::new(spec, engine, options, precision, raws)?),
            Precision::D8 => AnyCohort::D8(Cohort::new(spec, engine, options, precision, raws)?),
            Precision::D10 => AnyCohort::D10(Cohort::new(spec, engine, options, precision, raws)?),
        })
    }

    fn round(&mut self, options: &TrackOptions) -> Result<bool, Error> {
        with_cohort!(self, c => c.round(options))
    }

    fn finish(self) -> CohortOutcome {
        with_cohort!(self, c => c.finish())
    }
}

/// An adaptive-precision homotopy continuation tracker for one family.
#[derive(Debug, Clone)]
pub struct Tracker {
    spec: HomotopySpec,
    options: TrackOptions,
}

impl Tracker {
    /// Builds a tracker after validating the family and the knobs.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] when either fails validation.
    pub fn new(spec: HomotopySpec, options: TrackOptions) -> Result<Self, Error> {
        spec.validate()?;
        options.validate()?;
        Ok(Self { spec, options })
    }

    /// The family being tracked.
    pub fn spec(&self) -> &HomotopySpec {
        &self.spec
    }

    /// The control knobs.
    pub fn options(&self) -> &TrackOptions {
        &self.options
    }

    /// Tracks one path per start solution (one `f64` per variable; series
    /// coefficients above the constant term start at zero) from `t = 0` to
    /// `t = 1`, correcting all concurrently-live paths of a precision with
    /// one coalesced batched launch per sweep and escalating individual
    /// paths up the precision ladder on demand.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] when a start solution has the wrong arity or the
    /// start list is empty.  Numerical trouble is **not** an error: it is
    /// reported per path in the [`TrackOutcome`].
    pub fn track(&self, engine: &Engine, starts: &[Vec<f64>]) -> Result<TrackOutcome, Error> {
        let n = self.spec.num_variables;
        if starts.is_empty() {
            return Err(Error::config("no start solutions to track"));
        }
        if let Some((i, bad)) = starts.iter().enumerate().find(|(_, s)| s.len() != n) {
            return Err(Error::config(format!(
                "start solution {i} has {} coordinates for {n} variables",
                bad.len()
            )));
        }

        let mut pending: Vec<RawPath> = starts
            .iter()
            .enumerate()
            .map(|(i, s)| RawPath::fresh(i, s, &self.options))
            .collect();
        let mut reports: Vec<Option<TrackReport>> = (0..starts.len()).map(|_| None).collect();
        let mut stats = TrackStats {
            paths: starts.len(),
            ..TrackStats::default()
        };

        let mut precision = self.options.start_precision;
        loop {
            let mut cohort = AnyCohort::new(&self.spec, engine, &self.options, precision, pending)?;
            while cohort.round(&self.options)? {}
            let outcome = cohort.finish();
            stats.corrector_launches += outcome.corrector_launches;
            for report in outcome.reports {
                let path = report.path;
                reports[path] = Some(report);
            }
            pending = outcome.escalated;
            if pending.is_empty() {
                break;
            }
            // Escalation implies a next rung exists: lanes at the ceiling
            // fail instead of escalating.
            precision =
                next_precision(precision).expect("escalated lanes always have a next precision");
            stats
                .escalations_by_precision
                .push((precision, pending.len()));
            for raw in &mut pending {
                raw.escalations.push(precision);
            }
        }

        let reports: Vec<TrackReport> = reports
            .into_iter()
            .map(|r| r.expect("every path ends in exactly one cohort"))
            .collect();
        for r in &reports {
            match r.status {
                PathStatus::Converged => stats.converged += 1,
                _ => stats.diverged += 1,
            }
            if r.escalated() {
                stats.escalated_paths += 1;
            }
            stats.steps += r.steps;
            stats.newton_iterations += r.corrector_iterations;
        }
        Ok(TrackOutcome { reports, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{MonomialSpec, PolySpec};

    /// One two-variable block `{x + y − s, x·y − p}`; `p < 0` keeps the two
    /// real roots of opposite sign, so they never collide along the path.
    fn block(x: usize, s: f64, p: f64) -> Vec<PolySpec> {
        vec![
            PolySpec {
                constant: vec![-s],
                monomials: vec![
                    MonomialSpec::constant_coeff(1.0, vec![x]),
                    MonomialSpec::constant_coeff(1.0, vec![x + 1]),
                ],
            },
            PolySpec {
                constant: vec![-p],
                monomials: vec![MonomialSpec::constant_coeff(1.0, vec![x, x + 1])],
            },
        ]
    }

    fn family() -> HomotopySpec {
        // Target roots of z² − 0.3 z − 2: irrational, opposite signs.
        HomotopySpec::new(2, 0, block(0, 0.0, -1.0), block(0, 0.3, -2.0))
    }

    #[test]
    fn wrong_start_arity_is_a_config_error() {
        let tracker = Tracker::new(family(), TrackOptions::default()).unwrap();
        let engine = Engine::builder().build();
        assert!(tracker.track(&engine, &[]).is_err());
        assert!(tracker.track(&engine, &[vec![1.0]]).is_err());
    }

    #[test]
    fn an_unreachable_tolerance_forces_escalation_past_dd() {
        let options = TrackOptions {
            // Below the roundoff floor of both 1d and 2d: the endgame must
            // climb to triple-double to express it.
            final_tolerance: 1e-40,
            ..TrackOptions::default()
        };
        let tracker = Tracker::new(family(), options).unwrap();
        let engine = Engine::builder().build();
        let outcome = tracker
            .track(&engine, &[vec![1.0, -1.0], vec![-1.0, 1.0]])
            .unwrap();
        assert_eq!(outcome.stats.converged, 2);
        assert_eq!(outcome.stats.escalated_paths, 2);
        for r in &outcome.reports {
            assert_eq!(r.start_precision, Precision::D1);
            assert!(r.final_precision >= Precision::D3, "stopped at dd or below");
            assert!(r.escalations.contains(&Precision::D3));
            assert!(r.final_residual <= 1e-40);
            // x·y = 2 exactly at the endpoint (to f64 accuracy).
            let xy = r.solution[0][0] * r.solution[1][0];
            assert!((xy + 2.0).abs() < 1e-9, "endpoint off: x·y = {xy}");
        }
        // Escalations land on 2d then 3d, every path both times.
        assert_eq!(
            outcome.stats.escalations_by_precision,
            vec![(Precision::D2, 2), (Precision::D3, 2)]
        );
    }

    #[test]
    fn a_capped_ladder_fails_instead_of_escalating() {
        let options = TrackOptions {
            final_tolerance: 1e-40,
            max_precision: Precision::D2,
            ..TrackOptions::default()
        };
        let tracker = Tracker::new(family(), options).unwrap();
        let engine = Engine::builder().build();
        let outcome = tracker.track(&engine, &[vec![1.0, -1.0]]).unwrap();
        assert_eq!(outcome.stats.converged, 0);
        assert_eq!(outcome.stats.diverged, 1);
        assert_eq!(outcome.reports[0].status, PathStatus::Failed);
        assert!(outcome.reports[0].final_precision <= Precision::D2);
    }

    #[test]
    fn batched_tracking_issues_fewer_launches_than_serial() {
        let tracker = Tracker::new(family(), TrackOptions::default()).unwrap();
        let engine = Engine::builder().build();
        let starts = [vec![1.0, -1.0], vec![-1.0, 1.0]];
        let batched = tracker.track(&engine, &starts).unwrap();
        let serial: usize = starts
            .iter()
            .map(|s| {
                tracker
                    .track(&engine, std::slice::from_ref(s))
                    .unwrap()
                    .stats
                    .corrector_launches
            })
            .sum();
        assert!(
            batched.stats.corrector_launches < serial,
            "batched {} vs serial {serial}",
            batched.stats.corrector_launches
        );
        // Same endpoints, bitwise: the batched arena stages each instance
        // exactly like a lone evaluation.
        for (i, s) in starts.iter().enumerate() {
            let lone = tracker.track(&engine, std::slice::from_ref(s)).unwrap();
            assert_eq!(
                lone.reports[0].solution_limbs,
                batched.reports[i].solution_limbs
            );
        }
    }
}
