//! # psmd-track
//!
//! Adaptive-precision homotopy continuation path tracking over the batched
//! fused evaluation engine — the paper's motivating application: Newton's
//! method on power series is the corrector of a path tracker, and the
//! multiple-double arithmetic exists so the tracker can buy accuracy at
//! runtime when a path demands it.
//!
//! The tracker follows many solution paths of the homotopy
//!
//! ```text
//! H(x, t) = (1−t)·G(x) + γ·t·F(x)
//! ```
//!
//! from the known solutions of the start system `G` at `t = 0` to the
//! wanted solutions of the target system `F` at `t = 1`, with three ideas
//! stacked on top of the core engine:
//!
//! 1. **One plan, both systems.**  `G` and `F` are compiled as a single
//!    stacked `2n`-equation fused system plan ([`Homotopy`]); since neither
//!    depends on `t`, combining `H` and `∂H/∂x` at any `t` is a cheap
//!    host-side fold over one raw evaluation, and the tangent right-hand
//!    side `γ·F − G` comes from the same evaluation for free.
//! 2. **One launch per corrector sweep.**  All concurrently-live paths of a
//!    precision form a cohort; each sweep stages every path's trial iterate
//!    into one `Inputs::Batch` request, so a single coalesced launch
//!    sequence serves every path's Newton iteration
//!    ([`TrackStats::corrector_launches`] counts them — the batching win
//!    over tracking paths one at a time).
//! 3. **Precision as a runtime resource.**  Paths start at double precision
//!    and escalate individually through the multiple-double ladder
//!    (`1d → 2d → 3d → 4d → 5d → 8d → 10d`) only when the corrector stalls
//!    at the current roundoff floor, the step size underflows, or a
//!    pivot-ratio conditioning estimate proves the demanded tolerance
//!    unrepresentable.  Escalation re-compiles through the engine's
//!    structurally-keyed plan cache and transfers iterates exactly by
//!    zero-extending their limb expansions.
//!
//! Monomials are products of **distinct** variables — the paper's
//! multilinear setting, which is what the fused evaluation schedule (and
//! its Jacobian) computes.
//!
//! ```
//! use psmd_core::Engine;
//! use psmd_track::{HomotopySpec, MonomialSpec, PolySpec, TrackOptions, Tracker};
//!
//! // Start G: { x + y, x·y + 1 } with solutions (1, −1) and (−1, 1);
//! // target F: { x + y − 1, x·y + 6 } with solutions (3, −2) and (−2, 3).
//! let sum = |s: f64| PolySpec {
//!     constant: vec![-s],
//!     monomials: vec![
//!         MonomialSpec::constant_coeff(1.0, vec![0]),
//!         MonomialSpec::constant_coeff(1.0, vec![1]),
//!     ],
//! };
//! let product = |p: f64| PolySpec {
//!     constant: vec![-p],
//!     monomials: vec![MonomialSpec::constant_coeff(1.0, vec![0, 1])],
//! };
//! let spec = HomotopySpec::new(
//!     2,
//!     0,
//!     vec![sum(0.0), product(-1.0)],
//!     vec![sum(1.0), product(-6.0)],
//! );
//! let tracker = Tracker::new(spec, TrackOptions::default()).unwrap();
//! let engine = Engine::builder().build();
//! let outcome = tracker
//!     .track(&engine, &[vec![1.0, -1.0], vec![-1.0, 1.0]])
//!     .unwrap();
//! assert_eq!(outcome.stats.converged, 2);
//! assert!((outcome.reports[0].solution[0][0] - 3.0).abs() < 1e-9);
//! assert!((outcome.reports[1].solution[1][0] - 3.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

mod cohort;
mod control;
mod homotopy;
mod report;
mod spec;
mod tracker;

pub use control::TrackOptions;
pub use homotopy::Homotopy;
pub use report::{PathStatus, TrackOutcome, TrackReport, TrackStats};
pub use spec::{HomotopySpec, MonomialSpec, PolySpec};
pub use tracker::Tracker;
