//! Step-size and precision control knobs of the tracker.

use psmd_core::{Error, EvalOptions};
use psmd_multidouble::Precision;

/// Tuning knobs of the predictor–corrector loop.
///
/// The defaults track well-conditioned square systems at double precision
/// and escalate through the multiple-double ladder only when the corrector
/// demands it.
#[derive(Debug, Clone)]
pub struct TrackOptions {
    /// Precision every path starts tracking at.
    pub start_precision: Precision,
    /// Highest precision a path may escalate to before it is failed.
    pub max_precision: Precision,
    /// Corrector tolerance while `t < 1`: a corrector sweep succeeds when
    /// the residual norm drops below this.
    pub corrector_tolerance: f64,
    /// Tolerance demanded of the endpoint at `t = 1`.  Setting this below
    /// the roundoff floor of the current precision is what forces
    /// escalation at the endgame.
    pub final_tolerance: f64,
    /// Corrector iterations allowed per step before the step is rejected.
    pub max_corrector_iterations: usize,
    /// Initial step size in `t`.
    pub initial_step: f64,
    /// Smallest allowed step size; a path whose step underflows this
    /// escalates (or fails at [`max_precision`](Self::max_precision)).
    pub min_step: f64,
    /// Largest allowed step size.
    pub max_step: f64,
    /// Multiplier applied to the step on rejection (`< 1`).
    pub shrink: f64,
    /// Multiplier applied to the step after a fast convergence (`> 1`).
    pub grow: f64,
    /// A correction counts as "fast" (and grows the step) when it needs at
    /// most this many iterations.
    pub fast_iterations: usize,
    /// Accepted-step budget per path.
    pub max_steps: usize,
    /// A corrector iterate whose residual exceeds this is declared
    /// divergent immediately.
    pub divergence_threshold: f64,
    /// Per-path cap on recorded residual norms (recording stops when full,
    /// keeping the steady-state corrector sweep allocation-free).
    pub residual_log: usize,
    /// Per-plan evaluation options (exec mode, kernel selection) for the
    /// stacked homotopy plan; `None` inherits the engine's own options.
    pub eval: Option<EvalOptions>,
}

impl Default for TrackOptions {
    fn default() -> Self {
        Self {
            start_precision: Precision::D1,
            max_precision: Precision::D10,
            corrector_tolerance: 1e-10,
            final_tolerance: 1e-10,
            max_corrector_iterations: 4,
            initial_step: 0.1,
            min_step: 1e-6,
            max_step: 0.25,
            shrink: 0.5,
            grow: 1.5,
            fast_iterations: 2,
            max_steps: 500,
            divergence_threshold: 1e8,
            residual_log: 256,
            eval: None,
        }
    }
}

impl TrackOptions {
    /// Checks the knobs for consistency.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] describing the first inconsistent knob.
    pub fn validate(&self) -> Result<(), Error> {
        if self.start_precision > self.max_precision {
            return Err(Error::config(format!(
                "start precision {} exceeds max precision {}",
                self.start_precision.label(),
                self.max_precision.label()
            )));
        }
        if !(self.corrector_tolerance > 0.0 && self.final_tolerance > 0.0) {
            return Err(Error::config("tolerances must be positive"));
        }
        if self.max_corrector_iterations == 0 {
            return Err(Error::config("need at least one corrector iteration"));
        }
        if !(self.initial_step > 0.0 && self.initial_step <= 1.0) {
            return Err(Error::config(format!(
                "initial step must be in (0, 1], got {}",
                self.initial_step
            )));
        }
        if !(self.min_step > 0.0 && self.min_step <= self.initial_step) {
            return Err(Error::config("min step must be in (0, initial step]"));
        }
        if self.max_step < self.initial_step {
            return Err(Error::config("max step must be at least the initial step"));
        }
        if !(self.shrink > 0.0 && self.shrink < 1.0) {
            return Err(Error::config(format!(
                "shrink factor must be in (0, 1), got {}",
                self.shrink
            )));
        }
        if self.grow < 1.0 {
            return Err(Error::config(format!(
                "grow factor must be at least 1, got {}",
                self.grow
            )));
        }
        if self.max_steps == 0 {
            return Err(Error::config("need a nonzero step budget"));
        }
        Ok(())
    }

    /// The tolerance a trial step at `t_trial` must meet: the final
    /// tolerance at the endpoint, the corrector tolerance before it.
    pub(crate) fn tolerance_at(&self, t_trial: f64) -> f64 {
        if t_trial >= 1.0 {
            self.final_tolerance
        } else {
            self.corrector_tolerance
        }
    }
}

/// Unit roundoff of a precision: `2^(1 − 52·limbs)`, the relative spacing
/// of a multiple-double with that many limbs.  Residuals cannot be expected
/// to drop much below a small multiple of this.
pub(crate) fn roundoff(p: Precision) -> f64 {
    2f64.powi(1 - 52 * p.limbs() as i32)
}

/// The stall floor of a precision: a residual at or below
/// `roundoff · 1e4` is "as converged as this precision can express", so a
/// corrector stuck there should escalate rather than shrink the step.
pub(crate) fn stall_floor(p: Precision) -> f64 {
    roundoff(p) * 1e4
}

/// The next rung of the precision ladder, if any.
pub(crate) fn next_precision(p: Precision) -> Option<Precision> {
    let i = Precision::ALL.iter().position(|&q| q == p)?;
    Precision::ALL.get(i + 1).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        TrackOptions::default().validate().unwrap();
    }

    #[test]
    fn inverted_precision_ladder_is_rejected() {
        let opts = TrackOptions {
            start_precision: Precision::D4,
            max_precision: Precision::D2,
            ..TrackOptions::default()
        };
        assert!(opts.validate().is_err());
    }

    #[test]
    fn endpoint_gets_the_final_tolerance() {
        let opts = TrackOptions {
            final_tolerance: 1e-40,
            ..TrackOptions::default()
        };
        assert_eq!(opts.tolerance_at(0.5), 1e-10);
        assert_eq!(opts.tolerance_at(1.0), 1e-40);
    }

    #[test]
    fn the_ladder_walks_d1_to_d10() {
        assert_eq!(next_precision(Precision::D1), Some(Precision::D2));
        assert_eq!(next_precision(Precision::D5), Some(Precision::D8));
        assert_eq!(next_precision(Precision::D10), None);
    }

    #[test]
    fn roundoff_matches_the_limb_count() {
        assert_eq!(roundoff(Precision::D1), 2f64.powi(-51));
        assert_eq!(roundoff(Precision::D2), 2f64.powi(-103));
        assert!(stall_floor(Precision::D2) > roundoff(Precision::D2));
    }
}
