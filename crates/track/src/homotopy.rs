//! A [`HomotopySpec`] compiled at one concrete precision.
//!
//! The start and target systems are stacked into a single `2n`-equation
//! fused plan, so one evaluation (or one **batched** evaluation over all
//! concurrently-live paths) produces `G(x)`, `F(x)` and both Jacobians in a
//! single coalesced launch sequence.  Because neither system depends on
//! `t`, the affine combination
//!
//! ```text
//! H(x, t)      = (1−t)·G(x) + γ·t·F(x)
//! ∂H/∂x (x, t) = (1−t)·J_G(x) + γ·t·J_F(x)
//! ∂H/∂t (x)    = γ·F(x) − G(x)
//! ```
//!
//! is a cheap per-coefficient host-side fold over an already-computed raw
//! evaluation — re-combining the same evaluation at a different `t` costs
//! no new launch.

use std::sync::Arc;

use psmd_core::{Engine, Error, Plan, PolySource, SystemEvaluation};
use psmd_multidouble::Coeff;
use psmd_series::Series;

use crate::spec::HomotopySpec;
use crate::TrackOptions;

/// A homotopy family compiled at the coefficient type `C`: the stacked
/// `[G; F]` plan plus the scaling constant `γ` embedded at this precision.
#[derive(Clone)]
pub struct Homotopy<C: Coeff> {
    plan: Arc<Plan<C>>,
    gamma: C,
    num_variables: usize,
    degree: usize,
}

impl<C: Coeff> Homotopy<C> {
    /// Compiles the family through the engine (a structural plan-cache hit
    /// when this precision was compiled before).
    ///
    /// # Errors
    ///
    /// [`Error::Config`] when the spec fails [`HomotopySpec::validate`] or
    /// the engine rejects the stacked source.
    pub fn compile(
        spec: &HomotopySpec,
        engine: &Engine,
        options: &TrackOptions,
    ) -> Result<Self, Error> {
        spec.validate()?;
        let polys = spec.stacked_polynomials::<C>();
        let eval = options.eval.unwrap_or_else(|| engine.options());
        let plan = engine.try_compile_with_options(PolySource::System(polys), eval)?;
        Ok(Self {
            plan,
            gamma: C::from_f64(spec.gamma),
            num_variables: spec.num_variables,
            degree: spec.degree,
        })
    }

    /// The compiled stacked plan (`2n` equations: `G` rows then `F` rows).
    pub fn plan(&self) -> &Arc<Plan<C>> {
        &self.plan
    }

    /// `γ` at this precision.
    pub fn gamma(&self) -> &C {
        &self.gamma
    }

    /// Number of variables `n`.
    pub fn num_variables(&self) -> usize {
        self.num_variables
    }

    /// Truncation degree of the series arithmetic.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The combination weights at `t`: `(1−t, γ·t)`.
    fn weights(&self, t: f64) -> (C, C) {
        (C::from_f64(1.0 - t), self.gamma.mul(&C::from_f64(t)))
    }

    /// Folds a raw stacked evaluation into `H(x, t)`, writing the `n`
    /// residual series into `h` (which must hold `n` series of the plan's
    /// degree).  Allocation-free.
    pub fn combine_value_into(&self, eval: &SystemEvaluation<C>, t: f64, h: &mut [Series<C>]) {
        let n = self.num_variables;
        let (a, b) = self.weights(t);
        for (i, out) in h.iter_mut().enumerate().take(n) {
            let g = &eval.values[i];
            let f = &eval.values[n + i];
            for k in 0..=self.degree {
                out.set_coeff(k, a.mul(&g.coeff(k)).add(&b.mul(&f.coeff(k))));
            }
        }
    }

    /// Folds a raw stacked evaluation into `∂H/∂x (x, t)`, writing the
    /// `n × n` Jacobian into `jac`.  Allocation-free.
    pub fn combine_jacobian_into(
        &self,
        eval: &SystemEvaluation<C>,
        t: f64,
        jac: &mut [Vec<Series<C>>],
    ) {
        let n = self.num_variables;
        let (a, b) = self.weights(t);
        for (i, row) in jac.iter_mut().enumerate().take(n) {
            for (j, out) in row.iter_mut().enumerate().take(n) {
                let g = &eval.jacobian[i][j];
                let f = &eval.jacobian[n + i][j];
                for k in 0..=self.degree {
                    out.set_coeff(k, a.mul(&g.coeff(k)).add(&b.mul(&f.coeff(k))));
                }
            }
        }
    }

    /// Writes `−∂H/∂t = G(x) − γ·F(x)` into `rhs` — the right-hand side of
    /// the tangent system `∂H/∂x · dx/dt = −∂H/∂t` used by the predictor.
    /// Independent of `t`, so one accepted evaluation serves the tangent at
    /// any step.  Allocation-free.
    pub fn minus_dt_into(&self, eval: &SystemEvaluation<C>, rhs: &mut [Series<C>]) {
        let n = self.num_variables;
        for (i, out) in rhs.iter_mut().enumerate().take(n) {
            let g = &eval.values[i];
            let f = &eval.values[n + i];
            for k in 0..=self.degree {
                out.set_coeff(k, g.coeff(k).sub(&self.gamma.mul(&f.coeff(k))));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{MonomialSpec, PolySpec};
    use psmd_core::Inputs;
    use psmd_multidouble::Dd;

    fn family() -> HomotopySpec {
        // G: { x + y, x·y + 1 }  →  F: { x + y − 1, x·y + 6 }.
        let sum = |s: f64| PolySpec {
            constant: vec![-s],
            monomials: vec![
                MonomialSpec::constant_coeff(1.0, vec![0]),
                MonomialSpec::constant_coeff(1.0, vec![1]),
            ],
        };
        let product = |p: f64| PolySpec {
            constant: vec![-p],
            monomials: vec![MonomialSpec::constant_coeff(1.0, vec![0, 1])],
        };
        HomotopySpec::new(
            2,
            0,
            vec![sum(0.0), product(-1.0)],
            vec![sum(1.0), product(-6.0)],
        )
        .with_gamma(0.75)
    }

    #[test]
    fn combine_matches_the_hand_computed_homotopy() {
        let engine = Engine::builder().build();
        let h = Homotopy::<Dd>::compile(&family(), &engine, &TrackOptions::default()).unwrap();
        let x = vec![
            Series::constant(Dd::from_f64(2.0), 0),
            Series::constant(Dd::from_f64(3.0), 0),
        ];
        let eval = h
            .plan()
            .request(Inputs::Single(&x))
            .sequential()
            .run()
            .into_system();

        // Raw stacked rows: G then F.
        assert_eq!(eval.values[0].coeff(0).to_f64(), 5.0); // 2 + 3
        assert_eq!(eval.values[1].coeff(0).to_f64(), 7.0); // 6 + 1
        assert_eq!(eval.values[2].coeff(0).to_f64(), 4.0); // 5 - 1
        assert_eq!(eval.values[3].coeff(0).to_f64(), 12.0); // 6 + 6

        let t = 0.5;
        let mut out = vec![Series::zero(0); 2];
        h.combine_value_into(&eval, t, &mut out);
        // H_0 = 0.5·5 + 0.375·4 = 4.0
        assert!((out[0].coeff(0).to_f64() - 4.0).abs() < 1e-28);
        // H_1 = 0.5·7 + 0.375·12 = 8.0
        assert!((out[1].coeff(0).to_f64() - 8.0).abs() < 1e-28);

        let mut jac = vec![vec![Series::zero(0); 2]; 2];
        h.combine_jacobian_into(&eval, t, &mut jac);
        // dH_0/dx = 0.5·1 + 0.375·1 = 0.875
        assert!((jac[0][0].coeff(0).to_f64() - 0.875).abs() < 1e-28);
        // dH_1/dx = 0.5·y + 0.375·y = 2.625 at y = 3
        assert!((jac[1][0].coeff(0).to_f64() - 2.625).abs() < 1e-28);

        let mut rhs = vec![Series::zero(0); 2];
        h.minus_dt_into(&eval, &mut rhs);
        // G_0 - γ·F_0 = 5 - 3 = 2
        assert!((rhs[0].coeff(0).to_f64() - 2.0).abs() < 1e-28);
        // G_1 - γ·F_1 = 7 - 9 = -2
        assert!((rhs[1].coeff(0).to_f64() + 2.0).abs() < 1e-28);
    }

    #[test]
    fn endpoint_combination_is_exactly_gamma_f() {
        let engine = Engine::builder().build();
        let h = Homotopy::<Dd>::compile(&family(), &engine, &TrackOptions::default()).unwrap();
        let x = vec![
            Series::constant(Dd::from_f64(1.0), 0),
            Series::constant(Dd::from_f64(-1.0), 0),
        ];
        let eval = h
            .plan()
            .request(Inputs::Single(&x))
            .sequential()
            .run()
            .into_system();
        let mut out = vec![Series::zero(0); 2];
        h.combine_value_into(&eval, 1.0, &mut out);
        let expected = h.gamma().mul(&eval.values[2].coeff(0));
        assert_eq!(out[0].coeff(0), expected);
    }
}
