//! Precision-independent description of a homotopy family.
//!
//! The tracker escalates working precision at runtime, which means it must
//! be able to re-embed the same start and target systems at any rung of the
//! `Md<N>` ladder.  A [`HomotopySpec`] therefore describes both systems with
//! plain `f64` coefficient series — exact at every precision — and the typed
//! [`Homotopy`](crate::Homotopy) is compiled from it on demand (the engine's
//! structurally-keyed plan cache makes repeat compilations at one precision
//! a cache hit).

use psmd_core::{Error, Monomial, Polynomial};
use psmd_multidouble::Coeff;
use psmd_series::Series;

/// One monomial of a [`PolySpec`]: a coefficient series (given by its `f64`
/// coefficients, zero-extended to the truncation degree) times a product of
/// **distinct** variables in strictly increasing order — the multilinear
/// setting of the paper's evaluation algorithm, matching
/// [`Monomial`](psmd_core::Monomial).
#[derive(Debug, Clone, PartialEq)]
pub struct MonomialSpec {
    /// Coefficients of the monomial's series coefficient, constant term
    /// first; shorter vectors are zero-extended to the truncation degree.
    pub coefficient: Vec<f64>,
    /// The variable indices of the product (repeats allowed).
    pub variables: Vec<usize>,
}

impl MonomialSpec {
    /// A monomial with a constant coefficient.
    pub fn constant_coeff(c: f64, variables: Vec<usize>) -> Self {
        Self {
            coefficient: vec![c],
            variables,
        }
    }
}

/// One polynomial of a start or target system, described precision-free.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PolySpec {
    /// Coefficients of the constant term's series, constant term first.
    pub constant: Vec<f64>,
    /// The monomials.
    pub monomials: Vec<MonomialSpec>,
}

/// A homotopy family `H(x, t) = (1−t)·G(x) + γ·t·F(x)`: the start system
/// `G` (whose solutions are known), the target system `F` (whose solutions
/// are wanted), and the real scaling constant `γ` applied to the target.
#[derive(Debug, Clone, PartialEq)]
pub struct HomotopySpec {
    /// Number of variables `n` (the systems must be square: `n` equations).
    pub num_variables: usize,
    /// Truncation degree of the series arithmetic (`0` tracks points).
    pub degree: usize,
    /// The start system `G` with known solutions at `t = 0`.
    pub start: Vec<PolySpec>,
    /// The target system `F` whose solutions are tracked to at `t = 1`.
    pub target: Vec<PolySpec>,
    /// The scaling constant `γ` of the target part.
    pub gamma: f64,
}

impl HomotopySpec {
    /// A homotopy with `γ = 1`.
    pub fn new(
        num_variables: usize,
        degree: usize,
        start: Vec<PolySpec>,
        target: Vec<PolySpec>,
    ) -> Self {
        Self {
            num_variables,
            degree,
            start,
            target,
            gamma: 1.0,
        }
    }

    /// Sets the scaling constant `γ`.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Checks that the family is square and well-formed: `n` equations in
    /// each system, a finite nonzero `γ`, in-range variable indices.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] describing the first violation found.
    pub fn validate(&self) -> Result<(), Error> {
        let n = self.num_variables;
        if n == 0 {
            return Err(Error::config("a homotopy needs at least one variable"));
        }
        if self.start.len() != n || self.target.len() != n {
            return Err(Error::config(format!(
                "the tracker needs square systems: {} start and {} target \
                 equations for {n} variables",
                self.start.len(),
                self.target.len()
            )));
        }
        if !self.gamma.is_finite() || self.gamma == 0.0 {
            return Err(Error::config(format!(
                "gamma must be finite and nonzero, got {}",
                self.gamma
            )));
        }
        for (name, system) in [("start", &self.start), ("target", &self.target)] {
            for (i, p) in system.iter().enumerate() {
                if p.constant.len() > self.degree + 1 {
                    return Err(Error::config(format!(
                        "{name} equation {i}: constant series has {} coefficients \
                         for truncation degree {}",
                        p.constant.len(),
                        self.degree
                    )));
                }
                for (k, m) in p.monomials.iter().enumerate() {
                    if m.variables.is_empty() {
                        return Err(Error::config(format!(
                            "{name} equation {i}, monomial {k}: empty variable list \
                             (fold constants into the constant term)"
                        )));
                    }
                    if !m.variables.windows(2).all(|w| w[0] < w[1]) {
                        return Err(Error::config(format!(
                            "{name} equation {i}, monomial {k}: variable indices \
                             must be strictly increasing — the fused schedule \
                             evaluates multilinear products of distinct variables, \
                             got {:?}",
                            m.variables
                        )));
                    }
                    if m.coefficient.len() > self.degree + 1 {
                        return Err(Error::config(format!(
                            "{name} equation {i}, monomial {k}: coefficient series \
                             has {} coefficients for truncation degree {}",
                            m.coefficient.len(),
                            self.degree
                        )));
                    }
                    if let Some(&v) = m.variables.iter().find(|&&v| v >= n) {
                        return Err(Error::config(format!(
                            "{name} equation {i}, monomial {k}: variable {v} \
                             out of range for {n} variables"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Embeds one system at a concrete coefficient type: `G` then `F`,
    /// stacked into a single `2n`-equation system so that **one** fused
    /// plan (and hence one coalesced launch per corrector sweep) evaluates
    /// both parts of the homotopy for every live path.
    pub(crate) fn stacked_polynomials<C: Coeff>(&self) -> Vec<Polynomial<C>> {
        let embed_series = |coeffs: &[f64]| {
            let mut s = Series::zero(self.degree);
            for (k, &c) in coeffs.iter().enumerate() {
                s.set_coeff(k, C::from_f64(c));
            }
            s
        };
        let embed_poly = |p: &PolySpec| {
            Polynomial::new(
                self.num_variables,
                embed_series(&p.constant),
                p.monomials
                    .iter()
                    .map(|m| Monomial::new(embed_series(&m.coefficient), m.variables.clone()))
                    .collect(),
            )
        };
        self.start
            .iter()
            .chain(self.target.iter())
            .map(embed_poly)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psmd_multidouble::Dd;

    /// `m` independent two-variable blocks `{x + y − s, x·y − p}`, the
    /// multilinear family used throughout the tracker tests.
    fn blocks(m: usize) -> HomotopySpec {
        let mut g = Vec::new();
        let mut f = Vec::new();
        for k in 0..m {
            let (x, y) = (2 * k, 2 * k + 1);
            let sum = |s: f64| PolySpec {
                constant: vec![-s],
                monomials: vec![
                    MonomialSpec::constant_coeff(1.0, vec![x]),
                    MonomialSpec::constant_coeff(1.0, vec![y]),
                ],
            };
            let product = |p: f64| PolySpec {
                constant: vec![-p],
                monomials: vec![MonomialSpec::constant_coeff(1.0, vec![x, y])],
            };
            g.push(sum(0.0));
            g.push(product(-1.0));
            f.push(sum(1.0));
            f.push(product(-6.0));
        }
        HomotopySpec::new(2 * m, 0, g, f)
    }

    #[test]
    fn valid_specs_pass_and_stack_both_systems() {
        let spec = blocks(2);
        spec.validate().unwrap();
        let polys = spec.stacked_polynomials::<Dd>();
        assert_eq!(polys.len(), 8);
        assert_eq!(polys[0].num_variables(), 4);
        assert_eq!(polys[1].constant().coeff(0).to_f64(), 1.0);
        assert_eq!(polys[5].constant().coeff(0).to_f64(), 6.0);
    }

    #[test]
    fn non_square_families_are_rejected() {
        let mut spec = blocks(2);
        spec.target.pop();
        let err = spec.validate().unwrap_err();
        assert!(err.message().contains("square"));
    }

    #[test]
    fn zero_gamma_is_rejected() {
        let spec = blocks(1).with_gamma(0.0);
        assert!(spec.validate().is_err());
    }

    #[test]
    fn out_of_range_variables_are_rejected() {
        let mut spec = blocks(1);
        spec.start[0].monomials[0].variables = vec![5];
        let err = spec.validate().unwrap_err();
        assert!(err.message().contains("out of range"));
    }

    #[test]
    fn repeated_variables_are_rejected_not_panicked() {
        let mut spec = blocks(1);
        // `x²` is not a multilinear monomial; the spec must refuse it
        // before the core monomial constructor would panic.
        spec.start[0].monomials[0].variables = vec![0, 0];
        let err = spec.validate().unwrap_err();
        assert!(err.message().contains("strictly increasing"));
    }
}
