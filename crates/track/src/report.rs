//! Per-path reports and aggregate statistics of a tracking run.

use psmd_multidouble::Precision;

/// Terminal (or in-flight) status of one tracked path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathStatus {
    /// The path is still being continued toward `t = 1`.
    Tracking,
    /// The path reached `t = 1` and its corrector converged below the
    /// final tolerance.
    Converged,
    /// The path was abandoned: the step size underflowed or the iterate
    /// diverged at the highest allowed precision, or the step budget ran
    /// out.
    Failed,
}

/// What happened to one path, from its start solution to its endpoint.
#[derive(Debug, Clone)]
pub struct TrackReport {
    /// Index of the path (position of its start solution in the input).
    pub path: usize,
    /// Terminal status.
    pub status: PathStatus,
    /// The continuation parameter reached (`1.0` exactly on convergence).
    pub t: f64,
    /// Accepted predictor–corrector steps.
    pub steps: usize,
    /// Rejected (shrunk-and-retried) steps.
    pub rejected_steps: usize,
    /// Total corrector (Newton) iterations spent on this path.
    pub corrector_iterations: usize,
    /// Residual of the last accepted corrector iterate.
    pub final_residual: f64,
    /// Residual norms in iteration order, bounded by
    /// [`TrackOptions::residual_log`](crate::TrackOptions::residual_log).
    pub residual_trajectory: Vec<f64>,
    /// Precision the path started tracking at.
    pub start_precision: Precision,
    /// Precision the path finished at.
    pub final_precision: Precision,
    /// Every precision the path escalated **to**, in order.
    pub escalations: Vec<Precision>,
    /// The endpoint, one `f64` approximation per series coefficient per
    /// variable (`solution[var][coeff]`).
    pub solution: Vec<Vec<f64>>,
    /// The endpoint at full working precision: limbs of every series
    /// coefficient of every variable (`solution_limbs[var][coeff][limb]`),
    /// exactly as wide as [`final_precision`](Self::final_precision).
    pub solution_limbs: Vec<Vec<Vec<f64>>>,
}

impl TrackReport {
    /// Whether the path converged.
    pub fn converged(&self) -> bool {
        self.status == PathStatus::Converged
    }

    /// Whether the path escalated past its starting precision.
    pub fn escalated(&self) -> bool {
        !self.escalations.is_empty()
    }
}

/// Aggregate statistics of one tracking run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrackStats {
    /// Number of paths tracked.
    pub paths: usize,
    /// Paths that converged at `t = 1`.
    pub converged: usize,
    /// Paths that failed.
    pub diverged: usize,
    /// Paths that escalated precision at least once.
    pub escalated_paths: usize,
    /// `(precision, count)` pairs: how many escalations landed **on** each
    /// precision, ordered along the ladder.  Deterministic for the JSON
    /// snapshot gate.
    pub escalations_by_precision: Vec<(Precision, usize)>,
    /// Coalesced corrector launches issued (one per corrector sweep over
    /// all live paths of a cohort — the batching win the tracker exists
    /// for).
    pub corrector_launches: usize,
    /// Accepted steps summed over all paths.
    pub steps: usize,
    /// Corrector iterations summed over all paths.
    pub newton_iterations: usize,
}

impl TrackStats {
    /// Total escalations over all paths.
    pub fn escalations(&self) -> usize {
        self.escalations_by_precision.iter().map(|(_, c)| c).sum()
    }
}

/// The result of tracking a family of start solutions: one report per path
/// plus run-wide statistics.
#[derive(Debug, Clone)]
pub struct TrackOutcome {
    /// Per-path reports, in start-solution order.
    pub reports: Vec<TrackReport>,
    /// Aggregate statistics.
    pub stats: TrackStats,
}

impl TrackOutcome {
    /// The report of path `i`.
    pub fn report(&self, i: usize) -> &TrackReport {
        &self.reports[i]
    }

    /// Iterator over the converged reports.
    pub fn converged(&self) -> impl Iterator<Item = &TrackReport> {
        self.reports.iter().filter(|r| r.converged())
    }
}
