//! Truncated power series over an arbitrary coefficient ring.
//!
//! A [`Series`] holds the `d + 1` coefficients of a power series truncated
//! at degree `d`.  The paper's kernels work directly on coefficient slices
//! (see [`crate::convolution`]); this type is the ergonomic, owned view used
//! by the public API, the examples and the tests.

use crate::convolution::{add_assign_slices, convolve_seq};
use psmd_multidouble::{Coeff, RealCoeff};

/// A power series truncated at a fixed degree.
#[derive(Clone, PartialEq, Debug)]
pub struct Series<C> {
    coeffs: Vec<C>,
}

impl<C: Coeff> Series<C> {
    /// The zero series truncated at `degree`.
    pub fn zero(degree: usize) -> Self {
        Self {
            coeffs: vec![C::zero(); degree + 1],
        }
    }

    /// The constant series `c + 0 t + ... + 0 t^degree`.
    pub fn constant(c: C, degree: usize) -> Self {
        let mut s = Self::zero(degree);
        s.coeffs[0] = c;
        s
    }

    /// The series `1`.
    pub fn one(degree: usize) -> Self {
        Self::constant(C::one(), degree)
    }

    /// The identity series `t` (zero if the truncation degree is 0).
    pub fn variable(degree: usize) -> Self {
        let mut s = Self::zero(degree);
        if degree >= 1 {
            s.coeffs[1] = C::one();
        }
        s
    }

    /// Builds a series from its coefficients (`coeffs[k]` is the coefficient
    /// of `t^k`).  The truncation degree is `coeffs.len() - 1`.
    pub fn from_coeffs(coeffs: Vec<C>) -> Self {
        assert!(
            !coeffs.is_empty(),
            "a series needs at least one coefficient"
        );
        Self { coeffs }
    }

    /// Builds a series from doubles.
    pub fn from_f64_coeffs(coeffs: &[f64]) -> Self {
        Self::from_coeffs(coeffs.iter().map(|&x| C::from_f64(x)).collect())
    }

    /// Truncation degree `d`.
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// The coefficients, lowest order first.
    pub fn coeffs(&self) -> &[C] {
        &self.coeffs
    }

    /// Mutable access to the coefficients.
    pub fn coeffs_mut(&mut self) -> &mut [C] {
        &mut self.coeffs
    }

    /// The coefficient of `t^k` (zero beyond the truncation degree).
    pub fn coeff(&self, k: usize) -> C {
        self.coeffs.get(k).copied().unwrap_or_else(C::zero)
    }

    /// Sets the coefficient of `t^k`.
    pub fn set_coeff(&mut self, k: usize, value: C) {
        self.coeffs[k] = value;
    }

    /// Reinitializes this series in place from a coefficient slice,
    /// reusing the existing buffer.  Allocation-free whenever the current
    /// capacity covers `coeffs.len()` — this is the `*_into` counterpart of
    /// [`Series::from_coeffs`] used by the workspace-reusing evaluation
    /// paths.
    pub fn copy_from_coeffs(&mut self, coeffs: &[C]) {
        assert!(
            !coeffs.is_empty(),
            "a series needs at least one coefficient"
        );
        self.coeffs.clear();
        self.coeffs.extend_from_slice(coeffs);
    }

    /// Resets this series in place to the zero series of `degree`, reusing
    /// the existing buffer (allocation-free when capacity suffices).
    pub fn fill_zero(&mut self, degree: usize) {
        self.coeffs.clear();
        self.coeffs.resize(degree + 1, C::zero());
    }

    /// Writes `self * other` into `out`, reusing `out`'s buffer — the
    /// `*_into` counterpart of [`Series::mul`] for callers that manage
    /// reuse explicitly.
    pub fn mul_into(&self, other: &Self, out: &mut Self) {
        assert_eq!(self.degree(), other.degree(), "degree mismatch");
        out.fill_zero(self.degree());
        convolve_seq(&self.coeffs, &other.coeffs, &mut out.coeffs);
    }

    /// True when every coefficient is zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(|c| c.is_zero())
    }

    /// Returns a copy truncated (or zero-extended) to a new degree.
    pub fn truncated(&self, degree: usize) -> Self {
        let mut coeffs = Vec::with_capacity(degree + 1);
        for k in 0..=degree {
            coeffs.push(self.coeff(k));
        }
        Self { coeffs }
    }

    /// Sum of two series (must share the truncation degree).
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!(self.degree(), other.degree(), "degree mismatch");
        let mut out = self.clone();
        add_assign_slices(&mut out.coeffs, &other.coeffs);
        out
    }

    /// In-place sum.
    pub fn add_assign(&mut self, other: &Self) {
        assert_eq!(self.degree(), other.degree(), "degree mismatch");
        add_assign_slices(&mut self.coeffs, &other.coeffs);
    }

    /// Difference of two series.
    pub fn sub(&self, other: &Self) -> Self {
        assert_eq!(self.degree(), other.degree(), "degree mismatch");
        let mut out = self.clone();
        for (a, b) in out.coeffs.iter_mut().zip(other.coeffs.iter()) {
            *a = a.sub(b);
        }
        out
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        Self {
            coeffs: self.coeffs.iter().map(|c| c.neg()).collect(),
        }
    }

    /// Writes `-self` into `out`, reusing `out`'s buffer (allocation-free
    /// when capacity suffices).
    pub fn neg_into(&self, out: &mut Self) {
        out.coeffs.clear();
        out.coeffs.extend(self.coeffs.iter().map(|c| c.neg()));
    }

    /// Product of two series truncated at the common degree (a convolution).
    pub fn mul(&self, other: &Self) -> Self {
        assert_eq!(self.degree(), other.degree(), "degree mismatch");
        let mut out = Self::zero(self.degree());
        convolve_seq(&self.coeffs, &other.coeffs, &mut out.coeffs);
        out
    }

    /// Product with a scalar.
    pub fn scale(&self, s: &C) -> Self {
        Self {
            coeffs: self.coeffs.iter().map(|c| c.mul(s)).collect(),
        }
    }

    /// Formal derivative with respect to the series variable `t`, truncated
    /// at the same degree (the top coefficient becomes zero).
    pub fn derivative(&self) -> Self {
        let d = self.degree();
        let mut out = Self::zero(d);
        for k in 1..=d {
            let factor = C::from_f64(k as f64);
            out.coeffs[k - 1] = self.coeffs[k].mul(&factor);
        }
        out
    }

    /// Evaluates the truncated series at a point by Horner's scheme.
    pub fn evaluate(&self, t: &C) -> C {
        let mut acc = C::zero();
        for c in self.coeffs.iter().rev() {
            acc = acc.mul(t).add(c);
        }
        acc
    }

    /// Largest coefficient magnitude (for error reporting).
    pub fn max_magnitude(&self) -> f64 {
        self.coeffs
            .iter()
            .map(|c| c.magnitude())
            .fold(0.0, f64::max)
    }

    /// Componentwise distance to another series, as a double estimate.
    pub fn distance(&self, other: &Self) -> f64 {
        assert_eq!(self.degree(), other.degree(), "degree mismatch");
        self.coeffs
            .iter()
            .zip(other.coeffs.iter())
            .map(|(a, b)| a.sub(b).magnitude())
            .fold(0.0, f64::max)
    }

    /// Largest coefficientwise distance to another series in units in the
    /// last place of the working precision (see
    /// [`psmd_multidouble::max_ulp_error`]); [`f64::INFINITY`] on a degree
    /// mismatch.
    pub fn ulp_distance(&self, other: &Self) -> f64 {
        psmd_multidouble::max_ulp_error(&self.coeffs, &other.coeffs)
    }
}

impl<C: RealCoeff> Series<C> {
    /// Reciprocal of the series (requires an invertible constant term).
    ///
    /// Uses the standard recurrence `w_0 = 1 / v_0`,
    /// `w_k = -(sum_{i=1..k} v_i w_{k-i}) / v_0`.
    pub fn recip(&self) -> Self {
        let d = self.degree();
        let v0 = self.coeffs[0];
        assert!(
            !v0.is_zero(),
            "series with zero constant term is not invertible"
        );
        let mut w = Self::zero(d);
        w.coeffs[0] = C::one().div(&v0);
        for k in 1..=d {
            let mut acc = C::zero();
            for i in 1..=k {
                acc.mul_add_assign(&self.coeffs[i], &w.coeffs[k - i]);
            }
            w.coeffs[k] = acc.neg().div(&v0);
        }
        w
    }

    /// Quotient of two series.
    pub fn div(&self, other: &Self) -> Self {
        self.mul(&other.recip())
    }

    /// Square root of the series (requires a positive constant term).
    ///
    /// Uses the recurrence obtained from squaring the unknown series.
    pub fn sqrt_series(&self) -> Self {
        let d = self.degree();
        let s0 = self.coeffs[0].sqrt();
        let mut r = Self::zero(d);
        r.coeffs[0] = s0;
        let two = C::from_f64(2.0);
        let denom = s0.mul(&two);
        for k in 1..=d {
            let mut acc = self.coeffs[k];
            for i in 1..k {
                acc = acc.sub(&r.coeffs[i].mul(&r.coeffs[k - i]));
            }
            r.coeffs[k] = acc.div(&denom);
        }
        r
    }
}

impl<C: Coeff + psmd_multidouble::RandomCoeff> Series<C> {
    /// A random series with uniform coefficients in `[-1, 1)`.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R, degree: usize) -> Self {
        Self {
            coeffs: (0..=degree).map(|_| C::random_uniform(rng)).collect(),
        }
    }

    /// A random series whose leading coefficient is well conditioned (used
    /// as input data for the paper's experiments).
    pub fn random_unit<R: rand::Rng + ?Sized>(rng: &mut R, degree: usize) -> Self {
        let mut coeffs: Vec<C> = (0..=degree).map(|_| C::random_uniform(rng)).collect();
        coeffs[0] = C::random_unit(rng);
        Self { coeffs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(unused_imports)]
    use psmd_multidouble::Coeff;
    use psmd_multidouble::{Complex, Dd, Qd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geometric(degree: usize) -> Series<Qd> {
        // 1 / (1 - t) = 1 + t + t^2 + ...
        Series::from_coeffs(vec![Qd::one(); degree + 1])
    }

    #[test]
    fn construction_and_accessors() {
        let s: Series<Qd> = Series::from_f64_coeffs(&[1.0, 2.0, 3.0]);
        assert_eq!(s.degree(), 2);
        assert_eq!(s.coeff(1).to_f64(), 2.0);
        assert_eq!(s.coeff(7).to_f64(), 0.0);
        assert!(!s.is_zero());
        assert!(Series::<Qd>::zero(4).is_zero());
        assert_eq!(Series::<Qd>::one(3).coeff(0).to_f64(), 1.0);
        assert_eq!(Series::<Qd>::variable(3).coeff(1).to_f64(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one coefficient")]
    fn empty_series_is_rejected() {
        let _ = Series::<Qd>::from_coeffs(vec![]);
    }

    #[test]
    fn addition_and_subtraction_are_inverse() {
        let mut rng = StdRng::seed_from_u64(3);
        let a: Series<Dd> = Series::random(&mut rng, 10);
        let b: Series<Dd> = Series::random(&mut rng, 10);
        let c = a.add(&b).sub(&b);
        assert!(c.distance(&a) < 1e-30);
    }

    #[test]
    fn multiplication_truncates_correctly() {
        // (1 - t) * (1 + t + t^2 + ...) = 1 (all higher terms cancel within
        // the truncation).
        let d = 12;
        let one_minus_t: Series<Qd> = Series::from_f64_coeffs(
            &std::iter::once(1.0)
                .chain(std::iter::once(-1.0))
                .chain(std::iter::repeat_n(0.0, d - 1))
                .collect::<Vec<_>>(),
        );
        let g = geometric(d);
        let p = one_minus_t.mul(&g);
        assert!(p.distance(&Series::one(d)) < 1e-60);
    }

    #[test]
    fn recip_of_geometric_series() {
        let d = 9;
        let g = geometric(d);
        let r = g.recip();
        // 1/(1 + t + ... ) = 1 - t
        let expect: Series<Qd> = Series::from_f64_coeffs(
            &std::iter::once(1.0)
                .chain(std::iter::once(-1.0))
                .chain(std::iter::repeat_n(0.0, d - 1))
                .collect::<Vec<_>>(),
        );
        assert!(r.distance(&expect) < 1e-60);
        // recip is an involution up to truncation error.
        assert!(r.recip().distance(&g) < 1e-55);
    }

    #[test]
    fn division_recovers_factor() {
        let mut rng = StdRng::seed_from_u64(17);
        let a: Series<Qd> = Series::random_unit(&mut rng, 16);
        let b: Series<Qd> = Series::random_unit(&mut rng, 16);
        let q = a.mul(&b).div(&b);
        assert!(q.distance(&a) < 1e-55, "distance {}", q.distance(&a));
    }

    #[test]
    fn sqrt_squares_back() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut a: Series<Qd> = Series::random(&mut rng, 20);
        // force a positive, well-scaled constant term
        a.set_coeff(0, Qd::from_f64(2.25));
        let r = a.sqrt_series();
        let back = r.mul(&r);
        // The coefficients of the square-root series grow with the degree,
        // so the tolerance is relative to the largest coefficient involved.
        let tol = 1e-45 * (1.0 + r.max_magnitude().powi(2));
        assert!(back.distance(&a) < tol, "distance {}", back.distance(&a));
    }

    #[test]
    fn derivative_of_polynomial_series() {
        // d/dt (1 + 2t + 3t^2) = 2 + 6t
        let s: Series<Qd> = Series::from_f64_coeffs(&[1.0, 2.0, 3.0]);
        let ds = s.derivative();
        assert_eq!(ds.coeff(0).to_f64(), 2.0);
        assert_eq!(ds.coeff(1).to_f64(), 6.0);
        assert_eq!(ds.coeff(2).to_f64(), 0.0);
    }

    #[test]
    fn horner_evaluation() {
        let s: Series<Qd> = Series::from_f64_coeffs(&[1.0, -2.0, 0.5]);
        let v = s.evaluate(&Qd::from_f64(2.0));
        // 1 - 4 + 2 = -1
        assert_eq!(v.to_f64(), -1.0);
    }

    #[test]
    fn truncation_and_extension() {
        let s: Series<Qd> = Series::from_f64_coeffs(&[1.0, 2.0, 3.0]);
        let t = s.truncated(1);
        assert_eq!(t.degree(), 1);
        assert_eq!(t.coeff(1).to_f64(), 2.0);
        let e = s.truncated(5);
        assert_eq!(e.degree(), 5);
        assert_eq!(e.coeff(5).to_f64(), 0.0);
        assert_eq!(e.coeff(2).to_f64(), 3.0);
    }

    #[test]
    fn complex_series_multiplication() {
        type Cx = Complex<Dd>;
        // (1 + i t)(1 - i t) = 1 + t^2
        let a: Series<Cx> = Series::from_coeffs(vec![Cx::one(), Cx::i(), Cx::zero()]);
        let b: Series<Cx> = Series::from_coeffs(vec![Cx::one(), Cx::i().neg(), Cx::zero()]);
        let p = a.mul(&b);
        assert!(p.coeff(0).sub(&Cx::one()).magnitude() < 1e-30);
        assert!(p.coeff(1).magnitude() < 1e-30);
        assert!(p.coeff(2).sub(&Cx::one()).magnitude() < 1e-30);
    }

    #[test]
    fn random_series_are_reproducible() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let a: Series<Qd> = Series::random(&mut r1, 8);
        let b: Series<Qd> = Series::random(&mut r2, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn scale_and_neg() {
        let s: Series<Qd> = Series::from_f64_coeffs(&[1.0, -2.0]);
        let t = s.scale(&Qd::from_f64(3.0));
        assert_eq!(t.coeff(0).to_f64(), 3.0);
        assert_eq!(t.coeff(1).to_f64(), -6.0);
        let n = s.neg();
        assert_eq!(n.coeff(1).to_f64(), 2.0);
    }
}
