//! Compensated FFT convolution for multiple-double power series.
//!
//! A direct floating-point FFT cannot multiply multi-double series: a single
//! `f64` FFT carries ~16 decimal digits, while a deca-double coefficient
//! carries ~160.  This kernel instead splits every coefficient into a
//! *fixed-point digit representation* — small integers on a common
//! power-of-two grid — convolves the digit planes with plain `f64` FFTs, and
//! recombines the digit convolution through the CAMPARY renormalization
//! pipeline of `psmd-multidouble`.
//!
//! ## The digit representation
//!
//! For an operand with largest limb magnitude below `2^{E-1}`, each
//! coefficient component (real or imaginary part) is written as
//!
//! ```text
//! v  =  sum_{p=0..P-1}  d_p * 2^{E - b (p+1)},      d_p integers
//! ```
//!
//! with `b = `[`fft_digit_bits`] bits per digit and `P = `[`fft_digit_planes`]
//! planes covering `52 N + 32` bits below the operand's leading bit (`N`
//! limbs of 52 mantissa bits plus a guard band).  Extraction is *exact*:
//! each `f64` limb is peeled into round-to-nearest digits by exact
//! subtractions, so at most two limbs contribute to a grid slot and every
//! digit satisfies `|d_p| < 2^{b+1}`.  Mass below the covered depth is
//! dropped; it sits at least 32 bits under the last limb of the result and
//! is invisible at the working precision.
//!
//! ## The certified transform
//!
//! The linear convolution of the digit planes is computed with `f64`
//! complex FFTs of length `L = `[`fft_points`]` >= 2n - 1` (complex
//! coefficients travel natively as complex digits; real series use zero
//! imaginary slots).  The exact digit-convolution values are integers
//! bounded by `n P 2^{2b+3}`, and `b` is chosen (per precision and length —
//! see [`fft_digit_bits`]) so that this bound *plus* the worst-case FFT
//! rounding error stays below `2^{51}`: the inverse transform then lands
//! within `1/4` of the exact integers, and rounding recovers the digit
//! convolution **exactly**.  The only inexact steps are the dropped
//! sub-depth tails and the final renormalization — which is why the kernel
//! is gated in ulps ([`fft_ulp_budget`]) rather than bitwise: the sums are
//! reassociated, but the error is a provably bounded number of ulps of the
//! operand scale, not a heuristic.
//!
//! Everything is allocation-free given a scratch slice of
//! [`fft_scratch_f64_len`] doubles (pre-sized into the engine's per-worker
//! `ConvScratch`).

use psmd_multidouble::renorm::renormalize_into;
use psmd_multidouble::{Coeff, MAX_LIMBS};

/// Guard bits covered below the last limb of the working precision, so that
/// dropped digit tails stay far under one ulp of the result.
const GUARD_BITS: usize = 32;

/// Upper bound on recombination terms (`2 P - 1` digit planes of the
/// product); sized for deca-double at the smallest digit width.
const MAX_TERMS: usize = 160;

/// FFT length used for series of `n` coefficients: the smallest power of two
/// holding the full linear convolution (`2n - 1` points).
pub fn fft_points(n: usize) -> usize {
    (2 * n.max(1) - 1).next_power_of_two()
}

/// Digit width `b` (bits per digit plane) used by [`convolve_fft`] for
/// series of `n` coefficients with `C`'s precision.
///
/// The width is the largest `b <= 24` such that the exact digit-convolution
/// bound `n P 2^{2b+3}` (times 2 for complex coefficients) plus the
/// worst-case FFT rounding error keeps the inverse transform within `1/4`
/// of the exact integers — the certification that makes digit rounding
/// exact.  Wider digits mean fewer planes (fewer transforms); narrower
/// digits raise the certified length ceiling.
pub fn fft_digit_bits<C: Coeff>(n: usize) -> usize {
    let limbs = C::component_limbs();
    let complex = C::components() == 2;
    for b in (8..=24).rev() {
        if certified(b, n, limbs, complex) {
            return b;
        }
    }
    // Unreachable for any practically compilable degree (b = 8 certifies
    // beyond n = 2^19 even at deca-double); kept total for safety.
    8
}

/// Number of digit planes per operand at `n` coefficients with `C`'s
/// precision: enough to cover `52 N + 32` bits below the leading limb.
pub fn fft_digit_planes<C: Coeff>(n: usize) -> usize {
    planes_for(fft_digit_bits::<C>(n), C::component_limbs())
}

fn planes_for(b: usize, limbs: usize) -> usize {
    (52 * limbs + GUARD_BITS).div_ceil(b) + 1
}

/// True when digit width `b` certifies exact digit rounding for length `n`.
fn certified(b: usize, n: usize, limbs: usize, complex: bool) -> bool {
    let p = planes_for(b, limbs);
    if 2 * p - 1 > MAX_TERMS {
        return false;
    }
    let l = fft_points(n);
    // log2 of the exact digit-convolution bound: n P pairs of digits below
    // 2^{b+1} each, times 2 for the complex cross terms.
    let mut bits = 2.0 * (b as f64 + 1.0) + 1.0 + ((n.max(1) * p) as f64).log2();
    if complex {
        bits += 1.0;
    }
    // FFT rounding error relative to the value bound: ~ 8 log2(L) eps.
    bits += (8.0 * (l.max(2) as f64).log2()).log2();
    // Exact integers plus error < 1/4 requires the bound under 2^51.
    bits <= 51.0
}

/// Scratch (in `f64`s) required by [`convolve_fft`] for series of `n`
/// coefficients of type `C`: the digit planes of both operands, one
/// accumulator plane, the product digit store and the twiddle table.
pub fn fft_scratch_f64_len<C: Coeff>(n: usize) -> usize {
    let l = fft_points(n);
    let p = fft_digit_planes::<C>(n);
    // x planes + y planes (complex, interleaved) + accumulator + product
    // digits (2P - 1 planes, n complex values each) + twiddles (L/2 pairs).
    2 * l * p * 2 + 2 * l + (2 * p - 1) * 2 * n + l
}

/// Per-element ulp budget of [`convolve_fft`] against schoolbook ground
/// truth, for well-scaled operands (coefficient magnitudes within a few
/// orders of the operand maximum, as in the accuracy suites).
///
/// The digit convolution itself is exact (see the module docs); the error
/// consists of the dropped sub-depth tails (32 bits under the last limb,
/// i.e. `2^{-32}` ulp of the operand-scale product) and one renormalization
/// per output, a few ulps of the *scale* `max|x| max|y|`.  For outputs much
/// smaller than the scale the per-element distance grows accordingly; the
/// adversarial suites gate with `max_scaled_error` instead (see
/// `EXPERIMENTS.md` section 10).
pub fn fft_ulp_budget(_limbs: usize) -> f64 {
    256.0
}

/// FFT convolution: `z_k = sum_{i=0..k} x_i * y_{k-i}` for `k < z.len()`,
/// computed through the certified digit transform described in the module
/// docs.
///
/// All three slices must have the same length `n`; `scratch` must hold at
/// least [`fft_scratch_f64_len`]`::<C>(n)` doubles.
pub fn convolve_fft<C: Coeff>(x: &[C], y: &[C], z: &mut [C], scratch: &mut [f64]) {
    let n = z.len();
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(y.len(), n);
    if n == 0 {
        return;
    }
    // Exact early-out: a zero operand has no digits and an exactly zero
    // product (this also keeps the scale computation total).
    let ex = match max_exponent(x) {
        Some(e) => e + 1,
        None => {
            z.fill(C::zero());
            return;
        }
    };
    let ey = match max_exponent(y) {
        Some(e) => e + 1,
        None => {
            z.fill(C::zero());
            return;
        }
    };
    let b = fft_digit_bits::<C>(n);
    let p = planes_for(b, C::component_limbs());
    let l = fft_points(n);
    debug_assert!(
        scratch.len() >= fft_scratch_f64_len::<C>(n),
        "fft scratch too small: {} < {}",
        scratch.len(),
        fft_scratch_f64_len::<C>(n)
    );
    let (xd, rest) = scratch.split_at_mut(2 * l * p);
    let (yd, rest) = rest.split_at_mut(2 * l * p);
    let (acc, rest) = rest.split_at_mut(2 * l);
    let (prod, rest) = rest.split_at_mut((2 * p - 1) * 2 * n);
    let tw = &mut rest[..l];
    fill_twiddles(tw, l);

    let x_used = extract_planes(x, xd, ex, b, p, l);
    let y_used = extract_planes(y, yd, ey, b, p, l);
    for pl in 0..p {
        if x_used & (1u128 << pl) != 0 {
            fft_inplace(&mut xd[pl * 2 * l..(pl + 1) * 2 * l], tw, false);
        }
        if y_used & (1u128 << pl) != 0 {
            fft_inplace(&mut yd[pl * 2 * l..(pl + 1) * 2 * l], tw, false);
        }
    }

    // Product digit planes: for each depth s, sum the pointwise spectra of
    // all (p, q) splits with p + q = s, inverse-transform, and round to the
    // (certified exact) integer digit convolution.
    for s in 0..2 * p - 1 {
        acc.fill(0.0);
        let lo = (s + 1).saturating_sub(p);
        let hi = s.min(p - 1);
        let mut any = false;
        for pp in lo..=hi {
            let q = s - pp;
            if x_used & (1u128 << pp) == 0 || y_used & (1u128 << q) == 0 {
                continue;
            }
            any = true;
            let xp = &xd[pp * 2 * l..(pp + 1) * 2 * l];
            let yq = &yd[q * 2 * l..(q + 1) * 2 * l];
            for j in 0..l {
                let (ar, ai) = (xp[2 * j], xp[2 * j + 1]);
                let (br, bi) = (yq[2 * j], yq[2 * j + 1]);
                acc[2 * j] += ar * br - ai * bi;
                acc[2 * j + 1] += ar * bi + ai * br;
            }
        }
        let row = &mut prod[s * 2 * n..(s + 1) * 2 * n];
        if !any {
            row.fill(0.0);
            continue;
        }
        fft_inplace(acc, tw, true);
        for k in 0..n {
            row[2 * k] = acc[2 * k].round();
            row[2 * k + 1] = acc[2 * k + 1].round();
        }
    }

    // Recombination: coefficient k of the product is the sum of its digit
    // planes at decreasing scales 2^{EX + EY - b (s + 2)}; the CAMPARY
    // renormalization compresses that term list back into C's limbs.
    let ncomp = C::components();
    let limbs = C::component_limbs();
    let mut terms = [0.0f64; MAX_TERMS];
    let mut limb_buf = [0.0f64; 2 * MAX_LIMBS];
    let nterms = 2 * p - 1;
    for (k, zk) in z.iter_mut().enumerate() {
        for comp in 0..ncomp {
            for (s, term) in terms[..nterms].iter_mut().enumerate() {
                let digit = prod[s * 2 * n + 2 * k + comp];
                *term = mul_pow2(digit, ex + ey - (b as i32) * (s as i32 + 2));
            }
            renormalize_into(
                &mut terms[..nterms],
                &mut limb_buf[comp * limbs..(comp + 1) * limbs],
                2,
            );
        }
        *zk = C::from_limbs(&limb_buf[..ncomp * limbs]);
    }
}

/// Largest binary exponent over all limbs of all components of `values`, or
/// `None` when every value is exactly zero.
fn max_exponent<C: Coeff>(values: &[C]) -> Option<i32> {
    let mut limbs = [0.0f64; 2 * MAX_LIMBS];
    let per = C::doubles_per_value();
    let mut best: Option<i32> = None;
    for v in values {
        v.write_limbs(&mut limbs[..per]);
        for &w in &limbs[..per] {
            if w != 0.0 {
                let e = exponent_of(w);
                best = Some(best.map_or(e, |m| m.max(e)));
            }
        }
    }
    best
}

/// Binary exponent of a nonzero finite double: `2^e <= |v| < 2^{e+1}`.
fn exponent_of(v: f64) -> i32 {
    let biased = ((v.abs().to_bits() >> 52) & 0x7ff) as i32;
    if biased == 0 {
        // Subnormal: rare, off the hot path.
        v.abs().log2().floor() as i32
    } else {
        biased - 1023
    }
}

/// `v * 2^e` without overflow of the intermediate scale factor, in two steps
/// when `|e|` exceeds the exponent range of a single power of two.  Results
/// below the subnormal range flush to zero (they are dropped digit tails).
fn mul_pow2(v: f64, e: i32) -> f64 {
    if v == 0.0 {
        return 0.0;
    }
    if (-969..=969).contains(&e) {
        v * 2f64.powi(e)
    } else {
        let h = e / 2;
        (v * 2f64.powi(h)) * 2f64.powi(e - h)
    }
}

/// Peels every limb of every component of `values` into integer digits on
/// the grid `2^{E - b (p + 1)}` (stored pre-scaled by `2^{-E}`), writing
/// plane `p` as interleaved complex slots `planes[p * 2L + 2k + comp]`.
/// Returns a bitmask of the planes that received any nonzero digit.
fn extract_planes<C: Coeff>(
    values: &[C],
    planes: &mut [f64],
    e_scale: i32,
    b: usize,
    p: usize,
    l: usize,
) -> u128 {
    planes.fill(0.0);
    let mut used = 0u128;
    let mut limbs = [0.0f64; 2 * MAX_LIMBS];
    let per = C::doubles_per_value();
    let comp_limbs = C::component_limbs();
    let step_down = 2f64.powi(-(b as i32));
    for (k, v) in values.iter().enumerate() {
        v.write_limbs(&mut limbs[..per]);
        for (idx, &limb) in limbs[..per].iter().enumerate() {
            if limb == 0.0 {
                continue;
            }
            let comp = idx / comp_limbs;
            // Pre-scale into (-1, 1): all digit scales are then normal
            // powers of two regardless of the operand's magnitude.
            let mut w = mul_pow2(limb, -e_scale);
            if w == 0.0 {
                continue; // more than the covered depth below the maximum
            }
            let ev = exponent_of(w); // ev <= -1
            let mut plane = if ev >= -2 {
                0
            } else {
                ((-ev - 2) as usize) / b
            };
            if plane >= p {
                continue;
            }
            // 2^{-s_plane} with s_plane = -b (plane + 1).
            let mut inv = 2f64.powi((b * (plane + 1)) as i32);
            while plane < p && w != 0.0 {
                let d = (w * inv).round();
                if d != 0.0 {
                    planes[plane * 2 * l + 2 * k + comp] += d;
                    used |= 1u128 << plane;
                    w -= d / inv; // exact: d / inv is an exact power-of-two multiple
                }
                plane += 1;
                inv *= 2f64.powi(b as i32);
            }
            let _ = step_down;
        }
    }
    used
}

/// Fills `tw` with the `L/2` forward twiddle factors `e^{-2 pi i j / L}`,
/// interleaved (re, im).
fn fill_twiddles(tw: &mut [f64], l: usize) {
    let half = l / 2;
    for j in 0..half {
        let theta = -2.0 * std::f64::consts::PI * (j as f64) / (l as f64);
        tw[2 * j] = theta.cos();
        tw[2 * j + 1] = theta.sin();
    }
}

/// Iterative radix-2 complex FFT over interleaved (re, im) data of `L`
/// points; `inverse` conjugates the twiddles and applies the exact `1/L`
/// power-of-two scaling.
fn fft_inplace(data: &mut [f64], tw: &[f64], inverse: bool) {
    let l = data.len() / 2;
    if l <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = l.trailing_zeros();
    for i in 0..l {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(2 * i, 2 * j);
            data.swap(2 * i + 1, 2 * j + 1);
        }
    }
    let mut len = 2;
    while len <= l {
        let half = len / 2;
        let stride = l / len;
        for base in (0..l).step_by(len) {
            for j in 0..half {
                let t = j * stride;
                let wr = tw[2 * t];
                let wi = if inverse {
                    -tw[2 * t + 1]
                } else {
                    tw[2 * t + 1]
                };
                let a = 2 * (base + j);
                let bidx = 2 * (base + j + half);
                let (br, bi) = (data[bidx], data[bidx + 1]);
                let tr = wr * br - wi * bi;
                let ti = wr * bi + wi * br;
                data[bidx] = data[a] - tr;
                data[bidx + 1] = data[a + 1] - ti;
                data[a] += tr;
                data[a + 1] += ti;
            }
        }
        len *= 2;
    }
    if inverse {
        let scale = 1.0 / (l as f64); // exact: L is a power of two
        for v in data.iter_mut() {
            *v *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolution::convolve_seq;
    use psmd_multidouble::{
        max_scaled_error, max_ulp_error, Complex, Dd, Deca, Md, Qd, RandomCoeff,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fft_conv<C: Coeff>(x: &[C], y: &[C]) -> Vec<C> {
        let n = x.len();
        let mut z = vec![C::zero(); n];
        let mut scratch = vec![0.0f64; fft_scratch_f64_len::<C>(n)];
        convolve_fft(x, y, &mut z, &mut scratch);
        z
    }

    fn reference<C: Coeff>(x: &[C], y: &[C]) -> Vec<C> {
        let mut z = vec![C::zero(); x.len()];
        convolve_seq(x, y, &mut z);
        z
    }

    #[test]
    fn matches_schoolbook_within_budget_at_every_small_size() {
        let mut rng = StdRng::seed_from_u64(71);
        // Every size 1..=40 exercises the non-power-of-two transform
        // lengths (L jumps 1, 2, 4, 8, ... while n walks linearly).
        for n in 1..=40 {
            let x: Vec<Qd> = (0..n).map(|_| RandomCoeff::random_unit(&mut rng)).collect();
            let y: Vec<Qd> = (0..n).map(|_| RandomCoeff::random_unit(&mut rng)).collect();
            let err = max_ulp_error(&fft_conv(&x, &y), &reference(&x, &y));
            assert!(err <= fft_ulp_budget(4), "n={n} err={err}");
        }
    }

    #[test]
    fn all_seven_precisions_stay_in_budget() {
        fn check<const N: usize>(seed: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            for n in [17usize, 96, 161] {
                let x: Vec<Md<N>> = (0..n).map(|_| RandomCoeff::random_unit(&mut rng)).collect();
                let y: Vec<Md<N>> = (0..n).map(|_| RandomCoeff::random_unit(&mut rng)).collect();
                let err = max_ulp_error(&fft_conv(&x, &y), &reference(&x, &y));
                assert!(err <= fft_ulp_budget(N), "N={N} n={n} err={err}");
            }
        }
        check::<1>(72);
        check::<2>(73);
        check::<3>(74);
        check::<4>(75);
        check::<5>(76);
        check::<8>(77);
        check::<10>(78);
    }

    #[test]
    fn complex_deca_double_stays_in_budget() {
        let mut rng = StdRng::seed_from_u64(79);
        let n = 128;
        let x: Vec<Complex<Deca>> = (0..n).map(|_| RandomCoeff::random_unit(&mut rng)).collect();
        let y: Vec<Complex<Deca>> = (0..n).map(|_| RandomCoeff::random_unit(&mut rng)).collect();
        let err = max_ulp_error(&fft_conv(&x, &y), &reference(&x, &y));
        assert!(err <= fft_ulp_budget(10), "err={err}");
    }

    #[test]
    fn zero_and_single_term_operands_are_exact() {
        let mut rng = StdRng::seed_from_u64(80);
        let n = 33;
        let y: Vec<Dd> = (0..n).map(|_| RandomCoeff::random_unit(&mut rng)).collect();
        // All-zero operand: exactly zero output.
        let zero = vec![Dd::ZERO; n];
        assert!(fft_conv(&zero, &y).iter().all(|c| c.is_zero()));
        assert!(fft_conv(&y, &zero).iter().all(|c| c.is_zero()));
        // Single-term operand x = c t^j: the product is an exact shift-scale.
        let mut x = vec![Dd::ZERO; n];
        x[7] = Dd::from_f64(3.0);
        let z = fft_conv(&x, &y);
        let r = reference(&x, &y);
        let err = max_ulp_error(&z, &r);
        assert!(err <= fft_ulp_budget(2), "err={err}");
        for (k, zk) in z.iter().take(7).enumerate() {
            assert!(zk.is_zero(), "k={k}");
        }
    }

    #[test]
    fn huge_tiny_magnitude_mixes_hold_the_scaled_bound() {
        let mut rng = StdRng::seed_from_u64(81);
        let n = 64;
        let mut x: Vec<Dd> = (0..n).map(|_| RandomCoeff::random_unit(&mut rng)).collect();
        let mut y: Vec<Dd> = (0..n).map(|_| RandomCoeff::random_unit(&mut rng)).collect();
        for k in 0..n {
            // Magnitudes spread over ~180 binary orders in both operands.
            x[k] = x[k].mul(&Dd::from_f64(2f64.powi(((k as i32) % 7) * 30 - 90)));
            y[k] = y[k].mul(&Dd::from_f64(2f64.powi(((k as i32) % 5) * 45 - 90)));
        }
        let z = fft_conv(&x, &y);
        let r = reference(&x, &y);
        let mx = x.iter().map(|c| c.magnitude()).fold(0.0, f64::max);
        let my = y.iter().map(|c| c.magnitude()).fold(0.0, f64::max);
        let err = max_scaled_error(&z, &r, mx * my);
        assert!(err <= fft_ulp_budget(2), "err={err}");
    }

    #[test]
    fn cancellation_heavy_series_hold_the_scaled_bound() {
        // x = (1 - t)^k-ish alternating series: outputs cancel massively.
        let mut rng = StdRng::seed_from_u64(82);
        let n = 96;
        let x: Vec<Qd> = (0..n)
            .map(|k| {
                let v: Qd = RandomCoeff::random_unit(&mut rng);
                if k % 2 == 0 {
                    v
                } else {
                    v.neg()
                }
            })
            .collect();
        let y: Vec<Qd> = (0..n)
            .map(|k| {
                let v: Qd = RandomCoeff::random_unit(&mut rng);
                if k % 2 == 1 {
                    v
                } else {
                    v.neg()
                }
            })
            .collect();
        let err = max_scaled_error(&fft_conv(&x, &y), &reference(&x, &y), 1.0);
        assert!(err <= fft_ulp_budget(4), "err={err}");
    }

    #[test]
    fn degree_zero_and_one_are_exact_products() {
        let x = [Qd::from_f64(4.0)];
        let y = [Qd::from_f64(2.5)];
        assert_eq!(fft_conv(&x, &y)[0].to_f64(), 10.0);
        let x = [Dd::from_f64(2.0), Dd::from_f64(1.0)];
        let y = [Dd::from_f64(3.0), Dd::from_f64(-1.0)];
        let z = fft_conv(&x, &y);
        assert_eq!(z[0].to_f64(), 6.0);
        assert_eq!(z[1].to_f64(), 1.0);
    }

    #[test]
    fn plain_f64_series_are_more_accurate_than_schoolbook() {
        // At N = 1 the digit transform is certified exact up to the final
        // rounding, so it cannot drift more than an ulp per coefficient.
        let mut rng = StdRng::seed_from_u64(83);
        let n = 100;
        let x: Vec<f64> = (0..n).map(|_| RandomCoeff::random_unit(&mut rng)).collect();
        let y: Vec<f64> = (0..n).map(|_| RandomCoeff::random_unit(&mut rng)).collect();
        let err = max_ulp_error(&fft_conv(&x, &y), &reference(&x, &y));
        assert!(err <= fft_ulp_budget(1), "err={err}");
    }

    #[test]
    fn transform_geometry_is_deterministic() {
        assert_eq!(fft_points(1), 1);
        assert_eq!(fft_points(2), 4);
        assert_eq!(fft_points(33), 128);
        assert_eq!(fft_points(161), 512);
        // Planes cover 52 N + 32 bits below the top at the chosen width.
        let b = fft_digit_bits::<Dd>(161);
        let p = fft_digit_planes::<Dd>(161);
        assert!(b * (p - 1) >= 52 * 2 + GUARD_BITS, "b={b} p={p}");
        assert!(2 * p - 1 <= MAX_TERMS);
        let b10 = fft_digit_bits::<Deca>(161);
        let p10 = fft_digit_planes::<Deca>(161);
        assert!(b10 * (p10 - 1) >= 52 * 10 + GUARD_BITS, "b={b10} p={p10}");
        assert!(2 * p10 - 1 <= MAX_TERMS);
    }
}
