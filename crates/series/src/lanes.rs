//! SIMD-lane convolution kernels over structure-of-arrays coefficient
//! panels.
//!
//! A *panel* packs `W` independent series (one per batch instance) into one
//! flat `f64` buffer in lane-major order: coefficient `k` of lane `l`
//! occupies doubles `k * D * W + d * W + l` for `d < D =
//! C::doubles_per_value()`.  The kernels below run the exact scalar
//! convolution recurrences of [`crate::convolution`] with every scalar
//! coefficient operation replaced by its [`LaneVec`] counterpart — which is
//! bitwise identical per lane — so lane `l` of the output panel carries
//! exactly the bits the scalar kernel produces for instance `l`.
//!
//! ## Runtime multiversioning
//!
//! The generic kernel body is monomorphized once per coefficient type and
//! lane width, then compiled several times under different
//! `#[target_feature]` roots (AVX2+FMA and AVX-512 on x86-64, NEON on
//! AArch64).  Inside a feature-enabled root, LLVM inlines the
//! `#[inline(always)]` lane primitives and lowers the `[f64; W]` loops to
//! `vaddpd`/`vmulpd`/`vfmadd*pd` over full vector registers; the portable
//! root compiles the same body against the baseline ISA.  [`convolve_panels`]
//! picks the widest root supported by the running machine (via
//! [`psmd_multidouble::lanes::detect_isa`]).  Because every root executes
//! the identical operation sequence, the choice changes only speed, never
//! bits.

use psmd_multidouble::lanes::{detect_isa, LaneVec, SimdIsa};
use psmd_multidouble::Coeff;

/// Number of `f64` slots a panel of `n` coefficients occupies at width `W`.
pub fn panel_f64s<C: Coeff>(n: usize, width: usize) -> usize {
    n * C::doubles_per_value() * width
}

/// The shared kernel body: the direct convolution recurrence
/// (`z[k] = Σ_{i<=k} x[i] · y[k-i]`, accumulated with
/// `mul_add_assign`) or its zero-insertion variant, over `W`-lane panels.
///
/// With `zero_insert` the body replicates
/// [`crate::convolution::convolve_zero_insertion`]: the scalar kernel stages
/// `y` into a zero-padded buffer of length `2 n` and accumulates all `n`
/// products per output coefficient, including the products against staged
/// zeros.  Those staged zeros are `C::zero()` bit patterns, so synthesizing
/// a zero lane vector for the out-of-range indices reproduces the staged
/// buffer bitwise without materializing it.
#[inline(always)]
fn conv_panels_body<C: Coeff, const W: usize>(
    zero_insert: bool,
    x: &[f64],
    y: &[f64],
    z: &mut [f64],
    n: usize,
) {
    let stride = C::doubles_per_value() * W;
    debug_assert!(x.len() >= n * stride);
    debug_assert!(y.len() >= n * stride);
    debug_assert!(z.len() >= n * stride);
    for k in 0..n {
        let mut acc = <C::Lanes<W> as LaneVec<C, W>>::zero();
        if zero_insert {
            for i in 0..n {
                let xi = C::Lanes::<W>::load_from(x, i * stride);
                let yi = if i <= k {
                    C::Lanes::<W>::load_from(y, (k - i) * stride)
                } else {
                    <C::Lanes<W> as LaneVec<C, W>>::zero()
                };
                acc.mul_add_assign(&xi, &yi);
            }
        } else {
            for i in 0..=k {
                let xi = C::Lanes::<W>::load_from(x, i * stride);
                let yi = C::Lanes::<W>::load_from(y, (k - i) * stride);
                acc.mul_add_assign(&xi, &yi);
            }
        }
        acc.store_to(z, k * stride);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn conv_panels_avx2<C: Coeff, const W: usize>(
    zero_insert: bool,
    x: &[f64],
    y: &[f64],
    z: &mut [f64],
    n: usize,
) {
    conv_panels_body::<C, W>(zero_insert, x, y, z, n);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq,avx2,fma")]
unsafe fn conv_panels_avx512<C: Coeff, const W: usize>(
    zero_insert: bool,
    x: &[f64],
    y: &[f64],
    z: &mut [f64],
    n: usize,
) {
    conv_panels_body::<C, W>(zero_insert, x, y, z, n);
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn conv_panels_neon<C: Coeff, const W: usize>(
    zero_insert: bool,
    x: &[f64],
    y: &[f64],
    z: &mut [f64],
    n: usize,
) {
    conv_panels_body::<C, W>(zero_insert, x, y, z, n);
}

/// Convolves `W`-lane panels `x` and `y` of `n` coefficients each into `z`,
/// dispatching to the widest instruction set the machine supports.
///
/// `zero_insert` selects between the bit patterns of the scalar
/// zero-insertion kernel and the direct kernel (they differ — each lane must
/// match the scalar kernel the plan resolved to).  The panels must not
/// overlap; the engine always convolves arena-gathered operand panels into a
/// separate output panel, which also makes in-place arena updates
/// (`out == in1` or `out == in2`) safe without extra staging.
pub fn convolve_panels<C: Coeff, const W: usize>(
    zero_insert: bool,
    x: &[f64],
    y: &[f64],
    z: &mut [f64],
    n: usize,
) {
    match detect_isa() {
        #[cfg(target_arch = "x86_64")]
        SimdIsa::Avx512 => unsafe { conv_panels_avx512::<C, W>(zero_insert, x, y, z, n) },
        #[cfg(target_arch = "x86_64")]
        SimdIsa::Avx2 => unsafe { conv_panels_avx2::<C, W>(zero_insert, x, y, z, n) },
        #[cfg(target_arch = "aarch64")]
        SimdIsa::Neon => unsafe { conv_panels_neon::<C, W>(zero_insert, x, y, z, n) },
        _ => conv_panels_body::<C, W>(zero_insert, x, y, z, n),
    }
}

/// Width-dynamic front end over [`convolve_panels`]: monomorphizes the
/// supported lane widths (2, 4, 8) behind one `usize` parameter.
///
/// # Panics
///
/// Panics on an unsupported width — the engine validates widths when it
/// resolves `SimdMode`, so reaching this with anything else is a bug.
pub fn convolve_panels_dyn<C: Coeff>(
    width: usize,
    zero_insert: bool,
    x: &[f64],
    y: &[f64],
    z: &mut [f64],
    n: usize,
) {
    match width {
        2 => convolve_panels::<C, 2>(zero_insert, x, y, z, n),
        4 => convolve_panels::<C, 4>(zero_insert, x, y, z, n),
        8 => convolve_panels::<C, 8>(zero_insert, x, y, z, n),
        w => panic!("unsupported SIMD lane width {w}: expected 2, 4 or 8"),
    }
}

/// Transposes one instance's coefficient slice into lane `lane` of a panel.
///
/// Every [`LaneVec`] lays double `j` of lane `l` at `base + j * width + l`
/// (for complex values the imaginary component simply continues the double
/// index), so the transpose is a strided copy of the exact-bit
/// [`Coeff::write_limbs`] representation.
pub fn gather_into_panel<C: Coeff>(src: &[C], panel: &mut [f64], lane: usize, width: usize) {
    let d = C::doubles_per_value();
    let stride = d * width;
    let mut limbs = [0.0; 2 * psmd_multidouble::MAX_LIMBS];
    debug_assert!(d <= limbs.len());
    for (k, v) in src.iter().enumerate() {
        v.write_limbs(&mut limbs[..d]);
        let base = k * stride;
        for (j, limb) in limbs[..d].iter().enumerate() {
            panel[base + j * width + lane] = *limb;
        }
    }
}

/// Transposes lane `lane` of a panel back into an instance's coefficient
/// slice (the inverse of [`gather_into_panel`], via [`Coeff::from_limbs`]).
pub fn scatter_from_panel<C: Coeff>(panel: &[f64], dst: &mut [C], lane: usize, width: usize) {
    let d = C::doubles_per_value();
    let stride = d * width;
    let mut limbs = [0.0; 2 * psmd_multidouble::MAX_LIMBS];
    debug_assert!(d <= limbs.len());
    for (k, v) in dst.iter_mut().enumerate() {
        let base = k * stride;
        for (j, limb) in limbs[..d].iter_mut().enumerate() {
            *limb = panel[base + j * width + lane];
        }
        *v = C::from_limbs(&limbs[..d]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolution::{convolve_seq, convolve_zero_insertion, zero_insertion_scratch_len};
    use psmd_multidouble::{Complex, Dd, Deca, Md, Od, Pd, Qd, Td};

    fn mill(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        }
    }

    fn series<C: Coeff>(n: usize, next: &mut impl FnMut() -> f64) -> Vec<C> {
        (0..n).map(|_| C::from_f64(next())).collect()
    }

    fn check_panels<C: Coeff, const W: usize>(n: usize, zero_insert: bool) {
        let mut next = mill(n as u64 * 31 + W as u64);
        let xs: Vec<Vec<C>> = (0..W).map(|_| series(n, &mut next)).collect();
        let ys: Vec<Vec<C>> = (0..W).map(|_| series(n, &mut next)).collect();
        let len = panel_f64s::<C>(n, W);
        let (mut xp, mut yp, mut zp) = (vec![0.0; len], vec![0.0; len], vec![0.0; len]);
        for l in 0..W {
            gather_into_panel(&xs[l], &mut xp, l, W);
            gather_into_panel(&ys[l], &mut yp, l, W);
        }
        convolve_panels::<C, W>(zero_insert, &xp, &yp, &mut zp, n);
        let mut scratch = vec![C::zero(); zero_insertion_scratch_len(n)];
        for l in 0..W {
            let mut got = vec![C::zero(); n];
            scatter_from_panel(&zp, &mut got, l, W);
            let mut want = vec![C::zero(); n];
            if zero_insert {
                convolve_zero_insertion(&xs[l], &ys[l], &mut want, &mut scratch);
            } else {
                convolve_seq(&xs[l], &ys[l], &mut want);
            }
            assert_eq!(got, want, "lane {l} W={W} n={n} zi={zero_insert}");
        }
    }

    #[test]
    fn panel_kernels_match_scalar_bitwise_all_precisions() {
        for zi in [false, true] {
            check_panels::<f64, 4>(9, zi);
            check_panels::<Dd, 4>(8, zi);
            check_panels::<Td, 2>(7, zi);
            check_panels::<Qd, 8>(6, zi);
            check_panels::<Pd, 4>(5, zi);
            check_panels::<Od, 2>(4, zi);
            check_panels::<Deca, 4>(4, zi);
            check_panels::<Md<1>, 8>(10, zi);
            check_panels::<Complex<Dd>, 4>(6, zi);
            check_panels::<Complex<Qd>, 2>(5, zi);
        }
    }

    #[test]
    fn dyn_dispatch_covers_supported_widths() {
        for w in [2usize, 4, 8] {
            let n = 5;
            let mut next = mill(w as u64);
            let xs: Vec<Vec<Dd>> = (0..w).map(|_| series(n, &mut next)).collect();
            let ys: Vec<Vec<Dd>> = (0..w).map(|_| series(n, &mut next)).collect();
            let len = panel_f64s::<Dd>(n, w);
            let (mut xp, mut yp, mut zp) = (vec![0.0; len], vec![0.0; len], vec![0.0; len]);
            for l in 0..w {
                gather_into_panel(&xs[l], &mut xp, l, w);
                gather_into_panel(&ys[l], &mut yp, l, w);
            }
            convolve_panels_dyn::<Dd>(w, false, &xp, &yp, &mut zp, n);
            for l in 0..w {
                let mut got = vec![Dd::zero(); n];
                scatter_from_panel(&zp, &mut got, l, w);
                let mut want = vec![Dd::zero(); n];
                convolve_seq(&xs[l], &ys[l], &mut want);
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    #[should_panic(expected = "unsupported SIMD lane width")]
    fn dyn_dispatch_rejects_bad_width() {
        let (x, y, mut z) = (vec![0.0; 6], vec![0.0; 6], vec![0.0; 6]);
        convolve_panels_dyn::<Dd>(3, false, &x, &y, &mut z, 1);
    }
}
