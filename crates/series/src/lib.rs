//! # psmd-series
//!
//! Truncated power series arithmetic: the data the paper's kernels operate
//! on.  A power series truncated at degree `d` is a vector of `d + 1`
//! coefficients; the two operations the paper parallelizes are the
//! *convolution* (series product) and the coefficient-wise *addition*.
//!
//! The crate provides both an owned, ergonomic [`Series`] type and the
//! slice-level kernels ([`convolution`]) that the evaluation engine of
//! `psmd-core` runs on ranges of its flat data array, including the
//! zero-insertion data-parallel convolution of Section 2 of the paper.

#![warn(missing_docs)]

pub mod convolution;
pub mod fft;
pub mod karatsuba;
pub mod lanes;
pub mod series;

pub use convolution::{
    add_assign_slices, addition_adds, convolution_adds, convolution_mults, convolve_accumulate,
    convolve_seq, convolve_zero_insertion, zero_insertion_scratch_len, ConvAlgo,
};
pub use fft::{
    convolve_fft, fft_digit_bits, fft_digit_planes, fft_points, fft_scratch_f64_len, fft_ulp_budget,
};
pub use karatsuba::{
    convolve_karatsuba, karatsuba_adds, karatsuba_depth, karatsuba_mults, karatsuba_scratch_len,
    karatsuba_ulp_budget, KARATSUBA_THRESHOLD,
};
pub use lanes::{
    convolve_panels, convolve_panels_dyn, gather_into_panel, panel_f64s, scatter_from_panel,
};
pub use series::Series;
