//! Slice-level convolution and addition kernels for truncated power series.
//!
//! These functions are the CPU equivalents of the paper's device kernels
//! (Section 2): one *convolution job* multiplies two series truncated at
//! degree `d` and one *addition job* updates one series with another.  The
//! evaluation engine of `psmd-core` calls them on ranges of the flat data
//! array; they are also usable directly on standalone coefficient slices.

use psmd_multidouble::Coeff;

/// Sequential convolution, the direct application of the coefficient formula
/// `z_k = sum_{i=0..k} x_i * y_{k-i}` (Equation (1) of the paper).
///
/// All three slices must have the same length `d + 1`.
pub fn convolve_seq<C: Coeff>(x: &[C], y: &[C], z: &mut [C]) {
    let n = z.len();
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(y.len(), n);
    for k in 0..n {
        let mut acc = C::zero();
        for i in 0..=k {
            acc.mul_add_assign(&x[i], &y[k - i]);
        }
        z[k] = acc;
    }
}

/// Data-parallel convolution with zero insertion, mirroring the paper's
/// kernel pseudo-code.
///
/// Thread `k` of the block loads `x_k` into shared memory `X`, zeroes
/// `Y_k`, loads `y_k` into `Y_{d+k}`, and then performs exactly `d + 1`
/// products `X_i * Y_{d+k-i}`, so every thread executes the same number of
/// operations (no thread divergence).  On the CPU the "threads" of the block
/// run as a sequential loop, which models the lock-step execution of a warp;
/// the parallelism across blocks is provided by the worker pool.
///
/// `scratch` provides the shared-memory staging area and must hold at least
/// `4 * (d + 1)` coefficients (the `X`, `Z` and double-length `Y` vectors of
/// the paper); this mirrors the shared-memory capacity constraint that limits
/// the maximal degree on the real device.
pub fn convolve_zero_insertion<C: Coeff>(x: &[C], y: &[C], z: &mut [C], scratch: &mut [C]) {
    let n = z.len();
    let d = n - 1;
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(y.len(), n);
    debug_assert!(scratch.len() >= 4 * n, "shared memory scratch too small");
    let (xs, rest) = scratch.split_at_mut(n);
    let (ys, zs) = rest.split_at_mut(2 * n);
    // Stage 1: every thread k loads its coefficients into "shared memory",
    // inserting zeroes before the second operand.  The two assignments to
    // `Y` are separate lock-step statements in the paper's kernel (all
    // threads zero their slot before any thread stores `y_k` at `d + k`),
    // hence a separate bulk store after the zeroing loop.
    for k in 0..n {
        xs[k] = x[k];
        ys[k] = C::zero();
    }
    ys[d..d + n].copy_from_slice(y);
    // Stage 2: d + 1 identical multiply-add steps per thread.
    for k in 0..n {
        let mut acc = C::zero();
        for i in 0..n {
            // Y index d + k - i + 1 - 1 = d + k - i; with the zero padding the
            // out-of-range products contribute exactly zero.
            acc.mul_add_assign(&xs[i], &ys[d + k - i]);
        }
        zs[k] = acc;
    }
    // Stage 3: write back to global memory.
    z[..n].copy_from_slice(&zs[..n]);
}

/// In-place addition job: `acc_k += inc_k` for every coefficient.
///
/// In the paper one block with `d + 1` threads performs this update in a
/// single step; here it is a plain vectorizable loop.
pub fn add_assign_slices<C: Coeff>(acc: &mut [C], inc: &[C]) {
    debug_assert_eq!(acc.len(), inc.len());
    for (a, b) in acc.iter_mut().zip(inc.iter()) {
        *a = a.add(b);
    }
}

/// Convolution that accumulates into the output (`z += x * y`), used by the
/// naive (baseline) evaluator.
pub fn convolve_accumulate<C: Coeff>(x: &[C], y: &[C], z: &mut [C]) {
    let n = z.len();
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(y.len(), n);
    for k in 0..n {
        let mut acc = z[k];
        for i in 0..=k {
            acc.mul_add_assign(&x[i], &y[k - i]);
        }
        z[k] = acc;
    }
}

/// Number of scratch coefficients [`convolve_zero_insertion`] needs for
/// series of `n = d + 1` coefficients (the `X`, double-length `Y` and `Z`
/// staging vectors of the paper's kernel).  Callers that pre-size reusable
/// scratch — the per-worker convolution scratch of the evaluation
/// workspaces — use this instead of hard-coding the factor.
pub const fn zero_insertion_scratch_len(n: usize) -> usize {
    4 * n
}

/// The convolution algorithm whose operation counts are being asked for.
///
/// The paper's Section 6.2 cost model counts the zero-insertion kernel; the
/// sub-quadratic ladder reports its own honest counts, so the counting
/// functions take the algorithm as a parameter instead of silently assuming
/// schoolbook.  The FFT kernel is deliberately absent: its cost is not a
/// coefficient-multiplication count (it runs on `f64` digit planes), so the
/// bench harness reports its transform length and plane count instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvAlgo {
    /// The paper's data-parallel zero-insertion kernel: every thread
    /// performs `d + 1` products, divergence-free.
    ZeroInsertion,
    /// The truncated schoolbook loop of [`convolve_seq`]: only the products
    /// that contribute below the truncation degree.
    Direct,
    /// The Karatsuba short product of
    /// [`convolve_karatsuba`](crate::karatsuba::convolve_karatsuba).
    Karatsuba,
}

/// Number of coefficient multiplications performed by one convolution job at
/// degree `d` under `algo` (the paper counts `(d+1)^2` with zero insertion).
pub fn convolution_mults(algo: ConvAlgo, degree: usize) -> usize {
    match algo {
        ConvAlgo::ZeroInsertion => (degree + 1) * (degree + 1),
        ConvAlgo::Direct => (degree + 1) * (degree + 2) / 2,
        ConvAlgo::Karatsuba => crate::karatsuba::karatsuba_mults(degree),
    }
}

/// Number of coefficient additions performed by one convolution job at
/// degree `d` under `algo` (the paper counts `d (d+1)`; accumulating into a
/// fresh accumulator skips the first addition of every output).
pub fn convolution_adds(algo: ConvAlgo, degree: usize) -> usize {
    match algo {
        ConvAlgo::ZeroInsertion => degree * (degree + 1),
        ConvAlgo::Direct => degree * (degree + 1) / 2,
        ConvAlgo::Karatsuba => crate::karatsuba::karatsuba_adds(degree),
    }
}

/// Number of coefficient additions performed by one addition job at degree
/// `d` (`d + 1`).
pub fn addition_adds(degree: usize) -> usize {
    degree + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use psmd_multidouble::{Dd, Md, Qd};

    fn qd(x: f64) -> Qd {
        Qd::from_f64(x)
    }

    #[test]
    fn sequential_convolution_of_known_series() {
        // (1 + t)^2 = 1 + 2t + t^2
        let x = vec![qd(1.0), qd(1.0), qd(0.0)];
        let y = x.clone();
        let mut z = vec![Qd::ZERO; 3];
        convolve_seq(&x, &y, &mut z);
        assert_eq!(z[0].to_f64(), 1.0);
        assert_eq!(z[1].to_f64(), 2.0);
        assert_eq!(z[2].to_f64(), 1.0);
    }

    #[test]
    fn zero_insertion_matches_sequential_for_random_data() {
        use psmd_multidouble::RandomCoeff;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        for d in [0usize, 1, 2, 7, 31] {
            let n = d + 1;
            let x: Vec<Dd> = (0..n)
                .map(|_| RandomCoeff::random_uniform(&mut rng))
                .collect();
            let y: Vec<Dd> = (0..n)
                .map(|_| RandomCoeff::random_uniform(&mut rng))
                .collect();
            let mut z1 = vec![Dd::ZERO; n];
            let mut z2 = vec![Dd::ZERO; n];
            let mut scratch = vec![Dd::ZERO; 4 * n];
            convolve_seq(&x, &y, &mut z1);
            convolve_zero_insertion(&x, &y, &mut z2, &mut scratch);
            for k in 0..n {
                let err = z1[k].sub(&z2[k]).abs().to_f64();
                // Both orderings accumulate the same products; tiny rounding
                // differences from the different summation order are allowed.
                assert!(
                    err <= 1e-28 * (1.0 + z1[k].abs().to_f64()),
                    "k={k} err={err}"
                );
            }
        }
    }

    #[test]
    fn zero_insertion_supports_in_place_update_of_an_operand() {
        // The scratch staging means x or y may alias z's storage logically:
        // we emulate by passing copies, computing, and overwriting.
        let x = vec![qd(2.0), qd(1.0)];
        let y = vec![qd(3.0), qd(-1.0)];
        let mut z = x.clone();
        let mut scratch = vec![Qd::ZERO; 8];
        let xc = x.clone();
        convolve_zero_insertion(&xc, &y, &mut z, &mut scratch);
        // (2 + t)(3 - t) = 6 + t - t^2, truncated at degree 1: [6, 1]
        assert_eq!(z[0].to_f64(), 6.0);
        assert_eq!(z[1].to_f64(), 1.0);
    }

    #[test]
    fn addition_job_updates_in_place() {
        let mut acc = vec![qd(1.0), qd(2.0), qd(3.0)];
        let inc = vec![qd(0.5), qd(-2.0), qd(10.0)];
        add_assign_slices(&mut acc, &inc);
        assert_eq!(acc[0].to_f64(), 1.5);
        assert_eq!(acc[1].to_f64(), 0.0);
        assert_eq!(acc[2].to_f64(), 13.0);
    }

    #[test]
    fn accumulate_convolution_adds_on_top() {
        let x = vec![qd(1.0), qd(1.0)];
        let y = vec![qd(1.0), qd(1.0)];
        let mut z = vec![qd(10.0), qd(20.0)];
        convolve_accumulate(&x, &y, &mut z);
        assert_eq!(z[0].to_f64(), 11.0);
        assert_eq!(z[1].to_f64(), 22.0);
    }

    #[test]
    fn operation_counts_match_paper_formulas() {
        // Degree 152: the paper's Section 6.2 counts (d+1)^2 = 23409
        // multiplications and d(d+1) = 23256 additions per convolution.
        assert_eq!(convolution_mults(ConvAlgo::ZeroInsertion, 152), 23_409);
        assert_eq!(convolution_adds(ConvAlgo::ZeroInsertion, 152), 23_256);
        assert_eq!(addition_adds(152), 153);
        assert_eq!(convolution_mults(ConvAlgo::ZeroInsertion, 0), 1);
        assert_eq!(convolution_adds(ConvAlgo::ZeroInsertion, 0), 0);
    }

    #[test]
    fn direct_counts_are_the_triangular_numbers() {
        // convolve_seq computes only the products below the truncation:
        // (d+1)(d+2)/2 multiplications, d(d+1)/2 additions.
        assert_eq!(convolution_mults(ConvAlgo::Direct, 0), 1);
        assert_eq!(convolution_adds(ConvAlgo::Direct, 0), 0);
        assert_eq!(convolution_mults(ConvAlgo::Direct, 152), 11_781);
        assert_eq!(convolution_adds(ConvAlgo::Direct, 152), 11_628);
        // Karatsuba degenerates to the Direct counts at or below the
        // recursion threshold (it *is* the schoolbook loop there).
        for d in 0..crate::karatsuba::KARATSUBA_THRESHOLD {
            assert_eq!(
                convolution_mults(ConvAlgo::Karatsuba, d),
                convolution_mults(ConvAlgo::Direct, d),
            );
            assert_eq!(
                convolution_adds(ConvAlgo::Karatsuba, d),
                convolution_adds(ConvAlgo::Direct, d),
            );
        }
    }

    #[test]
    fn degree_zero_convolution_is_scalar_product() {
        let x = [Md::<3>::from_f64(4.0)];
        let y = [Md::<3>::from_f64(2.5)];
        let mut z = [Md::<3>::ZERO];
        convolve_seq(&x, &y, &mut z);
        assert_eq!(z[0].to_f64(), 10.0);
        let mut scratch = vec![Md::<3>::ZERO; 4];
        let mut z2 = [Md::<3>::ZERO];
        convolve_zero_insertion(&x, &y, &mut z2, &mut scratch);
        assert_eq!(z2[0].to_f64(), 10.0);
    }
}
