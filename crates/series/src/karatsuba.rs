//! Karatsuba convolution for truncated power series.
//!
//! The schoolbook convolution of two series truncated at degree `d` costs
//! `O(d^2)` coefficient multiplications.  Karatsuba's identity
//!
//! ```text
//! (x0 + x1 t^h)(y0 + y1 t^h)
//!   = x0 y0 + ((x0 + x1)(y0 + y1) - x0 y0 - x1 y1) t^h + x1 y1 t^{2h}
//! ```
//!
//! computes the product of two half-length blocks with *three* half-size
//! multiplications instead of four, for `O(d^{log2 3})` total work.  For a
//! *truncated* product (only the first `n` coefficients are wanted) we use
//! the classical "short product" decomposition: one *full* Karatsuba product
//! of the low halves plus two recursive *short* products for the cross
//! terms — the high*high block never contributes below degree `n` and is
//! skipped entirely.
//!
//! Below [`KARATSUBA_THRESHOLD`] coefficients the recursion lands in a base
//! case that is *literally* the loop of [`convolve_seq`], so results at
//! small sizes are bitwise identical to the schoolbook kernel — the accuracy
//! suites gate on that.  Above the threshold the recursion reassociates
//! sums (and the middle term subtracts two products from a third, which
//! cancels), so results are gated in ulps instead; see
//! [`karatsuba_ulp_budget`] and `EXPERIMENTS.md` section 10.
//!
//! Everything here is allocation-free: callers pass a scratch slice of at
//! least [`karatsuba_scratch_len`] coefficients, which the engine's
//! per-worker [`ConvScratch`] pre-sizes so the steady state stays at zero
//! allocations.
//!
//! [`convolve_seq`]: crate::convolution::convolve_seq
//! [`ConvScratch`]: https://docs.rs/psmd-core

use psmd_multidouble::Coeff;

/// Block sizes at or below this many coefficients use the schoolbook base
/// case (the exact loop of [`convolve_seq`](crate::convolution::convolve_seq)).
///
/// The value balances recursion overhead against the saved multiplications;
/// it also defines the boundary of the bitwise-identity guarantee: short
/// products of `n <= KARATSUBA_THRESHOLD` coefficients are bitwise equal to
/// `convolve_seq`.
pub const KARATSUBA_THRESHOLD: usize = 16;

/// Scratch (in coefficients) required by [`convolve_karatsuba`] for series
/// of `n` coefficients.
pub fn karatsuba_scratch_len(n: usize) -> usize {
    if n <= KARATSUBA_THRESHOLD {
        return 0;
    }
    let h = n.div_ceil(2);
    let m = n - h;
    (2 * h - 1) + full_scratch_len(h).max(m + karatsuba_scratch_len(m))
}

/// Scratch required by the internal full (non-truncated) Karatsuba product
/// of two blocks of `m` coefficients.
fn full_scratch_len(m: usize) -> usize {
    if m <= KARATSUBA_THRESHOLD {
        return 0;
    }
    let h = m.div_ceil(2);
    // sum buffers (2h) + middle product (2h - 1) + recursion.
    4 * h - 1 + full_scratch_len(h)
}

/// Truncated (short-product) Karatsuba convolution:
/// `z_k = sum_{i=0..k} x_i * y_{k-i}` for `k < z.len()`.
///
/// All three slices must have the same length `n = d + 1`; `scratch` must
/// hold at least [`karatsuba_scratch_len`]`(n)` coefficients.  For
/// `n <= `[`KARATSUBA_THRESHOLD`] the result is bitwise equal to
/// [`convolve_seq`](crate::convolution::convolve_seq).
pub fn convolve_karatsuba<C: Coeff>(x: &[C], y: &[C], z: &mut [C], scratch: &mut [C]) {
    let n = z.len();
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(y.len(), n);
    debug_assert!(
        scratch.len() >= karatsuba_scratch_len(n),
        "karatsuba scratch too small: {} < {}",
        scratch.len(),
        karatsuba_scratch_len(n)
    );
    short_product(x, y, z, scratch);
}

/// Short product: the first `z.len()` coefficients of `x * y`.
fn short_product<C: Coeff>(x: &[C], y: &[C], z: &mut [C], scratch: &mut [C]) {
    let n = z.len();
    if n <= KARATSUBA_THRESHOLD {
        // Base case: the exact loop of `convolve_seq`, for bitwise identity.
        for k in 0..n {
            let mut acc = C::zero();
            for i in 0..=k {
                acc.mul_add_assign(&x[i], &y[k - i]);
            }
            z[k] = acc;
        }
        return;
    }
    let h = n.div_ceil(2);
    let m = n - h;
    // Full product of the low halves covers coefficients 0 .. 2h - 2.
    let (fbuf, rest) = scratch.split_at_mut(2 * h - 1);
    full_product(&x[..h], &y[..h], fbuf, rest);
    let take = n.min(2 * h - 1);
    z[..take].copy_from_slice(&fbuf[..take]);
    for zk in z[take..n].iter_mut() {
        // Even n: coefficient n - 1 gets no low*low contribution.
        *zk = C::zero();
    }
    // Cross terms x_low * y_high and y_low * x_high land on z[h..n]; the
    // high*high block starts at t^{2h} >= t^n and is skipped (this is what
    // makes the short product cheaper than a full one).
    let (cbuf, rest) = rest.split_at_mut(m);
    short_product(&x[..m], &y[h..], cbuf, rest);
    for (zk, c) in z[h..n].iter_mut().zip(cbuf.iter()) {
        *zk = zk.add(c);
    }
    short_product(&y[..m], &x[h..], cbuf, rest);
    for (zk, c) in z[h..n].iter_mut().zip(cbuf.iter()) {
        *zk = zk.add(c);
    }
}

/// Full product of two blocks of `m` coefficients into `2m - 1` outputs.
fn full_product<C: Coeff>(x: &[C], y: &[C], z: &mut [C], scratch: &mut [C]) {
    let m = x.len();
    debug_assert_eq!(y.len(), m);
    debug_assert_eq!(z.len(), 2 * m - 1);
    if m <= KARATSUBA_THRESHOLD {
        for (k, zk) in z.iter_mut().enumerate() {
            let lo = (k + 1).saturating_sub(m);
            let hi = k.min(m - 1);
            let mut acc = C::zero();
            for i in lo..=hi {
                acc.mul_add_assign(&x[i], &y[k - i]);
            }
            *zk = acc;
        }
        return;
    }
    let h = m.div_ceil(2);
    // P0 = x0 * y0 occupies z[0 .. 2h - 2]; P2 = x1 * y1 occupies
    // z[2h .. 2m - 2].  Index 2h - 1 sits between them and is zeroed.
    full_product(&x[..h], &y[..h], &mut z[..2 * h - 1], scratch);
    z[2 * h - 1] = C::zero();
    full_product(&x[h..], &y[h..], &mut z[2 * h..], scratch);
    // Middle term: (x0 + x1)(y0 + y1) - P0 - P2, added at offset h.  The
    // high halves may be one shorter than the low halves (odd m); the sums
    // then just keep the top low-half coefficient.
    let (sx, rest) = scratch.split_at_mut(h);
    let (sy, rest) = rest.split_at_mut(h);
    let (p1, rest) = rest.split_at_mut(2 * h - 1);
    sx.copy_from_slice(&x[..h]);
    for (s, hi) in sx.iter_mut().zip(x[h..].iter()) {
        *s = s.add(hi);
    }
    sy.copy_from_slice(&y[..h]);
    for (s, hi) in sy.iter_mut().zip(y[h..].iter()) {
        *s = s.add(hi);
    }
    full_product(sx, sy, p1, rest);
    for (p, z0) in p1.iter_mut().zip(z[..2 * h - 1].iter()) {
        *p = p.sub(z0);
    }
    for (p, z2) in p1.iter_mut().zip(z[2 * h..].iter()) {
        *p = p.sub(z2);
    }
    for (zk, p) in z[h..h + 2 * h - 1].iter_mut().zip(p1.iter()) {
        *zk = zk.add(p);
    }
}

/// Coefficient multiplications performed by [`convolve_karatsuba`] at degree
/// `d` (series of `d + 1` coefficients), mirroring the recursion exactly.
pub fn karatsuba_mults(degree: usize) -> usize {
    short_counts(degree + 1).0
}

/// Coefficient additions performed by [`convolve_karatsuba`] at degree `d`,
/// in the paper's counting convention (accumulating `k` products into a
/// fresh accumulator costs `k - 1` additions; explicit add/sub loops count
/// one each).
pub fn karatsuba_adds(degree: usize) -> usize {
    short_counts(degree + 1).1
}

/// (mults, adds) of the short product over `n` coefficients.
fn short_counts(n: usize) -> (usize, usize) {
    if n <= KARATSUBA_THRESHOLD {
        // z_k accumulates k + 1 products with k additions.
        return (n * (n + 1) / 2, n * (n - 1) / 2);
    }
    let h = n.div_ceil(2);
    let m = n - h;
    let (fm, fa) = full_counts(h);
    let (sm, sa) = short_counts(m);
    // Two cross products of m coefficients are added onto z.
    (fm + 2 * sm, fa + 2 * sa + 2 * m)
}

/// (mults, adds) of the full product over `m`-coefficient blocks.
fn full_counts(m: usize) -> (usize, usize) {
    if m <= KARATSUBA_THRESHOLD {
        // m^2 products over 2m - 1 accumulators.
        return (m * m, m * m - (2 * m - 1));
    }
    let h = m.div_ceil(2);
    let m1 = m - h;
    let (m0, a0) = full_counts(h);
    // Three recursive full products: low, high (padded view has the same
    // shape only for the middle one; low and high differ in size).
    let (m2, a2) = full_counts(m1);
    let (mm, am) = full_counts(h);
    let mults = m0 + m2 + mm;
    // 2 m1 operand-sum adds, (2h - 1) + (2 m1 - 1) subtractions, 2h - 1
    // final additions.
    let adds = a0 + a2 + am + 2 * m1 + (2 * h - 1) + (2 * m1 - 1) + (2 * h - 1);
    (mults, adds)
}

/// Recursion depth of the short product over `n` coefficients (0 when the
/// base case applies directly).
pub fn karatsuba_depth(n: usize) -> usize {
    let mut depth = 0;
    let mut n = n;
    while n > KARATSUBA_THRESHOLD {
        n = n.div_ceil(2);
        depth += 1;
    }
    depth
}

/// Ulp budget for [`convolve_karatsuba`] against the schoolbook reference,
/// in ulps of the *convolution scale* `n * max|x| * max|y|` (measure with
/// `max_scaled_error`, not per-element ulps).
///
/// Reassociating a coefficient sum perturbs it by a bounded multiple of the
/// unit roundoff times the *largest intermediate magnitude*, and the
/// Karatsuba middle term `(x0+x1)(y0+y1) - P0 - P2` cancels quantities of
/// roughly four times the block magnitude — so the provable distance to
/// schoolbook is a few ulps of `n * max|x| * max|y|`, independent of how
/// small an individual output coefficient happens to be.  Measured worst
/// cases across all precisions, signs and depths up to 5 stay below 0.25
/// ulps of that scale; the budget keeps a 16x margin.  Per-element ulp
/// distances are only meaningful when outputs do not cancel — see
/// `EXPERIMENTS.md` section 10 for the derivation and measured table.
pub fn karatsuba_ulp_budget(_n: usize) -> f64 {
    4.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolution::convolve_seq;
    use psmd_multidouble::{max_scaled_error, Complex, Dd, Md, Qd, RandomCoeff};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_series<C: Coeff + RandomCoeff>(rng: &mut StdRng, n: usize) -> Vec<C> {
        (0..n).map(|_| C::random_uniform(rng)).collect()
    }

    fn karatsuba<C: Coeff>(x: &[C], y: &[C]) -> Vec<C> {
        let n = x.len();
        let mut z = vec![C::zero(); n];
        let mut scratch = vec![C::zero(); karatsuba_scratch_len(n)];
        convolve_karatsuba(x, y, &mut z, &mut scratch);
        z
    }

    #[test]
    fn bitwise_equal_to_schoolbook_below_threshold() {
        let mut rng = StdRng::seed_from_u64(61);
        for n in 1..=KARATSUBA_THRESHOLD {
            let x: Vec<Qd> = random_series(&mut rng, n);
            let y: Vec<Qd> = random_series(&mut rng, n);
            let mut reference = vec![Qd::ZERO; n];
            convolve_seq(&x, &y, &mut reference);
            assert_eq!(karatsuba(&x, &y), reference, "n={n}");
        }
    }

    fn scale_of<C: Coeff>(x: &[C], y: &[C]) -> f64 {
        let mx = x.iter().map(|c| c.magnitude()).fold(0.0, f64::max);
        let my = y.iter().map(|c| c.magnitude()).fold(0.0, f64::max);
        x.len() as f64 * mx * my
    }

    #[test]
    fn ulp_bounded_above_threshold_all_sizes() {
        let mut rng = StdRng::seed_from_u64(62);
        // Every size up to 80 exercises all split parities (odd h, odd m,
        // even/odd alternations down the recursion).
        for n in (KARATSUBA_THRESHOLD + 1)..=80 {
            let x: Vec<Dd> = random_series(&mut rng, n);
            let y: Vec<Dd> = random_series(&mut rng, n);
            let mut reference = vec![Dd::ZERO; n];
            convolve_seq(&x, &y, &mut reference);
            let z = karatsuba(&x, &y);
            let err = max_scaled_error(&z, &reference, scale_of(&x, &y));
            assert!(err <= karatsuba_ulp_budget(n), "n={n} err={err}");
        }
    }

    #[test]
    fn degree_zero_and_one_are_exact() {
        let x = [Md::<3>::from_f64(4.0)];
        let y = [Md::<3>::from_f64(2.5)];
        assert_eq!(karatsuba(&x, &y)[0].to_f64(), 10.0);
        let x = [Dd::from_f64(2.0), Dd::from_f64(1.0)];
        let y = [Dd::from_f64(3.0), Dd::from_f64(-1.0)];
        let z = karatsuba(&x, &y);
        // (2 + t)(3 - t) truncated at degree 1: [6, 1]
        assert_eq!(z[0].to_f64(), 6.0);
        assert_eq!(z[1].to_f64(), 1.0);
    }

    #[test]
    fn complex_coefficients_stay_in_budget() {
        let mut rng = StdRng::seed_from_u64(63);
        for n in [17usize, 33, 96, 161] {
            let x: Vec<Complex<Qd>> = random_series(&mut rng, n);
            let y: Vec<Complex<Qd>> = random_series(&mut rng, n);
            let mut reference = vec![Complex::<Qd>::zero(); n];
            convolve_seq(&x, &y, &mut reference);
            let err = max_scaled_error(&karatsuba(&x, &y), &reference, scale_of(&x, &y));
            assert!(err <= karatsuba_ulp_budget(n), "n={n} err={err}");
        }
    }

    #[test]
    fn scratch_length_bounds_actual_usage() {
        // The recursion debug-asserts its scratch splits; running every size
        // through the kernel proves `karatsuba_scratch_len` is sufficient
        // (an under-estimate would panic on the `split_at_mut`).
        let mut rng = StdRng::seed_from_u64(64);
        for n in 1..=200 {
            let x: Vec<f64> = random_series(&mut rng, n);
            let y: Vec<f64> = random_series(&mut rng, n);
            let _ = karatsuba(&x, &y);
        }
    }

    /// A coefficient that counts ring operations in the paper's convention:
    /// multiplications count one each; additions count one each except when
    /// accumulating into an exact-zero accumulator (the paper's `d (d+1)`
    /// schoolbook count skips the first product of every output).
    #[derive(Copy, Clone, PartialEq, Debug)]
    struct Counted(f64);

    use std::cell::Cell;
    thread_local! {
        static MULTS: Cell<usize> = const { Cell::new(0) };
        static ADDS: Cell<usize> = const { Cell::new(0) };
    }

    impl Coeff for Counted {
        type Lanes<const W: usize> = psmd_multidouble::lanes::ScalarLanes<Self, W>;
        fn zero() -> Self {
            Counted(0.0)
        }
        fn one() -> Self {
            Counted(1.0)
        }
        fn from_f64(x: f64) -> Self {
            Counted(x)
        }
        fn add(&self, other: &Self) -> Self {
            ADDS.with(|a| a.set(a.get() + 1));
            Counted(self.0 + other.0)
        }
        fn sub(&self, other: &Self) -> Self {
            ADDS.with(|a| a.set(a.get() + 1));
            Counted(self.0 - other.0)
        }
        fn mul(&self, other: &Self) -> Self {
            MULTS.with(|m| m.set(m.get() + 1));
            Counted(self.0 * other.0)
        }
        fn neg(&self) -> Self {
            Counted(-self.0)
        }
        fn is_zero(&self) -> bool {
            self.0 == 0.0
        }
        fn magnitude(&self) -> f64 {
            self.0.abs()
        }
        fn unit_roundoff() -> f64 {
            f64::EPSILON * 0.5
        }
        fn doubles_per_value() -> usize {
            1
        }
        fn mul_add_assign(&mut self, a: &Self, b: &Self) {
            MULTS.with(|m| m.set(m.get() + 1));
            if self.0 != 0.0 {
                ADDS.with(|x| x.set(x.get() + 1));
            }
            self.0 += a.0 * b.0;
        }
        fn hash_bits<H: core::hash::Hasher>(&self, state: &mut H) {
            state.write_u64(self.0.to_bits());
        }
        fn component_limbs() -> usize {
            1
        }
        fn write_limbs(&self, out: &mut [f64]) {
            out[0] = self.0;
        }
        fn from_limbs(src: &[f64]) -> Self {
            Counted(src[0])
        }
    }

    #[test]
    fn count_formulas_match_an_instrumented_run() {
        let mut rng = StdRng::seed_from_u64(65);
        for n in [1usize, 5, 16, 17, 24, 31, 32, 33, 64, 96, 128, 160, 161] {
            // Strictly positive data: no accidental exact zeros, so the
            // instrumented convention matches the formulas exactly.
            let x: Vec<Counted> = (0..n)
                .map(|_| Counted(1.0 + <f64 as RandomCoeff>::random_unit(&mut rng).abs()))
                .collect();
            let y: Vec<Counted> = (0..n)
                .map(|_| Counted(1.0 + <f64 as RandomCoeff>::random_unit(&mut rng).abs()))
                .collect();
            MULTS.with(|m| m.set(0));
            ADDS.with(|a| a.set(0));
            let _ = karatsuba(&x, &y);
            let mults = MULTS.with(|m| m.get());
            let adds = ADDS.with(|a| a.get());
            assert_eq!(mults, karatsuba_mults(n - 1), "mults at n={n}");
            assert_eq!(adds, karatsuba_adds(n - 1), "adds at n={n}");
        }
    }

    #[test]
    fn karatsuba_saves_multiplications_at_paper_degrees() {
        use crate::convolution::convolution_mults;
        for d in [64usize, 96, 128, 152, 160] {
            let school = convolution_mults(crate::convolution::ConvAlgo::ZeroInsertion, d);
            let kara = karatsuba_mults(d);
            assert!(
                (kara as f64) < 0.5 * school as f64,
                "d={d}: karatsuba {kara} vs schoolbook {school}"
            );
        }
    }
}
