//! Operator overloads and ordering for [`Md<N>`].
//!
//! All operators delegate to the inherent methods of [`Md`]; both value and
//! reference receivers are provided so that expression-heavy numerical code
//! does not have to sprinkle explicit clones or borrows.

use crate::md::Md;
use core::cmp::Ordering;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $inner:ident) => {
        impl<const N: usize> $trait for Md<N> {
            type Output = Md<N>;
            #[inline]
            fn $method(self, rhs: Md<N>) -> Md<N> {
                Md::$inner(&self, &rhs)
            }
        }
        impl<'a, const N: usize> $trait<&'a Md<N>> for Md<N> {
            type Output = Md<N>;
            #[inline]
            fn $method(self, rhs: &'a Md<N>) -> Md<N> {
                Md::$inner(&self, rhs)
            }
        }
        impl<'a, const N: usize> $trait<Md<N>> for &'a Md<N> {
            type Output = Md<N>;
            #[inline]
            fn $method(self, rhs: Md<N>) -> Md<N> {
                Md::$inner(self, &rhs)
            }
        }
        impl<'a, 'b, const N: usize> $trait<&'b Md<N>> for &'a Md<N> {
            type Output = Md<N>;
            #[inline]
            fn $method(self, rhs: &'b Md<N>) -> Md<N> {
                Md::$inner(self, rhs)
            }
        }
    };
}

forward_binop!(Add, add, add);
forward_binop!(Sub, sub, sub);
forward_binop!(Mul, mul, mul);
forward_binop!(Div, div, div);

macro_rules! forward_f64_binop {
    ($trait:ident, $method:ident, $inner:ident) => {
        impl<const N: usize> $trait<f64> for Md<N> {
            type Output = Md<N>;
            #[inline]
            fn $method(self, rhs: f64) -> Md<N> {
                Md::$inner(&self, rhs)
            }
        }
        impl<'a, const N: usize> $trait<f64> for &'a Md<N> {
            type Output = Md<N>;
            #[inline]
            fn $method(self, rhs: f64) -> Md<N> {
                Md::$inner(self, rhs)
            }
        }
    };
}

forward_f64_binop!(Add, add, add_f64);
forward_f64_binop!(Sub, sub, sub_f64);
forward_f64_binop!(Mul, mul, mul_f64);
forward_f64_binop!(Div, div, div_f64);

impl<const N: usize> Neg for Md<N> {
    type Output = Md<N>;
    #[inline]
    fn neg(self) -> Md<N> {
        Md::neg(&self)
    }
}

impl<const N: usize> Neg for &Md<N> {
    type Output = Md<N>;
    #[inline]
    fn neg(self) -> Md<N> {
        Md::neg(self)
    }
}

impl<const N: usize> AddAssign for Md<N> {
    #[inline]
    fn add_assign(&mut self, rhs: Md<N>) {
        *self = Md::add(self, &rhs);
    }
}

impl<const N: usize> SubAssign for Md<N> {
    #[inline]
    fn sub_assign(&mut self, rhs: Md<N>) {
        *self = Md::sub(self, &rhs);
    }
}

impl<const N: usize> MulAssign for Md<N> {
    #[inline]
    fn mul_assign(&mut self, rhs: Md<N>) {
        *self = Md::mul(self, &rhs);
    }
}

impl<const N: usize> DivAssign for Md<N> {
    #[inline]
    fn div_assign(&mut self, rhs: Md<N>) {
        *self = Md::div(self, &rhs);
    }
}

impl<const N: usize> PartialOrd for Md<N> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        if self.is_nan() || other.is_nan() {
            return None;
        }
        Some(self.cmp_md(other))
    }
}

impl<const N: usize> PartialEq<f64> for Md<N> {
    #[inline]
    fn eq(&self, other: &f64) -> bool {
        self.cmp_md(&Md::from_f64(*other)) == Ordering::Equal
    }
}

impl<const N: usize> From<f64> for Md<N> {
    #[inline]
    fn from(x: f64) -> Self {
        Md::from_f64(x)
    }
}

impl<const N: usize> From<i64> for Md<N> {
    #[inline]
    fn from(x: i64) -> Self {
        Md::from_i64(x)
    }
}

impl<const N: usize> From<i32> for Md<N> {
    #[inline]
    fn from(x: i32) -> Self {
        Md::from_i64(x as i64)
    }
}

impl<const N: usize> Sum for Md<N> {
    fn sum<I: Iterator<Item = Md<N>>>(iter: I) -> Md<N> {
        iter.fold(Md::ZERO, |acc, x| acc.add(&x))
    }
}

impl<'a, const N: usize> Sum<&'a Md<N>> for Md<N> {
    fn sum<I: Iterator<Item = &'a Md<N>>>(iter: I) -> Md<N> {
        iter.fold(Md::ZERO, |acc, x| acc.add(x))
    }
}

impl<const N: usize> Product for Md<N> {
    fn product<I: Iterator<Item = Md<N>>>(iter: I) -> Md<N> {
        iter.fold(Md::one(), |acc, x| acc.mul(&x))
    }
}

#[cfg(test)]
mod tests {
    use crate::md::{Dd, Qd};

    #[test]
    fn operator_forms_agree_with_methods() {
        let a = Qd::from_f64(1.25) + Qd::from_f64(2f64.powi(-80));
        let b = Qd::from_f64(0.75);
        assert_eq!(a + b, a.add(&b));
        assert_eq!(a - b, a.sub(&b));
        assert_eq!(a * b, a.mul(&b));
        assert_eq!(a / b, a.div(&b));
        assert_eq!(-a, a.neg());
        assert_eq!(a + 2.0, a.add_f64(2.0));
        assert_eq!(a * 2.0, a.mul_f64(2.0));
    }

    #[test]
    fn assignment_operators() {
        let mut x = Dd::from_f64(2.0);
        x += Dd::from_f64(3.0);
        assert_eq!(x.to_f64(), 5.0);
        x *= Dd::from_f64(2.0);
        assert_eq!(x.to_f64(), 10.0);
        x -= Dd::from_f64(4.0);
        assert_eq!(x.to_f64(), 6.0);
        x /= Dd::from_f64(3.0);
        assert_eq!(x.to_f64(), 2.0);
    }

    #[test]
    fn ordering_and_nan() {
        let a = Qd::from_f64(1.0);
        let b = Qd::from_f64(1.0) + Qd::from_f64(2f64.powi(-100));
        assert!(a < b);
        assert!(b > a);
        assert!(a <= a);
        assert!(Qd::nan().partial_cmp(&a).is_none());
    }

    #[test]
    fn sums_and_products() {
        let xs = [1.0, 2.0, 3.0, 4.0].map(Qd::from_f64);
        let s: Qd = xs.iter().sum();
        assert_eq!(s.to_f64(), 10.0);
        let p: Qd = xs.into_iter().product();
        assert_eq!(p.to_f64(), 24.0);
    }

    #[test]
    fn conversions() {
        let x: Qd = 3.5f64.into();
        assert_eq!(x.to_f64(), 3.5);
        let y: Qd = 7i32.into();
        assert_eq!(y.to_f64(), 7.0);
        assert!(x == 3.5);
    }
}
