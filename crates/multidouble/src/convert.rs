//! Decimal conversion: formatting a multiple-double to a decimal string with
//! the full precision of its limbs, and parsing decimal strings back.
//!
//! The digit extraction follows the approach of the QD library: scale the
//! value into `[1, 10)`, then repeatedly take the integer part and multiply
//! the fraction by ten, performing every step in full multiple-double
//! arithmetic so that all `53 N` bits contribute to the digits.

use crate::md::Md;
use core::fmt;
use core::str::FromStr;

/// Number of significant decimal digits carried by an `N`-fold double:
/// `floor(53 N log10 2)`.
pub fn decimal_digits(limbs: usize) -> usize {
    ((53 * limbs) as f64 * std::f64::consts::LOG10_2).floor() as usize
}

impl<const N: usize> Md<N> {
    /// Formats the value with `ndigits` significant decimal digits in
    /// scientific notation.
    pub fn to_decimal(&self, ndigits: usize) -> String {
        let ndigits = ndigits.max(1);
        if self.is_nan() {
            return "NaN".to_string();
        }
        if self.is_infinite() {
            return if self.hi() > 0.0 { "inf" } else { "-inf" }.to_string();
        }
        if self.is_zero() {
            return "0.0e0".to_string();
        }
        let negative = self.signum_i32() < 0;
        let a = self.abs();
        let mut exp10 = a.hi().abs().log10().floor() as i32;
        let ten = Md::<N>::from_f64(10.0);
        let mut m = a.div(&ten.powi(exp10 as i64));
        // Guard against off-by-one scaling from the double-precision log10.
        let one = Md::<N>::one();
        while m.cmp_md(&ten) != core::cmp::Ordering::Less {
            m = m.div(&ten);
            exp10 += 1;
        }
        while m.cmp_md(&one) == core::cmp::Ordering::Less {
            m = m.mul(&ten);
            exp10 -= 1;
        }
        let mut digits: Vec<u8> = Vec::with_capacity(ndigits);
        for _ in 0..ndigits {
            let d = m.floor().to_f64();
            let d = d.clamp(0.0, 9.0) as u8;
            digits.push(d);
            m = m.sub(&Md::from_f64(d as f64)).mul(&ten);
        }
        // Round the last digit according to the remaining fraction.
        if m.cmp_md(&Md::from_f64(5.0)) != core::cmp::Ordering::Less {
            let mut i = ndigits;
            loop {
                if i == 0 {
                    // Carry past the leading digit: 9.99... -> 1.00...
                    digits.insert(0, 1);
                    digits.pop();
                    exp10 += 1;
                    break;
                }
                i -= 1;
                if digits[i] == 9 {
                    digits[i] = 0;
                } else {
                    digits[i] += 1;
                    break;
                }
            }
        }
        let mut s = String::with_capacity(ndigits + 8);
        if negative {
            s.push('-');
        }
        s.push((b'0' + digits[0]) as char);
        s.push('.');
        if ndigits == 1 {
            s.push('0');
        } else {
            for &d in &digits[1..] {
                s.push((b'0' + d) as char);
            }
        }
        s.push('e');
        s.push_str(&exp10.to_string());
        s
    }

    /// Parses a decimal string (`[+-]digits[.digits][e[+-]digits]`).
    pub fn parse_decimal(text: &str) -> Result<Self, ParseMdError> {
        let text = text.trim();
        if text.is_empty() {
            return Err(ParseMdError::Empty);
        }
        match text {
            "NaN" | "nan" => return Ok(Self::nan()),
            "inf" | "+inf" => return Ok(Self::from_f64(f64::INFINITY)),
            "-inf" => return Ok(Self::from_f64(f64::NEG_INFINITY)),
            _ => {}
        }
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let mut negative = false;
        if bytes[pos] == b'+' || bytes[pos] == b'-' {
            negative = bytes[pos] == b'-';
            pos += 1;
        }
        let ten = Self::from_f64(10.0);
        let mut acc = Self::ZERO;
        let mut saw_digit = false;
        let mut frac_digits: i64 = 0;
        let mut in_fraction = false;
        while pos < bytes.len() {
            let b = bytes[pos];
            match b {
                b'0'..=b'9' => {
                    acc = acc.mul(&ten).add_f64((b - b'0') as f64);
                    saw_digit = true;
                    if in_fraction {
                        frac_digits += 1;
                    }
                    pos += 1;
                }
                b'.' if !in_fraction => {
                    in_fraction = true;
                    pos += 1;
                }
                b'e' | b'E' => break,
                b'_' => pos += 1,
                _ => return Err(ParseMdError::InvalidCharacter(b as char)),
            }
        }
        if !saw_digit {
            return Err(ParseMdError::NoDigits);
        }
        let mut exp10: i64 = 0;
        if pos < bytes.len() && (bytes[pos] == b'e' || bytes[pos] == b'E') {
            let exp_str = &text[pos + 1..];
            exp10 = exp_str
                .parse::<i64>()
                .map_err(|_| ParseMdError::InvalidExponent)?;
        }
        let shift = exp10 - frac_digits;
        let mut value = if shift != 0 {
            acc.mul(&ten.powi(shift))
        } else {
            acc
        };
        if negative {
            value = value.neg();
        }
        Ok(value)
    }
}

/// Errors produced when parsing a decimal string into a multiple-double.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseMdError {
    /// The input was empty.
    Empty,
    /// The input contained no digits.
    NoDigits,
    /// An unexpected character was found.
    InvalidCharacter(char),
    /// The exponent was not a valid integer.
    InvalidExponent,
}

impl fmt::Display for ParseMdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseMdError::Empty => write!(f, "empty string"),
            ParseMdError::NoDigits => write!(f, "no digits in input"),
            ParseMdError::InvalidCharacter(c) => write!(f, "invalid character {c:?}"),
            ParseMdError::InvalidExponent => write!(f, "invalid exponent"),
        }
    }
}

impl std::error::Error for ParseMdError {}

impl<const N: usize> fmt::Display for Md<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digits = f.precision().unwrap_or_else(|| decimal_digits(N));
        write!(f, "{}", self.to_decimal(digits))
    }
}

impl<const N: usize> FromStr for Md<N> {
    type Err = ParseMdError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse_decimal(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md::{Dd, Deca, Qd};

    #[test]
    fn decimal_digit_counts() {
        assert_eq!(decimal_digits(1), 15);
        assert_eq!(decimal_digits(2), 31);
        assert_eq!(decimal_digits(4), 63);
        assert_eq!(decimal_digits(10), 159);
    }

    #[test]
    fn formats_small_integers_exactly() {
        assert_eq!(Qd::from_f64(1.0).to_decimal(5), "1.0000e0");
        assert_eq!(Qd::from_f64(-42.0).to_decimal(4), "-4.200e1");
        assert_eq!(Qd::ZERO.to_decimal(5), "0.0e0");
        assert_eq!(Qd::from_f64(0.125).to_decimal(4), "1.250e-1");
    }

    #[test]
    fn formats_one_third_with_many_digits() {
        let third = Deca::one().div(&Deca::from_f64(3.0));
        let s = third.to_decimal(40);
        assert_eq!(s, format!("3.{}e-1", "3".repeat(39)));
    }

    #[test]
    fn rounding_carries_through_nines() {
        // 0.9999999 formatted with 3 digits must round to 1.00e0.
        let x = Qd::from_f64(0.9999999);
        assert_eq!(x.to_decimal(3), "1.00e0");
    }

    #[test]
    fn special_values() {
        assert_eq!(Qd::nan().to_decimal(5), "NaN");
        assert_eq!(Qd::from_f64(f64::INFINITY).to_decimal(5), "inf");
        assert_eq!(Qd::from_f64(f64::NEG_INFINITY).to_decimal(5), "-inf");
    }

    #[test]
    fn parse_round_trips_through_format() {
        let cases = [
            "1.5e0",
            "-2.25e3",
            "3.333333333333333333333333333e-1",
            "0.125",
        ];
        for c in &cases {
            let x: Qd = c.parse().unwrap();
            let formatted = x.to_decimal(40);
            let y: Qd = formatted.parse().unwrap();
            assert!(
                x.sub(&y).abs().to_f64() <= 1e-35 * (1.0 + x.abs().to_f64()),
                "case {c}: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn parse_beyond_double_precision() {
        // 100 threes: the value differs from the double-precision parse.
        let text = format!("0.{}", "3".repeat(100));
        let x: Deca = text.parse().unwrap();
        let third = Deca::one().div(&Deca::from_f64(3.0));
        // Difference between 0.33..3 (100 digits) and 1/3 is about 3.3e-101.
        let diff = x.sub(&third).abs();
        assert!(diff.to_f64() < 1e-100);
        assert!(diff.to_f64() > 1e-102);
    }

    #[test]
    fn parse_errors() {
        assert!(Qd::parse_decimal("").is_err());
        assert!(Qd::parse_decimal("abc").is_err());
        assert!(Qd::parse_decimal("1.5e+x").is_err());
        assert!(Qd::parse_decimal("-").is_err());
    }

    #[test]
    fn display_uses_full_precision_by_default() {
        let x = Dd::one().div(&Dd::from_f64(7.0));
        let s = format!("{x}");
        // 31 significant digits for double-double.
        let mantissa: String = s.chars().filter(|c| c.is_ascii_digit()).collect();
        assert!(mantissa.len() >= 31);
        assert!(s.starts_with("1.4285714285714285714285714285"));
    }

    #[test]
    fn display_respects_precision_flag() {
        let x = Qd::from_f64(2.0).sqrt();
        assert_eq!(format!("{x:.5}"), "1.4142e0");
    }
}
