//! Double-operation cost models for multiple-double arithmetic.
//!
//! The paper's throughput analysis (Section 6.2) converts every multiple-
//! double operation into its equivalent number of double-precision
//! operations: one deca-double addition costs 139 additions and 258
//! subtractions (397 double operations), one deca-double multiplication
//! costs 952 additions, 1743 subtractions and 394 multiplications (3089
//! double operations).  Those reference numbers come from the CAMPARY
//! generated code the paper links against.
//!
//! This module provides two cost models:
//!
//! * [`impl_add_ops`] / [`impl_mul_ops`]: the exact double-operation counts
//!   of *this* crate's algorithms, derived from their structure (merge +
//!   error-free accumulation + extraction for addition; diagonal products +
//!   two accumulation passes for multiplication).  These drive the achieved-
//!   GFLOPS numbers reported by the benchmark harness.
//! * [`paper_add_ops`] / [`paper_mul_ops`]: the paper's reference counts,
//!   available for deca-double exactly as printed in the paper and
//!   extrapolated for the other precisions with the same quadratic model the
//!   CAMPARY counts follow.  These are used to reproduce the paper's TFLOPS
//!   computation verbatim.

/// Double operations of one [`crate::eft::two_sum`].
pub const TWO_SUM_OPS: usize = 6;
/// Double operations of one [`crate::eft::quick_two_sum`].
pub const QUICK_TWO_SUM_OPS: usize = 3;
/// Double operations of one [`crate::eft::two_prod`] (FMA counted as one).
pub const TWO_PROD_OPS: usize = 2;

/// Cost of renormalizing `terms` floating-point terms into limbs with
/// `passes` accumulation passes.
pub fn renorm_ops(terms: usize, passes: usize) -> usize {
    if terms < 2 {
        return 0;
    }
    passes * (terms - 1) * TWO_SUM_OPS + (terms - 1) * QUICK_TWO_SUM_OPS
}

/// Double operations of one `Md<N> + Md<N>` with this crate's algorithm.
pub fn impl_add_ops(limbs: usize) -> usize {
    if limbs <= 1 {
        return 1;
    }
    renorm_ops(2 * limbs, 1)
}

/// Double operations of one `Md<N> * Md<N>` with this crate's algorithm.
pub fn impl_mul_ops(limbs: usize) -> usize {
    if limbs <= 1 {
        return 1;
    }
    let n = limbs;
    let exact_products = n * (n + 1) / 2;
    let plain_products = n - 1;
    let terms = 2 * exact_products + plain_products;
    exact_products * TWO_PROD_OPS + plain_products + renorm_ops(terms, 2)
}

/// The paper's reference count of double operations for one multiple-double
/// addition (exact for deca-double; a fitted quadratic `a n^2 + b n + c`
/// through the double, double-double and deca-double points otherwise).
pub fn paper_add_ops(limbs: usize) -> usize {
    match limbs {
        0 | 1 => 1,
        // Reference counts of the QD library for double-double: 20 double
        // operations per addition (ieee_add).
        2 => 20,
        10 => 397,
        n => {
            // Quadratic interpolation through (1,1), (2,20), (10,397):
            // f(n) = 3.125 n^2 + 9.625 n - 11.75 (rounded to nearest integer).
            let n = n as f64;
            (3.125 * n * n + 9.625 * n - 11.75).round() as usize
        }
    }
}

/// The paper's reference count of double operations for one multiple-double
/// multiplication (exact for deca-double; fitted quadratic otherwise).
pub fn paper_mul_ops(limbs: usize) -> usize {
    match limbs {
        0 | 1 => 1,
        // QD double-double multiplication: about 25 double operations.
        2 => 25,
        10 => 3089,
        n => {
            // Quadratic interpolation through (1,1), (2,25), (10,3089):
            // f(n) = (359 n^2 - 861 n + 511) / 9.
            let n = n as f64;
            ((359.0 * n * n - 861.0 * n + 511.0) / 9.0).round() as usize
        }
    }
}

/// Operation counts (additions of doubles, multiplications of doubles) used
/// by the performance model; `model` selects the implementation counts or
/// the paper's reference counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostModel {
    /// Counts measured from this crate's algorithms.
    Implementation,
    /// Counts quoted by the paper (CAMPARY reference).
    Paper,
}

impl CostModel {
    /// Double operations of one multiple-double addition.
    pub fn add_ops(&self, limbs: usize) -> usize {
        match self {
            CostModel::Implementation => impl_add_ops(limbs),
            CostModel::Paper => paper_add_ops(limbs),
        }
    }

    /// Double operations of one multiple-double multiplication.
    pub fn mul_ops(&self, limbs: usize) -> usize {
        match self {
            CostModel::Implementation => impl_mul_ops(limbs),
            CostModel::Paper => paper_mul_ops(limbs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_deca_counts_match_the_text() {
        // One deca-double addition: 139 + 258 = 397 double operations.
        assert_eq!(paper_add_ops(10), 397);
        // One deca-double multiplication: 952 + 1743 + 394 = 3089.
        assert_eq!(paper_mul_ops(10), 3089);
    }

    #[test]
    fn costs_grow_with_precision() {
        for model in [CostModel::Implementation, CostModel::Paper] {
            let mut prev_add = 0;
            let mut prev_mul = 0;
            for limbs in [1usize, 2, 3, 4, 5, 8, 10] {
                let a = model.add_ops(limbs);
                let m = model.mul_ops(limbs);
                assert!(a > prev_add, "{model:?} add not increasing at {limbs}");
                assert!(m > prev_mul, "{model:?} mul not increasing at {limbs}");
                assert!(m >= a, "multiplication should dominate addition");
                prev_add = a;
                prev_mul = m;
            }
        }
    }

    #[test]
    fn multiplication_cost_is_roughly_quadratic_in_limbs() {
        let r = impl_mul_ops(10) as f64 / impl_mul_ops(5) as f64;
        assert!(r > 3.0 && r < 5.0, "expected ~4x, got {r}");
        let r = paper_mul_ops(10) as f64 / paper_mul_ops(5) as f64;
        assert!(r > 3.0 && r < 8.0, "expected roughly quadratic, got {r}");
    }

    #[test]
    fn interpolated_paper_counts_are_sane() {
        // The fitted values for the intermediate precisions must lie between
        // their neighbours.
        assert!(paper_add_ops(3) > paper_add_ops(2) && paper_add_ops(3) < paper_add_ops(4));
        assert!(paper_mul_ops(8) > paper_mul_ops(5) && paper_mul_ops(8) < paper_mul_ops(10));
    }

    #[test]
    fn double_precision_costs_unit() {
        assert_eq!(impl_add_ops(1), 1);
        assert_eq!(impl_mul_ops(1), 1);
        assert_eq!(paper_add_ops(1), 1);
        assert_eq!(paper_mul_ops(1), 1);
    }
}
