//! Runtime description of the multiple-double precisions used in the paper.
//!
//! The type-level precision (`Md<N>`) is what the arithmetic uses; the
//! benchmark harness, the performance model and the capacity model also need
//! a runtime value to iterate over "all precisions of the paper", which is
//! what [`Precision`] provides.

use crate::flops::CostModel;

/// One of the seven precisions evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// IEEE double precision (1 limb), "1d" in the paper's figures.
    D1,
    /// Double-double (2 limbs), "2d".
    D2,
    /// Triple-double (3 limbs), "3d".
    D3,
    /// Quad-double (4 limbs), "4d".
    D4,
    /// Penta-double (5 limbs), "5d".
    D5,
    /// Octo-double (8 limbs), "8d".
    D8,
    /// Deca-double (10 limbs), "10d".
    D10,
}

impl Precision {
    /// All precisions, in the order used by the paper's tables and figures.
    pub const ALL: [Precision; 7] = [
        Precision::D1,
        Precision::D2,
        Precision::D3,
        Precision::D4,
        Precision::D5,
        Precision::D8,
        Precision::D10,
    ];

    /// Number of limbs (doubles) per real number.
    pub fn limbs(&self) -> usize {
        match self {
            Precision::D1 => 1,
            Precision::D2 => 2,
            Precision::D3 => 3,
            Precision::D4 => 4,
            Precision::D5 => 5,
            Precision::D8 => 8,
            Precision::D10 => 10,
        }
    }

    /// The label used in the paper's figures ("1d", "2d", ..., "10d").
    pub fn label(&self) -> &'static str {
        match self {
            Precision::D1 => "1d",
            Precision::D2 => "2d",
            Precision::D3 => "3d",
            Precision::D4 => "4d",
            Precision::D5 => "5d",
            Precision::D8 => "8d",
            Precision::D10 => "10d",
        }
    }

    /// Long, human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Precision::D1 => "double",
            Precision::D2 => "double double",
            Precision::D3 => "triple double",
            Precision::D4 => "quad double",
            Precision::D5 => "penta double",
            Precision::D8 => "octo double",
            Precision::D10 => "deca double",
        }
    }

    /// The precision with the given number of limbs, if it is one of the
    /// seven the paper evaluates.
    pub fn from_limbs(limbs: usize) -> Option<Self> {
        Self::ALL.iter().copied().find(|p| p.limbs() == limbs)
    }

    /// Parses a label of the form "1d", "2d", ..., "10d" (or "dd", "qd").
    pub fn parse_label(label: &str) -> Option<Self> {
        match label.to_ascii_lowercase().as_str() {
            "1d" | "d" | "double" => Some(Precision::D1),
            "2d" | "dd" => Some(Precision::D2),
            "3d" | "td" => Some(Precision::D3),
            "4d" | "qd" => Some(Precision::D4),
            "5d" | "pd" => Some(Precision::D5),
            "8d" | "od" => Some(Precision::D8),
            "10d" | "da" | "deca" => Some(Precision::D10),
            _ => None,
        }
    }

    /// Double operations of one addition at this precision.
    pub fn add_ops(&self, model: CostModel) -> usize {
        model.add_ops(self.limbs())
    }

    /// Double operations of one multiplication at this precision.
    pub fn mul_ops(&self, model: CostModel) -> usize {
        model.mul_ops(self.limbs())
    }

    /// Relative rounding unit at this precision.
    pub fn unit_roundoff(&self) -> f64 {
        2f64.powi(1 - 52 * self.limbs() as i32)
    }
}

impl core::fmt::Display for Precision {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limbs_and_labels_are_consistent() {
        for p in Precision::ALL {
            assert_eq!(Precision::from_limbs(p.limbs()), Some(p));
            assert_eq!(Precision::parse_label(p.label()), Some(p));
            assert!(p.name().contains("double"));
        }
        assert_eq!(Precision::ALL.len(), 7);
    }

    #[test]
    fn from_limbs_rejects_unsupported() {
        assert_eq!(Precision::from_limbs(6), None);
        assert_eq!(Precision::from_limbs(0), None);
    }

    #[test]
    fn parse_label_aliases() {
        assert_eq!(Precision::parse_label("dd"), Some(Precision::D2));
        assert_eq!(Precision::parse_label("QD"), Some(Precision::D4));
        assert_eq!(Precision::parse_label("deca"), Some(Precision::D10));
        assert_eq!(Precision::parse_label("7d"), None);
    }

    #[test]
    fn unit_roundoff_decreases_with_precision() {
        let mut prev = f64::INFINITY;
        for p in Precision::ALL {
            let u = p.unit_roundoff();
            assert!(u < prev);
            prev = u;
        }
    }
}
