//! Complex numbers over real multiple-double coefficients.
//!
//! The paper stores real and imaginary parts in separate arrays for
//! coalesced memory access; at the level of the scalar type this simply
//! means a pair of real coefficients.  The series layer takes care of the
//! structure-of-arrays storage.

use crate::coeff::RealCoeff;
use core::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number `re + i*im` over a real coefficient type.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

impl<T: RealCoeff> Complex<T> {
    /// Builds a complex number from its parts.
    #[inline]
    pub fn new(re: T, im: T) -> Self {
        Self { re, im }
    }

    /// The purely real complex number `x + 0 i`.
    #[inline]
    pub fn from_real(re: T) -> Self {
        Self::new(re, T::zero())
    }

    /// The imaginary unit.
    #[inline]
    pub fn i() -> Self {
        Self::new(T::zero(), T::one())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(&self) -> Self {
        Self::new(self.re, self.im.neg())
    }

    /// Squared modulus `re^2 + im^2`.
    #[inline]
    pub fn norm_sqr(&self) -> T {
        self.re.mul(&self.re).add(&self.im.mul(&self.im))
    }

    /// Modulus.
    #[inline]
    pub fn modulus(&self) -> T {
        self.norm_sqr().sqrt()
    }

    /// Sum.
    #[inline]
    pub fn add(&self, other: &Self) -> Self {
        Self::new(self.re.add(&other.re), self.im.add(&other.im))
    }

    /// Difference.
    #[inline]
    pub fn sub(&self, other: &Self) -> Self {
        Self::new(self.re.sub(&other.re), self.im.sub(&other.im))
    }

    /// Product.
    #[inline]
    pub fn mul(&self, other: &Self) -> Self {
        Self::new(
            self.re.mul(&other.re).sub(&self.im.mul(&other.im)),
            self.re.mul(&other.im).add(&self.im.mul(&other.re)),
        )
    }

    /// Negation.
    #[inline]
    pub fn neg(&self) -> Self {
        Self::new(self.re.neg(), self.im.neg())
    }

    /// Quotient (Smith-free straightforward formula; the denominators used in
    /// the paper's workloads are well scaled random points on the unit
    /// circle, so no extra scaling is needed).
    #[inline]
    pub fn div(&self, other: &Self) -> Self {
        let d = other.norm_sqr();
        let num = self.mul(&other.conj());
        Self::new(num.re.div(&d), num.im.div(&d))
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(&self, s: &T) -> Self {
        Self::new(self.re.mul(s), self.im.mul(s))
    }

    /// Reciprocal.
    #[inline]
    pub fn recip(&self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re.div(&d), self.im.neg().div(&d))
    }
}

macro_rules! complex_binop {
    ($trait:ident, $method:ident) => {
        impl<T: RealCoeff> $trait for Complex<T> {
            type Output = Complex<T>;
            #[inline]
            fn $method(self, rhs: Complex<T>) -> Complex<T> {
                Complex::$method(&self, &rhs)
            }
        }
        impl<'a, 'b, T: RealCoeff> $trait<&'b Complex<T>> for &'a Complex<T> {
            type Output = Complex<T>;
            #[inline]
            fn $method(self, rhs: &'b Complex<T>) -> Complex<T> {
                Complex::$method(self, rhs)
            }
        }
        impl<'b, T: RealCoeff> $trait<&'b Complex<T>> for Complex<T> {
            type Output = Complex<T>;
            #[inline]
            fn $method(self, rhs: &'b Complex<T>) -> Complex<T> {
                Complex::$method(&self, rhs)
            }
        }
        impl<'a, T: RealCoeff> $trait<Complex<T>> for &'a Complex<T> {
            type Output = Complex<T>;
            #[inline]
            fn $method(self, rhs: Complex<T>) -> Complex<T> {
                Complex::$method(self, &rhs)
            }
        }
    };
}

complex_binop!(Add, add);
complex_binop!(Sub, sub);
complex_binop!(Mul, mul);
complex_binop!(Div, div);

impl<T: RealCoeff> Neg for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn neg(self) -> Complex<T> {
        Complex::neg(&self)
    }
}

/// Complex number over double-double reals.
pub type ComplexDd = Complex<crate::md::Dd>;
/// Complex number over quad-double reals.
pub type ComplexQd = Complex<crate::md::Qd>;
/// Complex number over deca-double reals.
pub type ComplexDeca = Complex<crate::md::Deca>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md::Qd;

    type C = Complex<Qd>;

    fn c(re: f64, im: f64) -> C {
        C::new(Qd::from_f64(re), Qd::from_f64(im))
    }

    fn close(a: &C, b: &C, tol: f64) -> bool {
        a.sub(b).modulus().to_f64() <= tol
    }

    #[test]
    fn i_squared_is_minus_one() {
        let m = C::i().mul(&C::i());
        assert!(close(&m, &c(-1.0, 0.0), 1e-60));
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        // (1 + 2i)(3 - i) = 5 + 5i
        let p = c(1.0, 2.0).mul(&c(3.0, -1.0));
        assert!(close(&p, &c(5.0, 5.0), 1e-60));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = c(0.3, -1.7);
        let b = c(-2.5, 0.75);
        let q = a.mul(&b).div(&b);
        assert!(close(&q, &a, 1e-55));
    }

    #[test]
    fn conjugate_and_modulus() {
        let a = c(3.0, 4.0);
        assert_eq!(a.modulus().to_f64(), 5.0);
        let p = a.mul(&a.conj());
        assert!(close(&p, &c(25.0, 0.0), 1e-60));
    }

    #[test]
    fn recip_times_self_is_one() {
        let a = c(0.6, 0.8);
        let p = a.mul(&a.recip());
        assert!(close(&p, &c(1.0, 0.0), 1e-55));
    }

    #[test]
    fn operator_forms() {
        let a = c(1.0, 1.0);
        let b = c(2.0, -3.0);
        assert_eq!(a + b, a.add(&b));
        assert_eq!(a - b, a.sub(&b));
        assert_eq!(a * b, a.mul(&b));
        assert_eq!(-a, a.neg());
        assert!(close(&(a / b), &a.div(&b), 1e-55));
    }
}
