//! Random generation of multiple-double and complex test data.
//!
//! The paper evaluates its kernels at random power series with coefficients
//! derived from random complex numbers on the unit circle (the standard
//! well-conditioned choice in PHCpack).  This module provides the scalar
//! generators; the series crate builds random truncated series on top.

#![cfg(feature = "rand")]

use crate::coeff::RealCoeff;
use crate::complex::Complex;
use crate::md::Md;
use rand::Rng;

/// Types that can be sampled for test and benchmark data.
pub trait RandomCoeff: Sized {
    /// A uniform random value in `[-1, 1)` with full precision: every limb
    /// carries random bits.
    fn random_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self;
    /// A random value suitable as a "well conditioned" series coefficient;
    /// for complex types this is a point on the unit circle, for real types
    /// a value in `[-1, 1)` bounded away from zero.
    fn random_unit<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl RandomCoeff for f64 {
    fn random_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.gen_range(-1.0..1.0)
    }
    fn random_unit<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let x: f64 = rng.gen_range(0.25..1.0);
        if rng.gen_bool(0.5) {
            x
        } else {
            -x
        }
    }
}

impl<const N: usize> RandomCoeff for Md<N> {
    fn random_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Fill every limb with fresh random bits at the appropriate scale so
        // the value genuinely exercises all N limbs.
        let mut acc = Md::<N>::from_f64(rng.gen_range(-1.0..1.0));
        for k in 1..N {
            let scale = 2f64.powi(-(53 * k as i32));
            acc = acc.add_f64(rng.gen_range(-1.0..1.0) * scale);
        }
        acc
    }
    fn random_unit<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut x = Self::random_uniform(rng);
        if x.abs().to_f64() < 0.25 {
            x = x.add_f64(if x.signum_i32() >= 0 { 0.5 } else { -0.5 });
        }
        x
    }
}

impl<T: RealCoeff + RandomCoeff> RandomCoeff for Complex<T> {
    fn random_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Complex::new(T::random_uniform(rng), T::random_uniform(rng))
    }
    fn random_unit<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // A random angle in double precision seeds the point; one Newton-like
        // normalization in full precision pulls it onto the unit circle.
        let theta: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let raw = Complex::new(T::from_f64(theta.cos()), T::from_f64(theta.sin()));
        let norm = raw.modulus();
        Complex::new(raw.re.div(&norm), raw.im.div(&norm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coeff::Coeff;
    use crate::md::{Deca, Qd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_values_lie_in_range_and_use_low_limbs() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut low_limb_used = false;
        for _ in 0..50 {
            let x: Qd = RandomCoeff::random_uniform(&mut rng);
            assert!(x.abs().to_f64() <= 1.0 + 1e-15);
            if x.limbs()[3] != 0.0 {
                low_limb_used = true;
            }
        }
        assert!(low_limb_used, "lowest limb never populated");
    }

    #[test]
    fn unit_complex_has_unit_modulus_to_full_precision() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let z: Complex<Deca> = RandomCoeff::random_unit(&mut rng);
            let err = z.norm_sqr().sub(&Deca::one()).abs().to_f64();
            assert!(err < 1e-100, "norm error {err}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        let x: Qd = RandomCoeff::random_uniform(&mut a);
        let y: Qd = RandomCoeff::random_uniform(&mut b);
        assert_eq!(x, y);
        let mut c = StdRng::seed_from_u64(124);
        let z: Qd = RandomCoeff::random_uniform(&mut c);
        assert!(x != z);
    }

    #[test]
    fn real_random_unit_avoids_tiny_values() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let x: Qd = RandomCoeff::random_unit(&mut rng);
            assert!(x.abs().to_f64() >= 0.2, "value too small: {x:?}");
            assert!(!Coeff::is_zero(&x));
        }
    }
}
