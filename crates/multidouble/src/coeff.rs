//! The coefficient abstraction used throughout the workspace.
//!
//! Power series, polynomials and the evaluation kernels are generic over the
//! coefficient type: plain `f64`, any multiple-double [`Md<N>`], or complex
//! numbers over either.  [`Coeff`] captures exactly the ring operations the
//! kernels need (the paper's convolutions only add and multiply), plus a few
//! conveniences for building test data and measuring errors.

use crate::complex::Complex;
use crate::lanes::{CxLanes, F64Lanes, LaneVec, MdLanes};
use crate::md::Md;

/// Ring operations required of a power-series coefficient.
pub trait Coeff: Copy + Clone + PartialEq + core::fmt::Debug + Send + Sync + 'static {
    /// The structure-of-arrays lane vector carrying `W` independent values
    /// of this type through one vectorized operation sequence (see
    /// [`crate::lanes`]); its arithmetic is bitwise identical per lane to
    /// the scalar operations of this trait.
    type Lanes<const W: usize>: LaneVec<Self, W>;
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Embedding of a double.
    fn from_f64(x: f64) -> Self;
    /// Sum.
    fn add(&self, other: &Self) -> Self;
    /// Difference.
    fn sub(&self, other: &Self) -> Self;
    /// Product.
    fn mul(&self, other: &Self) -> Self;
    /// Negation.
    fn neg(&self) -> Self;
    /// True when the value is exactly zero.
    fn is_zero(&self) -> bool;
    /// An `f64` estimate of the magnitude, used for error reporting only.
    fn magnitude(&self) -> f64;
    /// The relative rounding unit of the underlying precision.
    fn unit_roundoff() -> f64;
    /// Number of doubles stored per coefficient (`N` for `Md<N>`, `2 N` for
    /// complex); this drives the shared-memory capacity model of the device
    /// crate.
    fn doubles_per_value() -> usize;
    /// In-place fused accumulate: `self += a * b`.  A default implementation
    /// is provided; types may override it with a cheaper scheme.
    #[inline]
    fn mul_add_assign(&mut self, a: &Self, b: &Self) {
        *self = self.add(&a.mul(b));
    }
    /// Feeds the exact bit pattern of the value into a hasher.
    ///
    /// Used for structural hashing of polynomials (the engine's plan cache):
    /// two coefficients hash equally exactly when they are bitwise equal, so
    /// a hash hit can be confirmed with `PartialEq` afterwards.
    fn hash_bits<H: core::hash::Hasher>(&self, state: &mut H);
    /// Number of `f64` limbs per *real component* of the value: `N` for
    /// `Md<N>` (and for each of the two components of `Complex<Md<N>>`),
    /// `1` for plain `f64`.  The compensated FFT convolution kernel uses
    /// this to choose its digit depth per precision.
    fn component_limbs() -> usize;
    /// Number of real components: `1` for real coefficients, `2` (real
    /// part, then imaginary part) for complex ones.
    #[inline]
    fn components() -> usize {
        Self::doubles_per_value() / Self::component_limbs()
    }
    /// Writes the raw limb representation into `out`, component-major (the
    /// real part's limbs, then — for complex values — the imaginary part's),
    /// each component's limbs in decreasing-magnitude expansion order.
    /// `out.len()` must equal [`Coeff::doubles_per_value`].
    fn write_limbs(&self, out: &mut [f64]);
    /// Rebuilds a value from the layout produced by [`Coeff::write_limbs`].
    /// Each component's limbs must already form a renormalized expansion
    /// (the FFT kernel guarantees this by recombining its digit planes
    /// through the renormalization pipeline before calling this).
    fn from_limbs(src: &[f64]) -> Self;
}

/// Additional operations available on real (totally ordered) coefficients.
pub trait RealCoeff: Coeff + PartialOrd {
    /// Division.
    fn div(&self, other: &Self) -> Self;
    /// Square root.
    fn sqrt(&self) -> Self;
    /// Absolute value.
    fn abs(&self) -> Self;
    /// Nearest double.
    fn to_f64(&self) -> f64;
}

impl Coeff for f64 {
    type Lanes<const W: usize> = F64Lanes<W>;
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    #[inline]
    fn sub(&self, other: &Self) -> Self {
        self - other
    }
    #[inline]
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    #[inline]
    fn neg(&self) -> Self {
        -self
    }
    #[inline]
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
    #[inline]
    fn magnitude(&self) -> f64 {
        self.abs()
    }
    #[inline]
    fn unit_roundoff() -> f64 {
        f64::EPSILON * 0.5
    }
    #[inline]
    fn doubles_per_value() -> usize {
        1
    }
    #[inline]
    fn mul_add_assign(&mut self, a: &Self, b: &Self) {
        *self = a.mul_add(*b, *self);
    }
    #[inline]
    fn hash_bits<H: core::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.to_bits());
    }
    #[inline]
    fn component_limbs() -> usize {
        1
    }
    #[inline]
    fn write_limbs(&self, out: &mut [f64]) {
        out[0] = *self;
    }
    #[inline]
    fn from_limbs(src: &[f64]) -> Self {
        src[0]
    }
}

impl RealCoeff for f64 {
    #[inline]
    fn div(&self, other: &Self) -> Self {
        self / other
    }
    #[inline]
    fn sqrt(&self) -> Self {
        f64::sqrt(*self)
    }
    #[inline]
    fn abs(&self) -> Self {
        f64::abs(*self)
    }
    #[inline]
    fn to_f64(&self) -> f64 {
        *self
    }
}

impl<const N: usize> Coeff for Md<N> {
    type Lanes<const W: usize> = MdLanes<N, W>;
    #[inline]
    fn zero() -> Self {
        Md::ZERO
    }
    #[inline]
    fn one() -> Self {
        Md::one()
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        Md::from_f64(x)
    }
    #[inline]
    fn add(&self, other: &Self) -> Self {
        Md::add(self, other)
    }
    #[inline]
    fn sub(&self, other: &Self) -> Self {
        Md::sub(self, other)
    }
    #[inline]
    fn mul(&self, other: &Self) -> Self {
        Md::mul(self, other)
    }
    #[inline]
    fn neg(&self) -> Self {
        Md::neg(self)
    }
    #[inline]
    fn is_zero(&self) -> bool {
        Md::is_zero(self)
    }
    #[inline]
    fn magnitude(&self) -> f64 {
        Md::to_f64(&Md::abs(self))
    }
    #[inline]
    fn unit_roundoff() -> f64 {
        Md::<N>::epsilon()
    }
    #[inline]
    fn doubles_per_value() -> usize {
        N
    }
    #[inline]
    fn hash_bits<H: core::hash::Hasher>(&self, state: &mut H) {
        for limb in self.limbs() {
            state.write_u64(limb.to_bits());
        }
    }
    #[inline]
    fn component_limbs() -> usize {
        N
    }
    #[inline]
    fn write_limbs(&self, out: &mut [f64]) {
        out[..N].copy_from_slice(self.limbs());
    }
    #[inline]
    fn from_limbs(src: &[f64]) -> Self {
        let mut limbs = [0.0; N];
        limbs.copy_from_slice(&src[..N]);
        Md::from_limbs_raw(limbs)
    }
}

impl<const N: usize> RealCoeff for Md<N> {
    #[inline]
    fn div(&self, other: &Self) -> Self {
        Md::div(self, other)
    }
    #[inline]
    fn sqrt(&self) -> Self {
        Md::sqrt(self)
    }
    #[inline]
    fn abs(&self) -> Self {
        Md::abs(self)
    }
    #[inline]
    fn to_f64(&self) -> f64 {
        Md::to_f64(self)
    }
}

impl<T: RealCoeff> Coeff for Complex<T> {
    type Lanes<const W: usize> = CxLanes<T::Lanes<W>>;
    #[inline]
    fn zero() -> Self {
        Complex::new(T::zero(), T::zero())
    }
    #[inline]
    fn one() -> Self {
        Complex::new(T::one(), T::zero())
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        Complex::new(T::from_f64(x), T::zero())
    }
    #[inline]
    fn add(&self, other: &Self) -> Self {
        Complex::add(self, other)
    }
    #[inline]
    fn sub(&self, other: &Self) -> Self {
        Complex::sub(self, other)
    }
    #[inline]
    fn mul(&self, other: &Self) -> Self {
        Complex::mul(self, other)
    }
    #[inline]
    fn neg(&self) -> Self {
        Complex::neg(self)
    }
    #[inline]
    fn is_zero(&self) -> bool {
        self.re.is_zero() && self.im.is_zero()
    }
    #[inline]
    fn magnitude(&self) -> f64 {
        let re = self.re.magnitude();
        let im = self.im.magnitude();
        (re * re + im * im).sqrt()
    }
    #[inline]
    fn unit_roundoff() -> f64 {
        T::unit_roundoff()
    }
    #[inline]
    fn doubles_per_value() -> usize {
        2 * T::doubles_per_value()
    }
    #[inline]
    fn hash_bits<H: core::hash::Hasher>(&self, state: &mut H) {
        self.re.hash_bits(state);
        self.im.hash_bits(state);
    }
    #[inline]
    fn component_limbs() -> usize {
        T::component_limbs()
    }
    #[inline]
    fn write_limbs(&self, out: &mut [f64]) {
        let half = T::doubles_per_value();
        self.re.write_limbs(&mut out[..half]);
        self.im.write_limbs(&mut out[half..2 * half]);
    }
    #[inline]
    fn from_limbs(src: &[f64]) -> Self {
        let half = T::doubles_per_value();
        Complex::new(
            T::from_limbs(&src[..half]),
            T::from_limbs(&src[half..2 * half]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md::{Dd, Qd};

    fn ring_axioms<C: Coeff>(a: C, b: C, c: C, tol: f64) {
        let close = |x: &C, y: &C| x.sub(y).magnitude() <= tol * (1.0 + x.magnitude());
        // commutativity
        assert!(close(&a.add(&b), &b.add(&a)));
        assert!(close(&a.mul(&b), &b.mul(&a)));
        // associativity (approximate for floating point)
        assert!(close(&a.add(&b).add(&c), &a.add(&b.add(&c))));
        assert!(close(&a.mul(&b).mul(&c), &a.mul(&b.mul(&c))));
        // distributivity
        assert!(close(&a.mul(&b.add(&c)), &a.mul(&b).add(&a.mul(&c))));
        // identities
        assert!(close(&a.add(&C::zero()), &a));
        assert!(close(&a.mul(&C::one()), &a));
        assert!(a.sub(&a).is_zero() || a.sub(&a).magnitude() <= tol);
        assert!(close(&a.add(&a.neg()), &C::zero()));
    }

    #[test]
    fn f64_satisfies_ring_axioms() {
        ring_axioms(1.5f64, -2.25, 0.75, 1e-15);
    }

    #[test]
    fn md_satisfies_ring_axioms() {
        ring_axioms(
            Qd::from_f64(1.5).add_f64(2f64.powi(-90)),
            Qd::from_f64(-2.25),
            Qd::one().div(&Qd::from_f64(3.0)),
            1e-60,
        );
        ring_axioms(
            Dd::from_f64(0.1),
            Dd::from_f64(7.0),
            Dd::from_f64(-0.3),
            1e-30,
        );
    }

    #[test]
    fn complex_satisfies_ring_axioms() {
        ring_axioms(
            Complex::new(Qd::from_f64(1.5), Qd::from_f64(-0.5)),
            Complex::new(Qd::from_f64(0.25), Qd::from_f64(2.0)),
            Complex::new(Qd::from_f64(-1.0), Qd::from_f64(1.0 / 3.0)),
            1e-60,
        );
    }

    #[test]
    fn doubles_per_value_reports_storage() {
        assert_eq!(<f64 as Coeff>::doubles_per_value(), 1);
        assert_eq!(<Qd as Coeff>::doubles_per_value(), 4);
        assert_eq!(<Complex<Dd> as Coeff>::doubles_per_value(), 4);
        assert_eq!(<Complex<Qd> as Coeff>::doubles_per_value(), 8);
    }

    #[test]
    fn hash_bits_separates_unequal_values_and_matches_equal_ones() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::Hasher;
        fn digest<C: Coeff>(value: &C) -> u64 {
            let mut h = DefaultHasher::new();
            value.hash_bits(&mut h);
            h.finish()
        }
        assert_eq!(digest(&1.5f64), digest(&1.5f64));
        assert_ne!(digest(&1.5f64), digest(&-1.5f64));
        let tiny = Qd::one().div(&Qd::from_f64(3.0));
        assert_eq!(digest(&tiny), digest(&tiny));
        // Values equal in the leading limb but different below must hash
        // differently: the plan cache distinguishes full-precision inputs.
        let a = Qd::from_f64(1.0);
        let b = Qd::from_f64(1.0).add_f64(2f64.powi(-200));
        assert_ne!(digest(&a), digest(&b));
        let c = Complex::new(Dd::from_f64(1.0), Dd::from_f64(2.0));
        let d = Complex::new(Dd::from_f64(2.0), Dd::from_f64(1.0));
        assert_ne!(digest(&c), digest(&d));
    }

    #[test]
    fn limb_roundtrip_is_bitwise_exact() {
        fn roundtrip<C: Coeff>(v: C) {
            let mut buf = vec![0.0f64; C::doubles_per_value()];
            v.write_limbs(&mut buf);
            assert_eq!(C::from_limbs(&buf), v);
        }
        roundtrip(-1.5f64);
        roundtrip(Qd::one().div(&Qd::from_f64(3.0)));
        roundtrip(Dd::from_f64(0.1).mul(&Dd::from_f64(2f64.powi(300))));
        roundtrip(Complex::new(
            Qd::from_f64(1.0).add_f64(2f64.powi(-200)),
            Qd::from_f64(-7.0),
        ));
        assert_eq!(<f64 as Coeff>::components(), 1);
        assert_eq!(<Qd as Coeff>::components(), 1);
        assert_eq!(<Complex<Dd> as Coeff>::components(), 2);
        assert_eq!(<Complex<Dd> as Coeff>::component_limbs(), 2);
    }

    #[test]
    fn mul_add_assign_default_and_override() {
        let mut x = 1.0f64;
        Coeff::mul_add_assign(&mut x, &2.0, &3.0);
        assert_eq!(x, 7.0);
        let mut y = Qd::from_f64(1.0);
        y.mul_add_assign(&Qd::from_f64(2.0), &Qd::from_f64(3.0));
        assert_eq!(y.to_f64(), 7.0);
    }
}
