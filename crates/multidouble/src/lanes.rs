//! Structure-of-arrays lane vectors: `W` independent multi-double values
//! advancing in lock step — the CPU analogue of the paper's GPU warps.
//!
//! The batched evaluator runs the *same* convolution schedule over many
//! independent instances; this module provides the data types that let one
//! vector instruction carry one limb of `W` instances at once.  A
//! [`MdLanes<N, W>`] stores `W` values of [`Md<N>`] limb-major
//! (`[[f64; W]; N]`), so the error-free transformations (`two_sum`,
//! `two_prod`) and the branch-free renormalization passes become elementwise
//! operations over `[f64; W]` — exactly the shape the auto-vectorizer maps
//! onto AVX2 (`f64x4`), AVX-512 (`f64x8`) and NEON (`f64x2`) registers when
//! the surrounding kernel is compiled with the matching target features (see
//! `psmd_series::lanes` for the multiversioned kernel roots and
//! [`detect_isa`] for the runtime dispatch).
//!
//! ## The per-lane bitwise-identity invariant
//!
//! EFT arithmetic is exact, and the multi-double algorithms are sensitive to
//! association order, so the lane mapping must not reassociate anything:
//! **lane `l` of every lane operation produces exactly the bits the scalar
//! operation produces for instance `l`.**  The branch-free parts of the
//! scalar pipeline (`two_sum`/`two_prod` chains, `vec_sum` passes, the
//! strictening sweeps) vectorize directly — elementwise application *is*
//! per-lane scalar execution.  The data-dependent parts (the
//! `VecSumErrBranch` limb extraction, the magnitude-ordered merge of
//! addition) branch per value and therefore run as per-lane scalar loops
//! over the lane-major storage; they are a small fraction of the work.
//! `tests/simd_consistency.rs` in `psmd-core` gates the invariant end to
//! end across every precision.

use crate::coeff::{Coeff, RealCoeff};
use crate::complex::Complex;
use crate::eft::quick_two_sum;
use crate::md::{Md, MAX_LIMBS};
use std::sync::OnceLock;

/// Term capacity of the lane addition scratch (mirrors `md::ADD_SCRATCH`).
const LANE_ADD_TERMS: usize = 2 * MAX_LIMBS;
/// Term capacity of the lane multiplication scratch (mirrors
/// `md::MUL_SCRATCH`).
const LANE_MUL_TERMS: usize = MAX_LIMBS * (MAX_LIMBS + 1) + MAX_LIMBS;

// ---------------------------------------------------------------------------
// Elementwise f64-lane primitives.
//
// Plain `W`-element loops of the scalar EFT formulas: applied limb-wise they
// perform the identical operation sequence per lane, and inside a kernel
// compiled with AVX2/AVX-512/NEON features enabled they compile to single
// vector instructions (`vaddpd`, `vmulpd`, `vfmadd*pd`).
// ---------------------------------------------------------------------------

#[inline(always)]
fn vadd<const W: usize>(a: &[f64; W], b: &[f64; W]) -> [f64; W] {
    let mut out = [0.0; W];
    for i in 0..W {
        out[i] = a[i] + b[i];
    }
    out
}

#[inline(always)]
fn vsub<const W: usize>(a: &[f64; W], b: &[f64; W]) -> [f64; W] {
    let mut out = [0.0; W];
    for i in 0..W {
        out[i] = a[i] - b[i];
    }
    out
}

#[inline(always)]
fn vmul<const W: usize>(a: &[f64; W], b: &[f64; W]) -> [f64; W] {
    let mut out = [0.0; W];
    for i in 0..W {
        out[i] = a[i] * b[i];
    }
    out
}

#[inline(always)]
fn vneg<const W: usize>(a: &[f64; W]) -> [f64; W] {
    let mut out = [0.0; W];
    for i in 0..W {
        out[i] = -a[i];
    }
    out
}

/// Elementwise fused multiply-add `a * b + c`.
#[inline(always)]
fn vfma<const W: usize>(a: &[f64; W], b: &[f64; W], c: &[f64; W]) -> [f64; W] {
    let mut out = [0.0; W];
    for i in 0..W {
        out[i] = a[i].mul_add(b[i], c[i]);
    }
    out
}

/// Lane-wise Knuth TwoSum: the 6-operation branch-free formula of
/// [`crate::eft::two_sum`], applied elementwise.
#[inline(always)]
fn lane_two_sum<const W: usize>(a: &[f64; W], b: &[f64; W]) -> ([f64; W], [f64; W]) {
    let s = vadd(a, b);
    let bb = vsub(&s, a);
    let e = vadd(&vsub(a, &vsub(&s, &bb)), &vsub(b, &bb));
    (s, e)
}

/// Lane-wise Dekker FastTwoSum ([`crate::eft::quick_two_sum`] elementwise).
#[inline(always)]
fn lane_quick_two_sum<const W: usize>(a: &[f64; W], b: &[f64; W]) -> ([f64; W], [f64; W]) {
    let s = vadd(a, b);
    let e = vsub(b, &vsub(&s, a));
    (s, e)
}

/// Lane-wise TwoProdFMA ([`crate::eft::two_prod`] elementwise).
#[inline(always)]
fn lane_two_prod<const W: usize>(a: &[f64; W], b: &[f64; W]) -> ([f64; W], [f64; W]) {
    let p = vmul(a, b);
    let e = vfma(a, b, &vneg(&p));
    (p, e)
}

// ---------------------------------------------------------------------------
// Lane renormalization: the CAMPARY pipeline of `crate::renorm`, split into
// its vectorizable (branch-free) and per-lane (data-dependent) stages.
// ---------------------------------------------------------------------------

/// One backward error-free accumulation pass over lane-vector terms — the
/// branch-free [`crate::renorm::vec_sum_pass`] applied to all `W` lanes at
/// once.
#[inline(always)]
fn lane_vec_sum_pass<const W: usize>(terms: &mut [[f64; W]]) {
    let n = terms.len();
    if n < 2 {
        return;
    }
    let mut s = terms[n - 1];
    for i in (0..n - 1).rev() {
        let (hi, lo) = lane_two_sum(&terms[i], &s);
        s = hi;
        terms[i + 1] = lo;
    }
    terms[0] = s;
}

/// Per-lane limb extraction: [`crate::renorm::extract_limbs`] branches on
/// every rounding error (`lo != 0.0`), so each lane walks its own term
/// column independently.  Bitwise identical to the scalar extraction by
/// construction — it *is* the scalar extraction, over strided storage.
fn lane_extract_limbs<const N: usize, const W: usize>(terms: &[[f64; W]], out: &mut [[f64; W]; N]) {
    for limb in out.iter_mut() {
        *limb = [0.0; W];
    }
    if terms.is_empty() || N == 0 {
        return;
    }
    for l in 0..W {
        let mut k = 0usize;
        let mut carry = terms[0][l];
        let mut settled = false;
        for t in &terms[1..] {
            let (hi, lo) = quick_two_sum(carry, t[l]);
            if lo != 0.0 {
                out[k][l] = hi;
                k += 1;
                if k == N {
                    settled = true;
                    break;
                }
                carry = lo;
            } else {
                carry = hi;
            }
        }
        if !settled && k < N {
            out[k][l] = carry;
        }
    }
}

/// Lane renormalization mirroring [`crate::renorm::renormalize_into`]:
/// vectorized accumulation passes, per-lane extraction, vectorized
/// strictening sweeps.
#[inline(always)]
fn lane_renormalize<const N: usize, const W: usize>(
    terms: &mut [[f64; W]],
    out: &mut [[f64; W]; N],
    passes: usize,
) {
    for _ in 0..passes.max(1) {
        lane_vec_sum_pass(terms);
    }
    lane_extract_limbs(terms, out);
    for _ in 0..2 {
        for i in 0..N.saturating_sub(1) {
            let (hi, lo) = lane_quick_two_sum(&out[i], &out[i + 1]);
            out[i] = hi;
            out[i + 1] = lo;
        }
    }
}

/// Per-lane magnitude-ordered merge of two lane expansions
/// ([`crate::renorm::merge_decreasing`] over strided storage; the compare
/// chain is data-dependent, so it cannot vectorize without reordering).
fn lane_merge_decreasing<const N: usize, const W: usize>(
    a: &[[f64; W]; N],
    b: &[[f64; W]; N],
    dst: &mut [[f64; W]],
) {
    debug_assert_eq!(dst.len(), 2 * N);
    for l in 0..W {
        let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
        while i < N && j < N {
            if a[i][l].abs() >= b[j][l].abs() {
                dst[k][l] = a[i][l];
                i += 1;
            } else {
                dst[k][l] = b[j][l];
                j += 1;
            }
            k += 1;
        }
        while i < N {
            dst[k][l] = a[i][l];
            i += 1;
            k += 1;
        }
        while j < N {
            dst[k][l] = b[j][l];
            j += 1;
            k += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// The lane-vector trait and its implementations.
// ---------------------------------------------------------------------------

/// `W` independent values of coefficient type `C` in structure-of-arrays
/// form, with arithmetic that is **bitwise identical per lane** to the
/// scalar [`Coeff`] operations (see the [module documentation](self)).
///
/// Panels are flat `f64` buffers laid out value-major, `doubles_per_value()
/// * W` doubles per value: `panel[base + d * W + l]` holds double `d` of
/// lane `l`.  [`LaneVec::write_lane`] / [`LaneVec::read_lane`] transpose one
/// scalar value in and out of that layout through the exact-bit
/// [`Coeff::write_limbs`] / [`Coeff::from_limbs`] round trip.
pub trait LaneVec<C: Coeff, const W: usize>: Copy + Send + Sync {
    /// All lanes exactly zero (the bits of `C::zero()`).
    fn zero() -> Self;
    /// Loads the lane vector stored at `panel[base..]`.
    fn load_from(panel: &[f64], base: usize) -> Self;
    /// Stores the lane vector at `panel[base..]`.
    fn store_to(&self, panel: &mut [f64], base: usize);
    /// Writes one scalar value into lane `lane` of the vector at
    /// `panel[base..]` (the gather transpose).
    fn write_lane(panel: &mut [f64], base: usize, lane: usize, value: &C);
    /// Reads lane `lane` of the vector at `panel[base..]` back into a scalar
    /// value (the scatter transpose).
    fn read_lane(panel: &[f64], base: usize, lane: usize) -> C;
    /// Lane-wise sum, bitwise identical per lane to `C::add`.
    fn add(&self, other: &Self) -> Self;
    /// Lane-wise difference, bitwise identical per lane to `C::sub`.
    fn sub(&self, other: &Self) -> Self;
    /// Lane-wise product, bitwise identical per lane to `C::mul`.
    fn mul(&self, other: &Self) -> Self;
    /// Lane-wise fused accumulate, bitwise identical per lane to
    /// `C::mul_add_assign` (which each coefficient type may override — the
    /// lane implementation must mirror the override).
    fn mul_add_assign(&mut self, a: &Self, b: &Self);
}

/// `W` lanes of [`Md<N>`], limb-major: `limbs[d][l]` is limb `d` of lane
/// `l`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MdLanes<const N: usize, const W: usize> {
    /// The lane-major limb planes.
    pub limbs: [[f64; W]; N],
}

impl<const N: usize, const W: usize> MdLanes<N, W> {
    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        Self {
            limbs: [[0.0; W]; N],
        }
    }

    /// Gathers `W` scalar values into lane form (lane `l` takes `get(l)`).
    #[inline]
    pub fn gather(mut get: impl FnMut(usize) -> Md<N>) -> Self {
        let mut s = Self::zero();
        for l in 0..W {
            let v = get(l);
            for d in 0..N {
                s.limbs[d][l] = v.limbs()[d];
            }
        }
        s
    }

    /// Extracts lane `l` as a scalar value.
    #[inline]
    pub fn extract(&self, l: usize) -> Md<N> {
        let mut limbs = [0.0; N];
        for (limb, plane) in limbs.iter_mut().zip(self.limbs.iter()) {
            *limb = plane[l];
        }
        Md::from_limbs_raw(limbs)
    }

    /// Lane-wise negation (exact, like [`Md::neg`]).
    #[inline(always)]
    pub fn neg(&self) -> Self {
        let mut out = Self::zero();
        for d in 0..N {
            out.limbs[d] = vneg(&self.limbs[d]);
        }
        out
    }

    /// Lane-wise sum, replicating [`Md::add`] per lane: per-lane merge of
    /// the two expansions, one vectorized accumulation pass, extraction and
    /// strictening.
    #[inline(always)]
    pub fn add(&self, other: &Self) -> Self {
        debug_assert!(N <= MAX_LIMBS);
        let mut out = Self::zero();
        if N == 1 {
            out.limbs[0] = vadd(&self.limbs[0], &other.limbs[0]);
            return out;
        }
        let mut terms = [[0.0; W]; LANE_ADD_TERMS];
        lane_merge_decreasing(&self.limbs, &other.limbs, &mut terms[..2 * N]);
        lane_renormalize(&mut terms[..2 * N], &mut out.limbs, 1);
        out
    }

    /// Lane-wise product, replicating [`Md::mul`] per lane: the diagonal
    /// walk and its error bookkeeping are a pure function of `N`, so the
    /// term list is built from lane-wise error-free products in exactly the
    /// scalar order.
    #[inline(always)]
    pub fn mul(&self, other: &Self) -> Self {
        debug_assert!(N <= MAX_LIMBS);
        let mut out = Self::zero();
        if N == 1 {
            out.limbs[0] = vmul(&self.limbs[0], &other.limbs[0]);
            return out;
        }
        let mut terms = [[0.0; W]; LANE_MUL_TERMS];
        let mut len = 0usize;
        let mut err_len = [0usize; MAX_LIMBS + 1];
        let mut err_store = [[[0.0; W]; MAX_LIMBS]; MAX_LIMBS + 1];
        for k in 0..N {
            for i in 0..=k {
                let j = k - i;
                if i < N && j < N {
                    let (p, e) = lane_two_prod(&self.limbs[i], &other.limbs[j]);
                    terms[len] = p;
                    len += 1;
                    debug_assert!(err_len[k + 1] < MAX_LIMBS);
                    err_store[k + 1][err_len[k + 1]] = e;
                    err_len[k + 1] += 1;
                }
            }
            for e in &err_store[k][..err_len[k]] {
                terms[len] = *e;
                len += 1;
            }
        }
        for i in 1..N {
            let j = N - i;
            terms[len] = vmul(&self.limbs[i], &other.limbs[j]);
            len += 1;
        }
        for e in &err_store[N][..err_len[N]] {
            terms[len] = *e;
            len += 1;
        }
        lane_renormalize(&mut terms[..len], &mut out.limbs, 2);
        out
    }
}

impl<const N: usize, const W: usize> LaneVec<Md<N>, W> for MdLanes<N, W> {
    #[inline(always)]
    fn zero() -> Self {
        MdLanes::zero()
    }

    #[inline(always)]
    fn load_from(panel: &[f64], base: usize) -> Self {
        let mut s = Self::zero();
        for d in 0..N {
            s.limbs[d].copy_from_slice(&panel[base + d * W..base + (d + 1) * W]);
        }
        s
    }

    #[inline(always)]
    fn store_to(&self, panel: &mut [f64], base: usize) {
        for d in 0..N {
            panel[base + d * W..base + (d + 1) * W].copy_from_slice(&self.limbs[d]);
        }
    }

    #[inline]
    fn write_lane(panel: &mut [f64], base: usize, lane: usize, value: &Md<N>) {
        for d in 0..N {
            panel[base + d * W + lane] = value.limbs()[d];
        }
    }

    #[inline]
    fn read_lane(panel: &[f64], base: usize, lane: usize) -> Md<N> {
        let mut limbs = [0.0; N];
        for (d, limb) in limbs.iter_mut().enumerate() {
            *limb = panel[base + d * W + lane];
        }
        Md::from_limbs_raw(limbs)
    }

    #[inline(always)]
    fn add(&self, other: &Self) -> Self {
        MdLanes::add(self, other)
    }

    #[inline(always)]
    fn sub(&self, other: &Self) -> Self {
        // Mirrors `Md::sub`: negate (exact) and add.
        MdLanes::add(self, &other.neg())
    }

    #[inline(always)]
    fn mul(&self, other: &Self) -> Self {
        MdLanes::mul(self, other)
    }

    #[inline(always)]
    fn mul_add_assign(&mut self, a: &Self, b: &Self) {
        // Mirrors the default `Coeff::mul_add_assign` used by `Md<N>`.
        *self = MdLanes::add(self, &MdLanes::mul(a, b));
    }
}

/// `W` lanes of plain `f64`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct F64Lanes<const W: usize>(pub [f64; W]);

impl<const W: usize> LaneVec<f64, W> for F64Lanes<W> {
    #[inline(always)]
    fn zero() -> Self {
        Self([0.0; W])
    }

    #[inline(always)]
    fn load_from(panel: &[f64], base: usize) -> Self {
        let mut s = [0.0; W];
        s.copy_from_slice(&panel[base..base + W]);
        Self(s)
    }

    #[inline(always)]
    fn store_to(&self, panel: &mut [f64], base: usize) {
        panel[base..base + W].copy_from_slice(&self.0);
    }

    #[inline]
    fn write_lane(panel: &mut [f64], base: usize, lane: usize, value: &f64) {
        panel[base + lane] = *value;
    }

    #[inline]
    fn read_lane(panel: &[f64], base: usize, lane: usize) -> f64 {
        panel[base + lane]
    }

    #[inline(always)]
    fn add(&self, other: &Self) -> Self {
        Self(vadd(&self.0, &other.0))
    }

    #[inline(always)]
    fn sub(&self, other: &Self) -> Self {
        Self(vsub(&self.0, &other.0))
    }

    #[inline(always)]
    fn mul(&self, other: &Self) -> Self {
        Self(vmul(&self.0, &other.0))
    }

    #[inline(always)]
    fn mul_add_assign(&mut self, a: &Self, b: &Self) {
        // Mirrors the `f64` override of `Coeff::mul_add_assign` (an FMA).
        self.0 = vfma(&a.0, &b.0, &self.0);
    }
}

/// `W` lanes of [`Complex<T>`]: a pair of real lane vectors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CxLanes<R> {
    /// Real-part lanes.
    pub re: R,
    /// Imaginary-part lanes.
    pub im: R,
}

impl<T, R, const W: usize> LaneVec<Complex<T>, W> for CxLanes<R>
where
    T: RealCoeff,
    R: LaneVec<T, W>,
{
    #[inline(always)]
    fn zero() -> Self {
        Self {
            re: R::zero(),
            im: R::zero(),
        }
    }

    #[inline(always)]
    fn load_from(panel: &[f64], base: usize) -> Self {
        let half = T::doubles_per_value() * W;
        Self {
            re: R::load_from(panel, base),
            im: R::load_from(panel, base + half),
        }
    }

    #[inline(always)]
    fn store_to(&self, panel: &mut [f64], base: usize) {
        let half = T::doubles_per_value() * W;
        self.re.store_to(panel, base);
        self.im.store_to(panel, base + half);
    }

    #[inline]
    fn write_lane(panel: &mut [f64], base: usize, lane: usize, value: &Complex<T>) {
        let half = T::doubles_per_value() * W;
        R::write_lane(panel, base, lane, &value.re);
        R::write_lane(panel, base + half, lane, &value.im);
    }

    #[inline]
    fn read_lane(panel: &[f64], base: usize, lane: usize) -> Complex<T> {
        let half = T::doubles_per_value() * W;
        Complex::new(
            R::read_lane(panel, base, lane),
            R::read_lane(panel, base + half, lane),
        )
    }

    #[inline(always)]
    fn add(&self, other: &Self) -> Self {
        // Mirrors `Complex::add`: componentwise.
        Self {
            re: self.re.add(&other.re),
            im: self.im.add(&other.im),
        }
    }

    #[inline(always)]
    fn sub(&self, other: &Self) -> Self {
        Self {
            re: self.re.sub(&other.re),
            im: self.im.sub(&other.im),
        }
    }

    #[inline(always)]
    fn mul(&self, other: &Self) -> Self {
        // Mirrors `Complex::mul` operation for operation:
        // (re·re' − im·im', re·im' + im·re').
        Self {
            re: self.re.mul(&other.re).sub(&self.im.mul(&other.im)),
            im: self.re.mul(&other.im).add(&self.im.mul(&other.re)),
        }
    }

    #[inline(always)]
    fn mul_add_assign(&mut self, a: &Self, b: &Self) {
        // Mirrors the default `Coeff::mul_add_assign` used by `Complex<T>`.
        *self = self.add(&a.mul(b));
    }
}

/// Per-lane scalar fallback lane vector, available for *any* coefficient
/// type: an array of `W` scalars operated on one at a time with the scalar
/// [`Coeff`] methods.  It vectorizes nothing, but it satisfies the per-lane
/// bitwise-identity contract trivially and lets custom coefficient types
/// implement [`Coeff`] without writing lane kernels
/// (`type Lanes<const W: usize> = ScalarLanes<Self, W>;`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalarLanes<C, const W: usize>(pub [C; W]);

impl<C: Coeff, const W: usize> LaneVec<C, W> for ScalarLanes<C, W> {
    #[inline]
    fn zero() -> Self {
        Self([C::zero(); W])
    }

    #[inline]
    fn load_from(panel: &[f64], base: usize) -> Self {
        let mut s = Self::zero();
        for l in 0..W {
            s.0[l] = Self::read_lane(panel, base, l);
        }
        s
    }

    #[inline]
    fn store_to(&self, panel: &mut [f64], base: usize) {
        for l in 0..W {
            Self::write_lane(panel, base, l, &self.0[l]);
        }
    }

    #[inline]
    fn write_lane(panel: &mut [f64], base: usize, lane: usize, value: &C) {
        let d = C::doubles_per_value();
        debug_assert!(d <= 2 * MAX_LIMBS);
        let mut limbs = [0.0; 2 * MAX_LIMBS];
        value.write_limbs(&mut limbs[..d]);
        for (j, limb) in limbs[..d].iter().enumerate() {
            panel[base + j * W + lane] = *limb;
        }
    }

    #[inline]
    fn read_lane(panel: &[f64], base: usize, lane: usize) -> C {
        let d = C::doubles_per_value();
        debug_assert!(d <= 2 * MAX_LIMBS);
        let mut limbs = [0.0; 2 * MAX_LIMBS];
        for (j, limb) in limbs[..d].iter_mut().enumerate() {
            *limb = panel[base + j * W + lane];
        }
        C::from_limbs(&limbs[..d])
    }

    #[inline]
    fn add(&self, other: &Self) -> Self {
        let mut out = *self;
        for l in 0..W {
            out.0[l] = self.0[l].add(&other.0[l]);
        }
        out
    }

    #[inline]
    fn sub(&self, other: &Self) -> Self {
        let mut out = *self;
        for l in 0..W {
            out.0[l] = self.0[l].sub(&other.0[l]);
        }
        out
    }

    #[inline]
    fn mul(&self, other: &Self) -> Self {
        let mut out = *self;
        for l in 0..W {
            out.0[l] = self.0[l].mul(&other.0[l]);
        }
        out
    }

    #[inline]
    fn mul_add_assign(&mut self, a: &Self, b: &Self) {
        for l in 0..W {
            self.0[l].mul_add_assign(&a.0[l], &b.0[l]);
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime instruction-set detection.
// ---------------------------------------------------------------------------

/// The vector instruction set the lane kernels dispatch to at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdIsa {
    /// No vector extension beyond the compile-time baseline: the lane
    /// kernels still run (any width), as portable scalar-lane code.
    Portable,
    /// x86-64 AVX2 + FMA: four f64 lanes per register.
    Avx2,
    /// x86-64 AVX-512 (F + DQ): eight f64 lanes per register.
    Avx512,
    /// AArch64 NEON: two f64 lanes per register.
    Neon,
}

impl SimdIsa {
    /// The natural lane width of the instruction set (doubles per vector
    /// register; 1 for [`SimdIsa::Portable`]).
    pub fn natural_width(self) -> usize {
        match self {
            SimdIsa::Portable => 1,
            SimdIsa::Neon => 2,
            SimdIsa::Avx2 => 4,
            SimdIsa::Avx512 => 8,
        }
    }

    /// A short human-readable name (`"avx512"`, `"avx2"`, `"neon"`,
    /// `"portable"`).
    pub fn name(self) -> &'static str {
        match self {
            SimdIsa::Portable => "portable",
            SimdIsa::Avx2 => "avx2",
            SimdIsa::Avx512 => "avx512",
            SimdIsa::Neon => "neon",
        }
    }
}

/// Detects the best vector instruction set of the running machine, once;
/// subsequent calls return the cached answer.
///
/// On x86-64 this uses `std::is_x86_feature_detected!` at runtime: AVX-512
/// needs `avx512f` + `avx512dq`, AVX2 needs `avx2` + `fma`.  On AArch64,
/// NEON is architecturally guaranteed.  Everywhere else the portable
/// fallback is reported.
pub fn detect_isa() -> SimdIsa {
    static DETECTED: OnceLock<SimdIsa> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::is_x86_feature_detected!("avx512f") && std::is_x86_feature_detected!("avx512dq")
            {
                return SimdIsa::Avx512;
            }
            if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma") {
                return SimdIsa::Avx2;
            }
            SimdIsa::Portable
        }
        #[cfg(target_arch = "aarch64")]
        {
            SimdIsa::Neon
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            SimdIsa::Portable
        }
    })
}

/// The lane width [`detect_isa`] recommends for this machine (8, 4, 2 — or
/// 1 when no vector extension is available, meaning the scalar path wins).
pub fn detected_lane_width() -> usize {
    detect_isa().natural_width()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md::{Dd, Deca, Qd};

    /// Deterministic value mill (no `rand` dependency): full-precision
    /// values with spread exponents, exercising every renormalization
    /// branch.
    fn mill(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let mantissa = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            let exp = ((state >> 3) % 41) as i32 - 20;
            mantissa * 2f64.powi(exp)
        }
    }

    fn random_md<const N: usize>(next: &mut impl FnMut() -> f64) -> Md<N> {
        let mut v = Md::<N>::from_f64(next());
        for i in 1..N {
            v = v.add_f64(next() * 2f64.powi(-50 * i as i32));
        }
        v
    }

    fn lanes_match_scalar<const N: usize, const W: usize>(seed: u64) {
        let mut next = mill(seed);
        let a: Vec<Md<N>> = (0..W).map(|_| random_md::<N>(&mut next)).collect();
        let b: Vec<Md<N>> = (0..W).map(|_| random_md::<N>(&mut next)).collect();
        let la = MdLanes::<N, W>::gather(|l| a[l]);
        let lb = MdLanes::<N, W>::gather(|l| b[l]);
        let sum = MdLanes::add(&la, &lb);
        let prod = MdLanes::mul(&la, &lb);
        let mut fused = prod;
        LaneVec::<Md<N>, W>::mul_add_assign(&mut fused, &la, &lb);
        for l in 0..W {
            assert_eq!(sum.extract(l), a[l].add(&b[l]), "add lane {l} N={N} W={W}");
            assert_eq!(prod.extract(l), a[l].mul(&b[l]), "mul lane {l} N={N} W={W}");
            let mut want = a[l].mul(&b[l]);
            let (x, y) = (a[l], b[l]);
            Coeff::mul_add_assign(&mut want, &x, &y);
            assert_eq!(fused.extract(l), want, "fma lane {l} N={N} W={W}");
        }
    }

    #[test]
    fn lane_arithmetic_is_bitwise_identical_per_lane() {
        for seed in 0..8u64 {
            lanes_match_scalar::<1, 4>(seed);
            lanes_match_scalar::<2, 2>(seed);
            lanes_match_scalar::<2, 4>(seed);
            lanes_match_scalar::<2, 8>(seed);
            lanes_match_scalar::<3, 4>(seed);
            lanes_match_scalar::<4, 4>(seed);
            lanes_match_scalar::<4, 8>(seed);
            lanes_match_scalar::<5, 2>(seed);
            lanes_match_scalar::<8, 4>(seed);
            lanes_match_scalar::<10, 4>(seed);
        }
    }

    #[test]
    fn complex_lanes_replicate_the_scalar_formula() {
        type Cx = Complex<Dd>;
        const W: usize = 4;
        let mut next = mill(7);
        let a: Vec<Cx> = (0..W)
            .map(|_| Complex::new(random_md::<2>(&mut next), random_md::<2>(&mut next)))
            .collect();
        let b: Vec<Cx> = (0..W)
            .map(|_| Complex::new(random_md::<2>(&mut next), random_md::<2>(&mut next)))
            .collect();
        let d = <Cx as Coeff>::doubles_per_value();
        let mut pa = vec![0.0; d * W];
        let mut pb = vec![0.0; d * W];
        for l in 0..W {
            <Cx as Coeff>::Lanes::<W>::write_lane(&mut pa, 0, l, &a[l]);
            <Cx as Coeff>::Lanes::<W>::write_lane(&mut pb, 0, l, &b[l]);
        }
        let la = <Cx as Coeff>::Lanes::<W>::load_from(&pa, 0);
        let lb = <Cx as Coeff>::Lanes::<W>::load_from(&pb, 0);
        let mut acc = <<Cx as Coeff>::Lanes<W> as LaneVec<Cx, W>>::zero();
        acc.mul_add_assign(&la, &lb);
        let sum = la.add(&lb);
        let mut out = vec![0.0; d * W];
        acc.store_to(&mut out, 0);
        for l in 0..W {
            let mut want = Cx::zero();
            want.mul_add_assign(&a[l], &b[l]);
            assert_eq!(<Cx as Coeff>::Lanes::<W>::read_lane(&out, 0, l), want);
            sum.store_to(&mut out, 0);
            assert_eq!(
                <Cx as Coeff>::Lanes::<W>::read_lane(&out, 0, l),
                a[l].add(&b[l])
            );
            acc.store_to(&mut out, 0);
        }
    }

    #[test]
    fn f64_lanes_use_the_fma_override() {
        const W: usize = 4;
        let a = F64Lanes::<W>([0.1, -2.5, 3.0, 1e-17]);
        let b = F64Lanes::<W>([7.0, 0.3, -1.25, 1e17]);
        let mut acc = F64Lanes::<W>([1.0; W]);
        acc.mul_add_assign(&a, &b);
        for l in 0..W {
            let mut want = 1.0f64;
            Coeff::mul_add_assign(&mut want, &a.0[l], &b.0[l]);
            assert_eq!(acc.0[l], want);
        }
    }

    #[test]
    fn panel_roundtrip_is_bitwise_exact() {
        const W: usize = 8;
        let mut next = mill(3);
        let vals: Vec<Deca> = (0..W).map(|_| random_md::<10>(&mut next)).collect();
        let d = <Deca as Coeff>::doubles_per_value();
        let mut panel = vec![0.0; 2 * d * W];
        for (l, v) in vals.iter().enumerate() {
            MdLanes::<10, W>::write_lane(&mut panel, d * W, l, v);
        }
        let lanes = <MdLanes<10, W> as LaneVec<Deca, W>>::load_from(&panel, d * W);
        for (l, v) in vals.iter().enumerate() {
            assert_eq!(lanes.extract(l), *v);
            assert_eq!(MdLanes::<10, W>::read_lane(&panel, d * W, l), *v);
        }
    }

    #[test]
    fn detection_is_stable_and_consistent() {
        let isa = detect_isa();
        assert_eq!(isa, detect_isa());
        assert_eq!(detected_lane_width(), isa.natural_width());
        assert!(matches!(isa.natural_width(), 1 | 2 | 4 | 8));
        assert!(!isa.name().is_empty());
    }

    #[test]
    fn sub_and_neg_match_scalar() {
        const W: usize = 4;
        let mut next = mill(11);
        let a: Vec<Qd> = (0..W).map(|_| random_md::<4>(&mut next)).collect();
        let b: Vec<Qd> = (0..W).map(|_| random_md::<4>(&mut next)).collect();
        let la = MdLanes::<4, W>::gather(|l| a[l]);
        let lb = MdLanes::<4, W>::gather(|l| b[l]);
        let diff = LaneVec::<Qd, W>::sub(&la, &lb);
        for l in 0..W {
            assert_eq!(diff.extract(l), a[l].sub(&b[l]));
            assert_eq!(la.neg().extract(l), a[l].neg());
        }
    }
}
