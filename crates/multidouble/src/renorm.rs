//! Renormalization of floating-point expansions.
//!
//! A multiple-double number is represented by an *expansion*: a short vector
//! of doubles whose exact sum is the represented value and whose components
//! rapidly decrease in magnitude (each component is at most a fraction of an
//! ulp of its predecessor).  The arithmetic routines in [`crate::md`] first
//! produce an unnormalized list of terms (partial sums, partial products and
//! their error terms) and then call into this module to compress that list
//! back into a fixed number of non-overlapping limbs.
//!
//! The algorithms follow the `VecSum` / `VecSumErrBranch` scheme used by
//! CAMPARY (Joldes, Muller, Popescu, Tucker) and the renormalization of the
//! QD library (Hida, Li, Bailey), generalized to an arbitrary number of
//! limbs.

use crate::eft::{quick_two_sum, two_sum};

/// One backward error-free accumulation pass (CAMPARY's `VecSum`).
///
/// Walks the term list from the last (smallest expected magnitude) element to
/// the first, replacing each element by the running floating-point sum and
/// storing the rounding errors in place.  The *exact* sum of the slice is
/// preserved.  After the pass, `terms[0]` holds the floating-point sum of a
/// right-to-left sequential summation and `terms[1..]` hold the accumulated
/// rounding errors in roughly decreasing order of magnitude.
pub fn vec_sum_pass(terms: &mut [f64]) {
    let n = terms.len();
    if n < 2 {
        return;
    }
    let mut s = terms[n - 1];
    for i in (0..n - 1).rev() {
        let (hi, lo) = two_sum(terms[i], s);
        s = hi;
        terms[i + 1] = lo;
    }
    terms[0] = s;
}

/// Extraction of at most `out.len()` normalized limbs from a term list whose
/// head already approximates the total (CAMPARY's `VecSumErrBranch`).
///
/// `terms` must have been prepared by one or more [`vec_sum_pass`] calls (or
/// must already be a decreasing non-overlapping expansion).  Limbs beyond the
/// capacity of `out` are discarded, which merely rounds the value to the
/// target precision.
pub fn extract_limbs(terms: &[f64], out: &mut [f64]) {
    for limb in out.iter_mut() {
        *limb = 0.0;
    }
    if terms.is_empty() || out.is_empty() {
        return;
    }
    let n_out = out.len();
    let mut k = 0usize;
    let mut carry = terms[0];
    for &t in &terms[1..] {
        let (hi, lo) = quick_two_sum(carry, t);
        if lo != 0.0 {
            // `hi` is settled: later terms are too small to change it.
            out[k] = hi;
            k += 1;
            if k == n_out {
                return;
            }
            carry = lo;
        } else {
            carry = hi;
        }
    }
    if k < n_out {
        out[k] = carry;
    }
}

/// Renormalize an arbitrary term list into `out.len()` limbs.
///
/// `passes` backward accumulation passes are applied before the extraction.
/// One pass suffices when the terms are already ordered by decreasing
/// magnitude (as after a merge of two expansions); two passes are used for
/// the roughly-ordered term lists produced by multiplication.
pub fn renormalize_into(terms: &mut [f64], out: &mut [f64], passes: usize) {
    for _ in 0..passes.max(1) {
        vec_sum_pass(terms);
    }
    extract_limbs(terms, out);
    // Final strictening sweeps: the extraction can leave adjacent limbs
    // overlapping by a few bits when later terms accumulate; two top-down
    // FastTwoSum sweeps restore the non-overlapping invariant.
    for _ in 0..2 {
        for i in 0..out.len().saturating_sub(1) {
            let (hi, lo) = quick_two_sum(out[i], out[i + 1]);
            out[i] = hi;
            out[i + 1] = lo;
        }
    }
}

/// Merge two expansions (each sorted by decreasing magnitude) into `dst` so
/// that the result is sorted by decreasing magnitude.
///
/// Zero components are kept; ties keep the component of `a` first, which
/// makes the merge deterministic.
pub fn merge_decreasing(a: &[f64], b: &[f64], dst: &mut [f64]) {
    debug_assert_eq!(dst.len(), a.len() + b.len());
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i].abs() >= b[j].abs() {
            dst[k] = a[i];
            i += 1;
        } else {
            dst[k] = b[j];
            j += 1;
        }
        k += 1;
    }
    while i < a.len() {
        dst[k] = a[i];
        i += 1;
        k += 1;
    }
    while j < b.len() {
        dst[k] = b[j];
        j += 1;
        k += 1;
    }
}

/// Grow a non-overlapping expansion by one double (Shewchuk's
/// `GROW-EXPANSION`), producing an expansion with one more component.
///
/// `e` is given in *increasing* order of magnitude (Shewchuk's convention);
/// `h` receives `e.len() + 1` components, also in increasing order.  The sum
/// is exact.  Used by the exactness oracle in the tests and by the dyadic
/// conversion routines; the hot arithmetic paths use the cheaper
/// [`renormalize_into`] instead.
pub fn grow_expansion(e: &[f64], b: f64, h: &mut [f64]) {
    debug_assert_eq!(h.len(), e.len() + 1);
    let mut q = b;
    for (i, &ei) in e.iter().enumerate() {
        let (s, err) = two_sum(q, ei);
        h[i] = err;
        q = s;
    }
    h[e.len()] = q;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_sum(terms: &[f64]) -> f64 {
        // Terms in these tests are chosen so that their sum is exactly
        // representable; plain summation in decreasing order is then exact.
        let mut sorted = terms.to_vec();
        sorted.sort_by(|a, b| b.abs().partial_cmp(&a.abs()).unwrap());
        sorted.iter().sum()
    }

    #[test]
    fn vec_sum_preserves_exact_sum() {
        let mut terms = vec![1.0, 2f64.powi(-53), 2f64.powi(-54), 2f64.powi(-105)];
        let before = exact_sum(&terms);
        vec_sum_pass(&mut terms);
        // The transformation is error free: the exact sum of the slice does
        // not change (here every partial sum is representable).
        let after: f64 = terms.iter().sum::<f64>();
        assert_eq!(
            before,
            1.0 + 2f64.powi(-53) + 2f64.powi(-54) + 2f64.powi(-105)
        );
        assert!((after - before).abs() <= f64::EPSILON * before.abs());
        // Head approximates the total: the sub-ulp tail rounds up to one ulp.
        assert_eq!(terms[0], 1.0 + f64::EPSILON);
    }

    #[test]
    fn extract_limbs_produces_nonoverlapping_output() {
        let mut terms = vec![1.0, 2f64.powi(-60), 2f64.powi(-120), 2f64.powi(-180)];
        vec_sum_pass(&mut terms);
        let mut out = [0.0; 4];
        extract_limbs(&terms, &mut out);
        assert_eq!(out[0], 1.0);
        assert_eq!(out[1], 2f64.powi(-60));
        assert_eq!(out[2], 2f64.powi(-120));
        assert_eq!(out[3], 2f64.powi(-180));
        for w in out.windows(2) {
            if w[1] != 0.0 {
                assert!(w[1].abs() < w[0].abs() * 2f64.powi(-52));
            }
        }
    }

    #[test]
    fn renormalize_compresses_overlapping_terms() {
        // 1 + 1 + 2^-53 + 2^-53: terms overlap pairwise.
        let mut terms = vec![1.0, 1.0, 2f64.powi(-53), 2f64.powi(-53)];
        let mut out = [0.0; 2];
        renormalize_into(&mut terms, &mut out, 2);
        assert_eq!(out[0], 2.0);
        assert_eq!(out[1], 2f64.powi(-52));
    }

    #[test]
    fn renormalize_handles_cancellation() {
        let mut terms = vec![1.0e30, 3.5, -1.0e30, -1.25];
        let mut out = [0.0; 3];
        renormalize_into(&mut terms, &mut out, 2);
        assert_eq!(out[0], 2.25);
        assert_eq!(out[1], 0.0);
        assert_eq!(out[2], 0.0);
    }

    #[test]
    fn renormalize_all_zeros() {
        let mut terms = vec![0.0; 5];
        let mut out = [0.0; 4];
        renormalize_into(&mut terms, &mut out, 1);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn merge_decreasing_orders_by_magnitude() {
        let a = [8.0, -0.5, 0.001];
        let b = [100.0, 0.25];
        let mut dst = [0.0; 5];
        merge_decreasing(&a, &b, &mut dst);
        assert_eq!(dst, [100.0, 8.0, -0.5, 0.25, 0.001]);
    }

    #[test]
    fn grow_expansion_is_exact() {
        // Expansion in increasing magnitude order.
        let e = [2f64.powi(-80), 1.0];
        let mut h = [0.0; 3];
        grow_expansion(&e, 2f64.powi(-40), &mut h);
        let total: f64 = h.iter().sum();
        // Sum preserved (components chosen so the final sum is representable
        // as the sum of the output components exactly).
        assert_eq!(total, 1.0 + 2f64.powi(-40) + 2f64.powi(-80));
        assert_eq!(h[2], 1.0 + 2f64.powi(-40));
    }
}
