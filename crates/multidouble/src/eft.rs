//! Error-free transformations (EFTs) on IEEE-754 binary64 numbers.
//!
//! These are the building blocks of every multiple-double operation: each
//! transform returns the floating-point result of an operation *and* the
//! exact rounding error, so no information is lost.  The algorithms are the
//! classical ones of Dekker, Knuth and Shewchuk, with the product split
//! replaced by a fused multiply-add (`f64::mul_add`), as done by the CAMPARY
//! library the paper builds on.

/// Sum of `a` and `b` with the exact rounding error (Knuth's TwoSum).
///
/// Returns `(s, e)` with `s = fl(a + b)` and `s + e == a + b` exactly,
/// for any ordering of the magnitudes of `a` and `b`.
///
/// Costs 6 double operations.
#[inline(always)]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Sum of `a` and `b` with the exact rounding error, assuming `|a| >= |b|`
/// (Dekker's FastTwoSum / QuickTwoSum).
///
/// Returns `(s, e)` with `s = fl(a + b)` and `s + e == a + b` exactly.
/// The precondition `|a| >= |b|` (or `a == 0`) is required for exactness.
///
/// Costs 3 double operations.
#[inline(always)]
pub fn quick_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// Difference of `a` and `b` with the exact rounding error (TwoDiff).
///
/// Returns `(d, e)` with `d = fl(a - b)` and `d + e == a - b` exactly.
#[inline(always)]
pub fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let d = a - b;
    let bb = d - a;
    let e = (a - (d - bb)) - (b + bb);
    (d, e)
}

/// Product of `a` and `b` with the exact rounding error, using a fused
/// multiply-add (TwoProdFMA).
///
/// Returns `(p, e)` with `p = fl(a * b)` and `p + e == a * b` exactly
/// (barring overflow/underflow of the product).
///
/// Costs 2 double operations when an FMA unit is available.
#[inline(always)]
pub fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = f64::mul_add(a, b, -p);
    (p, e)
}

/// Square of `a` with the exact rounding error (TwoSquareFMA).
#[inline(always)]
pub fn two_square(a: f64) -> (f64, f64) {
    let p = a * a;
    let e = f64::mul_add(a, a, -p);
    (p, e)
}

/// Dekker-style split of a double into high and low parts, each with at
/// most 26 significant bits, such that `a == hi + lo`.
///
/// Not used on the hot path (the FMA-based [`two_prod`] is preferred), but
/// exposed because it is the classical alternative and is exercised by the
/// test-suite as a cross-check of [`two_prod`].
#[inline]
pub fn split(a: f64) -> (f64, f64) {
    const SPLITTER: f64 = 134_217_729.0; // 2^27 + 1
    let t = SPLITTER * a;
    let hi = t - (t - a);
    let lo = a - hi;
    (hi, lo)
}

/// Product with exact error computed via Dekker's split (no FMA).
///
/// Exists as an independent cross-check of [`two_prod`]; both must agree
/// bit-for-bit whenever no intermediate overflow occurs.
#[inline]
pub fn two_prod_split(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let (ahi, alo) = split(a);
    let (bhi, blo) = split(b);
    let e = ((ahi * bhi - p) + ahi * blo + alo * bhi) + alo * blo;
    (p, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_is_exact_for_representable_case() {
        let a = 1.0;
        let b = 2f64.powi(-60);
        let (s, e) = two_sum(a, b);
        assert_eq!(s, 1.0);
        assert_eq!(e, b);
        // Reconstruction is exact.
        assert_eq!(s + e, a + b);
    }

    #[test]
    fn two_sum_handles_cancellation() {
        let a = 1.0 + 2f64.powi(-52);
        let b = -1.0;
        let (s, e) = two_sum(a, b);
        assert_eq!(s, 2f64.powi(-52));
        assert_eq!(e, 0.0);
    }

    #[test]
    fn quick_two_sum_matches_two_sum_when_ordered() {
        let pairs = [
            (1.0e10, 3.25),
            (-7.5, 1.0e-3),
            (2f64.powi(100), -2f64.powi(40)),
            (0.1, 0.1 * 2f64.powi(-53)),
        ];
        for &(a, b) in &pairs {
            assert!(a.abs() >= b.abs());
            let (s1, e1) = two_sum(a, b);
            let (s2, e2) = quick_two_sum(a, b);
            assert_eq!(s1, s2);
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn two_diff_is_exact() {
        let a = 1.0e16;
        let b = 1.0;
        let (d, e) = two_diff(a, b);
        // a - b is not representable; d + e must recover it exactly:
        // 1e16 - 1 = 9999999999999999, which needs 54 bits.
        assert_eq!(d, 1.0e16);
        assert_eq!(e, -1.0);
    }

    #[test]
    fn two_prod_error_term() {
        let a = 1.0 + 2f64.powi(-30);
        let b = 1.0 + 2f64.powi(-30);
        let (p, e) = two_prod(a, b);
        // Exact product = 1 + 2^-29 + 2^-60; the 2^-60 term is the error.
        assert_eq!(p, 1.0 + 2f64.powi(-29));
        assert_eq!(e, 2f64.powi(-60));
    }

    #[test]
    fn two_prod_fma_agrees_with_split_version() {
        let values = [
            0.1,
            -0.3,
            1.0e8,
            3.5e-7,
            123456.789,
            -9.87654321e3,
            1.0 / 3.0,
        ];
        for &a in &values {
            for &b in &values {
                let (p1, e1) = two_prod(a, b);
                let (p2, e2) = two_prod_split(a, b);
                assert_eq!(p1, p2);
                assert_eq!(e1, e2, "error mismatch for {a} * {b}");
            }
        }
    }

    #[test]
    fn two_square_agrees_with_two_prod() {
        for &a in &[0.1, -7.25, 1.0e9, 3.0e-11] {
            assert_eq!(two_square(a), two_prod(a, a));
        }
    }

    #[test]
    fn split_reconstructs() {
        for &a in &[0.1, 123456.789, -9.5e18, 2f64.powi(-500)] {
            let (hi, lo) = split(a);
            assert_eq!(hi + lo, a);
            // hi has at most 26 significant bits: multiplying by 2^27 and
            // adding lo*0 keeps exactness of hi*hi.
            assert_eq!(f64::mul_add(hi, hi, -(hi * hi)), 0.0);
        }
    }
}
