//! # psmd-multidouble
//!
//! Multiple-double (floating-point expansion) arithmetic: the scalar
//! substrate of the paper *"Accelerated Polynomial Evaluation and
//! Differentiation at Power Series in Multiple Double Precision"*
//! (J. Verschelde, 2021).
//!
//! A multiple-double number extends IEEE double precision by representing a
//! value as the unevaluated sum of `N` doubles.  The paper runs its kernels
//! in double (`N = 1`), double-double, triple-, quad-, penta-, octo- and
//! deca-double precision; all of those are provided here by the single
//! generic type [`Md<N>`] together with convenient aliases ([`Dd`], [`Td`],
//! [`Qd`], [`Pd`], [`Od`], [`Deca`]).
//!
//! ## Quick example
//!
//! ```
//! use psmd_multidouble::{Deca, Md};
//!
//! // 1/3 carries ~160 correct decimal digits in deca-double precision.
//! let third = Deca::one() / Deca::from_f64(3.0);
//! let one = third * Deca::from_f64(3.0);
//! assert!((one - Deca::one()).abs().to_f64() < 1e-150);
//! ```
//!
//! The crate also provides complex numbers over any real precision
//! ([`Complex`]), the coefficient traits used by the power-series layer
//! ([`Coeff`], [`RealCoeff`]), runtime precision descriptors ([`Precision`])
//! and the double-operation cost models used by the paper's throughput
//! analysis ([`flops`]).

#![warn(missing_docs)]

pub mod coeff;
pub mod complex;
pub mod convert;
pub mod eft;
pub mod flops;
pub mod lanes;
pub mod md;
pub mod ops;
pub mod precision;
#[cfg(feature = "rand")]
pub mod random;
pub mod renorm;
pub mod ulp;

pub use coeff::{Coeff, RealCoeff};
pub use complex::{Complex, ComplexDd, ComplexDeca, ComplexQd};
pub use convert::{decimal_digits, ParseMdError};
pub use flops::CostModel;
pub use lanes::{
    detect_isa, detected_lane_width, CxLanes, F64Lanes, LaneVec, MdLanes, ScalarLanes, SimdIsa,
};
pub use md::{Dd, Deca, Md, Md1, Od, Pd, Qd, Td, MAX_LIMBS};
pub use precision::Precision;
#[cfg(feature = "rand")]
pub use random::RandomCoeff;
pub use ulp::{max_scaled_error, max_ulp_error, ulp_distance};
