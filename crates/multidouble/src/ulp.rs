//! Ulp-scaled error measurement for multiple-double values.
//!
//! The consistency suites of this workspace historically compared evaluators
//! with *absolute* coefficient-wise differences (`Series::distance`), which
//! conflates the magnitude of the data with the accuracy of the arithmetic.
//! The sub-quadratic convolution kernels (Karatsuba, compensated FFT)
//! reassociate sums, so their results are not bitwise equal to the
//! schoolbook reference; the honest way to gate them is in *units in the
//! last place* of the working precision, which is what this module measures.
//!
//! One ulp of a value `v` at a precision with unit roundoff `u` is `u * |v|`
//! (the relative spacing of representable values near `v`); the distance
//! between two values in ulps is therefore `|a - b| / (u * max(|a|, |b|))`.
//! Complex values measure magnitudes with the complex modulus, so the same
//! functions serve the real and complex coefficient types.
//!
//! For cancellation-heavy data the per-value ulp distance is the wrong
//! yardstick — *every* fixed-precision algorithm, schoolbook included,
//! carries errors relative to the largest intermediate term, not the final
//! value.  [`max_scaled_error`] measures against a caller-provided scale
//! (typically `max|x| * max|y|` for a convolution) for exactly those cases;
//! see `EXPERIMENTS.md` section 10 for the derivation.

use crate::coeff::Coeff;

/// Distance between `a` and `b` in units in the last place of `C`'s
/// precision: `|a - b| / (u * max(|a|, |b|))` with `u` the unit roundoff.
///
/// Returns `0.0` for (bitwise) equal values, [`f64::INFINITY`] when the
/// difference is not finite or when exactly one of the values is zero (a
/// zero has no ulp to measure against; the caller should fall back to
/// [`max_scaled_error`] for data where that matters).
pub fn ulp_distance<C: Coeff>(a: &C, b: &C) -> f64 {
    let diff = a.sub(b).magnitude();
    if diff == 0.0 {
        return 0.0;
    }
    let scale = a.magnitude().max(b.magnitude());
    if !diff.is_finite() || scale == 0.0 || a.is_zero() != b.is_zero() {
        return f64::INFINITY;
    }
    diff / (C::unit_roundoff() * scale)
}

/// Largest element-wise [`ulp_distance`] between two slices.
///
/// Returns [`f64::INFINITY`] on a length mismatch: slices of different
/// shapes are never "close", and silently comparing the common prefix would
/// hide exactly the bugs this helper exists to catch.
pub fn max_ulp_error<C: Coeff>(a: &[C], b: &[C]) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| ulp_distance(x, y))
        .fold(0.0, f64::max)
}

/// Largest element-wise difference between two slices, in ulps of a
/// caller-provided `scale`: `max_i |a_i - b_i| / (u * scale)`.
///
/// This is the right gate for cancellation-heavy or mixed-magnitude data,
/// where the forward error of any summation-reassociating algorithm is
/// bounded relative to the size of the *inputs* (for a convolution:
/// `max|x| * max|y|`), not of each output coefficient.  Returns
/// [`f64::INFINITY`] on a length mismatch or a non-positive scale.
pub fn max_scaled_error<C: Coeff>(a: &[C], b: &[C], scale: f64) -> f64 {
    if a.len() != b.len() || scale.is_nan() || scale <= 0.0 {
        return f64::INFINITY;
    }
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| x.sub(y).magnitude())
        .fold(0.0, f64::max)
        / (C::unit_roundoff() * scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::md::{Dd, Md, Qd};

    #[test]
    fn equal_values_are_zero_ulps_apart() {
        let a = Qd::from_f64(1.5);
        assert_eq!(ulp_distance(&a, &a), 0.0);
        let c = Complex::new(Dd::from_f64(0.1), Dd::from_f64(-2.0));
        assert_eq!(ulp_distance(&c, &c), 0.0);
        assert_eq!(ulp_distance(&0.0f64, &0.0f64), 0.0);
    }

    #[test]
    fn one_ulp_at_each_precision_measures_as_one() {
        // b = 1 + u: exactly one ulp above 1 at the working precision.
        fn check<const N: usize>() {
            let a = Md::<N>::one();
            let b = a.add_f64(Md::<N>::epsilon());
            let d = ulp_distance(&a, &b);
            assert!((d - 1.0).abs() < 1e-9, "N={N}: {d}");
        }
        check::<1>();
        check::<2>();
        check::<3>();
        check::<4>();
        check::<5>();
        check::<8>();
        check::<10>();
        let d = ulp_distance(&1.0f64, &(1.0 + f64::EPSILON));
        assert!((d - 2.0).abs() < 1e-12, "f64 u = eps/2: {d}");
    }

    #[test]
    fn distance_is_symmetric_and_scale_free() {
        let a = Dd::from_f64(3.0).mul(&Dd::from_f64(2f64.powi(200)));
        let b = a.add(&a.mul_f64(Dd::epsilon() * 7.0));
        let ab = ulp_distance(&a, &b);
        let ba = ulp_distance(&b, &a);
        assert!((ab - ba).abs() < 1e-9);
        assert!(ab > 6.0 && ab < 8.0, "{ab}");
        // Same relative perturbation at a tiny magnitude: same ulp count.
        let c = Dd::from_f64(3.0).mul(&Dd::from_f64(2f64.powi(-200)));
        let d = c.add(&c.mul_f64(Dd::epsilon() * 7.0));
        let cd = ulp_distance(&c, &d);
        assert!((ab - cd).abs() < 1e-6, "{ab} vs {cd}");
    }

    #[test]
    fn zero_versus_nonzero_is_infinite() {
        assert_eq!(ulp_distance(&Qd::ZERO, &Qd::one()), f64::INFINITY);
        assert_eq!(ulp_distance(&Qd::one(), &Qd::ZERO), f64::INFINITY);
    }

    #[test]
    fn max_ulp_error_over_slices() {
        let a = [Dd::from_f64(1.0), Dd::from_f64(2.0)];
        let mut b = a;
        assert_eq!(max_ulp_error(&a, &b), 0.0);
        b[1] = b[1].add_f64(2.0 * Dd::epsilon() * 3.0);
        let e = max_ulp_error(&a, &b);
        assert!(e > 2.0 && e < 4.0, "{e}");
        // Shape mismatch is infinite, not silently truncated.
        assert_eq!(max_ulp_error(&a, &b[..1]), f64::INFINITY);
    }

    #[test]
    fn scaled_error_measures_against_the_given_scale() {
        // a and b differ by 4 ulps of the scale 8.0.
        let a = [Dd::ZERO];
        let b = [Dd::from_f64(8.0 * Dd::epsilon() * 4.0)];
        let e = max_scaled_error(&a, &b, 8.0);
        assert!((e - 4.0).abs() < 1e-9, "{e}");
        assert_eq!(max_scaled_error(&a, &b, 0.0), f64::INFINITY);
        assert_eq!(max_scaled_error(&a, &b[..0], 1.0), f64::INFINITY);
        // Per-value ulp distance is infinite here (zero vs nonzero); the
        // scaled measure is the usable gate.
        assert_eq!(max_ulp_error(&a, &b), f64::INFINITY);
    }

    #[test]
    fn complex_distance_uses_the_modulus() {
        let a = Complex::new(Qd::from_f64(3.0), Qd::from_f64(4.0));
        let b = Complex::new(
            Qd::from_f64(3.0).add_f64(5.0 * Qd::epsilon() * 10.0),
            Qd::from_f64(4.0),
        );
        let d = ulp_distance(&a, &b);
        // |a| = 5, |a - b| = 10 u * 5: ten ulps.
        assert!(d > 9.0 && d < 11.0, "{d}");
    }
}
