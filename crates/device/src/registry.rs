//! The GPU registry: the five NVIDIA devices of the paper's Table 1.
//!
//! The reproduction does not require CUDA hardware; these specifications
//! feed the analytic performance model ([`crate::model`]) that produces
//! *modeled* kernel times for each device, next to the *measured* CPU times
//! of the simulator.

/// Characteristics of one GPU (one row of Table 1), plus the quantities the
/// performance model needs (peak double-precision throughput and a measured
/// efficiency factor for this workload class).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name ("Tesla C2050", "Volta V100", ...).
    pub name: &'static str,
    /// Short identifier used on the command line ("c2050", "v100", ...).
    pub key: &'static str,
    /// CUDA compute capability.
    pub cuda_capability: f32,
    /// Number of streaming multiprocessors.
    pub multiprocessors: usize,
    /// CUDA cores per multiprocessor.
    pub cores_per_mp: usize,
    /// GPU clock in GHz.
    pub ghz: f64,
    /// Host CPU of the machine housing the card (Table 1).
    pub host_cpu: &'static str,
    /// Host CPU clock in GHz.
    pub host_ghz: f64,
    /// Theoretical peak double-precision throughput in GFLOPS.
    pub peak_double_gflops: f64,
    /// Fraction of the peak this workload class achieves (calibrated once
    /// from the paper's Table 3, deca-double, degree 152; see EXPERIMENTS.md).
    pub efficiency: f64,
    /// Shared memory available to one thread block, in bytes.
    pub shared_memory_per_block: usize,
    /// Kernel launch overhead charged to the wall clock (index-vector
    /// transfer plus driver latency), in milliseconds per launch.
    pub launch_overhead_ms: f64,
}

impl GpuSpec {
    /// Total number of CUDA cores.
    pub fn total_cores(&self) -> usize {
        self.multiprocessors * self.cores_per_mp
    }

    /// Peak throughput of a single streaming multiprocessor in GFLOPS.
    pub fn sm_gflops(&self) -> f64 {
        self.peak_double_gflops / self.multiprocessors as f64
    }

    /// Effective (efficiency-scaled) throughput of one multiprocessor.
    pub fn effective_sm_gflops(&self) -> f64 {
        self.sm_gflops() * self.efficiency
    }
}

/// Shared memory per block common to all five devices (the paper notes the
/// limit "is the same on all five devices"): 48 KiB.
pub const SHARED_MEMORY_PER_BLOCK: usize = 48 * 1024;

/// The five GPUs of Table 1.
///
/// Peak double-precision rates: the paper quotes 4.7 TFLOPS for the P100 and
/// 7.9 TFLOPS for the V100; the remaining peaks are the vendor figures for
/// the other three cards.  The efficiency factors are calibrated from the
/// paper's Table 3 (wall clock for p1, degree 152, deca-double) so that the
/// model reproduces that table; all other tables and figures are then
/// genuine predictions of the model.
pub fn paper_gpus() -> Vec<GpuSpec> {
    vec![
        GpuSpec {
            name: "Tesla C2050",
            key: "c2050",
            cuda_capability: 2.0,
            multiprocessors: 14,
            cores_per_mp: 32,
            ghz: 1.15,
            host_cpu: "Intel X5690",
            host_ghz: 3.47,
            peak_double_gflops: 515.0,
            efficiency: 0.200,
            shared_memory_per_block: SHARED_MEMORY_PER_BLOCK,
            launch_overhead_ms: 0.40,
        },
        GpuSpec {
            name: "Kepler K20C",
            key: "k20c",
            cuda_capability: 3.5,
            multiprocessors: 13,
            cores_per_mp: 192,
            ghz: 0.71,
            host_cpu: "Intel E5-2670",
            host_ghz: 2.60,
            peak_double_gflops: 1170.0,
            efficiency: 0.101,
            shared_memory_per_block: SHARED_MEMORY_PER_BLOCK,
            launch_overhead_ms: 0.50,
        },
        GpuSpec {
            name: "Pascal P100",
            key: "p100",
            cuda_capability: 6.0,
            multiprocessors: 56,
            cores_per_mp: 64,
            ghz: 1.33,
            host_cpu: "Intel E5-2699",
            host_ghz: 2.20,
            peak_double_gflops: 4700.0,
            efficiency: 0.267,
            shared_memory_per_block: SHARED_MEMORY_PER_BLOCK,
            launch_overhead_ms: 0.35,
        },
        GpuSpec {
            name: "Volta V100",
            key: "v100",
            cuda_capability: 7.0,
            multiprocessors: 80,
            cores_per_mp: 64,
            ghz: 1.91,
            host_cpu: "Intel W2123",
            host_ghz: 3.60,
            peak_double_gflops: 7900.0,
            efficiency: 0.264,
            shared_memory_per_block: SHARED_MEMORY_PER_BLOCK,
            launch_overhead_ms: 0.35,
        },
        GpuSpec {
            name: "GeForce RTX 2080",
            key: "rtx2080",
            cuda_capability: 7.5,
            multiprocessors: 46,
            cores_per_mp: 64,
            ghz: 1.10,
            host_cpu: "Intel i9-9880H",
            host_ghz: 2.30,
            peak_double_gflops: 314.0,
            efficiency: 0.424,
            shared_memory_per_block: SHARED_MEMORY_PER_BLOCK,
            launch_overhead_ms: 0.55,
        },
    ]
}

/// Looks a device up by its short key (case insensitive).
pub fn gpu_by_key(key: &str) -> Option<GpuSpec> {
    let key = key.to_ascii_lowercase();
    paper_gpus().into_iter().find(|g| g.key == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table_1() {
        let gpus = paper_gpus();
        assert_eq!(gpus.len(), 5);
        let core_counts: Vec<usize> = gpus.iter().map(|g| g.total_cores()).collect();
        // Table 1: 448, 2496, 3584, 5120, 2944 cores.
        assert_eq!(core_counts, vec![448, 2496, 3584, 5120, 2944]);
        let v100 = gpu_by_key("v100").unwrap();
        assert_eq!(v100.multiprocessors, 80);
        assert_eq!(v100.cores_per_mp, 64);
        assert!((v100.ghz - 1.91).abs() < 1e-12);
        let p100 = gpu_by_key("p100").unwrap();
        // The paper's expected V100/P100 speedup is the peak ratio 7.9/4.7.
        let ratio = v100.peak_double_gflops / p100.peak_double_gflops;
        assert!((ratio - 7.9 / 4.7).abs() < 1e-2);
    }

    #[test]
    fn lookup_is_case_insensitive_and_total() {
        assert!(gpu_by_key("V100").is_some());
        assert!(gpu_by_key("RTX2080").is_some());
        assert!(gpu_by_key("a100").is_none());
        for g in paper_gpus() {
            assert_eq!(gpu_by_key(g.key).unwrap().name, g.name);
        }
    }

    #[test]
    fn efficiencies_and_peaks_are_physical() {
        for g in paper_gpus() {
            assert!(g.efficiency > 0.0 && g.efficiency <= 1.0, "{}", g.name);
            assert!(g.peak_double_gflops > 100.0);
            assert!(g.sm_gflops() > 0.0);
            assert_eq!(g.shared_memory_per_block, 48 * 1024);
        }
    }
}
