//! The shared-memory capacity model.
//!
//! One convolution block stages the `X`, double-length `Y` and `Z` vectors
//! of the zero-insertion kernel in shared memory: `4 (d + 1)` coefficients of
//! `m` doubles each (8 bytes per double).  The paper notes that degree 152
//! "is the largest one block of threads can manage because of the limitation
//! of the size of shared memory" in deca-double precision; this module
//! reproduces that limit for every precision and checks requested
//! configurations against it.

use crate::registry::GpuSpec;
use psmd_multidouble::Precision;

/// Number of staged coefficient vectors per convolution block
/// (`X`, `Z`, and the double-length `Y`).
pub const STAGED_VECTORS: usize = 4;

/// Bytes of shared memory needed by one convolution block for series
/// truncated at `degree` with `doubles_per_coeff` doubles per coefficient.
pub fn shared_bytes_needed(degree: usize, doubles_per_coeff: usize) -> usize {
    STAGED_VECTORS * (degree + 1) * doubles_per_coeff * 8
}

/// Largest truncation degree that fits in `shared_bytes` of shared memory
/// for coefficients of `doubles_per_coeff` doubles.
pub fn max_degree_for(shared_bytes: usize, doubles_per_coeff: usize) -> usize {
    let coeffs = shared_bytes / (STAGED_VECTORS * doubles_per_coeff * 8);
    coeffs.saturating_sub(1)
}

/// Largest truncation degree supported at a given precision for real data on
/// a device.
pub fn max_degree(gpu: &GpuSpec, precision: Precision) -> usize {
    max_degree_for(gpu.shared_memory_per_block, precision.limbs())
}

/// Largest truncation degree supported at a given precision for complex data
/// (real and imaginary parts both staged).
pub fn max_degree_complex(gpu: &GpuSpec, precision: Precision) -> usize {
    max_degree_for(gpu.shared_memory_per_block, 2 * precision.limbs())
}

/// Whether a configuration fits the device's shared memory.
pub fn fits(gpu: &GpuSpec, precision: Precision, degree: usize) -> bool {
    degree <= max_degree(gpu, precision)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::paper_gpus;

    #[test]
    fn deca_double_limit_is_degree_152() {
        // The headline constraint from Section 6.2 of the paper.
        for gpu in paper_gpus() {
            assert_eq!(max_degree(&gpu, Precision::D10), 152);
            assert!(fits(&gpu, Precision::D10, 152));
            assert!(!fits(&gpu, Precision::D10, 153));
        }
    }

    #[test]
    fn limits_for_all_precisions() {
        let gpu = &paper_gpus()[3];
        // 48 KiB / (32 * m) coefficients per vector.
        let expected = [
            (Precision::D1, 1535),
            (Precision::D2, 767),
            (Precision::D3, 511),
            (Precision::D4, 383),
            (Precision::D5, 306),
            (Precision::D8, 191),
            (Precision::D10, 152),
        ];
        for (p, d) in expected {
            assert_eq!(max_degree(gpu, p), d, "{p}");
        }
        // All degrees of the paper's sweep (<= 191) fit in octo double but
        // degree 159 and 191 do not fit in deca double, which is why the
        // paper's 10d rows stop at 152.
        assert!(fits(gpu, Precision::D8, 191));
        assert!(!fits(gpu, Precision::D10, 159));
        assert!(!fits(gpu, Precision::D10, 191));
    }

    #[test]
    fn complex_data_halves_the_degree() {
        let gpu = &paper_gpus()[2];
        for p in Precision::ALL {
            let real = max_degree(gpu, p);
            let cplx = max_degree_complex(gpu, p);
            assert!(cplx <= real);
            assert!(cplx + 1 >= real.div_ceil(2));
        }
    }

    #[test]
    fn bytes_needed_is_consistent_with_max_degree() {
        for m in [1usize, 2, 3, 4, 5, 8, 10] {
            let d = max_degree_for(48 * 1024, m);
            assert!(shared_bytes_needed(d, m) <= 48 * 1024);
            assert!(shared_bytes_needed(d + 1, m) > 48 * 1024);
        }
    }
}
