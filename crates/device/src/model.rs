//! Analytic (roofline + occupancy) performance model.
//!
//! The reproduction runs on CPUs, so the per-device millisecond columns of
//! the paper's tables cannot be measured directly.  Instead they are
//! *modeled*: every kernel launch is charged the double-precision operations
//! of its blocks (using the operation counts per multiple-double operation),
//! the blocks of one launch are distributed over the streaming
//! multiprocessors in waves, and each multiprocessor sustains an
//! efficiency-scaled fraction of its peak double throughput.  The wall clock
//! additionally pays a per-launch overhead for transferring the index
//! vectors that define the jobs, as described in Section 6.2.
//!
//! The efficiency factor of each device is calibrated once against the
//! paper's Table 3 (p1, degree 152, deca-double); every other table and
//! figure produced by the model is then a prediction whose shape can be
//! compared against the paper's appendix tables.

use crate::registry::GpuSpec;
use psmd_multidouble::{CostModel, Precision};
use psmd_series::{addition_adds, convolution_adds, convolution_mults, ConvAlgo};

/// The per-launch structure of one evaluation: how many blocks each kernel
/// launch of each stage contains.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkloadShape {
    /// Truncation degree of the power series.
    pub degree: usize,
    /// Number of blocks in every convolution kernel launch (one entry per
    /// layer of convolution jobs).
    pub convolution_layers: Vec<usize>,
    /// Number of blocks in every addition kernel launch (one entry per layer
    /// of the tree summation).
    pub addition_layers: Vec<usize>,
}

impl WorkloadShape {
    /// Total number of convolution jobs.
    pub fn convolution_jobs(&self) -> usize {
        self.convolution_layers.iter().sum()
    }

    /// Total number of addition jobs.
    pub fn addition_jobs(&self) -> usize {
        self.addition_layers.iter().sum()
    }

    /// Total number of kernel launches.
    pub fn launches(&self) -> usize {
        self.convolution_layers.len() + self.addition_layers.len()
    }

    /// Double operations of one convolution block at the given precision.
    ///
    /// The device model counts the paper's zero-insertion kernel — the
    /// divergence-free data-parallel algorithm the real accelerator runs —
    /// regardless of which CPU kernel the engine selected.
    pub fn convolution_block_ops(&self, precision: Precision, cost: CostModel) -> f64 {
        let d = self.degree;
        convolution_mults(ConvAlgo::ZeroInsertion, d) as f64 * precision.mul_ops(cost) as f64
            + convolution_adds(ConvAlgo::ZeroInsertion, d) as f64 * precision.add_ops(cost) as f64
    }

    /// Double operations of one addition block at the given precision.
    pub fn addition_block_ops(&self, precision: Precision, cost: CostModel) -> f64 {
        addition_adds(self.degree) as f64 * precision.add_ops(cost) as f64
    }

    /// Total double operations of the whole evaluation (the quantity the
    /// paper divides by the elapsed time to report TFLOPS).
    pub fn total_double_ops(&self, precision: Precision, cost: CostModel) -> f64 {
        self.convolution_jobs() as f64 * self.convolution_block_ops(precision, cost)
            + self.addition_jobs() as f64 * self.addition_block_ops(precision, cost)
    }
}

/// Modeled timings for one device (all in milliseconds), mirroring the four
/// rows of the paper's per-run reports.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModeledTimes {
    /// Sum of the modeled elapsed times of all convolution kernels.
    pub convolution_ms: f64,
    /// Sum of the modeled elapsed times of all addition kernels.
    pub addition_ms: f64,
    /// Modeled wall clock (kernels plus per-launch overhead).
    pub wall_clock_ms: f64,
}

impl ModeledTimes {
    /// Sum of convolution and addition kernel times.
    pub fn sum_ms(&self) -> f64 {
        self.convolution_ms + self.addition_ms
    }

    /// Achieved double-precision throughput in GFLOPS given the total
    /// operation count.
    pub fn gflops(&self, total_ops: f64) -> f64 {
        if self.wall_clock_ms <= 0.0 {
            return 0.0;
        }
        total_ops / (self.wall_clock_ms * 1e-3) / 1e9
    }
}

/// Models the time of a single kernel launch of `blocks` blocks, each
/// performing `block_ops` double operations.
pub fn model_launch_ms(gpu: &GpuSpec, blocks: usize, block_ops: f64) -> f64 {
    if blocks == 0 || block_ops <= 0.0 {
        return 0.0;
    }
    // One block is serviced by one multiprocessor; a launch of B blocks on a
    // device with S multiprocessors proceeds in ceil(B / S) waves.
    let waves = blocks.div_ceil(gpu.multiprocessors) as f64;
    let block_ms = block_ops / (gpu.effective_sm_gflops() * 1e9) * 1e3;
    waves * block_ms
}

/// Models the timings of one full evaluation on one device.
pub fn model_evaluation(
    gpu: &GpuSpec,
    shape: &WorkloadShape,
    precision: Precision,
    cost: CostModel,
) -> ModeledTimes {
    let conv_ops = shape.convolution_block_ops(precision, cost);
    let add_ops = shape.addition_block_ops(precision, cost);
    let convolution_ms: f64 = shape
        .convolution_layers
        .iter()
        .map(|&blocks| model_launch_ms(gpu, blocks, conv_ops))
        .sum();
    let addition_ms: f64 = shape
        .addition_layers
        .iter()
        .map(|&blocks| model_launch_ms(gpu, blocks, add_ops))
        .sum();
    let wall_clock_ms =
        convolution_ms + addition_ms + shape.launches() as f64 * gpu.launch_overhead_ms;
    ModeledTimes {
        convolution_ms,
        addition_ms,
        wall_clock_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{gpu_by_key, paper_gpus};

    /// The launch structure of the paper's first test polynomial p1
    /// (Section 6.1): 16,380 convolutions in four launches and 9,084
    /// additions in eleven launches.
    fn p1_shape(degree: usize) -> WorkloadShape {
        WorkloadShape {
            degree,
            convolution_layers: vec![3640, 5460, 5460, 1820],
            addition_layers: vec![4542, 2279, 1140, 562, 281, 140, 78, 39, 20, 2, 1],
        }
    }

    #[test]
    fn p1_job_totals_match_the_paper() {
        let s = p1_shape(152);
        assert_eq!(s.convolution_jobs(), 16_380);
        assert_eq!(s.addition_jobs(), 9_084);
        assert_eq!(s.launches(), 15);
    }

    #[test]
    fn total_double_ops_reproduces_section_6_2() {
        // Section 6.2: 16,380 (d+1)^2 multiplications evaluate to
        // 1,184,444,368,380 double operations and the additions to
        // 151,782,283,404, for a total of 1,336,226,651,784.
        let s = p1_shape(152);
        let mults = 16_380.0 * 153.0 * 153.0 * 3089.0;
        assert_eq!(mults, 1_184_444_368_380.0);
        let adds = (16_380.0 * 152.0 * 153.0 + 9_084.0 * 153.0) * 397.0;
        assert_eq!(adds, 151_782_283_404.0);
        let total = s.total_double_ops(Precision::D10, CostModel::Paper);
        assert_eq!(total, 1_336_226_651_784.0);
    }

    #[test]
    fn modeled_table3_matches_the_paper_within_tolerance() {
        // Table 3 wall clock times in ms for p1, degree 152, deca-double.
        let expected = [
            ("c2050", 12_964.0),
            ("k20c", 11_309.0),
            ("p100", 1_066.0),
            ("v100", 640.0),
            ("rtx2080", 10_024.0),
        ];
        let shape = p1_shape(152);
        for (key, wall) in expected {
            let gpu = gpu_by_key(key).unwrap();
            let m = model_evaluation(&gpu, &shape, Precision::D10, CostModel::Paper);
            let rel = (m.wall_clock_ms - wall).abs() / wall;
            assert!(
                rel < 0.15,
                "{key}: modeled {:.0} ms vs paper {wall} ms ({:.0}% off)",
                m.wall_clock_ms,
                rel * 100.0
            );
        }
    }

    #[test]
    fn v100_to_p100_ratio_close_to_peak_ratio() {
        let shape = p1_shape(152);
        let p100 = gpu_by_key("p100").unwrap();
        let v100 = gpu_by_key("v100").unwrap();
        let tp = model_evaluation(&p100, &shape, Precision::D10, CostModel::Paper);
        let tv = model_evaluation(&v100, &shape, Precision::D10, CostModel::Paper);
        let ratio = tp.wall_clock_ms / tv.wall_clock_ms;
        // The paper observes 1066/640 ~= 1.67, close to 7.9/4.7 ~= 1.68.
        assert!(ratio > 1.4 && ratio < 1.9, "ratio {ratio}");
    }

    #[test]
    fn addition_kernels_are_negligible_compared_to_convolutions() {
        let shape = p1_shape(152);
        let v100 = gpu_by_key("v100").unwrap();
        let m = model_evaluation(&v100, &shape, Precision::D10, CostModel::Paper);
        // Table 3: 0.77 ms of additions versus 634 ms of convolutions.
        assert!(m.addition_ms < 0.02 * m.convolution_ms);
    }

    #[test]
    fn modeled_time_scales_quadratically_with_degree() {
        let v100 = gpu_by_key("v100").unwrap();
        let t64 = model_evaluation(&v100, &p1_shape(63), Precision::D8, CostModel::Paper);
        let t128 = model_evaluation(&v100, &p1_shape(127), Precision::D8, CostModel::Paper);
        let ratio = t128.convolution_ms / t64.convolution_ms;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn achieved_tflops_near_paper_value_on_p100() {
        // Section 6.2 reports about 1.25 TFLOPS on the P100.
        let shape = p1_shape(152);
        let p100 = gpu_by_key("p100").unwrap();
        let m = model_evaluation(&p100, &shape, Precision::D10, CostModel::Paper);
        let total = shape.total_double_ops(Precision::D10, CostModel::Paper);
        let tflops = m.gflops(total) / 1e3;
        assert!(
            (tflops - 1.25).abs() < 0.25,
            "modeled {tflops} TFLOPS vs paper 1.25"
        );
    }

    #[test]
    fn zero_work_models_to_zero_kernel_time() {
        let gpu = &paper_gpus()[0];
        assert_eq!(model_launch_ms(gpu, 0, 1e9), 0.0);
        assert_eq!(model_launch_ms(gpu, 10, 0.0), 0.0);
        let empty = WorkloadShape::default();
        let m = model_evaluation(gpu, &empty, Precision::D2, CostModel::Paper);
        assert_eq!(m.sum_ms(), 0.0);
        assert_eq!(m.wall_clock_ms, 0.0);
    }

    #[test]
    fn occupancy_penalty_for_few_blocks() {
        // A launch with fewer blocks than multiprocessors costs one full
        // wave regardless; 256 blocks on the V100 (80 SMs) needs 4 waves
        // while the same launch on the P100 (56 SMs) needs 5 waves, which is
        // the effect the paper invokes to explain the smaller p2 speedup.
        let p100 = gpu_by_key("p100").unwrap();
        let v100 = gpu_by_key("v100").unwrap();
        let ops = 1e9;
        let t_p = model_launch_ms(&p100, 256, ops);
        let t_v = model_launch_ms(&v100, 256, ops);
        let full_p = model_launch_ms(&p100, 56 * 5, ops);
        let full_v = model_launch_ms(&v100, 80 * 4, ops);
        assert_eq!(t_p, full_p);
        assert_eq!(t_v, full_v);
    }
}
