//! # psmd-device
//!
//! The device layer of the reproduction: the registry of the paper's five
//! NVIDIA GPUs (Table 1), the shared-memory capacity model that limits the
//! truncation degree per precision, and the analytic roofline/occupancy
//! performance model that produces *modeled* per-device kernel times next to
//! the *measured* CPU times of the simulator.
//!
//! See DESIGN.md ("Substitutions") for why the modeling approach preserves
//! the shapes the paper's conclusions rest on.

#![warn(missing_docs)]

pub mod capacity;
pub mod model;
pub mod registry;

pub use capacity::{fits, max_degree, max_degree_complex, shared_bytes_needed};
pub use model::{model_evaluation, model_launch_ms, ModeledTimes, WorkloadShape};
pub use registry::{gpu_by_key, paper_gpus, GpuSpec, SHARED_MEMORY_PER_BLOCK};
