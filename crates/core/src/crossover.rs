//! Measured crossover table for the convolution kernel ladder.
//!
//! The ladder offers three ways to run one convolution job: the paper's
//! zero-insertion schoolbook kernel (`O(d^2)` coefficient multiplications),
//! the Karatsuba short product (`O(d^1.58)`) and the compensated digit-FFT
//! (`O(d log d)` double operations).  Which one is fastest depends on the
//! truncation degree *and* on the working precision: a multiple-double
//! multiplication costs `O(N^2)` double operations in the number of limbs
//! `N`, so the sub-quadratic kernels — which trade coefficient
//! multiplications for coefficient additions (Karatsuba) or for plain `f64`
//! work (FFT) — pay off earlier at higher precision.
//!
//! This module ships the table measured by `table_harness kernels` on the
//! reference container (the same measurement that produces
//! `bench/baselines/BENCH_kernels.json`).  [`Plan`](crate::Plan) resolves
//! [`ConvolutionKernel::Auto`] against the table once, at compile time, so
//! evaluation never re-decides per job.

use crate::evaluate::ConvolutionKernel;

/// The measured crossover degrees of one precision (identified by the
/// number of `f64` limbs per *component*, so a complex coefficient uses the
/// entry of its real part).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crossover {
    /// Limbs per component of the coefficient type ([`psmd_multidouble::Coeff::component_limbs`]).
    pub component_limbs: usize,
    /// Smallest truncation degree at which the Karatsuba short product beats
    /// the zero-insertion kernel ([`usize::MAX`] if it never does).
    pub karatsuba_from: usize,
    /// Smallest truncation degree at which the digit-FFT beats the Karatsuba
    /// short product ([`usize::MAX`] if it never does).
    pub fft_from: usize,
}

/// Crossover degrees per precision, measured by `table_harness kernels` on
/// the reference container (see `bench/baselines/BENCH_kernels.json` and
/// EXPERIMENTS.md §10).  Entries are sorted by `component_limbs`.
///
/// The shape follows the cost argument above: plain `f64` coefficients
/// multiply as fast as they add, so the schoolbook kernel (with its
/// perfectly regular inner loop) holds out to degree 96 and the digit
/// decomposition of the FFT never pays for itself; from double-double
/// upward the `O(N^2)`-per-multiplication cost makes Karatsuba win as soon
/// as its recursion engages (degree 16, one level above
/// [`psmd_series::KARATSUBA_THRESHOLD`]), and the digit-FFT — whose double
/// operations grow only linearly in the limb count — takes over from
/// degree 48 at every multiple-double precision (measured 2.2x over
/// schoolbook at double-double and up to ~10x at deca-double, degree 160).
pub const CROSSOVER_TABLE: &[Crossover] = &[
    Crossover {
        component_limbs: 1,
        karatsuba_from: 96,
        fft_from: usize::MAX,
    },
    Crossover {
        component_limbs: 2,
        karatsuba_from: 16,
        fft_from: 48,
    },
    Crossover {
        component_limbs: 3,
        karatsuba_from: 16,
        fft_from: 48,
    },
    Crossover {
        component_limbs: 4,
        karatsuba_from: 16,
        fft_from: 48,
    },
    Crossover {
        component_limbs: 5,
        karatsuba_from: 16,
        fft_from: 48,
    },
    Crossover {
        component_limbs: 8,
        karatsuba_from: 16,
        fft_from: 48,
    },
    Crossover {
        component_limbs: 10,
        karatsuba_from: 16,
        fft_from: 48,
    },
];

/// The crossover entry governing a coefficient type with `component_limbs`
/// limbs per component: the exact row when present, otherwise the nearest
/// row below (an unknown wide precision behaves at least as well as the
/// widest measured one).
pub fn crossover_for(component_limbs: usize) -> &'static Crossover {
    let mut best = &CROSSOVER_TABLE[0];
    for entry in CROSSOVER_TABLE {
        if entry.component_limbs <= component_limbs {
            best = entry;
        }
    }
    best
}

/// Resolves [`ConvolutionKernel::Auto`] for a coefficient type with
/// `component_limbs` limbs per component at truncation degree `degree`.
/// Never returns `Auto`.
pub fn auto_kernel(component_limbs: usize, degree: usize) -> ConvolutionKernel {
    let c = crossover_for(component_limbs);
    if degree >= c.fft_from {
        ConvolutionKernel::Fft
    } else if degree >= c.karatsuba_from {
        ConvolutionKernel::Karatsuba
    } else {
        ConvolutionKernel::ZeroInsertion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_monotone_per_row() {
        for w in CROSSOVER_TABLE.windows(2) {
            assert!(w[0].component_limbs < w[1].component_limbs);
        }
        for c in CROSSOVER_TABLE {
            assert!(
                c.karatsuba_from <= c.fft_from,
                "limbs {}: the ladder must be schoolbook -> karatsuba -> fft",
                c.component_limbs
            );
        }
    }

    #[test]
    fn lookup_snaps_to_the_nearest_measured_precision_below() {
        assert_eq!(crossover_for(1).component_limbs, 1);
        assert_eq!(crossover_for(4).component_limbs, 4);
        // Unmeasured widths snap down.
        assert_eq!(crossover_for(6).component_limbs, 5);
        assert_eq!(crossover_for(9).component_limbs, 8);
        assert_eq!(crossover_for(64).component_limbs, 10);
        // Narrower than anything measured: first row.
        assert_eq!(crossover_for(0).component_limbs, 1);
    }

    #[test]
    fn auto_kernel_walks_the_ladder() {
        for c in CROSSOVER_TABLE {
            let l = c.component_limbs;
            assert_eq!(auto_kernel(l, 1), ConvolutionKernel::ZeroInsertion);
            if c.karatsuba_from < c.fft_from {
                assert_eq!(
                    auto_kernel(l, c.karatsuba_from),
                    ConvolutionKernel::Karatsuba
                );
                assert_eq!(
                    auto_kernel(l, c.karatsuba_from - 1),
                    ConvolutionKernel::ZeroInsertion
                );
            }
            if c.fft_from != usize::MAX {
                assert_eq!(auto_kernel(l, c.fft_from), ConvolutionKernel::Fft);
                assert_eq!(auto_kernel(l, c.fft_from - 1), ConvolutionKernel::Karatsuba);
                assert_eq!(auto_kernel(l, 10_000), ConvolutionKernel::Fft);
            }
        }
    }

    #[test]
    fn auto_never_returns_auto() {
        for limbs in [1, 2, 3, 4, 5, 8, 10, 16] {
            for degree in 0..200 {
                assert_ne!(auto_kernel(limbs, degree), ConvolutionKernel::Auto);
            }
        }
    }
}
