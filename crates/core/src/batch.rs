//! Batched multi-series evaluation: one schedule, many input-series vectors,
//! one kernel launch per layer for the whole batch.
//!
//! The paper amortizes the cost of accelerated evaluation by launching many
//! independent jobs at once; the schedule "depends only on the structure of
//! the monomials" (Section 5), so it can be reused across any number of
//! evaluation points.  The engine's batched path exploits both observations:
//!
//! * the [`Schedule`] is built **once** per plan and shared by every
//!   instance of the batch, amortizing schedule construction over the whole
//!   batch;
//! * all batch instances live in **one flat coefficient arena** (instance
//!   `i` occupies the slot range `i * num_slots .. (i + 1) * num_slots`, see
//!   [`DataLayout::batch_slot`](crate::DataLayout::batch_slot)), so one grid
//!   launch per layer executes `batch × jobs_per_layer` blocks.
//!
//! The second point matters at small truncation degrees: a single
//! polynomial's layer may hold fewer jobs than the machine has cores, so
//! per-polynomial launches starve the worker pool.  Batching multiplies the
//! blocks per launch by the batch size and fills the pool, exactly like the
//! paper fills the GPU's multiprocessors with wide grids.
//!
//! The arena lives in the evaluation [`Workspace`], so a steady stream of
//! equal-sized batches through one plan allocates nothing after warm-up.
//!
//! ```
//! use psmd_core::{Engine, Monomial, Polynomial};
//! use psmd_multidouble::Dd;
//! use psmd_series::Series;
//!
//! let d = 2;
//! let coeff = |c: f64| Series::constant(Dd::from_f64(c), d);
//! let p = Polynomial::new(2, coeff(1.0), vec![Monomial::new(coeff(3.0), vec![0, 1])]);
//! let batch = vec![
//!     vec![
//!         Series::<Dd>::from_f64_coeffs(&[1.0, 1.0, 0.0]),
//!         Series::<Dd>::from_f64_coeffs(&[1.0, -1.0, 0.0]),
//!     ],
//!     vec![
//!         Series::<Dd>::from_f64_coeffs(&[2.0, 0.0, 0.0]),
//!         Series::<Dd>::from_f64_coeffs(&[1.0, 0.0, 1.0]),
//!     ],
//! ];
//! let engine = Engine::builder().threads(0).build();
//! let plan = engine.compile(p);
//! let result = plan.request(&batch).run().into_batch();
//! assert_eq!(result.len(), 2);
//! assert_eq!(result.instances[0].value.coeff(0).to_f64(), 4.0); // 1 + 3
//! assert_eq!(result.instances[1].value.coeff(0).to_f64(), 7.0); // 1 + 3*2
//! ```

use crate::evaluate::{execute_schedule, Evaluation};
use crate::options::EvalOptions;
use crate::polynomial::Polynomial;
use crate::schedule::{GraphPlan, Schedule};
use crate::workspace::Workspace;
use crate::{ConvolutionKernel, ExecMode};
use psmd_multidouble::Coeff;
use psmd_runtime::{CancelToken, KernelTimings, SharedSlice, Stopwatch, WorkerPool};
use psmd_series::Series;
use std::sync::OnceLock;

/// The evaluations of one batch, plus the aggregate kernel timings of the
/// shared launches.
///
/// The per-instance [`Evaluation::timings`] are empty: in a batched run a
/// kernel launch serves every instance at once, so launch counts and elapsed
/// times are only meaningful for the batch as a whole.
#[derive(Debug, Clone)]
pub struct BatchEvaluation<C> {
    /// The value and gradient of every batch instance, in input order.
    pub instances: Vec<Evaluation<C>>,
    /// Aggregate timings: one convolution/addition launch per layer for the
    /// whole batch, with `batch × jobs_per_layer` blocks each.
    pub timings: KernelTimings,
}

impl<C> BatchEvaluation<C> {
    /// Number of instances in the batch.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

impl<C: Coeff> BatchEvaluation<C> {
    /// An empty batch evaluation to be filled by an `*_into` run; its
    /// buffers are grown on first use and reused afterwards.
    pub fn empty() -> Self {
        Self {
            instances: Vec::new(),
            timings: KernelTimings::new(),
        }
    }
}

impl<C: Coeff> Default for BatchEvaluation<C> {
    fn default() -> Self {
        Self::empty()
    }
}

/// Evaluates a whole batch through one polynomial's schedule, writing every
/// instance's value and gradient into `out` — the shared internal of the
/// engine's single-polynomial [`Plan`](crate::Plan) under batched inputs.
/// `graph` caches the block-level plan of one instance (batch launches
/// replicate it per instance without cross-instance edges); all evaluation
/// memory is borrowed from `ws`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_batch<C: Coeff>(
    poly: &Polynomial<C>,
    schedule: &Schedule,
    options: EvalOptions,
    graph: &OnceLock<GraphPlan>,
    batch: &[Vec<Series<C>>],
    pool: Option<&WorkerPool>,
    cancel: Option<&CancelToken>,
    ws: &mut Workspace<C>,
    out: &mut BatchEvaluation<C>,
) {
    let wall = Stopwatch::start();
    let mut timings = KernelTimings::new();
    if batch.is_empty() {
        out.instances.clear();
        timings.wall_clock = wall.elapsed();
        out.timings = timings;
        return;
    }
    let layout = &schedule.layout;
    let per = layout.coeffs_per_slot();
    let stride = layout.total_coefficients();
    let participants = pool.map_or(1, WorkerPool::parallelism);
    let (arena, scratch, graph_scratch) =
        ws.parts(layout.batch_total_coefficients(batch.len()), participants);
    // Stage 0: lay every instance out back-to-back in the flat arena.
    for (i, inputs) in batch.iter().enumerate() {
        let off = layout.batch_instance_offset(i);
        schedule.fill_data_array(poly, inputs, &mut arena[off..off + stride]);
    }
    // One graph launch (or one grid launch per layer) carries every block
    // of every instance; `batch_slot` rebases each job into its instance's
    // arena region, and instances occupy disjoint regions so they share no
    // hazards.
    let plan = match (options.exec_mode, pool) {
        (ExecMode::Graph, Some(_)) => Some(graph.get_or_init(|| schedule.graph_plan())),
        _ => None,
    };
    // The SIMD lane tier: batched evaluation is the one path with an
    // instance axis to vectorize over.  Resolve the mode (plans store it
    // resolved; direct callers may still pass `Auto`) and only engage lane
    // groups for the kernels with lane variants — per lane the results are
    // bitwise identical either way.
    let resolved_kernel = match options.kernel {
        ConvolutionKernel::Auto => crate::crossover::auto_kernel(C::component_limbs(), per - 1),
        k => k,
    };
    let lane_width = match resolved_kernel {
        ConvolutionKernel::ZeroInsertion | ConvolutionKernel::Direct => options.simd.lane_width(),
        _ => 1,
    };
    timings.simd_width = lane_width;
    let completed = {
        let shared = SharedSlice::new(&mut *arena);
        execute_schedule(
            &schedule.convolution_layers,
            &schedule.addition_layers,
            plan,
            &shared,
            per,
            options.kernel,
            pool,
            scratch,
            graph_scratch,
            &mut timings,
            batch.len(),
            lane_width,
            cancel,
            |instance, slot| layout.batch_slot(instance, slot),
        )
    };
    if !completed {
        // Abandoned mid-schedule: every instance region holds partial
        // results, so skip extraction and flag the whole batch instead.
        timings.cancelled = true;
        timings.wall_clock = wall.elapsed();
        out.timings = timings;
        return;
    }
    // Extract every instance's value and gradient from the arena.
    out.instances.resize_with(batch.len(), Evaluation::empty);
    for (i, instance) in out.instances.iter_mut().enumerate() {
        let off = layout.batch_instance_offset(i);
        let region = &arena[off..off + stride];
        schedule.extract_into(region, schedule.value_location, &mut instance.value);
        instance
            .gradient
            .resize_with(schedule.gradient_locations.len(), || Series::zero(0));
        for (&loc, g) in schedule
            .gradient_locations
            .iter()
            .zip(instance.gradient.iter_mut())
        {
            schedule.extract_into(region, loc, g);
        }
        instance.timings = KernelTimings::new();
    }
    timings.wall_clock = wall.elapsed();
    out.timings = timings;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Plan};
    use crate::generators::{random_inputs, random_polynomial};
    use crate::monomial::Monomial;
    use crate::ConvolutionKernel;
    use psmd_multidouble::{Complex, Dd, Qd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn coeff(c: f64, d: usize) -> Series<Qd> {
        Series::constant(Qd::from_f64(c), d)
    }

    fn paper_example(d: usize) -> Polynomial<Qd> {
        Polynomial::new(
            6,
            coeff(0.5, d),
            vec![
                Monomial::new(coeff(1.0, d), vec![0, 2, 5]),
                Monomial::new(coeff(2.0, d), vec![0, 1, 4, 5]),
                Monomial::new(coeff(3.0, d), vec![1, 2, 3]),
            ],
        )
    }

    fn random_batch(n: usize, degree: usize, size: usize, seed: u64) -> Vec<Vec<Series<Qd>>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..size)
            .map(|_| random_inputs::<Qd, _>(n, degree, &mut rng))
            .collect()
    }

    fn compile(p: &Polynomial<Qd>, threads: usize) -> (Engine, Arc<Plan<Qd>>) {
        let engine = Engine::builder().threads(threads).build();
        let plan = engine.compile(p.clone());
        (engine, plan)
    }

    #[test]
    fn batch_matches_per_instance_sequential_bitwise() {
        let d = 6;
        let p = paper_example(d);
        let batch = random_batch(6, d, 7, 17);
        let (_engine, plan) = compile(&p, 0);
        let batched = plan.request(&batch).sequential().run().into_batch();
        assert_eq!(batched.len(), batch.len());
        for (inputs, got) in batch.iter().zip(batched.instances.iter()) {
            let want = plan.request(inputs).sequential().run().into_single();
            // Same schedule, same arithmetic, same order: bitwise identical.
            assert_eq!(got.value, want.value);
            assert_eq!(got.gradient, want.gradient);
        }
    }

    #[test]
    fn parallel_batch_matches_sequential_batch() {
        let d = 5;
        let p = paper_example(d);
        let batch = random_batch(6, d, 9, 3);
        let (_engine, plan) = compile(&p, 3);
        let seq = plan.request(&batch).sequential().run().into_batch();
        let par = plan.request(&batch).run().into_batch();
        for (a, b) in seq.instances.iter().zip(par.instances.iter()) {
            assert_eq!(a.value, b.value);
            assert_eq!(a.gradient, b.gradient);
        }
    }

    #[test]
    fn one_launch_per_layer_for_the_whole_batch() {
        let d = 3;
        let p = paper_example(d);
        let batch = random_batch(6, d, 11, 5);
        let (_engine, plan) = compile(&p, 2);
        let result = plan.request(&batch).run().into_batch();
        let schedule = plan.schedule().expect("single plan");
        // Launch counts equal the layer counts — independent of batch size.
        assert_eq!(
            result.timings.convolution_launches,
            schedule.convolution_layers.len()
        );
        assert_eq!(
            result.timings.addition_launches,
            schedule.addition_layers.len()
        );
        // Every launch carries the whole batch: batch × jobs blocks.
        assert_eq!(
            result.timings.convolution_blocks,
            batch.len() * schedule.convolution_jobs()
        );
        assert_eq!(
            result.timings.addition_blocks,
            batch.len() * schedule.addition_jobs()
        );
    }

    #[test]
    fn graph_mode_batch_is_bitwise_identical_with_one_rendezvous() {
        let d = 5;
        let p = paper_example(d);
        let batch = random_batch(6, d, 9, 3);
        let engine = Engine::builder().threads(3).build();
        let layered = engine.compile(p.clone());
        let graph =
            engine.compile_with_options(p, EvalOptions::new().with_exec_mode(ExecMode::Graph));
        let a = layered.request(&batch).run().into_batch();
        let before = engine.pool().rendezvous_count();
        let b = graph.request(&batch).run().into_batch();
        assert_eq!(engine.pool().rendezvous_count(), before + 1);
        for (x, y) in a.instances.iter().zip(b.instances.iter()) {
            assert_eq!(x.value, y.value, "graph batch must be bitwise identical");
            assert_eq!(x.gradient, y.gradient);
        }
        assert_eq!(b.timings.graph_launches, 1);
        let schedule = layered.schedule().expect("single plan");
        assert_eq!(
            b.timings.convolution_blocks,
            batch.len() * schedule.convolution_jobs()
        );
        assert_eq!(
            b.timings.addition_blocks,
            batch.len() * schedule.addition_jobs()
        );
    }

    #[test]
    fn graph_mode_batch_runs_inline_on_a_zero_worker_pool() {
        let d = 4;
        let p = paper_example(d);
        let batch = random_batch(6, d, 5, 7);
        let engine = Engine::builder()
            .threads(0)
            .exec_mode(ExecMode::Graph)
            .build();
        let plan = engine.compile(p);
        let seq = plan.request(&batch).sequential().run().into_batch();
        let par = plan.request(&batch).run().into_batch();
        for (a, b) in seq.instances.iter().zip(par.instances.iter()) {
            assert_eq!(a.value, b.value);
            assert_eq!(a.gradient, b.gradient);
        }
        assert_eq!(engine.pool().rendezvous_count(), 0);
        assert_eq!(par.timings.graph_launches, 1);
    }

    #[test]
    fn empty_batch_returns_no_instances_and_no_launches() {
        let p = paper_example(2);
        let (_engine, plan) = compile(&p, 0);
        let result = plan
            .request(&Vec::<Vec<Series<Qd>>>::new())
            .sequential()
            .run()
            .into_batch();
        assert!(result.is_empty());
        assert_eq!(result.timings.convolution_launches, 0);
        assert_eq!(result.timings.addition_launches, 0);
    }

    #[test]
    fn batch_of_one_equals_single_evaluation() {
        let d = 4;
        let p = paper_example(d);
        let batch = random_batch(6, d, 1, 9);
        let (_engine, plan) = compile(&p, 0);
        let batched = plan.request(&batch).sequential().run().into_batch();
        let single = plan.request(&batch[0]).sequential().run().into_single();
        assert_eq!(batched.instances[0].value, single.value);
        assert_eq!(batched.instances[0].gradient, single.gradient);
    }

    #[test]
    fn direct_kernel_ablation_matches_zero_insertion() {
        let d = 4;
        let p = paper_example(d);
        let batch = random_batch(6, d, 4, 23);
        let engine = Engine::builder().threads(0).build();
        let zi = engine
            .compile(p.clone())
            .request(&batch)
            .sequential()
            .run()
            .into_batch();
        let direct = engine
            .compile_with_options(p, EvalOptions::new().with_kernel(ConvolutionKernel::Direct))
            .request(&batch)
            .sequential()
            .run()
            .into_batch();
        for (a, b) in zi.instances.iter().zip(direct.instances.iter()) {
            assert!(a.max_difference(b) < 1e-55);
        }
    }

    #[test]
    fn complex_coefficients_evaluate_in_batch() {
        type Cx = Complex<Dd>;
        let d = 3;
        let c = |re: f64, im: f64| Series::constant(Cx::new(Dd::from_f64(re), Dd::from_f64(im)), d);
        let p = Polynomial::new(
            3,
            c(0.5, -0.5),
            vec![
                Monomial::new(c(1.0, 1.0), vec![0, 1]),
                Monomial::new(c(0.0, 2.0), vec![1, 2]),
            ],
        );
        let mut rng = StdRng::seed_from_u64(31);
        let batch: Vec<Vec<Series<Cx>>> = (0..5)
            .map(|_| (0..3).map(|_| Series::random(&mut rng, d)).collect())
            .collect();
        let engine = Engine::builder().threads(0).build();
        let plan = engine.compile(p);
        let batched = plan.request(&batch).sequential().run().into_batch();
        for (inputs, got) in batch.iter().zip(batched.instances.iter()) {
            let want = plan.request(inputs).sequential().run().into_single();
            assert_eq!(got.value, want.value);
            assert_eq!(got.gradient, want.gradient);
        }
    }

    #[test]
    fn degenerate_scratch_slots_are_batched_correctly() {
        // Duplicate single-variable monomials force a scratch accumulator;
        // its slot must be shifted per instance like every other slot.
        let d = 2;
        let p = Polynomial::new(
            1,
            coeff(0.0, d),
            vec![
                Monomial::new(coeff(2.0, d), vec![0]),
                Monomial::new(coeff(5.0, d), vec![0]),
            ],
        );
        let mut rng = StdRng::seed_from_u64(41);
        let batch: Vec<Vec<Series<Qd>>> =
            (0..6).map(|_| vec![Series::random(&mut rng, d)]).collect();
        let (_engine, plan) = compile(&p, 0);
        let batched = plan.request(&batch).sequential().run().into_batch();
        for got in &batched.instances {
            assert_eq!(got.gradient[0].coeff(0).to_f64(), 7.0);
        }
    }

    #[test]
    #[should_panic(expected = "wrong number of inputs")]
    fn mismatched_input_count_panics() {
        let p = paper_example(2);
        let bad = vec![random_batch(5, 2, 1, 1)[0].clone()];
        let (_engine, plan) = compile(&p, 0);
        let _ = plan.request(&bad).sequential().run();
    }

    #[test]
    fn random_structures_batch_consistently() {
        let mut rng = StdRng::seed_from_u64(77);
        let engine = Engine::builder().threads(0).build();
        for _ in 0..8 {
            let p: Polynomial<Dd> = random_polynomial(6, 10, 5, 4, &mut rng);
            let batch: Vec<Vec<Series<Dd>>> = (0..5)
                .map(|_| random_inputs::<Dd, _>(6, 4, &mut rng))
                .collect();
            let plan = engine.compile(p);
            let batched = plan.request(&batch).sequential().run().into_batch();
            for (inputs, got) in batch.iter().zip(batched.instances.iter()) {
                let want = plan.request(inputs).sequential().run().into_single();
                assert_eq!(got.value, want.value);
                assert_eq!(got.gradient, want.gradient);
            }
        }
    }

    #[test]
    fn shrinking_batches_reuse_the_output_without_stale_instances() {
        // A warm output filled by a 6-instance batch must come back with
        // exactly 2 instances when reused for a 2-instance batch.
        let d = 3;
        let p = paper_example(d);
        let (_engine, plan) = compile(&p, 0);
        let big = random_batch(6, d, 6, 51);
        let small = random_batch(6, d, 2, 52);
        let mut out = plan.request(&big).run();
        plan.request(&small).into(&mut out).run();
        let batched = out.into_batch();
        assert_eq!(batched.len(), 2);
        for (inputs, got) in small.iter().zip(batched.instances.iter()) {
            let want = plan.request(inputs).sequential().run().into_single();
            assert_eq!(got.value, want.value);
            assert_eq!(got.gradient, want.gradient);
        }
    }
}
