//! Batched multi-series evaluation: one schedule, many input-series vectors,
//! one kernel launch per layer for the whole batch.
//!
//! The paper amortizes the cost of accelerated evaluation by launching many
//! independent jobs at once; the schedule "depends only on the structure of
//! the monomials" (Section 5), so it can be reused across any number of
//! evaluation points.  [`BatchEvaluator`] exploits both observations:
//!
//! * the [`Schedule`] is built **once** and shared by every instance of the
//!   batch, amortizing schedule construction over the whole batch;
//! * all batch instances live in **one flat coefficient arena** (instance
//!   `i` occupies the slot range `i * num_slots .. (i + 1) * num_slots`, see
//!   [`DataLayout::batch_slot`](crate::DataLayout::batch_slot)), so one grid
//!   launch per layer executes `batch × jobs_per_layer` blocks.
//!
//! The second point matters at small truncation degrees: a single
//! polynomial's layer may hold fewer jobs than the machine has cores, so
//! per-polynomial launches starve the worker pool.  Batching multiplies the
//! blocks per launch by the batch size and fills the pool, exactly like the
//! paper fills the GPU's multiprocessors with wide grids.
//!
//! ```
//! use psmd_core::{BatchEvaluator, Monomial, Polynomial};
//! use psmd_multidouble::Dd;
//! use psmd_series::Series;
//!
//! let d = 2;
//! let coeff = |c: f64| Series::constant(Dd::from_f64(c), d);
//! let p = Polynomial::new(2, coeff(1.0), vec![Monomial::new(coeff(3.0), vec![0, 1])]);
//! let batch = vec![
//!     vec![
//!         Series::<Dd>::from_f64_coeffs(&[1.0, 1.0, 0.0]),
//!         Series::<Dd>::from_f64_coeffs(&[1.0, -1.0, 0.0]),
//!     ],
//!     vec![
//!         Series::<Dd>::from_f64_coeffs(&[2.0, 0.0, 0.0]),
//!         Series::<Dd>::from_f64_coeffs(&[1.0, 0.0, 1.0]),
//!     ],
//! ];
//! let evaluator = BatchEvaluator::new(&p);
//! let result = evaluator.evaluate_sequential(&batch);
//! assert_eq!(result.len(), 2);
//! assert_eq!(result.instances[0].value.coeff(0).to_f64(), 4.0); // 1 + 3
//! assert_eq!(result.instances[1].value.coeff(0).to_f64(), 7.0); // 1 + 3*2
//! ```

use crate::evaluate::{
    run_addition_job, run_convolution_job, run_graph_node, ConvolutionKernel, Evaluation,
};
use crate::options::EvalOptions;
use crate::polynomial::Polynomial;
use crate::schedule::{AddJob, ConvJob, GraphPlan, Schedule};
use crate::ExecMode;
use psmd_multidouble::Coeff;
use psmd_runtime::{KernelKind, KernelTimings, SharedArray, Stopwatch, WorkerPool};
use psmd_series::Series;
use std::sync::OnceLock;
use std::time::Instant;

/// The evaluations of one batch, plus the aggregate kernel timings of the
/// shared launches.
///
/// The per-instance [`Evaluation::timings`] are empty: in a batched run a
/// kernel launch serves every instance at once, so launch counts and elapsed
/// times are only meaningful for the batch as a whole.
#[derive(Debug, Clone)]
pub struct BatchEvaluation<C> {
    /// The value and gradient of every batch instance, in input order.
    pub instances: Vec<Evaluation<C>>,
    /// Aggregate timings: one convolution/addition launch per layer for the
    /// whole batch, with `batch × jobs_per_layer` blocks each.
    pub timings: KernelTimings,
}

impl<C> BatchEvaluation<C> {
    /// Number of instances in the batch.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

/// Evaluates a whole batch through one polynomial's schedule — the shared
/// internal of [`BatchEvaluator`] and the engine's single-polynomial
/// [`Plan`](crate::Plan) under batched inputs.  `graph` caches the
/// block-level plan of one instance (batch launches replicate it per
/// instance without cross-instance edges).
pub(crate) fn run_batch<C: Coeff>(
    poly: &Polynomial<C>,
    schedule: &Schedule,
    options: EvalOptions,
    graph: &OnceLock<GraphPlan>,
    batch: &[Vec<Series<C>>],
    pool: Option<&WorkerPool>,
) -> BatchEvaluation<C> {
    let wall = Stopwatch::start();
    let mut timings = KernelTimings::new();
    if batch.is_empty() {
        timings.wall_clock = wall.elapsed();
        return BatchEvaluation {
            instances: Vec::new(),
            timings,
        };
    }
    let layout = &schedule.layout;
    let per = layout.coeffs_per_slot();
    let stride = layout.total_coefficients();
    // Stage 0: lay every instance out back-to-back in one flat arena.
    let mut data = vec![C::zero(); layout.batch_total_coefficients(batch.len())];
    for (i, inputs) in batch.iter().enumerate() {
        let off = layout.batch_instance_offset(i);
        schedule.fill_data_array(poly, inputs, &mut data[off..off + stride]);
    }
    let shared = SharedArray::new(data);
    let kernel = options.kernel;
    if let (ExecMode::Graph, Some(pool)) = (options.exec_mode, pool) {
        // Dependency-driven path: one graph launch carries every block
        // of every instance — a single pool rendezvous for the whole
        // batch.  Block b runs node b % nodes of instance b / nodes;
        // dependency edges apply within each instance (instances occupy
        // disjoint arena regions, so they share no hazards).
        let plan = graph.get_or_init(|| schedule.graph_plan());
        let nodes = plan.blocks();
        let start = Instant::now();
        pool.launch_graph(&plan.graph, batch.len(), |b| {
            let instance = b / nodes;
            run_graph_node(plan, b % nodes, &shared, per, kernel, |slot| {
                layout.batch_slot(instance, slot)
            });
        });
        timings.record_graph(
            start.elapsed(),
            batch.len() * plan.conv.len(),
            batch.len() * plan.add.len(),
        );
        return finish_batch(schedule, batch, shared, timings, wall);
    }
    // Stage 1: convolution kernels — one launch per layer for the whole
    // batch.  Block b runs job b % jobs of instance b / jobs; rebasing
    // every slot with `batch_slot` addresses that instance's region of
    // the arena, and disjointness within a layer carries over because
    // distinct instances write distinct regions.
    for layer in &schedule.convolution_layers {
        let jobs = layer.len();
        let blocks = batch.len() * jobs;
        let body = |b: usize| {
            let instance = b / jobs;
            let job = layer[b % jobs];
            let shifted = ConvJob {
                in1: layout.batch_slot(instance, job.in1),
                in2: layout.batch_slot(instance, job.in2),
                out: layout.batch_slot(instance, job.out),
            };
            run_convolution_job(&shared, &shifted, per, kernel);
        };
        let start = Instant::now();
        match pool {
            Some(pool) => pool.launch_grid(blocks, body),
            None => (0..blocks).for_each(body),
        }
        timings.record(KernelKind::Convolution, start.elapsed(), blocks);
    }
    // Stage 2: addition kernels, batched the same way.
    for layer in &schedule.addition_layers {
        let jobs = layer.len();
        let blocks = batch.len() * jobs;
        let body = |b: usize| {
            let instance = b / jobs;
            let job = layer[b % jobs];
            let shifted = AddJob {
                src: layout.batch_slot(instance, job.src),
                dst: layout.batch_slot(instance, job.dst),
            };
            run_addition_job(&shared, &shifted, per);
        };
        let start = Instant::now();
        match pool {
            Some(pool) => pool.launch_grid(blocks, body),
            None => (0..blocks).for_each(body),
        }
        timings.record(KernelKind::Addition, start.elapsed(), blocks);
    }
    finish_batch(schedule, batch, shared, timings, wall)
}

/// Extracts every instance's value and gradient from the arena and closes
/// the timing record (shared by the layered and graph paths).
fn finish_batch<C: Coeff>(
    schedule: &Schedule,
    batch: &[Vec<Series<C>>],
    shared: SharedArray<C>,
    mut timings: KernelTimings,
    wall: Stopwatch,
) -> BatchEvaluation<C> {
    let layout = &schedule.layout;
    let stride = layout.total_coefficients();
    let data = shared.into_inner();
    let instances = (0..batch.len())
        .map(|i| {
            let off = layout.batch_instance_offset(i);
            let region = &data[off..off + stride];
            let value = schedule.extract(region, schedule.value_location);
            let gradient = schedule
                .gradient_locations
                .iter()
                .map(|&loc| schedule.extract(region, loc))
                .collect();
            Evaluation {
                value,
                gradient,
                timings: KernelTimings::new(),
            }
        })
        .collect();
    timings.wall_clock = wall.elapsed();
    BatchEvaluation { instances, timings }
}

/// Evaluates one polynomial at many input-series vectors with a single
/// cached schedule and one worker-pool launch per job layer for the whole
/// batch.
#[deprecated(
    since = "0.2.0",
    note = "use `Engine::compile` and evaluate the `Plan` with `Inputs::Batch` (this \
            borrowing shim will be removed after one release)"
)]
pub struct BatchEvaluator<'p, C> {
    poly: &'p Polynomial<C>,
    schedule: Schedule,
    options: EvalOptions,
    plan: OnceLock<GraphPlan>,
}

#[allow(deprecated)]
impl<'p, C: Coeff> BatchEvaluator<'p, C> {
    /// Builds the schedule for a polynomial once; it is shared by every
    /// batch evaluated through this evaluator.
    pub fn new(poly: &'p Polynomial<C>) -> Self {
        Self {
            poly,
            schedule: Schedule::build(poly),
            options: EvalOptions::default(),
            plan: OnceLock::new(),
        }
    }

    /// Selects the convolution kernel variant (ablation).
    pub fn with_kernel(mut self, kernel: ConvolutionKernel) -> Self {
        self.options.kernel = kernel;
        self
    }

    /// Selects how [`Self::evaluate_parallel`] executes on the pool:
    /// layered launches (the reference) or one dependency-driven task-graph
    /// launch per batch evaluation.
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.options.exec_mode = mode;
        self
    }

    /// Replaces both knobs at once with a shared [`EvalOptions`].
    pub fn with_options(mut self, options: EvalOptions) -> Self {
        self.options = options;
        self
    }

    /// The configured options.
    pub fn options(&self) -> EvalOptions {
        self.options
    }

    /// The configured execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.options.exec_mode
    }

    /// The block-level graph plan of one instance, built once on first use
    /// (batch launches replicate it per instance without cross-instance
    /// edges).
    pub fn graph_plan(&self) -> &GraphPlan {
        self.plan.get_or_init(|| self.schedule.graph_plan())
    }

    /// The shared schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The polynomial the schedule was built for.
    pub fn polynomial(&self) -> &Polynomial<C> {
        self.poly
    }

    /// Evaluates the whole batch on a single thread (the correctness
    /// reference for the parallel path).
    pub fn evaluate_sequential(&self, batch: &[Vec<Series<C>>]) -> BatchEvaluation<C> {
        run_batch(
            self.poly,
            &self.schedule,
            self.options,
            &self.plan,
            batch,
            None,
        )
    }

    /// Evaluates the whole batch on the worker pool with one grid launch per
    /// layer and `batch × jobs_per_layer` blocks per launch.
    pub fn evaluate_parallel(
        &self,
        batch: &[Vec<Series<C>>],
        pool: &WorkerPool,
    ) -> BatchEvaluation<C> {
        run_batch(
            self.poly,
            &self.schedule,
            self.options,
            &self.plan,
            batch,
            Some(pool),
        )
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::evaluate::ScheduledEvaluator;
    use crate::generators::{random_inputs, random_polynomial};
    use crate::monomial::Monomial;
    use psmd_multidouble::{Complex, Dd, Qd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn coeff(c: f64, d: usize) -> Series<Qd> {
        Series::constant(Qd::from_f64(c), d)
    }

    fn paper_example(d: usize) -> Polynomial<Qd> {
        Polynomial::new(
            6,
            coeff(0.5, d),
            vec![
                Monomial::new(coeff(1.0, d), vec![0, 2, 5]),
                Monomial::new(coeff(2.0, d), vec![0, 1, 4, 5]),
                Monomial::new(coeff(3.0, d), vec![1, 2, 3]),
            ],
        )
    }

    fn random_batch(n: usize, degree: usize, size: usize, seed: u64) -> Vec<Vec<Series<Qd>>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..size)
            .map(|_| random_inputs::<Qd, _>(n, degree, &mut rng))
            .collect()
    }

    #[test]
    fn batch_matches_per_instance_sequential_bitwise() {
        let d = 6;
        let p = paper_example(d);
        let batch = random_batch(6, d, 7, 17);
        let batched = BatchEvaluator::new(&p).evaluate_sequential(&batch);
        let single = ScheduledEvaluator::new(&p);
        assert_eq!(batched.len(), batch.len());
        for (inputs, got) in batch.iter().zip(batched.instances.iter()) {
            let want = single.evaluate_sequential(inputs);
            // Same schedule, same arithmetic, same order: bitwise identical.
            assert_eq!(got.value, want.value);
            assert_eq!(got.gradient, want.gradient);
        }
    }

    #[test]
    fn parallel_batch_matches_sequential_batch() {
        let d = 5;
        let p = paper_example(d);
        let batch = random_batch(6, d, 9, 3);
        let evaluator = BatchEvaluator::new(&p);
        let seq = evaluator.evaluate_sequential(&batch);
        let pool = WorkerPool::new(3);
        let par = evaluator.evaluate_parallel(&batch, &pool);
        for (a, b) in seq.instances.iter().zip(par.instances.iter()) {
            assert_eq!(a.value, b.value);
            assert_eq!(a.gradient, b.gradient);
        }
    }

    #[test]
    fn one_launch_per_layer_for_the_whole_batch() {
        let d = 3;
        let p = paper_example(d);
        let batch = random_batch(6, d, 11, 5);
        let pool = WorkerPool::new(2);
        let evaluator = BatchEvaluator::new(&p);
        let result = evaluator.evaluate_parallel(&batch, &pool);
        let schedule = evaluator.schedule();
        // Launch counts equal the layer counts — independent of batch size.
        assert_eq!(
            result.timings.convolution_launches,
            schedule.convolution_layers.len()
        );
        assert_eq!(
            result.timings.addition_launches,
            schedule.addition_layers.len()
        );
        // Every launch carries the whole batch: batch × jobs blocks.
        assert_eq!(
            result.timings.convolution_blocks,
            batch.len() * schedule.convolution_jobs()
        );
        assert_eq!(
            result.timings.addition_blocks,
            batch.len() * schedule.addition_jobs()
        );
    }

    #[test]
    fn graph_mode_batch_is_bitwise_identical_with_one_rendezvous() {
        let d = 5;
        let p = paper_example(d);
        let batch = random_batch(6, d, 9, 3);
        let layered = BatchEvaluator::new(&p);
        let graph = BatchEvaluator::new(&p).with_exec_mode(crate::ExecMode::Graph);
        let pool = WorkerPool::new(3);
        let a = layered.evaluate_parallel(&batch, &pool);
        let before = pool.rendezvous_count();
        let b = graph.evaluate_parallel(&batch, &pool);
        assert_eq!(pool.rendezvous_count(), before + 1);
        for (x, y) in a.instances.iter().zip(b.instances.iter()) {
            assert_eq!(x.value, y.value, "graph batch must be bitwise identical");
            assert_eq!(x.gradient, y.gradient);
        }
        assert_eq!(b.timings.graph_launches, 1);
        assert_eq!(
            b.timings.convolution_blocks,
            batch.len() * layered.schedule().convolution_jobs()
        );
        assert_eq!(
            b.timings.addition_blocks,
            batch.len() * layered.schedule().addition_jobs()
        );
    }

    #[test]
    fn empty_batch_returns_no_instances_and_no_launches() {
        let p = paper_example(2);
        let evaluator = BatchEvaluator::new(&p);
        let result = evaluator.evaluate_sequential(&[]);
        assert!(result.is_empty());
        assert_eq!(result.timings.convolution_launches, 0);
        assert_eq!(result.timings.addition_launches, 0);
    }

    #[test]
    fn batch_of_one_equals_single_evaluation() {
        let d = 4;
        let p = paper_example(d);
        let batch = random_batch(6, d, 1, 9);
        let batched = BatchEvaluator::new(&p).evaluate_sequential(&batch);
        let single = ScheduledEvaluator::new(&p).evaluate_sequential(&batch[0]);
        assert_eq!(batched.instances[0].value, single.value);
        assert_eq!(batched.instances[0].gradient, single.gradient);
    }

    #[test]
    fn direct_kernel_ablation_matches_zero_insertion() {
        let d = 4;
        let p = paper_example(d);
        let batch = random_batch(6, d, 4, 23);
        let zi = BatchEvaluator::new(&p).evaluate_sequential(&batch);
        let direct = BatchEvaluator::new(&p)
            .with_kernel(ConvolutionKernel::Direct)
            .evaluate_sequential(&batch);
        for (a, b) in zi.instances.iter().zip(direct.instances.iter()) {
            assert!(a.max_difference(b) < 1e-55);
        }
    }

    #[test]
    fn complex_coefficients_evaluate_in_batch() {
        type Cx = Complex<Dd>;
        let d = 3;
        let c = |re: f64, im: f64| Series::constant(Cx::new(Dd::from_f64(re), Dd::from_f64(im)), d);
        let p = Polynomial::new(
            3,
            c(0.5, -0.5),
            vec![
                Monomial::new(c(1.0, 1.0), vec![0, 1]),
                Monomial::new(c(0.0, 2.0), vec![1, 2]),
            ],
        );
        let mut rng = StdRng::seed_from_u64(31);
        let batch: Vec<Vec<Series<Cx>>> = (0..5)
            .map(|_| (0..3).map(|_| Series::random(&mut rng, d)).collect())
            .collect();
        let batched = BatchEvaluator::new(&p).evaluate_sequential(&batch);
        let single = ScheduledEvaluator::new(&p);
        for (inputs, got) in batch.iter().zip(batched.instances.iter()) {
            let want = single.evaluate_sequential(inputs);
            assert_eq!(got.value, want.value);
            assert_eq!(got.gradient, want.gradient);
        }
    }

    #[test]
    fn degenerate_scratch_slots_are_batched_correctly() {
        // Duplicate single-variable monomials force a scratch accumulator;
        // its slot must be shifted per instance like every other slot.
        let d = 2;
        let p = Polynomial::new(
            1,
            coeff(0.0, d),
            vec![
                Monomial::new(coeff(2.0, d), vec![0]),
                Monomial::new(coeff(5.0, d), vec![0]),
            ],
        );
        let mut rng = StdRng::seed_from_u64(41);
        let batch: Vec<Vec<Series<Qd>>> =
            (0..6).map(|_| vec![Series::random(&mut rng, d)]).collect();
        let batched = BatchEvaluator::new(&p).evaluate_sequential(&batch);
        for got in &batched.instances {
            assert_eq!(got.gradient[0].coeff(0).to_f64(), 7.0);
        }
    }

    #[test]
    #[should_panic(expected = "wrong number of inputs")]
    fn mismatched_input_count_panics() {
        let p = paper_example(2);
        let bad = vec![random_batch(5, 2, 1, 1)[0].clone()];
        let _ = BatchEvaluator::new(&p).evaluate_sequential(&bad);
    }

    #[test]
    fn random_structures_batch_consistently() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..8 {
            let p: Polynomial<Dd> = random_polynomial(6, 10, 5, 4, &mut rng);
            let batch: Vec<Vec<Series<Dd>>> = (0..5)
                .map(|_| random_inputs::<Dd, _>(6, 4, &mut rng))
                .collect();
            let batched = BatchEvaluator::new(&p).evaluate_sequential(&batch);
            let single = ScheduledEvaluator::new(&p);
            for (inputs, got) in batch.iter().zip(batched.instances.iter()) {
                let want = single.evaluate_sequential(inputs);
                assert_eq!(got.value, want.value);
                assert_eq!(got.gradient, want.gradient);
            }
        }
    }
}
