//! Fused evaluation of polynomial *systems* with a shared Jacobian schedule.
//!
//! The paper's motivating application (Newton's method on systems of
//! polynomials at power series, Section 1) needs, at every iteration, the
//! values of all `m` equations **and** the full `m × n` Jacobian.  Evaluating
//! the system one polynomial at a time costs `m` schedules, `m` data arenas
//! and `m` pool launches per job layer — exactly the launch-starvation
//! pattern the batched engine (see [`crate::batch`]) was built to kill,
//! only across equations instead of across evaluation points.
//!
//! [`SystemSchedule`] amortizes the shared structure once:
//!
//! * the monomial sets of all equations are **merged and deduplicated**: a
//!   monomial appearing (with the same variables and the same coefficient
//!   series) in several equations gets its forward/backward/cross products
//!   scheduled and computed **once**;
//! * all constants, coefficients, inputs and products live in **one flat
//!   coefficient arena** described by a single [`SystemLayout`];
//! * each job layer runs as **one** [`WorkerPool`] launch covering every
//!   equation, so the launch count is the layer count of the merged schedule,
//!   independent of `m`;
//! * one pass produces all `m` values plus the full `m × n` Jacobian of
//!   power series.
//!
//! For an equation that shares no monomials with the others, the merged
//! schedule reproduces that equation's single-polynomial
//! [`Schedule`](crate::Schedule) job-for-job, so its value and gradient row
//! are bitwise identical to the single-polynomial plan's output.
//!
//! ```
//! use psmd_core::{Engine, Monomial, Polynomial};
//! use psmd_multidouble::Dd;
//! use psmd_series::Series;
//!
//! // f1 = 1 + 3 x0 x1,  f2 = x0 + x1, at z0 = 1 + t, z1 = 1 - t.
//! let d = 2;
//! let c = |x: f64| Series::constant(Dd::from_f64(x), d);
//! let f1 = Polynomial::new(2, c(1.0), vec![Monomial::new(c(3.0), vec![0, 1])]);
//! let f2 = Polynomial::new(
//!     2,
//!     c(0.0),
//!     vec![Monomial::new(c(1.0), vec![0]), Monomial::new(c(1.0), vec![1])],
//! );
//! let z = vec![
//!     Series::<Dd>::from_f64_coeffs(&[1.0, 1.0, 0.0]),
//!     Series::<Dd>::from_f64_coeffs(&[1.0, -1.0, 0.0]),
//! ];
//! let engine = Engine::builder().threads(0).build();
//! let plan = engine.compile(vec![f1, f2]);
//! let eval = plan.request(&z).sequential().run().into_system();
//! assert_eq!(eval.values[0].coeff(0).to_f64(), 4.0);       // 1 + 3
//! assert_eq!(eval.values[0].coeff(2).to_f64(), -3.0);      // -3 t^2
//! assert_eq!(eval.values[1].coeff(0).to_f64(), 2.0);       // (1+t) + (1-t)
//! assert_eq!(eval.jacobian[0][0].coeff(1).to_f64(), -3.0); // d f1/dx0 = 3 z1
//! assert_eq!(eval.jacobian[1][1].coeff(0).to_f64(), 1.0);  // d f2/dx1 = 1
//! ```

use crate::evaluate::{evaluate_naive, execute_schedule, Evaluation, ExecMode};
use crate::options::EvalOptions;
use crate::polynomial::Polynomial;
use crate::schedule::{
    build_graph_plan, derivative_slot_in, extract_location_into, schedule_monomial_convolutions,
    schedule_output_sums, validate_job_layers, AddJob, ConvJob, GraphPlan, OutputSum,
    ResultLocation,
};
use crate::workspace::Workspace;
use psmd_multidouble::Coeff;
use psmd_runtime::{CancelToken, KernelTimings, SharedSlice, Stopwatch, WorkerPool};
use psmd_series::Series;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Positions of every series of a polynomial *system* in one flat data
/// array: the constant term of each equation, the coefficient of each unique
/// monomial, the shared input series, then the forward/backward/cross
/// products of each unique monomial, then any scratch accumulators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemLayout {
    /// Truncation degree `d`.
    pub degree: usize,
    /// Total number of series slots.
    pub num_slots: usize,
    /// Slot of each equation's constant term.
    pub constant_slots: Vec<usize>,
    /// Slot of each unique monomial's coefficient series.
    pub coefficient_slots: Vec<usize>,
    /// Slot of each input series `z_i` (shared by every equation).
    pub input_slots: Vec<usize>,
    /// Forward product slots per unique monomial.
    pub forward_slots: Vec<Vec<usize>>,
    /// Backward product slots per unique monomial.
    pub backward_slots: Vec<Vec<usize>>,
    /// Cross product slots per unique monomial.
    pub cross_slots: Vec<Vec<usize>>,
    /// Scratch accumulator slots of the addition stage.
    pub scratch_slots: Vec<usize>,
}

impl SystemLayout {
    /// Number of coefficients per slot.
    pub fn coeffs_per_slot(&self) -> usize {
        self.degree + 1
    }

    /// Offset (in coefficients) of a slot in the flat data array.
    pub fn offset(&self, slot: usize) -> usize {
        slot * self.coeffs_per_slot()
    }

    /// Total number of coefficients of the data array.
    pub fn total_coefficients(&self) -> usize {
        self.num_slots * self.coeffs_per_slot()
    }

    /// Rebases a slot into the arena region of one batch instance: instance
    /// `i` occupies the slot range `i * num_slots .. (i + 1) * num_slots`,
    /// mirroring [`DataLayout::batch_slot`](crate::DataLayout::batch_slot)
    /// for system schedules.
    pub fn batch_slot(&self, instance: usize, slot: usize) -> usize {
        instance * self.num_slots + slot
    }

    /// Offset (in coefficients) of a batch instance's arena region.
    pub fn batch_instance_offset(&self, instance: usize) -> usize {
        instance * self.total_coefficients()
    }

    /// Total number of coefficients of a batched data array.
    pub fn batch_total_coefficients(&self, instances: usize) -> usize {
        instances * self.total_coefficients()
    }
}

/// One unique monomial of the merged system: its variable tuple, the
/// representative `(equation, monomial)` pair its coefficient is read from,
/// and how many instances across the system map to it.
#[derive(Debug, Clone, PartialEq, Eq)]
struct UniqueMonomial {
    variables: Vec<usize>,
    representative: (usize, usize),
    instances: usize,
}

/// The complete two-stage job schedule of a polynomial system: one merged
/// set of convolution and addition layers covering every equation, plus the
/// locations of all `m` values and all `m × n` Jacobian entries.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSchedule {
    /// The merged data layout the job indices refer to.
    pub layout: SystemLayout,
    /// Convolution jobs grouped in layers (one kernel launch per layer for
    /// the whole system).
    pub convolution_layers: Vec<Vec<ConvJob>>,
    /// Addition jobs grouped in layers.
    pub addition_layers: Vec<Vec<AddJob>>,
    /// Location of each equation's value after the addition stage.
    pub value_locations: Vec<ResultLocation>,
    /// Location of each Jacobian entry `d f_i / d x_j` after the addition
    /// stage (`jacobian_locations[i][j]`).
    pub jacobian_locations: Vec<Vec<ResultLocation>>,
    /// Map from `(equation, monomial)` to the unique-monomial index.
    monomial_map: Vec<Vec<usize>>,
    /// The unique monomials of the merged schedule.
    uniques: Vec<UniqueMonomial>,
    /// Total number of monomial instances across all equations.
    total_monomials: usize,
}

impl SystemSchedule {
    /// Builds the merged schedule of a system of polynomials over the same
    /// variables and truncation degree.
    ///
    /// # Panics
    ///
    /// Panics when the system is empty or when the equations disagree on the
    /// number of variables or the truncation degree.
    pub fn build<C: Coeff>(polys: &[Polynomial<C>]) -> Self {
        assert!(!polys.is_empty(), "a system needs at least one equation");
        let n = polys[0].num_variables();
        let degree = polys[0].degree();
        for (i, p) in polys.iter().enumerate() {
            assert_eq!(
                p.num_variables(),
                n,
                "equation {i}: all equations must share the variable count"
            );
            assert_eq!(
                p.degree(),
                degree,
                "equation {i}: all equations must share the truncation degree"
            );
        }
        // Stage 1: merge the monomial sets.  Two monomials are the same job
        // when they have the same variable tuple AND the same coefficient
        // series; the first occurrence becomes the representative.
        let mut uniques: Vec<UniqueMonomial> = Vec::new();
        let mut by_vars: HashMap<Vec<usize>, Vec<usize>> = HashMap::new();
        let mut monomial_map: Vec<Vec<usize>> = Vec::with_capacity(polys.len());
        let mut total_monomials = 0usize;
        for (i, p) in polys.iter().enumerate() {
            let mut map = Vec::with_capacity(p.num_monomials());
            for (k, m) in p.monomials().iter().enumerate() {
                total_monomials += 1;
                let bucket = by_vars.entry(m.variables.clone()).or_default();
                let found = bucket.iter().copied().find(|&u| {
                    let rep = uniques[u].representative;
                    polys[rep.0].monomials()[rep.1].coefficient == m.coefficient
                });
                let uid = match found {
                    Some(uid) => {
                        uniques[uid].instances += 1;
                        uid
                    }
                    None => {
                        let uid = uniques.len();
                        uniques.push(UniqueMonomial {
                            variables: m.variables.clone(),
                            representative: (i, k),
                            instances: 1,
                        });
                        bucket.push(uid);
                        uid
                    }
                };
                map.push(uid);
            }
            monomial_map.push(map);
        }
        // Stage 2: lay out the arena — constants per equation, coefficients
        // and products per unique monomial, inputs shared.
        let mut next = 0usize;
        let mut take = |count: usize| {
            let start = next;
            next += count;
            (start..start + count).collect::<Vec<usize>>()
        };
        let constant_slots = take(polys.len());
        let coefficient_slots = take(uniques.len());
        let input_slots = take(n);
        let mut forward_slots = Vec::with_capacity(uniques.len());
        let mut backward_slots = Vec::with_capacity(uniques.len());
        let mut cross_slots = Vec::with_capacity(uniques.len());
        for u in &uniques {
            let nk = u.variables.len();
            forward_slots.push(take(nk));
            backward_slots.push(take(if nk >= 2 { (nk - 2).max(1) } else { 0 }));
            cross_slots.push(take(nk.saturating_sub(2)));
        }
        let mut layout = SystemLayout {
            degree,
            num_slots: next,
            constant_slots,
            coefficient_slots,
            input_slots,
            forward_slots,
            backward_slots,
            cross_slots,
            scratch_slots: Vec::new(),
        };
        // Stage 3: convolution layers — every unique monomial is scheduled
        // once, so shared products are computed once for the whole system.
        let mut convolution_layers: Vec<Vec<ConvJob>> = Vec::new();
        for (u, unique) in uniques.iter().enumerate() {
            let z_slots: Vec<usize> = unique
                .variables
                .iter()
                .map(|&v| layout.input_slots[v])
                .collect();
            schedule_monomial_convolutions(
                layout.coefficient_slots[u],
                &z_slots,
                &layout.forward_slots[u],
                &layout.backward_slots[u],
                &layout.cross_slots[u],
                &mut convolution_layers,
            );
        }
        // Stage 4: addition layers.  A unique monomial used by exactly one
        // instance keeps its product slots writable (in-place tree summation,
        // exactly like the single-polynomial schedule); a monomial shared by
        // several instances must keep its products intact for every reader,
        // so its contributions become read-only and the tree runs on scratch
        // accumulators instead.
        let writable = |uid: usize| uniques[uid].instances == 1;
        let mut outputs: Vec<OutputSum> = Vec::with_capacity(polys.len() * (1 + n));
        for (i, p) in polys.iter().enumerate() {
            // The equation value: constant plus every monomial's last forward
            // product.
            let mut targets = Vec::new();
            let mut read_only = vec![layout.constant_slots[i]];
            for &uid in &monomial_map[i] {
                let f = &layout.forward_slots[uid];
                let slot = f[f.len() - 1];
                if writable(uid) {
                    targets.push(slot);
                } else {
                    read_only.push(slot);
                }
            }
            outputs.push(OutputSum { targets, read_only });
            // The Jacobian row d f_i / d x_j for every variable.
            for v in 0..n {
                let mut targets = Vec::new();
                let mut read_only = Vec::new();
                for (k, m) in p.monomials().iter().enumerate() {
                    if let Some(pos) = m.position_of(v) {
                        let uid = monomial_map[i][k];
                        match derivative_slot_in(
                            m.num_variables(),
                            pos,
                            &layout.forward_slots[uid],
                            &layout.backward_slots[uid],
                            &layout.cross_slots[uid],
                        ) {
                            Some(slot) if writable(uid) => targets.push(slot),
                            Some(slot) => read_only.push(slot),
                            None => read_only.push(layout.coefficient_slots[uid]),
                        }
                    }
                }
                outputs.push(OutputSum { targets, read_only });
            }
        }
        let (addition_layers, locations) =
            schedule_output_sums(outputs, &mut layout.num_slots, &mut layout.scratch_slots);
        let mut value_locations = Vec::with_capacity(polys.len());
        let mut jacobian_locations = Vec::with_capacity(polys.len());
        let mut it = locations.into_iter();
        for _ in 0..polys.len() {
            value_locations.push(it.next().expect("value location"));
            jacobian_locations.push(
                (0..n)
                    .map(|_| it.next().expect("jacobian location"))
                    .collect(),
            );
        }
        let schedule = Self {
            layout,
            convolution_layers,
            addition_layers,
            value_locations,
            jacobian_locations,
            monomial_map,
            uniques,
            total_monomials,
        };
        debug_assert!(schedule.validate_layers().is_ok());
        schedule
    }

    /// Number of equations.
    pub fn num_equations(&self) -> usize {
        self.value_locations.len()
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.layout.input_slots.len()
    }

    /// Total number of convolution jobs of the merged schedule.
    pub fn convolution_jobs(&self) -> usize {
        self.convolution_layers.iter().map(Vec::len).sum()
    }

    /// Total number of addition jobs of the merged schedule.
    pub fn addition_jobs(&self) -> usize {
        self.addition_layers.iter().map(Vec::len).sum()
    }

    /// Blocks per convolution kernel launch.
    pub fn convolution_layer_sizes(&self) -> Vec<usize> {
        self.convolution_layers.iter().map(Vec::len).collect()
    }

    /// Blocks per addition kernel launch.
    pub fn addition_layer_sizes(&self) -> Vec<usize> {
        self.addition_layers.iter().map(Vec::len).collect()
    }

    /// Number of unique monomials after merging.
    pub fn unique_monomials(&self) -> usize {
        self.uniques.len()
    }

    /// Total number of monomial instances across all equations.
    pub fn total_monomials(&self) -> usize {
        self.total_monomials
    }

    /// Monomial instances whose products are shared with an earlier
    /// occurrence instead of being recomputed (`total - unique`).
    pub fn deduplicated_monomials(&self) -> usize {
        self.total_monomials - self.uniques.len()
    }

    /// Checks the layer invariants (the same invariants as
    /// [`Schedule::validate_layers`](crate::Schedule::validate_layers)):
    /// within one layer, outputs are pairwise distinct and no job reads a
    /// slot another job of the same layer writes.
    pub fn validate_layers(&self) -> Result<(), String> {
        validate_job_layers(&self.convolution_layers, &self.addition_layers)
    }

    /// Lowers the merged schedule to block granularity for the
    /// dependency-driven executor (see [`crate::Schedule::graph_plan`]);
    /// shared products feed every consuming equation's summation through the
    /// same dependency edges.
    pub fn graph_plan(&self) -> GraphPlan {
        build_graph_plan(&self.convolution_layers, &self.addition_layers)
    }

    /// Populates the flat data array: each equation's constant, each unique
    /// monomial's coefficient (from its representative) and the shared input
    /// series; product and scratch slots are left zero.
    pub fn fill_data_array<C: Coeff>(
        &self,
        polys: &[Polynomial<C>],
        inputs: &[Series<C>],
        data: &mut [C],
    ) {
        assert_eq!(
            polys.len(),
            self.num_equations(),
            "wrong number of equations"
        );
        assert_eq!(inputs.len(), self.num_variables(), "wrong number of inputs");
        assert_eq!(
            data.len(),
            self.layout.total_coefficients(),
            "data slice does not match the layout"
        );
        let per = self.layout.coeffs_per_slot();
        let write_slot = |slot: usize, series: &Series<C>, data: &mut [C]| {
            assert_eq!(series.degree(), self.layout.degree, "degree mismatch");
            let off = slot * per;
            data[off..off + per].copy_from_slice(series.coeffs());
        };
        for (i, p) in polys.iter().enumerate() {
            write_slot(self.layout.constant_slots[i], p.constant(), data);
        }
        for (u, unique) in self.uniques.iter().enumerate() {
            let (i, k) = unique.representative;
            write_slot(
                self.layout.coefficient_slots[u],
                &polys[i].monomials()[k].coefficient,
                data,
            );
        }
        for (j, z) in inputs.iter().enumerate() {
            write_slot(self.layout.input_slots[j], z, data);
        }
    }

    /// Extracts a result series from the populated data array.
    pub fn extract<C: Coeff>(&self, data: &[C], location: ResultLocation) -> Series<C> {
        let per = self.layout.coeffs_per_slot();
        match location {
            ResultLocation::Zero => Series::zero(self.layout.degree),
            ResultLocation::Slot(slot) => {
                let off = slot * per;
                Series::from_coeffs(data[off..off + per].to_vec())
            }
        }
    }

    /// Extracts a result series into `out`, reusing its buffer — the
    /// allocation-free counterpart of [`SystemSchedule::extract`] used by
    /// the workspace-reusing evaluation paths.
    pub fn extract_into<C: Coeff>(
        &self,
        data: &[C],
        location: ResultLocation,
        out: &mut Series<C>,
    ) {
        extract_location_into(
            data,
            location,
            self.layout.coeffs_per_slot(),
            self.layout.degree,
            out,
        );
    }
}

/// The result of one fused system evaluation: all equation values, the full
/// Jacobian of power series, and the aggregate kernel timings of the shared
/// launches.
#[derive(Debug, Clone)]
pub struct SystemEvaluation<C> {
    /// `f_i(z)` for every equation `i`, truncated at the common degree.
    pub values: Vec<Series<C>>,
    /// `d f_i / d x_j (z)` for every equation `i` and variable `j`
    /// (`jacobian[i][j]`).
    pub jacobian: Vec<Vec<Series<C>>>,
    /// Aggregate timings: one convolution/addition launch per merged layer
    /// for the whole system.
    pub timings: KernelTimings,
}

impl<C: Coeff> SystemEvaluation<C> {
    /// An empty system evaluation to be filled by an `*_into` run; its
    /// buffers are grown on first use and reused afterwards.
    pub fn empty() -> Self {
        Self {
            values: Vec::new(),
            jacobian: Vec::new(),
            timings: KernelTimings::new(),
        }
    }

    /// Number of equations.
    pub fn num_equations(&self) -> usize {
        self.values.len()
    }

    /// Largest coefficient-wise difference between two system evaluations
    /// (values and Jacobian), as a double estimate.  Returns
    /// [`f64::INFINITY`] when the shapes differ.
    pub fn max_difference(&self, other: &SystemEvaluation<C>) -> f64 {
        if self.values.len() != other.values.len() || self.jacobian.len() != other.jacobian.len() {
            return f64::INFINITY;
        }
        let mut worst = 0.0f64;
        for (a, b) in self.values.iter().zip(other.values.iter()) {
            if a.degree() != b.degree() {
                return f64::INFINITY;
            }
            worst = worst.max(a.distance(b));
        }
        for (ra, rb) in self.jacobian.iter().zip(other.jacobian.iter()) {
            if ra.len() != rb.len() {
                return f64::INFINITY;
            }
            for (a, b) in ra.iter().zip(rb.iter()) {
                if a.degree() != b.degree() {
                    return f64::INFINITY;
                }
                worst = worst.max(a.distance(b));
            }
        }
        worst
    }

    /// The evaluation of one equation (its value and Jacobian row), for
    /// comparisons against single-polynomial evaluators.
    pub fn equation(&self, i: usize) -> Evaluation<C> {
        Evaluation {
            value: self.values[i].clone(),
            gradient: self.jacobian[i].clone(),
            timings: KernelTimings::new(),
        }
    }
}

/// The fused system evaluations of one batch, plus the aggregate kernel
/// timings of the shared launches.
///
/// A batched system run is the tracker's workhorse: the same merged
/// [`SystemSchedule`] serves every instance (same equations, different
/// evaluation points), so one kernel launch per merged layer — or one graph
/// launch — covers `batch × jobs_per_layer` blocks.  The per-instance
/// [`SystemEvaluation::timings`] are empty for the same reason as in
/// [`BatchEvaluation`](crate::BatchEvaluation): launches are shared, so
/// counts and times are only meaningful for the batch as a whole.
#[derive(Debug, Clone)]
pub struct SystemBatchEvaluation<C> {
    /// All values and the full Jacobian of every batch instance, in input
    /// order.
    pub instances: Vec<SystemEvaluation<C>>,
    /// Aggregate timings: one convolution/addition launch per merged layer
    /// for the whole batch.
    pub timings: KernelTimings,
}

impl<C> SystemBatchEvaluation<C> {
    /// Number of instances in the batch.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

impl<C: Coeff> SystemBatchEvaluation<C> {
    /// An empty batched system evaluation to be filled by an `*_into` run;
    /// its buffers are grown on first use and reused afterwards.
    pub fn empty() -> Self {
        Self {
            instances: Vec::new(),
            timings: KernelTimings::new(),
        }
    }
}

impl<C: Coeff> Default for SystemBatchEvaluation<C> {
    fn default() -> Self {
        Self::empty()
    }
}

/// Evaluates a whole batch of input vectors through one system's merged
/// schedule — the shared internal of the engine's system
/// [`Plan`](crate::Plan) under batched inputs, and the coalesced corrector
/// sweep of the path tracker.  Every instance is staged back-to-back in one
/// flat arena ([`SystemLayout::batch_slot`]), so the whole batch runs as one
/// launch per merged layer (or one graph launch), exactly like
/// [`run_batch`](crate::batch) does for single polynomials.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_system_batch<C: Coeff>(
    polys: &[Polynomial<C>],
    schedule: &SystemSchedule,
    options: EvalOptions,
    graph: &OnceLock<GraphPlan>,
    batch: &[Vec<Series<C>>],
    pool: Option<&WorkerPool>,
    cancel: Option<&CancelToken>,
    ws: &mut Workspace<C>,
    out: &mut SystemBatchEvaluation<C>,
) {
    let wall = Stopwatch::start();
    let mut timings = KernelTimings::new();
    if batch.is_empty() {
        out.instances.clear();
        timings.wall_clock = wall.elapsed();
        out.timings = timings;
        return;
    }
    let layout = &schedule.layout;
    let per = layout.coeffs_per_slot();
    let stride = layout.total_coefficients();
    let participants = pool.map_or(1, WorkerPool::parallelism);
    let (arena, scratch, graph_scratch) =
        ws.parts(layout.batch_total_coefficients(batch.len()), participants);
    // Stage 0: lay every instance out back-to-back in the flat arena.  The
    // constants and merged coefficients are replicated per instance so each
    // region is self-contained (jobs only ever read within their region).
    for (i, inputs) in batch.iter().enumerate() {
        let off = layout.batch_instance_offset(i);
        schedule.fill_data_array(polys, inputs, &mut arena[off..off + stride]);
    }
    let plan = match (options.exec_mode, pool) {
        (ExecMode::Graph, Some(_)) => Some(graph.get_or_init(|| schedule.graph_plan())),
        _ => None,
    };
    let completed = {
        let shared = SharedSlice::new(&mut *arena);
        execute_schedule(
            &schedule.convolution_layers,
            &schedule.addition_layers,
            plan,
            &shared,
            per,
            options.kernel,
            pool,
            scratch,
            graph_scratch,
            &mut timings,
            batch.len(),
            1,
            cancel,
            |instance, slot| layout.batch_slot(instance, slot),
        )
    };
    if !completed {
        // Abandoned mid-schedule: every instance region holds partial
        // results, so skip extraction and flag the whole batch instead.
        timings.cancelled = true;
        timings.wall_clock = wall.elapsed();
        out.timings = timings;
        return;
    }
    let m = schedule.num_equations();
    let n = schedule.num_variables();
    out.instances
        .resize_with(batch.len(), SystemEvaluation::empty);
    for (i, instance) in out.instances.iter_mut().enumerate() {
        let off = layout.batch_instance_offset(i);
        let region = &arena[off..off + stride];
        instance.values.resize_with(m, || Series::zero(0));
        for (&loc, v) in schedule
            .value_locations
            .iter()
            .zip(instance.values.iter_mut())
        {
            schedule.extract_into(region, loc, v);
        }
        instance.jacobian.resize_with(m, Vec::new);
        for (row_locs, row) in schedule
            .jacobian_locations
            .iter()
            .zip(instance.jacobian.iter_mut())
        {
            row.resize_with(n, || Series::zero(0));
            for (&loc, entry) in row_locs.iter().zip(row.iter_mut()) {
                schedule.extract_into(region, loc, entry);
            }
        }
        instance.timings = KernelTimings::new();
    }
    timings.wall_clock = wall.elapsed();
    out.timings = timings;
}

/// Evaluates a whole system through its merged schedule, writing all values
/// and the full Jacobian into `out` — the shared internal of the engine's
/// system [`Plan`](crate::Plan) and of the Newton iteration.  `graph` caches
/// the block-level plan across evaluations (built on first graph-mode use);
/// all evaluation memory is borrowed from `ws`, so a warm workspace makes
/// the run allocation-free.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_system<C: Coeff>(
    polys: &[Polynomial<C>],
    schedule: &SystemSchedule,
    options: EvalOptions,
    graph: &OnceLock<GraphPlan>,
    inputs: &[Series<C>],
    pool: Option<&WorkerPool>,
    cancel: Option<&CancelToken>,
    ws: &mut Workspace<C>,
    out: &mut SystemEvaluation<C>,
) {
    let wall = Stopwatch::start();
    let mut timings = KernelTimings::new();
    let per = schedule.layout.coeffs_per_slot();
    let participants = pool.map_or(1, WorkerPool::parallelism);
    let (arena, scratch, graph_scratch) =
        ws.parts(schedule.layout.total_coefficients(), participants);
    schedule.fill_data_array(polys, inputs, arena);
    // The whole system — every equation's deduplicated products plus all m
    // values and m×n Jacobian sums — runs through the shared executor: one
    // launch per merged layer, or one graph launch (one pool rendezvous) in
    // graph mode.
    let plan = match (options.exec_mode, pool) {
        (ExecMode::Graph, Some(_)) => Some(graph.get_or_init(|| schedule.graph_plan())),
        _ => None,
    };
    let completed = {
        let shared = SharedSlice::new(&mut *arena);
        execute_schedule(
            &schedule.convolution_layers,
            &schedule.addition_layers,
            plan,
            &shared,
            per,
            options.kernel,
            pool,
            scratch,
            graph_scratch,
            &mut timings,
            1,
            1,
            cancel,
            |_, slot| slot,
        )
    };
    if !completed {
        // Abandoned mid-schedule: the arena holds partial results, so skip
        // extraction of values and Jacobian and flag the run instead.
        timings.cancelled = true;
        timings.wall_clock = wall.elapsed();
        out.timings = timings;
        return;
    }
    let m = schedule.num_equations();
    let n = schedule.num_variables();
    out.values.resize_with(m, || Series::zero(0));
    for (&loc, v) in schedule.value_locations.iter().zip(out.values.iter_mut()) {
        schedule.extract_into(arena, loc, v);
    }
    out.jacobian.resize_with(m, Vec::new);
    for (row_locs, row) in schedule
        .jacobian_locations
        .iter()
        .zip(out.jacobian.iter_mut())
    {
        row.resize_with(n, || Series::zero(0));
        for (&loc, entry) in row_locs.iter().zip(row.iter_mut()) {
            schedule.extract_into(arena, loc, entry);
        }
    }
    timings.wall_clock = wall.elapsed();
    out.timings = timings;
}

/// Evaluates a system equation by equation with the naive baseline
/// ([`evaluate_naive`]): the correctness oracle for the fused system plan.
pub fn evaluate_naive_system<C: Coeff>(
    polys: &[Polynomial<C>],
    inputs: &[Series<C>],
) -> SystemEvaluation<C> {
    let wall = Stopwatch::start();
    let mut values = Vec::with_capacity(polys.len());
    let mut jacobian = Vec::with_capacity(polys.len());
    for p in polys {
        let e = evaluate_naive(p, inputs);
        values.push(e.value);
        jacobian.push(e.gradient);
    }
    let mut timings = KernelTimings::new();
    timings.wall_clock = wall.elapsed();
    SystemEvaluation {
        values,
        jacobian,
        timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Plan};
    use crate::generators::{random_inputs, random_polynomial};
    use crate::monomial::Monomial;
    use crate::schedule::Schedule;
    use psmd_multidouble::{Dd, Qd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn coeff(c: f64, d: usize) -> Series<Qd> {
        Series::constant(Qd::from_f64(c), d)
    }

    /// The example polynomial of Equation (4) plus two companions over the
    /// same six variables.
    fn paper_system(d: usize) -> Vec<Polynomial<Qd>> {
        let f1 = Polynomial::new(
            6,
            coeff(0.5, d),
            vec![
                Monomial::new(coeff(1.0, d), vec![0, 2, 5]),
                Monomial::new(coeff(2.0, d), vec![0, 1, 4, 5]),
                Monomial::new(coeff(3.0, d), vec![1, 2, 3]),
            ],
        );
        let f2 = Polynomial::new(
            6,
            coeff(-1.0, d),
            vec![
                Monomial::new(coeff(4.0, d), vec![1, 3, 5]),
                Monomial::new(coeff(0.5, d), vec![0, 4]),
            ],
        );
        let f3 = Polynomial::new(
            6,
            coeff(2.0, d),
            vec![
                Monomial::new(coeff(-1.0, d), vec![2]),
                Monomial::new(coeff(1.5, d), vec![0, 1, 2, 3]),
            ],
        );
        vec![f1, f2, f3]
    }

    fn random_z(n: usize, d: usize, seed: u64) -> Vec<Series<Qd>> {
        let mut rng = StdRng::seed_from_u64(seed);
        random_inputs::<Qd, _>(n, d, &mut rng)
    }

    fn compile_system(system: &[Polynomial<Qd>], threads: usize) -> (Engine, Arc<Plan<Qd>>) {
        let engine = Engine::builder().threads(threads).build();
        let plan = engine.compile(system.to_vec());
        (engine, plan)
    }

    #[test]
    fn system_matches_per_equation_scheduled_bitwise_without_sharing() {
        let d = 5;
        let system = paper_system(d);
        let z = random_z(6, d, 7);
        let engine = Engine::builder().threads(0).build();
        let fused = engine
            .compile(system.clone())
            .request(&z)
            .sequential()
            .run()
            .into_system();
        for (i, p) in system.iter().enumerate() {
            let single = engine
                .compile(p.clone())
                .request(&z)
                .sequential()
                .run()
                .into_single();
            // No monomial is shared between equations, so the merged schedule
            // reproduces each equation's own schedule job-for-job: results
            // are bitwise identical.
            assert_eq!(fused.values[i], single.value, "value of equation {i}");
            assert_eq!(fused.jacobian[i], single.gradient, "row {i}");
        }
    }

    #[test]
    fn system_matches_naive_oracle() {
        let d = 4;
        let system = paper_system(d);
        let z = random_z(6, d, 11);
        let (_engine, plan) = compile_system(&system, 0);
        let fused = plan.request(&z).sequential().run().into_system();
        let naive = evaluate_naive_system(&system, &z);
        let diff = fused.max_difference(&naive);
        assert!(diff < 1e-55, "difference {diff}");
    }

    #[test]
    fn parallel_system_matches_sequential_bitwise() {
        let d = 6;
        let system = paper_system(d);
        let z = random_z(6, d, 3);
        let (_engine, plan) = compile_system(&system, 3);
        let seq = plan.request(&z).sequential().run().into_system();
        let par = plan.request(&z).run().into_system();
        assert_eq!(seq.values, par.values);
        assert_eq!(seq.jacobian, par.jacobian);
    }

    #[test]
    fn one_launch_per_layer_for_the_whole_system() {
        let d = 3;
        let system = paper_system(d);
        let z = random_z(6, d, 5);
        let (_engine, plan) = compile_system(&system, 2);
        let result = plan.request(&z).run().into_system();
        let schedule = plan.system_schedule().expect("system plan");
        // Exactly one pool launch per shared layer — independent of the
        // number of equations.
        assert_eq!(
            result.timings.convolution_launches,
            schedule.convolution_layers.len()
        );
        assert_eq!(
            result.timings.addition_launches,
            schedule.addition_layers.len()
        );
        assert_eq!(
            result.timings.convolution_blocks,
            schedule.convolution_jobs()
        );
        assert_eq!(result.timings.addition_blocks, schedule.addition_jobs());
        // The merged convolution layer count is the max over the equations,
        // not the sum: layers of different equations fuse.
        let max_layers = system
            .iter()
            .map(|p| Schedule::build(p).convolution_layers.len())
            .max()
            .unwrap();
        assert_eq!(schedule.convolution_layers.len(), max_layers);
    }

    #[test]
    fn graph_mode_system_is_bitwise_identical_with_one_rendezvous() {
        let d = 6;
        let system = paper_system(d);
        let z = random_z(6, d, 3);
        let engine = Engine::builder().threads(3).build();
        let layered = engine.compile(system.clone());
        let graph =
            engine.compile_with_options(system, EvalOptions::new().with_exec_mode(ExecMode::Graph));
        let a = layered.request(&z).run().into_system();
        let before = engine.pool().rendezvous_count();
        let b = graph.request(&z).run().into_system();
        assert_eq!(engine.pool().rendezvous_count(), before + 1);
        assert_eq!(a.values, b.values, "graph system must be bitwise identical");
        assert_eq!(a.jacobian, b.jacobian);
        assert_eq!(b.timings.graph_launches, 1);
        let schedule = layered.system_schedule().expect("system plan");
        assert_eq!(b.timings.convolution_blocks, schedule.convolution_jobs());
    }

    #[test]
    fn graph_mode_preserves_shared_monomial_summation_order() {
        // Shared products are read-only contributions summed through
        // scratch accumulators; the graph edges must serialize those sums
        // exactly like the layered path.
        let d = 3;
        let shared = |dd| Monomial::new(coeff(2.0, dd), vec![0, 1, 2]);
        let f1 = Polynomial::new(3, coeff(1.0, d), vec![shared(d)]);
        let f2 = Polynomial::new(
            3,
            coeff(0.0, d),
            vec![shared(d), Monomial::new(coeff(5.0, d), vec![1])],
        );
        let system = vec![f1, f2];
        let engine = Engine::builder().threads(2).build();
        let layered = engine.compile(system.clone());
        let graph =
            engine.compile_with_options(system, EvalOptions::new().with_exec_mode(ExecMode::Graph));
        let z = random_z(3, d, 61);
        let a = layered.request(&z).run().into_system();
        let b = graph.request(&z).run().into_system();
        assert_eq!(a.values, b.values);
        assert_eq!(a.jacobian, b.jacobian);
    }

    #[test]
    fn shared_monomials_are_scheduled_once() {
        let d = 2;
        // f1 and f2 share the monomial 2 x0 x1 x2 (same coefficient); f2
        // additionally scales x1 differently so the equations differ.
        let shared = |dd| Monomial::new(coeff(2.0, dd), vec![0, 1, 2]);
        let f1 = Polynomial::new(3, coeff(1.0, d), vec![shared(d)]);
        let f2 = Polynomial::new(
            3,
            coeff(0.0, d),
            vec![shared(d), Monomial::new(coeff(5.0, d), vec![1])],
        );
        let system = vec![f1.clone(), f2.clone()];
        let (_engine, plan) = compile_system(&system, 0);
        let schedule = plan.system_schedule().expect("system plan");
        assert_eq!(schedule.total_monomials(), 3);
        assert_eq!(schedule.unique_monomials(), 2);
        assert_eq!(schedule.deduplicated_monomials(), 1);
        // The shared 3-variable monomial costs 6 convolutions once (not
        // twice) plus 1 for the single-variable monomial.
        assert_eq!(schedule.convolution_jobs(), 6 + 1);
        // Results still match the naive per-equation oracle.
        let z = random_z(3, d, 23);
        let fused = plan.request(&z).sequential().run().into_system();
        let naive = evaluate_naive_system(&system, &z);
        assert!(fused.max_difference(&naive) < 1e-58);
    }

    #[test]
    fn duplicate_monomials_within_one_equation_are_summed_twice() {
        let d = 2;
        // f = 2 x0 x1 + 2 x0 x1: the two instances dedup to one unique
        // monomial whose product must be counted twice in the value.
        let m = || Monomial::new(coeff(2.0, d), vec![0, 1]);
        let f = Polynomial::new(2, coeff(0.0, d), vec![m(), m()]);
        let system = vec![f.clone()];
        let (_engine, plan) = compile_system(&system, 0);
        assert_eq!(
            plan.system_schedule()
                .expect("system plan")
                .unique_monomials(),
            1
        );
        let z = random_z(2, d, 31);
        let fused = plan.request(&z).sequential().run().into_system();
        let naive = evaluate_naive_system(&system, &z);
        assert!(fused.max_difference(&naive) < 1e-58);
    }

    #[test]
    fn single_equation_system_matches_single_plan_bitwise() {
        let d = 4;
        let system = paper_system(d);
        let one = vec![system[0].clone()];
        let z = random_z(6, d, 13);
        let engine = Engine::builder().threads(0).build();
        let fused = engine
            .compile(one.clone())
            .request(&z)
            .sequential()
            .run()
            .into_system();
        let single = engine
            .compile(one[0].clone())
            .request(&z)
            .sequential()
            .run()
            .into_single();
        assert_eq!(fused.values[0], single.value);
        assert_eq!(fused.jacobian[0], single.gradient);
    }

    #[test]
    fn random_systems_validate_and_match_naive() {
        let mut rng = StdRng::seed_from_u64(91);
        let engine = Engine::builder().threads(0).build();
        for _ in 0..6 {
            let system: Vec<Polynomial<Dd>> = (0..3)
                .map(|_| random_polynomial(5, 8, 4, 3, &mut rng))
                .collect();
            let z = random_inputs::<Dd, _>(5, 3, &mut rng);
            let plan = engine.compile(system.clone());
            plan.system_schedule()
                .expect("system plan")
                .validate_layers()
                .unwrap();
            let fused = plan.request(&z).sequential().run().into_system();
            let naive = evaluate_naive_system(&system, &z);
            assert!(fused.max_difference(&naive) < 1e-24);
        }
    }

    #[test]
    #[should_panic(expected = "share the variable count")]
    fn mismatched_variable_counts_are_rejected() {
        let d = 1;
        let f1 = Polynomial::new(
            2,
            coeff(0.0, d),
            vec![Monomial::new(coeff(1.0, d), vec![0])],
        );
        let f2 = Polynomial::new(
            3,
            coeff(0.0, d),
            vec![Monomial::new(coeff(1.0, d), vec![2])],
        );
        let _ = SystemSchedule::build(&[f1, f2]);
    }

    #[test]
    #[should_panic(expected = "at least one equation")]
    fn empty_systems_are_rejected() {
        let _ = SystemSchedule::build::<Qd>(&[]);
    }

    #[test]
    fn constant_only_equation_evaluates_to_its_constant() {
        let d = 2;
        let f1 = Polynomial::new(2, coeff(7.0, d), vec![]);
        let f2 = Polynomial::new(
            2,
            coeff(0.0, d),
            vec![Monomial::new(coeff(1.0, d), vec![0, 1])],
        );
        let system = vec![f1, f2];
        let z = random_z(2, d, 41);
        let (_engine, plan) = compile_system(&system, 0);
        let fused = plan.request(&z).sequential().run().into_system();
        assert_eq!(fused.values[0].coeff(0).to_f64(), 7.0);
        assert!(fused.jacobian[0][0].is_zero());
        assert!(fused.jacobian[0][1].is_zero());
    }

    #[test]
    fn max_difference_reports_shape_mismatches_as_infinite() {
        let d = 2;
        let system = paper_system(d);
        let z = random_z(6, d, 2);
        let (_engine, plan) = compile_system(&system, 0);
        let a = plan.request(&z).sequential().run().into_system();
        let mut b = a.clone();
        b.values.pop();
        b.jacobian.pop();
        assert_eq!(a.max_difference(&b), f64::INFINITY);
    }
}
