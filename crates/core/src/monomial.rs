//! Monomials with power-series coefficients.
//!
//! A monomial is `a * x_{i1} x_{i2} ... x_{ik}` where `a` is a power series
//! truncated at the common degree and the variable indices are strictly
//! increasing (Section 3 of the paper).  Monomials with higher powers of a
//! variable are handled as in the paper: the common factor is folded into the
//! coefficient series beforehand (see [`Monomial::from_exponents`]).

use psmd_multidouble::Coeff;
use psmd_series::Series;

/// One monomial of a polynomial: a coefficient series times a product of
/// distinct variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Monomial<C> {
    /// Coefficient power series (truncated at the common degree).
    pub coefficient: Series<C>,
    /// Strictly increasing indices of the participating variables.
    pub variables: Vec<usize>,
}

impl<C: Coeff> Monomial<C> {
    /// Builds a monomial, validating the variable index tuple.
    ///
    /// # Panics
    ///
    /// Panics when the indices are not strictly increasing or when the
    /// monomial has no variables (a constant belongs in the polynomial's
    /// constant term instead).
    pub fn new(coefficient: Series<C>, variables: Vec<usize>) -> Self {
        assert!(
            !variables.is_empty(),
            "a monomial needs at least one variable; constants go to the polynomial's constant term"
        );
        assert!(
            variables.windows(2).all(|w| w[0] < w[1]),
            "variable indices must be strictly increasing, got {variables:?}"
        );
        Self {
            coefficient,
            variables,
        }
    }

    /// Builds a monomial from an exponent vector, folding higher powers into
    /// the coefficient exactly as the paper prescribes: `a x1^3 x2^5` becomes
    /// `(a x1^2 x2^4) * x1 x2`, where the parenthesized factor is evaluated
    /// into the coefficient series at the given inputs.
    ///
    /// `inputs[i]` is the power series substituted for variable `i`; it is
    /// needed because the folded factor depends on the point of evaluation.
    pub fn from_exponents(
        coefficient: Series<C>,
        exponents: &[usize],
        inputs: &[Series<C>],
    ) -> Self {
        let degree = coefficient.degree();
        let mut folded = coefficient;
        let mut variables = Vec::new();
        for (var, &exp) in exponents.iter().enumerate() {
            if exp == 0 {
                continue;
            }
            variables.push(var);
            for _ in 1..exp {
                folded = folded.mul(&inputs[var].truncated(degree));
            }
        }
        assert!(
            !variables.is_empty(),
            "exponent vector has no positive entries"
        );
        Self {
            coefficient: folded,
            variables,
        }
    }

    /// Number of (distinct) variables in the monomial.
    pub fn num_variables(&self) -> usize {
        self.variables.len()
    }

    /// True when the given variable participates in this monomial.
    pub fn contains(&self, variable: usize) -> bool {
        self.variables.binary_search(&variable).is_ok()
    }

    /// Position of a variable inside the monomial's index tuple.
    pub fn position_of(&self, variable: usize) -> Option<usize> {
        self.variables.binary_search(&variable).ok()
    }

    /// Number of convolution jobs needed to evaluate and differentiate this
    /// monomial with the paper's scheme: `3 n_k - 3` for `n_k >= 3` variables,
    /// 3 for two variables, 1 for a single variable.
    pub fn convolution_jobs(&self) -> usize {
        match self.num_variables() {
            1 => 1,
            2 => 3,
            n => 3 * n - 3,
        }
    }

    /// Number of job layers this monomial needs (its last forward product is
    /// ready after as many steps as it has variables; Corollary 3.2).
    pub fn layers(&self) -> usize {
        self.num_variables()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psmd_multidouble::Qd;

    fn s(values: &[f64]) -> Series<Qd> {
        Series::from_f64_coeffs(values)
    }

    #[test]
    fn construction_validates_indices() {
        let m = Monomial::new(s(&[1.0, 0.0]), vec![0, 2, 5]);
        assert_eq!(m.num_variables(), 3);
        assert!(m.contains(2));
        assert!(!m.contains(1));
        assert_eq!(m.position_of(5), Some(2));
        assert_eq!(m.position_of(4), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_indices_are_rejected() {
        let _ = Monomial::new(s(&[1.0]), vec![3, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one variable")]
    fn empty_variable_list_is_rejected() {
        let _ = Monomial::new(s(&[1.0]), vec![]);
    }

    #[test]
    fn convolution_job_counts_follow_the_paper() {
        assert_eq!(Monomial::new(s(&[1.0]), vec![4]).convolution_jobs(), 1);
        assert_eq!(Monomial::new(s(&[1.0]), vec![1, 2]).convolution_jobs(), 3);
        assert_eq!(
            Monomial::new(s(&[1.0]), vec![0, 1, 2]).convolution_jobs(),
            6
        );
        // The paper's p1 has monomials of four variables: 9 convolutions.
        assert_eq!(
            Monomial::new(s(&[1.0]), vec![0, 1, 2, 3]).convolution_jobs(),
            9
        );
        // And 3 * 64 - 3 = 189 for p2's 64-variable monomials.
        let vars: Vec<usize> = (0..64).collect();
        assert_eq!(Monomial::new(s(&[1.0]), vars).convolution_jobs(), 189);
    }

    #[test]
    fn from_exponents_folds_higher_powers_into_the_coefficient() {
        // a = 2, monomial x0^3 at input z0 = 1 + t: coefficient becomes
        // 2 (1 + t)^2 = 2 + 4 t + 2 t^2, variables = [x0].
        let inputs = vec![s(&[1.0, 1.0, 0.0])];
        let m = Monomial::from_exponents(s(&[2.0, 0.0, 0.0]), &[3], &inputs);
        assert_eq!(m.variables, vec![0]);
        assert_eq!(m.coefficient.coeff(0).to_f64(), 2.0);
        assert_eq!(m.coefficient.coeff(1).to_f64(), 4.0);
        assert_eq!(m.coefficient.coeff(2).to_f64(), 2.0);
    }

    #[test]
    fn from_exponents_skips_zero_exponents() {
        let inputs = vec![s(&[1.0]), s(&[3.0]), s(&[2.0])];
        let m = Monomial::from_exponents(s(&[1.0]), &[0, 1, 2], &inputs);
        assert_eq!(m.variables, vec![1, 2]);
        // x2^2 folded: coefficient *= z2 once => 2.
        assert_eq!(m.coefficient.coeff(0).to_f64(), 2.0);
    }
}
