//! The evaluators: the naive baseline and the scheduled (accelerated)
//! two-stage algorithm of the paper.
//!
//! Two ways to compute the same result:
//!
//! * [`evaluate_naive`] multiplies the series of every monomial and of every
//!   partial derivative independently.  It shares no work and serves as the
//!   correctness oracle and as the baseline the speedup of the paper's
//!   scheme is measured against.
//! * The engine's [`Plan`](crate::Plan) runs the paper's job schedule
//!   (shared forward/backward/cross products, tree summation) — sequentially
//!   (`plan.request(&z).sequential().run()`) or with one kernel launch per
//!   job layer on the worker pool (`plan.request(&z).run()`), the CPU
//!   equivalent of the accelerated algorithm of Section 5, reporting
//!   per-kernel timings like the paper does.
//!
//! This module holds the shared execution internals: every job borrows its
//! staging memory from a [`Workspace`] instead of allocating, which is what
//! keeps steady-state evaluation allocation-free (the CPU analogue of the
//! paper's pre-sized shared-memory staging).

use crate::lanes::{run_convolution_job_lanes, run_graph_node_lanes, LaneLayout, LaneUnit};
use crate::options::EvalOptions;
use crate::polynomial::Polynomial;
use crate::schedule::{AddJob, ConvJob, GraphPlan, Schedule};
use crate::workspace::{ConvScratch, Workspace};
use parking_lot::Mutex;
use psmd_multidouble::Coeff;
use psmd_runtime::{
    CancelToken, InlineGraphScratch, KernelKind, KernelTimings, SharedSlice, Stopwatch, WorkerPool,
};
use psmd_series::{
    add_assign_slices, convolve_fft, convolve_karatsuba, convolve_seq, convolve_zero_insertion,
    Series,
};
use std::sync::OnceLock;
use std::time::Instant;

/// Which convolution kernel the scheduled evaluator uses for its jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConvolutionKernel {
    /// The zero-insertion data-parallel kernel of Section 2 (default).
    #[default]
    ZeroInsertion,
    /// The direct formula with thread divergence, kept for the ablation
    /// benchmark.
    Direct,
    /// The Karatsuba short product: `O(n^1.58)` coefficient
    /// multiplications, bitwise identical to the schoolbook kernels below
    /// [`psmd_series::KARATSUBA_THRESHOLD`] and bounded by
    /// [`psmd_series::karatsuba_ulp_budget`] above it.
    Karatsuba,
    /// The compensated digit-FFT kernel: `O(n log n)` double operations,
    /// exact digit convolution recombined through a certified
    /// renormalization, bounded by [`psmd_series::fft_ulp_budget`].
    Fft,
    /// Pick the fastest kernel for the plan's (precision, degree) pair from
    /// the measured crossover table at compile time.  [`Plan`](crate::Plan)
    /// resolves this to a concrete kernel during
    /// [`Engine::compile`](crate::Engine::compile); the resolved choice is
    /// visible in the plan's options.
    Auto,
}

/// How the evaluators execute the job schedule on the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// One kernel launch per job layer with a pool-wide barrier between
    /// layers — the paper's execution model, kept as the reference path.
    #[default]
    Layered,
    /// One task-graph launch per evaluation: every block is released to the
    /// per-worker work-stealing deques the moment its input convolutions
    /// retire, so the whole evaluation costs a single pool rendezvous.
    /// Bitwise identical to [`ExecMode::Layered`] (the graph preserves the
    /// per-slot operation order of the layered schedule).
    Graph,
}

/// The value and gradient of a polynomial at a vector of power series,
/// together with the kernel timings of the run.
#[derive(Debug, Clone)]
pub struct Evaluation<C> {
    /// `p(z)` truncated at the common degree.
    pub value: Series<C>,
    /// `dp/dx_i (z)` for every variable `i`.
    pub gradient: Vec<Series<C>>,
    /// Per-kernel timings (all zero for the naive evaluator except the wall
    /// clock).
    pub timings: KernelTimings,
}

impl<C: Coeff> Evaluation<C> {
    /// An empty evaluation to be filled by an `*_into` run; its buffers are
    /// grown on first use and reused afterwards.
    pub fn empty() -> Self {
        Self {
            value: Series::zero(0),
            gradient: Vec::new(),
            timings: KernelTimings::new(),
        }
    }

    /// Largest coefficient-wise difference between two evaluations (value
    /// and gradient), as a double estimate.  Used by tests and examples to
    /// compare evaluators.
    ///
    /// Returns [`f64::INFINITY`] when the two evaluations have different
    /// shapes (gradient length or truncation degree): evaluations of
    /// different polynomials are never "close", and silently comparing only
    /// the common prefix would hide exactly the bugs this method exists to
    /// catch.
    pub fn max_difference(&self, other: &Evaluation<C>) -> f64 {
        if self.gradient.len() != other.gradient.len()
            || self.value.degree() != other.value.degree()
        {
            return f64::INFINITY;
        }
        let mut worst = self.value.distance(&other.value);
        for (a, b) in self.gradient.iter().zip(other.gradient.iter()) {
            if a.degree() != b.degree() {
                return f64::INFINITY;
            }
            worst = worst.max(a.distance(b));
        }
        worst
    }

    /// Largest coefficient-wise difference between two evaluations in units
    /// in the last place of the working precision (see
    /// [`psmd_multidouble::ulp_distance`]).  The natural yardstick for the
    /// approximate kernels of the ladder, where an absolute difference says
    /// nothing without the coefficient scale.
    ///
    /// Returns [`f64::INFINITY`] on a shape mismatch, like
    /// [`Evaluation::max_difference`].
    pub fn max_ulp_difference(&self, other: &Evaluation<C>) -> f64 {
        if self.gradient.len() != other.gradient.len()
            || self.value.degree() != other.value.degree()
        {
            return f64::INFINITY;
        }
        let mut worst = self.value.ulp_distance(&other.value);
        for (a, b) in self.gradient.iter().zip(other.gradient.iter()) {
            if a.degree() != b.degree() {
                return f64::INFINITY;
            }
            worst = worst.max(a.ulp_distance(b));
        }
        worst
    }
}

impl<C: Coeff> Default for Evaluation<C> {
    fn default() -> Self {
        Self::empty()
    }
}

/// Evaluates the polynomial and its gradient monomial by monomial, without
/// sharing any products (the baseline).
pub fn evaluate_naive<C: Coeff>(poly: &Polynomial<C>, inputs: &[Series<C>]) -> Evaluation<C> {
    assert_eq!(inputs.len(), poly.num_variables(), "wrong number of inputs");
    let wall = Stopwatch::start();
    let d = poly.degree();
    let mut value = poly.constant().clone();
    let mut gradient = vec![Series::zero(d); poly.num_variables()];
    for m in poly.monomials() {
        let mut prod = m.coefficient.clone();
        for &v in &m.variables {
            prod = prod.mul(&inputs[v]);
        }
        value.add_assign(&prod);
        for (pos, &v) in m.variables.iter().enumerate() {
            let mut dp = m.coefficient.clone();
            for (q, &w) in m.variables.iter().enumerate() {
                if q != pos {
                    dp = dp.mul(&inputs[w]);
                }
            }
            gradient[v].add_assign(&dp);
        }
    }
    let mut timings = KernelTimings::new();
    timings.wall_clock = wall.elapsed();
    Evaluation {
        value,
        gradient,
        timings,
    }
}

/// Executes one two-stage job schedule over `instances` independent arena
/// regions — the shared body of the single, batched and system evaluation
/// paths.  `map_slot(instance, slot)` rebases each job's slots into that
/// instance's region (identity for single and system evaluation, the
/// instance shift for batched evaluation).
///
/// Runs the layered reference launches (one per layer, `instances × jobs`
/// blocks each), or — when `graph` is given — one dependency-driven launch
/// for the whole schedule.  All job staging is borrowed from the
/// per-participant `scratch` lanes; zero-worker pools run the graph inline
/// through the reusable `graph_scratch`.
///
/// `lane_width >= 2` engages the SIMD lane tier: the instance axis is
/// decomposed by [`LaneLayout`] into full lane groups (each executing one
/// job for `lane_width` instances through the vectorized panel kernels) and
/// a scalar remainder.  Per lane the results are bitwise identical to
/// `lane_width == 1`, and the recorded timings always count *logical*
/// per-instance blocks, so lane grouping is invisible to everything but the
/// wall clock.  The caller is responsible for only requesting widths on
/// kernels with lane variants (the runners fall back to per-lane scalar
/// execution otherwise).
///
/// When `cancel` is armed and trips mid-run, the remaining blocks (and
/// layers) are abandoned at the next claim boundary and `false` is returned;
/// the arena contents are then unspecified and the caller must skip
/// extraction.  Returns `true` when every block executed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_schedule<C: Coeff>(
    convolution_layers: &[Vec<ConvJob>],
    addition_layers: &[Vec<AddJob>],
    graph: Option<&GraphPlan>,
    shared: &SharedSlice<'_, C>,
    per: usize,
    kernel: ConvolutionKernel,
    pool: Option<&WorkerPool>,
    scratch: &[Mutex<ConvScratch<C>>],
    graph_scratch: &mut InlineGraphScratch,
    timings: &mut KernelTimings,
    instances: usize,
    lane_width: usize,
    cancel: Option<&CancelToken>,
    map_slot: impl Fn(usize, usize) -> usize + Sync,
) -> bool {
    if instances == 0 {
        return true;
    }
    let lanes = LaneLayout::new(instances, lane_width);
    if let (Some(plan), Some(pool)) = (graph, pool) {
        // Dependency-driven path: every convolution and addition of every
        // instance in one graph launch — one pool rendezvous for the whole
        // evaluation (none at all on a zero-worker pool, which drains the
        // graph inline in dependency order through the workspace's reusable
        // scratch).  Block b runs node b % nodes of unit b / nodes, where a
        // unit is one instance (scalar) or one lane group of `lane_width`
        // instances; dependency edges apply within each unit (instances
        // occupy disjoint arena regions, so units share no hazards, and a
        // lane group preserves each member instance's node order).
        let nodes = plan.blocks();
        let start = Instant::now();
        let body = |lane: usize, b: usize| {
            let mut s = scratch[lane].lock();
            match lanes.unit(b / nodes) {
                LaneUnit::Group { first } => run_graph_node_lanes(
                    plan,
                    b % nodes,
                    shared,
                    per,
                    kernel,
                    &mut s,
                    lanes.width(),
                    first,
                    &map_slot,
                ),
                LaneUnit::Scalar { instance } => {
                    run_graph_node(plan, b % nodes, shared, per, kernel, &mut s, |slot| {
                        map_slot(instance, slot)
                    })
                }
            }
        };
        let completed = if pool.worker_threads() > 0 {
            pool.launch_graph_indexed_cancellable(&plan.graph, lanes.units(), cancel, body)
        } else {
            plan.graph
                .run_inline_cancellable(lanes.units(), graph_scratch, cancel, |b| body(0, b))
        };
        timings.record_graph(
            start.elapsed(),
            instances * plan.conv.len(),
            instances * plan.add.len(),
        );
        return completed;
    }
    // Layered reference path.  Block b runs job b % jobs of unit b / jobs
    // (a scalar instance or a whole lane group); disjointness within a
    // layer carries over to the rebased slots because distinct instances
    // write distinct regions.
    // Stage 1: convolution kernels, one launch per layer for all instances.
    for layer in convolution_layers {
        let jobs = layer.len();
        let blocks = lanes.units() * jobs;
        let body = |lane: usize, b: usize| {
            let job = layer[b % jobs];
            let mut s = scratch[lane].lock();
            match lanes.unit(b / jobs) {
                LaneUnit::Group { first } => run_convolution_job_lanes(
                    shared,
                    &job,
                    per,
                    kernel,
                    &mut s,
                    lanes.width(),
                    first,
                    &map_slot,
                ),
                LaneUnit::Scalar { instance } => {
                    let mapped = ConvJob {
                        in1: map_slot(instance, job.in1),
                        in2: map_slot(instance, job.in2),
                        out: map_slot(instance, job.out),
                    };
                    run_convolution_job(shared, &mapped, per, kernel, &mut s);
                }
            }
        };
        let start = Instant::now();
        let completed = match pool {
            Some(pool) => pool.launch_grid_indexed_cancellable(blocks, cancel, body),
            None => run_blocks_inline(blocks, cancel, |b| body(0, b)),
        };
        // Timings count logical per-instance jobs, not physical lane-group
        // launches: block accounting stays independent of the SIMD mode.
        timings.record(KernelKind::Convolution, start.elapsed(), instances * jobs);
        if !completed {
            return false;
        }
    }
    // Stage 2: addition kernels, launched the same way.
    for layer in addition_layers {
        let jobs = layer.len();
        let blocks = instances * jobs;
        let body = |b: usize| {
            let instance = b / jobs;
            let job = layer[b % jobs];
            let mapped = AddJob {
                src: map_slot(instance, job.src),
                dst: map_slot(instance, job.dst),
            };
            run_addition_job(shared, &mapped, per);
        };
        let start = Instant::now();
        let completed = match pool {
            Some(pool) => pool.launch_grid_indexed_cancellable(blocks, cancel, |_, b| body(b)),
            None => run_blocks_inline(blocks, cancel, body),
        };
        timings.record(KernelKind::Addition, start.elapsed(), blocks);
        if !completed {
            return false;
        }
    }
    true
}

/// Runs `blocks` block bodies on the calling thread, polling the token
/// between blocks — the pool-less analogue of a cancellable grid launch.
/// Returns `true` when every block ran.
fn run_blocks_inline(
    blocks: usize,
    cancel: Option<&CancelToken>,
    mut body: impl FnMut(usize),
) -> bool {
    for b in 0..blocks {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return false;
        }
        body(b);
    }
    true
}

/// Runs the two-stage algorithm of one polynomial's schedule at one input
/// vector, writing value and gradient into `out` — the shared internal of
/// the engine's single-polynomial [`Plan`](crate::Plan).  `graph` caches the
/// block-level plan across evaluations (built on first graph-mode use); all
/// evaluation memory is borrowed from `ws`, so a warm workspace makes the
/// run allocation-free.
///
/// When `cancel` trips mid-run the schedule is abandoned at the next block
/// boundary: extraction is skipped (the arena holds partial results),
/// `out.timings.cancelled` is set, and `ws` is still returned clean — the
/// next evaluation re-zeros the arena as always.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_single<C: Coeff>(
    poly: &Polynomial<C>,
    schedule: &Schedule,
    options: EvalOptions,
    graph: &OnceLock<GraphPlan>,
    inputs: &[Series<C>],
    pool: Option<&WorkerPool>,
    cancel: Option<&CancelToken>,
    ws: &mut Workspace<C>,
    out: &mut Evaluation<C>,
) {
    let wall = Stopwatch::start();
    let mut timings = KernelTimings::new();
    let per = schedule.layout.coeffs_per_slot();
    let participants = pool.map_or(1, WorkerPool::parallelism);
    let (arena, scratch, graph_scratch) =
        ws.parts(schedule.layout.total_coefficients(), participants);
    schedule.fill_data_array(poly, inputs, arena);
    let plan = match (options.exec_mode, pool) {
        (ExecMode::Graph, Some(_)) => Some(graph.get_or_init(|| schedule.graph_plan())),
        _ => None,
    };
    let completed = {
        let shared = SharedSlice::new(&mut *arena);
        execute_schedule(
            &schedule.convolution_layers,
            &schedule.addition_layers,
            plan,
            &shared,
            per,
            options.kernel,
            pool,
            scratch,
            graph_scratch,
            &mut timings,
            1,
            1,
            cancel,
            |_, slot| slot,
        )
    };
    if !completed {
        // Abandoned mid-schedule: the arena holds partial results, so leave
        // `out`'s buffers untouched and flag the run instead.
        timings.cancelled = true;
        timings.wall_clock = wall.elapsed();
        out.timings = timings;
        return;
    }
    schedule.extract_into(arena, schedule.value_location, &mut out.value);
    out.gradient
        .resize_with(schedule.gradient_locations.len(), || Series::zero(0));
    for (&loc, g) in schedule
        .gradient_locations
        .iter()
        .zip(out.gradient.iter_mut())
    {
        schedule.extract_into(arena, loc, g);
    }
    timings.wall_clock = wall.elapsed();
    out.timings = timings;
}

/// Executes one node of a [`GraphPlan`] on the shared data array: node ids
/// below `plan.conv.len()` are convolution jobs, the rest addition jobs.
/// `map_slot` rebases slots into the arena (identity for single and system
/// evaluation, the instance shift for batched evaluation), so the three
/// graph-mode paths share one dispatch.
pub(crate) fn run_graph_node<C: Coeff>(
    plan: &GraphPlan,
    node: usize,
    shared: &SharedSlice<'_, C>,
    per: usize,
    kernel: ConvolutionKernel,
    scratch: &mut ConvScratch<C>,
    map_slot: impl Fn(usize) -> usize,
) {
    let n_conv = plan.conv.len();
    if node < n_conv {
        let job = plan.conv[node];
        let mapped = ConvJob {
            in1: map_slot(job.in1),
            in2: map_slot(job.in2),
            out: map_slot(job.out),
        };
        run_convolution_job(shared, &mapped, per, kernel, scratch);
    } else {
        let job = plan.add[node - n_conv];
        let mapped = AddJob {
            src: map_slot(job.src),
            dst: map_slot(job.dst),
        };
        run_addition_job(shared, &mapped, per);
    }
}

/// Executes one convolution job on the shared data array.
///
/// Operands are read **directly from the arena** — within one layer no other
/// job writes them, by the schedule's validated invariant — except an
/// operand that aliases the job's own output (the in-place `b := b * a`
/// update), which is staged into the per-worker scratch first, the CPU
/// equivalent of the paper's shared-memory staging.  Nothing is allocated.
pub(crate) fn run_convolution_job<C: Coeff>(
    shared: &SharedSlice<'_, C>,
    job: &ConvJob,
    per: usize,
    kernel: ConvolutionKernel,
    scratch: &mut ConvScratch<C>,
) {
    // `Auto` is resolved when the plan compiles; resolving again here keeps
    // the dispatch total for callers that bypass the plan (it is a table
    // lookup, not a measurement).
    let kernel = match kernel {
        ConvolutionKernel::Auto => crate::crossover::auto_kernel(C::component_limbs(), per - 1),
        k => k,
    };
    let (buf, fft_scratch) = scratch.ensure_for(per, kernel);
    let (stage_x, rest) = buf.split_at_mut(per);
    let (stage_y, kernel_scratch) = rest.split_at_mut(per);
    let x_aliases_out = job.in1 == job.out;
    let y_aliases_out = job.in2 == job.out;
    // Safety (reads): the schedule guarantees that within one layer no other
    // job writes these input ranges, and the output range below is only
    // aliased when staged away first.
    if x_aliases_out {
        stage_x.copy_from_slice(unsafe { shared.slice(job.in1 * per, per) });
    }
    if y_aliases_out {
        stage_y.copy_from_slice(unsafe { shared.slice(job.in2 * per, per) });
    }
    let x: &[C] = if x_aliases_out {
        stage_x
    } else {
        unsafe { shared.slice(job.in1 * per, per) }
    };
    let y: &[C] = if y_aliases_out {
        stage_y
    } else {
        unsafe { shared.slice(job.in2 * per, per) }
    };
    // Safety: the schedule guarantees the output range is written by this
    // job only, and neither `x` nor `y` points into it (aliasing operands
    // were staged above).
    let out = unsafe { shared.slice_mut(job.out * per, per) };
    match kernel {
        ConvolutionKernel::ZeroInsertion => convolve_zero_insertion(x, y, out, kernel_scratch),
        ConvolutionKernel::Direct => convolve_seq(x, y, out),
        ConvolutionKernel::Karatsuba => convolve_karatsuba(x, y, out, kernel_scratch),
        ConvolutionKernel::Fft => convolve_fft(x, y, out, fft_scratch),
        ConvolutionKernel::Auto => unreachable!("Auto was resolved above"),
    }
}

/// Executes one addition job on the shared data array.
pub(crate) fn run_addition_job<C: Coeff>(shared: &SharedSlice<'_, C>, job: &AddJob, per: usize) {
    debug_assert_ne!(job.src, job.dst);
    // Safety: the schedule guarantees src is not written and dst is written
    // only by this job within the current layer.
    let src = unsafe { shared.slice(job.src * per, per) };
    let dst = unsafe { shared.slice_mut(job.dst * per, per) };
    add_assign_slices(dst, src);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Plan};
    use crate::monomial::Monomial;
    use psmd_multidouble::{Complex, Dd, Md, Qd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn coeff(c: f64, d: usize) -> Series<Qd> {
        Series::constant(Qd::from_f64(c), d)
    }

    fn paper_example(d: usize) -> Polynomial<Qd> {
        Polynomial::new(
            6,
            coeff(0.5, d),
            vec![
                Monomial::new(coeff(1.0, d), vec![0, 2, 5]),
                Monomial::new(coeff(2.0, d), vec![0, 1, 4, 5]),
                Monomial::new(coeff(3.0, d), vec![1, 2, 3]),
            ],
        )
    }

    fn constant_inputs(n: usize, d: usize) -> Vec<Series<Qd>> {
        (0..n)
            .map(|i| Series::constant(Qd::from_f64((i + 1) as f64), d))
            .collect()
    }

    fn compile(p: &Polynomial<Qd>, threads: usize) -> (Engine, Arc<Plan<Qd>>) {
        let engine = Engine::builder().threads(threads).build();
        let plan = engine.compile(p.clone());
        (engine, plan)
    }

    #[test]
    fn naive_gradient_of_the_paper_example_at_constants() {
        // p = 0.5 + 1 x0 x2 x5 + 2 x0 x1 x4 x5 + 3 x1 x2 x3 at x_i = i+1.
        let p = paper_example(0);
        let z = constant_inputs(6, 0);
        let e = evaluate_naive(&p, &z);
        assert_eq!(e.value.coeff(0).to_f64(), 210.5);
        // dp/dx0 = x2 x5 + 2 x1 x4 x5 = 18 + 120/1 -> 18 + 120 = 138? No:
        // 2 x1 x4 x5 = 2*2*5*6 = 120; x2 x5 = 3*6 = 18; total 138.
        assert_eq!(e.gradient[0].coeff(0).to_f64(), 138.0);
        // dp/dx3 = 3 x1 x2 = 3*2*3 = 18.
        assert_eq!(e.gradient[3].coeff(0).to_f64(), 18.0);
        // dp/dx5 = x0 x2 + 2 x0 x1 x4 = 3 + 2*1*2*5 = 23.
        assert_eq!(e.gradient[5].coeff(0).to_f64(), 23.0);
    }

    #[test]
    fn scheduled_sequential_matches_naive_on_the_paper_example() {
        let d = 4;
        let p = paper_example(d);
        let mut rng = StdRng::seed_from_u64(99);
        let z: Vec<Series<Qd>> = (0..6).map(|_| Series::random(&mut rng, d)).collect();
        let naive = evaluate_naive(&p, &z);
        let (_engine, plan) = compile(&p, 0);
        let scheduled = plan.request(&z).sequential().run().into_single();
        assert!(
            naive.max_difference(&scheduled) < 1e-55,
            "difference {}",
            naive.max_difference(&scheduled)
        );
    }

    #[test]
    fn parallel_matches_sequential_and_reports_timings() {
        let d = 8;
        let p = paper_example(d);
        let mut rng = StdRng::seed_from_u64(5);
        let z: Vec<Series<Qd>> = (0..6).map(|_| Series::random(&mut rng, d)).collect();
        let (_engine, plan) = compile(&p, 3);
        let seq = plan.request(&z).sequential().run().into_single();
        let par = plan.request(&z).run().into_single();
        // Same schedule, same arithmetic, same order within each job: results
        // must be bitwise identical.
        assert_eq!(seq.value, par.value);
        assert_eq!(seq.gradient, par.gradient);
        let schedule = plan.schedule().expect("single plan");
        assert_eq!(
            par.timings.convolution_launches,
            schedule.convolution_layers.len()
        );
        assert_eq!(
            par.timings.addition_launches,
            schedule.addition_layers.len()
        );
        assert_eq!(par.timings.convolution_blocks, schedule.convolution_jobs());
        assert_eq!(par.timings.addition_blocks, schedule.addition_jobs());
        assert!(par.timings.wall_clock_ms() >= par.timings.sum_ms() * 0.5);
    }

    #[test]
    fn graph_mode_is_bitwise_identical_and_pays_one_rendezvous() {
        let d = 8;
        let p = paper_example(d);
        let mut rng = StdRng::seed_from_u64(5);
        let z: Vec<Series<Qd>> = (0..6).map(|_| Series::random(&mut rng, d)).collect();
        let engine = Engine::builder().threads(3).build();
        let layered = engine.compile(p.clone());
        let graph =
            engine.compile_with_options(p, EvalOptions::new().with_exec_mode(ExecMode::Graph));
        assert_eq!(graph.options().exec_mode, ExecMode::Graph);
        let a = layered.request(&z).run().into_single();
        let before = engine.pool().rendezvous_count();
        let b = graph.request(&z).run().into_single();
        // The whole evaluation costs exactly one pool rendezvous, against
        // one per layer (with >= 2 blocks) on the layered path.
        assert_eq!(engine.pool().rendezvous_count(), before + 1);
        assert_eq!(a.value, b.value, "graph mode must be bitwise identical");
        assert_eq!(a.gradient, b.gradient);
        assert_eq!(b.timings.graph_launches, 1);
        assert_eq!(b.timings.convolution_launches, 0);
        assert_eq!(b.timings.addition_launches, 0);
        let schedule = layered.schedule().expect("single plan");
        assert_eq!(b.timings.convolution_blocks, schedule.convolution_jobs());
        assert_eq!(b.timings.addition_blocks, schedule.addition_jobs());
    }

    #[test]
    fn graph_mode_matches_on_a_zero_worker_pool() {
        // PSMD_THREADS=0 degenerates to inline dependency-order execution;
        // it must still be bitwise identical to the sequential reference.
        let d = 5;
        let p = paper_example(d);
        let mut rng = StdRng::seed_from_u64(29);
        let z: Vec<Series<Qd>> = (0..6).map(|_| Series::random(&mut rng, d)).collect();
        let engine = Engine::builder()
            .threads(0)
            .exec_mode(ExecMode::Graph)
            .build();
        let plan = engine.compile(p);
        let seq = plan.request(&z).sequential().run().into_single();
        let par = plan.request(&z).run().into_single();
        assert_eq!(seq.value, par.value);
        assert_eq!(seq.gradient, par.gradient);
        // The inline path never wakes a pool.
        assert_eq!(engine.pool().rendezvous_count(), 0);
        // It still reports the graph launch it performed.
        assert_eq!(par.timings.graph_launches, 1);
    }

    #[test]
    fn direct_kernel_ablation_gives_the_same_results() {
        let d = 6;
        let p = paper_example(d);
        let mut rng = StdRng::seed_from_u64(12);
        let z: Vec<Series<Qd>> = (0..6).map(|_| Series::random(&mut rng, d)).collect();
        let engine = Engine::builder().threads(0).build();
        let zero_insertion = engine
            .compile(p.clone())
            .request(&z)
            .sequential()
            .run()
            .into_single();
        let direct = engine
            .compile_with_options(p, EvalOptions::new().with_kernel(ConvolutionKernel::Direct))
            .request(&z)
            .sequential()
            .run()
            .into_single();
        assert!(zero_insertion.max_difference(&direct) < 1e-55);
    }

    #[test]
    fn single_and_two_variable_monomials_evaluate_correctly() {
        // p = 1 + 2 x0 + 3 x0 x2, gradient = (2 + 3 x2, 0, 3 x0).
        let d = 3;
        let p = Polynomial::new(
            3,
            coeff(1.0, d),
            vec![
                Monomial::new(coeff(2.0, d), vec![0]),
                Monomial::new(coeff(3.0, d), vec![0, 2]),
            ],
        );
        let mut rng = StdRng::seed_from_u64(3);
        let z: Vec<Series<Qd>> = (0..3).map(|_| Series::random(&mut rng, d)).collect();
        let naive = evaluate_naive(&p, &z);
        let (_engine, plan) = compile(&p, 0);
        let scheduled = plan.request(&z).sequential().run().into_single();
        assert!(naive.max_difference(&scheduled) < 1e-58);
        // Gradient with respect to the absent variable is zero.
        assert!(scheduled.gradient[1].is_zero());
    }

    #[test]
    fn degenerate_duplicate_single_variable_monomials() {
        // p = 2 x0 + 5 x0: gradient x0 = 7 needs the scratch accumulator.
        let d = 2;
        let p = Polynomial::new(
            1,
            coeff(0.0, d),
            vec![
                Monomial::new(coeff(2.0, d), vec![0]),
                Monomial::new(coeff(5.0, d), vec![0]),
            ],
        );
        let mut rng = StdRng::seed_from_u64(8);
        let z: Vec<Series<Qd>> = vec![Series::random(&mut rng, d)];
        let naive = evaluate_naive(&p, &z);
        let (_engine, plan) = compile(&p, 0);
        let scheduled = plan.request(&z).sequential().run().into_single();
        assert!(naive.max_difference(&scheduled) < 1e-60);
        assert_eq!(scheduled.gradient[0].coeff(0).to_f64(), 7.0);
    }

    #[test]
    fn complex_coefficients_are_supported() {
        type Cx = Complex<Dd>;
        let d = 3;
        let c = |re: f64, im: f64| Series::constant(Cx::new(Dd::from_f64(re), Dd::from_f64(im)), d);
        let p = Polynomial::new(
            3,
            c(0.5, -0.5),
            vec![
                Monomial::new(c(1.0, 1.0), vec![0, 1]),
                Monomial::new(c(0.0, 2.0), vec![1, 2]),
                Monomial::new(c(-1.0, 0.0), vec![0, 1, 2]),
            ],
        );
        let mut rng = StdRng::seed_from_u64(44);
        let z: Vec<Series<Cx>> = (0..3).map(|_| Series::random(&mut rng, d)).collect();
        let naive = evaluate_naive(&p, &z);
        let engine = Engine::builder().threads(2).build();
        let plan = engine.compile(p);
        let scheduled = plan.request(&z).sequential().run().into_single();
        assert!(naive.max_difference(&scheduled) < 1e-28);
        let par = plan.request(&z).run().into_single();
        assert_eq!(par.value, scheduled.value);
    }

    #[test]
    fn double_precision_path_works_through_md1() {
        let d = 2;
        let c = |x: f64| Series::constant(Md::<1>::from_f64(x), d);
        let p = Polynomial::new(2, c(1.0), vec![Monomial::new(c(3.0), vec![0, 1])]);
        let mut rng = StdRng::seed_from_u64(2);
        let z: Vec<Series<Md<1>>> = (0..2).map(|_| Series::random(&mut rng, d)).collect();
        let naive = evaluate_naive(&p, &z);
        let engine = Engine::builder().threads(0).build();
        let scheduled = engine
            .compile(p)
            .request(&z)
            .sequential()
            .run()
            .into_single();
        assert!(naive.max_difference(&scheduled) < 1e-13);
    }

    #[test]
    fn max_difference_reports_shape_mismatches_as_infinite() {
        // Regression test: comparing evaluations of polynomials with
        // different variable counts (gradient lengths) or truncation degrees
        // used to silently compare only the common prefix.
        let d = 2;
        let p2 = Polynomial::new(
            2,
            coeff(1.0, d),
            vec![Monomial::new(coeff(3.0, d), vec![0, 1])],
        );
        let p3 = Polynomial::new(
            3,
            coeff(1.0, d),
            vec![Monomial::new(coeff(3.0, d), vec![0, 1])],
        );
        let mut rng = StdRng::seed_from_u64(55);
        let z3: Vec<Series<Qd>> = (0..3).map(|_| Series::random(&mut rng, d)).collect();
        let e2 = evaluate_naive(&p2, &z3[..2]);
        let e3 = evaluate_naive(&p3, &z3);
        // p3's gradient has one more component: the shapes differ even though
        // the shared components agree exactly.
        assert_eq!(e2.max_difference(&e3), f64::INFINITY);
        assert_eq!(e3.max_difference(&e2), f64::INFINITY);
        // Degree mismatches are shape mismatches too.
        let deeper = Polynomial::new(
            2,
            coeff(1.0, 5),
            vec![Monomial::new(coeff(3.0, 5), vec![0, 1])],
        );
        let zd: Vec<Series<Qd>> = (0..2).map(|_| Series::random(&mut rng, 5)).collect();
        let ed = evaluate_naive(&deeper, &zd);
        assert_eq!(e2.max_difference(&ed), f64::INFINITY);
        // Equal shapes still report a finite difference.
        let again = evaluate_naive(&p2, &z3[..2]);
        assert_eq!(e2.max_difference(&again), 0.0);
    }

    #[test]
    fn evaluation_at_power_series_has_correct_series_value() {
        // p = x0 * x1 at z0 = 1 + t, z1 = 1 - t: value = 1 - t^2,
        // dp/dx0 = 1 - t, dp/dx1 = 1 + t.
        let d = 2;
        let p = Polynomial::new(
            2,
            Series::zero(d),
            vec![Monomial::new(Series::one(d), vec![0, 1])],
        );
        let z = vec![
            Series::<Qd>::from_f64_coeffs(&[1.0, 1.0, 0.0]),
            Series::<Qd>::from_f64_coeffs(&[1.0, -1.0, 0.0]),
        ];
        let (_engine, plan) = compile(&p, 0);
        let e = plan.request(&z).sequential().run().into_single();
        assert_eq!(e.value.coeff(0).to_f64(), 1.0);
        assert_eq!(e.value.coeff(1).to_f64(), 0.0);
        assert_eq!(e.value.coeff(2).to_f64(), -1.0);
        assert_eq!(e.gradient[0].coeff(1).to_f64(), -1.0);
        assert_eq!(e.gradient[1].coeff(1).to_f64(), 1.0);
    }
}
