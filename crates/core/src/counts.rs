//! Operation counting and the bridge to the device performance model.
//!
//! Section 6.2 of the paper converts an evaluation into double-precision
//! operation counts: every convolution at degree `d` performs `(d+1)^2`
//! coefficient multiplications and `d(d+1)` coefficient additions, every
//! addition job performs `d+1` coefficient additions, and each coefficient
//! operation expands into the double operations of the chosen multiple-double
//! precision.  This module exposes those counts for any schedule and converts
//! a schedule into the [`WorkloadShape`] consumed by `psmd-device`.

use crate::schedule::Schedule;
use psmd_device::WorkloadShape;
use psmd_multidouble::{CostModel, Precision};
use psmd_series::{addition_adds, convolution_adds, convolution_mults, ConvAlgo};

/// Coefficient-level operation counts of one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoefficientOps {
    /// Multiplications of coefficients (multiple-double numbers).
    pub multiplications: usize,
    /// Additions of coefficients.
    pub additions: usize,
}

impl CoefficientOps {
    /// Expands the coefficient operations into double operations at the
    /// given precision and cost model.
    pub fn double_ops(&self, precision: Precision, cost: CostModel) -> f64 {
        self.multiplications as f64 * precision.mul_ops(cost) as f64
            + self.additions as f64 * precision.add_ops(cost) as f64
    }
}

/// Counts the coefficient operations of a schedule at its truncation degree
/// in the paper's cost model (the zero-insertion kernel of Section 6.2).
///
/// This is the count the throughput reports and the device model divide by,
/// regardless of which CPU kernel actually ran; use [`coefficient_ops_for`]
/// for the honest counts of a specific convolution algorithm.
pub fn coefficient_ops(schedule: &Schedule) -> CoefficientOps {
    coefficient_ops_for(schedule, ConvAlgo::ZeroInsertion)
}

/// Counts the coefficient operations of a schedule under a specific
/// convolution algorithm (schoolbook variants or Karatsuba).
pub fn coefficient_ops_for(schedule: &Schedule, algo: ConvAlgo) -> CoefficientOps {
    let d = schedule.layout.degree;
    let n_conv = schedule.convolution_jobs();
    let n_add = schedule.addition_jobs();
    CoefficientOps {
        multiplications: n_conv * convolution_mults(algo, d),
        additions: n_conv * convolution_adds(algo, d) + n_add * addition_adds(d),
    }
}

/// Converts a schedule into the launch structure consumed by the analytic
/// performance model.
pub fn workload_shape(schedule: &Schedule) -> WorkloadShape {
    WorkloadShape {
        degree: schedule.layout.degree,
        convolution_layers: schedule.convolution_layer_sizes(),
        addition_layers: schedule.addition_layer_sizes(),
    }
}

/// Achieved double-precision throughput in GFLOPS of a measured run.
pub fn achieved_gflops(
    schedule: &Schedule,
    precision: Precision,
    cost: CostModel,
    elapsed_ms: f64,
) -> f64 {
    if elapsed_ms <= 0.0 {
        return 0.0;
    }
    coefficient_ops(schedule).double_ops(precision, cost) / (elapsed_ms * 1e-3) / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial::Monomial;
    use crate::polynomial::Polynomial;
    use psmd_multidouble::Qd;
    use psmd_series::Series;

    fn example(d: usize) -> Polynomial<Qd> {
        let coeff = |c: f64| Series::constant(Qd::from_f64(c), d);
        Polynomial::new(
            6,
            coeff(0.5),
            vec![
                Monomial::new(coeff(1.0), vec![0, 2, 5]),
                Monomial::new(coeff(2.0), vec![0, 1, 4, 5]),
                Monomial::new(coeff(3.0), vec![1, 2, 3]),
            ],
        )
    }

    #[test]
    fn coefficient_ops_follow_the_paper_formulas() {
        let d = 7;
        let p = example(d);
        let s = Schedule::build(&p);
        let ops = coefficient_ops(&s);
        assert_eq!(ops.multiplications, 21 * (d + 1) * (d + 1));
        assert_eq!(ops.additions, 21 * d * (d + 1) + 7 * (d + 1));
    }

    #[test]
    fn double_ops_scale_with_precision() {
        let p = example(3);
        let s = Schedule::build(&p);
        let ops = coefficient_ops(&s);
        let d2 = ops.double_ops(Precision::D2, CostModel::Paper);
        let d10 = ops.double_ops(Precision::D10, CostModel::Paper);
        assert!(d10 > 50.0 * d2, "deca should cost far more than dd");
        assert!(ops.double_ops(Precision::D1, CostModel::Paper) > 0.0);
    }

    #[test]
    fn workload_shape_matches_schedule() {
        let p = example(5);
        let s = Schedule::build(&p);
        let w = workload_shape(&s);
        assert_eq!(w.degree, 5);
        assert_eq!(w.convolution_jobs(), s.convolution_jobs());
        assert_eq!(w.addition_jobs(), s.addition_jobs());
        assert_eq!(
            w.launches(),
            s.convolution_layers.len() + s.addition_layers.len()
        );
        // The device model and the local count agree on the total double
        // operations.
        let local = coefficient_ops(&s).double_ops(Precision::D4, CostModel::Paper);
        let device = w.total_double_ops(Precision::D4, CostModel::Paper);
        assert_eq!(local, device);
    }

    #[test]
    fn achieved_gflops_is_positive_and_inverse_in_time() {
        let p = example(4);
        let s = Schedule::build(&p);
        let fast = achieved_gflops(&s, Precision::D4, CostModel::Paper, 1.0);
        let slow = achieved_gflops(&s, Precision::D4, CostModel::Paper, 10.0);
        assert!(fast > 0.0);
        assert!((fast / slow - 10.0).abs() < 1e-9);
        assert_eq!(
            achieved_gflops(&s, Precision::D4, CostModel::Paper, 0.0),
            0.0
        );
    }
}
