//! Shared evaluation options.
//!
//! The engine ([`crate::Engine`]) and every plan it compiles expose the same
//! knobs: which convolution kernel to run, how to execute the schedule on
//! the worker pool, and whether batched evaluation packs instances into
//! SIMD lane groups.  This module holds the one struct they share, plus the
//! [`SimdMode`] selector and its `PSMD_SIMD` environment contract.

use crate::evaluate::{ConvolutionKernel, ExecMode};
use psmd_multidouble::lanes;

/// How batched evaluation uses the machine's vector units.
///
/// The SIMD tier packs `W` independent batch instances into
/// structure-of-arrays lane panels and runs the convolution recurrence over
/// all of them per instruction (see `psmd_multidouble::lanes`).  Per lane
/// the results are bitwise identical to the scalar path, so this knob
/// changes only speed — which is why `Auto` is the default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SimdMode {
    /// Pick the widest lane width the running machine supports (AVX-512 →
    /// 8, AVX2 → 4, NEON → 2, otherwise scalar), honoring a `PSMD_SIMD`
    /// environment override.  Resolved to a concrete mode when a plan is
    /// compiled.
    #[default]
    Auto,
    /// Disable the lane tier: batched evaluation runs the scalar kernels
    /// only.
    Scalar,
    /// Force a specific lane width (2, 4 or 8).  Widths beyond what the
    /// hardware vectorizes still run — as portable scalar-lane code with
    /// identical bits — so a forced width is reproducible everywhere.
    ForceWidth(usize),
}

impl SimdMode {
    /// The lane widths the engine's kernels are compiled for.
    pub const SUPPORTED_WIDTHS: [usize; 3] = [2, 4, 8];

    /// The SIMD mode requested via `PSMD_SIMD`, if any.
    ///
    /// Recognized values are `auto`, `scalar` and the widths `2`, `4`, `8`.
    /// Panics on anything else — mirroring the `PSMD_THREADS` contract, so
    /// a CI matrix entry with a typo fails loudly instead of silently
    /// falling back.  See [`SimdMode::try_from_env`] for the fallible form.
    pub fn from_env() -> Option<SimdMode> {
        match Self::try_from_env() {
            Ok(mode) => mode,
            Err(message) => panic!("{message}"),
        }
    }

    /// The fallible form of [`SimdMode::from_env`]: an unrecognized
    /// `PSMD_SIMD` value becomes an `Err` describing the problem instead of
    /// a panic, so services can surface a configuration error.
    pub fn try_from_env() -> Result<Option<SimdMode>, String> {
        let Ok(value) = std::env::var("PSMD_SIMD") else {
            return Ok(None);
        };
        match value.trim() {
            "auto" => Ok(Some(SimdMode::Auto)),
            "scalar" => Ok(Some(SimdMode::Scalar)),
            "2" => Ok(Some(SimdMode::ForceWidth(2))),
            "4" => Ok(Some(SimdMode::ForceWidth(4))),
            "8" => Ok(Some(SimdMode::ForceWidth(8))),
            _ => Err(format!(
                "PSMD_SIMD must be one of auto, scalar, 2, 4, 8; got '{value}'"
            )),
        }
    }

    /// Resolves `Auto` to a concrete mode: the `PSMD_SIMD` override when
    /// set, otherwise the widest width the machine's vector units support
    /// ([`lanes::detected_lane_width`]); machines without a usable vector
    /// extension resolve to [`SimdMode::Scalar`].  Explicit modes pass
    /// through unchanged.
    ///
    /// # Panics
    ///
    /// Panics on a forced width outside [`SimdMode::SUPPORTED_WIDTHS`]
    /// (width 1 is accepted as an alias for [`SimdMode::Scalar`]) and on an
    /// unrecognized `PSMD_SIMD` value.
    pub fn resolved(self) -> SimdMode {
        let mode = match self {
            SimdMode::Auto => match SimdMode::from_env() {
                Some(SimdMode::Auto) | None => match lanes::detected_lane_width() {
                    w if w >= 2 => SimdMode::ForceWidth(w),
                    _ => SimdMode::Scalar,
                },
                Some(explicit) => explicit,
            },
            explicit => explicit,
        };
        match mode {
            SimdMode::ForceWidth(1) => SimdMode::Scalar,
            SimdMode::ForceWidth(w) if !Self::SUPPORTED_WIDTHS.contains(&w) => {
                panic!("unsupported SIMD lane width {w}: expected 2, 4 or 8")
            }
            resolved => resolved,
        }
    }

    /// The lane width this mode runs batched convolutions at (1 for the
    /// scalar path).  Meaningful on resolved modes; `Auto` reports the
    /// width it would resolve to on this machine.
    pub fn lane_width(self) -> usize {
        match self.resolved() {
            SimdMode::ForceWidth(w) => w,
            _ => 1,
        }
    }
}

/// The evaluation knobs shared by the engine and its compiled plans: the
/// convolution kernel variant, the pool execution mode and the SIMD lane
/// mode.
///
/// `EvalOptions` is part of the engine's plan-cache key, so it is `Hash`
/// and `Eq`: plans compiled with different options coexist in the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct EvalOptions {
    /// Which convolution kernel the jobs run (ablation knob).
    pub kernel: ConvolutionKernel,
    /// How parallel evaluation executes on the pool: layered launches or one
    /// dependency-driven task-graph launch.
    pub exec_mode: ExecMode,
    /// Whether batched evaluation packs instances into SIMD lane groups.
    pub simd: SimdMode,
}

impl EvalOptions {
    /// The default options: zero-insertion kernel, layered execution, SIMD
    /// lanes auto-detected.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the convolution kernel variant.
    pub fn with_kernel(mut self, kernel: ConvolutionKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Selects the pool execution mode.
    pub fn with_exec_mode(mut self, exec_mode: ExecMode) -> Self {
        self.exec_mode = exec_mode;
        self
    }

    /// Selects the SIMD lane mode for batched evaluation.
    pub fn with_simd(mut self, simd: SimdMode) -> Self {
        self.simd = simd;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_set_the_knobs() {
        let o = EvalOptions::new()
            .with_kernel(ConvolutionKernel::Direct)
            .with_exec_mode(ExecMode::Graph)
            .with_simd(SimdMode::ForceWidth(4));
        assert_eq!(o.kernel, ConvolutionKernel::Direct);
        assert_eq!(o.exec_mode, ExecMode::Graph);
        assert_eq!(o.simd, SimdMode::ForceWidth(4));
        assert_eq!(
            EvalOptions::default().kernel,
            ConvolutionKernel::ZeroInsertion
        );
        assert_eq!(EvalOptions::default().exec_mode, ExecMode::Layered);
        assert_eq!(EvalOptions::default().simd, SimdMode::Auto);
    }

    #[test]
    fn resolution_eliminates_auto_and_normalizes_width_one() {
        // Resolution must produce a concrete mode whatever the machine.
        match SimdMode::Auto.resolved() {
            SimdMode::Scalar => {}
            SimdMode::ForceWidth(w) => assert!(SimdMode::SUPPORTED_WIDTHS.contains(&w)),
            SimdMode::Auto => panic!("Auto must resolve to a concrete mode"),
        }
        assert_eq!(SimdMode::Scalar.resolved(), SimdMode::Scalar);
        assert_eq!(SimdMode::ForceWidth(1).resolved(), SimdMode::Scalar);
        assert_eq!(
            SimdMode::ForceWidth(8).resolved(),
            SimdMode::ForceWidth(8),
            "explicit widths pass through untouched"
        );
        assert_eq!(SimdMode::Scalar.lane_width(), 1);
        assert_eq!(SimdMode::ForceWidth(4).lane_width(), 4);
    }

    #[test]
    #[should_panic(expected = "unsupported SIMD lane width")]
    fn resolution_rejects_unsupported_widths() {
        let _ = SimdMode::ForceWidth(3).resolved();
    }
}
