//! Shared evaluation options.
//!
//! The engine ([`crate::Engine`]) and every plan it compiles expose the same
//! two knobs: which convolution kernel to run and how to execute the
//! schedule on the worker pool.  This module holds the one struct they
//! share.

use crate::evaluate::{ConvolutionKernel, ExecMode};

/// The evaluation knobs shared by the engine and its compiled plans: the
/// convolution kernel variant and the pool execution mode.
///
/// `EvalOptions` is part of the engine's plan-cache key, so it is `Hash`
/// and `Eq`: plans compiled with different options coexist in the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct EvalOptions {
    /// Which convolution kernel the jobs run (ablation knob).
    pub kernel: ConvolutionKernel,
    /// How parallel evaluation executes on the pool: layered launches or one
    /// dependency-driven task-graph launch.
    pub exec_mode: ExecMode,
}

impl EvalOptions {
    /// The default options: zero-insertion kernel, layered execution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the convolution kernel variant.
    pub fn with_kernel(mut self, kernel: ConvolutionKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Selects the pool execution mode.
    pub fn with_exec_mode(mut self, exec_mode: ExecMode) -> Self {
        self.exec_mode = exec_mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_set_the_knobs() {
        let o = EvalOptions::new()
            .with_kernel(ConvolutionKernel::Direct)
            .with_exec_mode(ExecMode::Graph);
        assert_eq!(o.kernel, ConvolutionKernel::Direct);
        assert_eq!(o.exec_mode, ExecMode::Graph);
        assert_eq!(
            EvalOptions::default().kernel,
            ConvolutionKernel::ZeroInsertion
        );
        assert_eq!(EvalOptions::default().exec_mode, ExecMode::Layered);
    }
}
