//! Polynomials in several variables with power-series coefficients.
//!
//! This is the input data structure of Equation (3) of the paper: a constant
//! term plus `N` monomials, each a coefficient series times a product of
//! distinct variables, to be evaluated and differentiated at a vector of `n`
//! power series truncated at a common degree `d`.

use crate::monomial::Monomial;
use psmd_multidouble::Coeff;
use psmd_series::Series;

/// A polynomial `p(x_1, ..., x_n) = a_0 + sum_k a_k x_{i1} ... x_{ink}` with
/// power-series coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial<C> {
    num_variables: usize,
    degree: usize,
    constant: Series<C>,
    monomials: Vec<Monomial<C>>,
}

impl<C: Coeff> Polynomial<C> {
    /// Creates a polynomial with the given constant term and monomials.
    ///
    /// # Panics
    ///
    /// Panics when a monomial references a variable index `>= num_variables`
    /// or has a coefficient series of a different truncation degree.
    pub fn new(num_variables: usize, constant: Series<C>, monomials: Vec<Monomial<C>>) -> Self {
        let degree = constant.degree();
        for (k, m) in monomials.iter().enumerate() {
            assert_eq!(
                m.coefficient.degree(),
                degree,
                "monomial {k}: coefficient degree differs from the constant term"
            );
            if let Some(&max) = m.variables.last() {
                assert!(
                    max < num_variables,
                    "monomial {k} references variable {max} but the polynomial has {num_variables}"
                );
            }
        }
        Self {
            num_variables,
            degree,
            constant,
            monomials,
        }
    }

    /// The zero polynomial in `num_variables` variables.
    pub fn zero(num_variables: usize, degree: usize) -> Self {
        Self::new(num_variables, Series::zero(degree), Vec::new())
    }

    /// Number of variables `n`.
    pub fn num_variables(&self) -> usize {
        self.num_variables
    }

    /// Common truncation degree `d` of all coefficient series.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The constant term `a_0`.
    pub fn constant(&self) -> &Series<C> {
        &self.constant
    }

    /// The monomials (the constant term is not included, matching the
    /// paper's count `N`).
    pub fn monomials(&self) -> &[Monomial<C>] {
        &self.monomials
    }

    /// Number of monomials `N` (constant term not counted).
    pub fn num_monomials(&self) -> usize {
        self.monomials.len()
    }

    /// The largest number of variables appearing in a single monomial (the
    /// quantity `m` in Corollary 4.1 and in Table 2).
    pub fn max_variables_per_monomial(&self) -> usize {
        self.monomials
            .iter()
            .map(|m| m.num_variables())
            .max()
            .unwrap_or(0)
    }

    /// Indices of the monomials containing a given variable.
    pub fn monomials_with_variable(&self, variable: usize) -> Vec<usize> {
        self.monomials
            .iter()
            .enumerate()
            .filter(|(_, m)| m.contains(variable))
            .map(|(k, _)| k)
            .collect()
    }

    /// Total number of convolution jobs of the evaluation/differentiation
    /// scheme (Section 4).
    pub fn convolution_jobs(&self) -> usize {
        self.monomials.iter().map(|m| m.convolution_jobs()).sum()
    }

    /// Total number of addition jobs: `N` additions for the value (including
    /// folding in the constant term) plus, for every variable, one fewer
    /// addition than the number of monomials containing it.
    pub fn addition_jobs(&self) -> usize {
        let value_adds = self.num_monomials();
        let gradient_adds: usize = (0..self.num_variables)
            .map(|v| {
                let count = self.monomials.iter().filter(|m| m.contains(v)).count();
                count.saturating_sub(1)
            })
            .sum();
        value_adds + gradient_adds
    }

    /// Evaluates only the polynomial value (no gradient) by accumulating
    /// monomial products; a simple reference used by tests and examples.
    pub fn value_at(&self, inputs: &[Series<C>]) -> Series<C> {
        assert_eq!(inputs.len(), self.num_variables, "wrong number of inputs");
        let mut acc = self.constant.clone();
        for m in &self.monomials {
            let mut prod = m.coefficient.clone();
            for &v in &m.variables {
                prod = prod.mul(&inputs[v]);
            }
            acc.add_assign(&prod);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psmd_multidouble::Qd;

    fn s(values: &[f64]) -> Series<Qd> {
        Series::from_f64_coeffs(values)
    }

    /// The example polynomial of Section 4, Equation (4):
    /// p = a0 + a1 x1 x3 x6 + a2 x1 x2 x5 x6 + a3 x2 x3 x4  (1-based in the
    /// paper; 0-based indices here).
    pub fn paper_example() -> Polynomial<Qd> {
        let d = 2;
        let coeff = |c: f64| Series::constant(Qd::from_f64(c), d);
        Polynomial::new(
            6,
            coeff(0.5),
            vec![
                Monomial::new(coeff(1.0), vec![0, 2, 5]),
                Monomial::new(coeff(2.0), vec![0, 1, 4, 5]),
                Monomial::new(coeff(3.0), vec![1, 2, 3]),
            ],
        )
    }

    #[test]
    fn construction_and_accessors() {
        let p = paper_example();
        assert_eq!(p.num_variables(), 6);
        assert_eq!(p.num_monomials(), 3);
        assert_eq!(p.degree(), 2);
        assert_eq!(p.max_variables_per_monomial(), 4);
        assert_eq!(p.monomials_with_variable(0), vec![0, 1]);
        assert_eq!(p.monomials_with_variable(3), vec![2]);
        assert!(p.monomials_with_variable(6).is_empty());
    }

    #[test]
    fn job_counts_match_the_worked_example() {
        // Equation (4) lists 21 convolutions for the example polynomial.
        let p = paper_example();
        assert_eq!(p.convolution_jobs(), 21);
        // Additions: 3 for the value; variables appear in 2,2,2,1,1,2
        // monomials, contributing 1+1+1+0+0+1 = 4 more.
        assert_eq!(p.addition_jobs(), 7);
    }

    #[test]
    #[should_panic(expected = "references variable")]
    fn out_of_range_variables_are_rejected() {
        let _ = Polynomial::new(2, s(&[0.0]), vec![Monomial::new(s(&[1.0]), vec![0, 5])]);
    }

    #[test]
    #[should_panic(expected = "coefficient degree differs")]
    fn degree_mismatch_is_rejected() {
        let _ = Polynomial::new(2, s(&[0.0, 0.0]), vec![Monomial::new(s(&[1.0]), vec![0])]);
    }

    #[test]
    fn value_at_constant_inputs_matches_scalar_arithmetic() {
        // p = 0.5 + 1*x0 x2 x5 + 2*x0 x1 x4 x5 + 3*x1 x2 x3 at x_i = i + 1.
        let p = paper_example();
        let inputs: Vec<Series<Qd>> = (0..6)
            .map(|i| Series::constant(Qd::from_f64((i + 1) as f64), 2))
            .collect();
        let v = p.value_at(&inputs);
        // 0.5 + 1*1*3*6 + 2*1*2*5*6 + 3*2*3*4 = 0.5 + 18 + 120 + 72 = 210.5
        assert_eq!(v.coeff(0).to_f64(), 210.5);
        assert_eq!(v.coeff(1).to_f64(), 0.0);
    }

    #[test]
    fn zero_polynomial_behaves() {
        let p = Polynomial::<Qd>::zero(3, 4);
        assert_eq!(p.convolution_jobs(), 0);
        assert_eq!(p.addition_jobs(), 0);
        let inputs: Vec<Series<Qd>> = (0..3).map(|_| Series::one(4)).collect();
        assert!(p.value_at(&inputs).is_zero());
    }
}
