//! # psmd-core
//!
//! The paper's primary contribution: evaluation and differentiation of a
//! polynomial in several variables at a vector of truncated power series,
//! organized as a massively parallel computation of convolution and addition
//! jobs.
//!
//! The pipeline is:
//!
//! 1. describe the polynomial ([`Polynomial`], [`Monomial`]);
//! 2. build the job [`Schedule`] once per polynomial (forward/backward/cross
//!    products of every monomial, layered so that independent jobs form one
//!    kernel launch, plus the tree summation of the evaluated monomials);
//! 3. compile it once into an owned, shareable plan with the [`Engine`]
//!    ([`Engine::compile`] returns an `Arc<`[`Plan`]`>`; repeat compiles hit
//!    a structural plan cache) and evaluate at any input series — one
//!    vector, a whole batch, or a system — with the [`Plan::request`]
//!    builder, layered (one kernel launch per layer) or dependency-driven
//!    ([`ExecMode::Graph`]: one task-graph launch, hence one pool
//!    rendezvous, per evaluation), collecting per-kernel timings.  All
//!    evaluation memory is borrowed from pooled [`Workspace`]s, so
//!    steady-state evaluation allocates nothing
//!    (`request(..).into(&mut out)` for callers that also reuse the
//!    output);
//! 4. compare against the naive baseline ([`evaluate_naive`]) and convert the
//!    schedule into the [`psmd_device::WorkloadShape`] of the analytic GPU
//!    performance model ([`counts::workload_shape`]).
//!
//! ```
//! use psmd_core::{evaluate_naive, Engine, Monomial, Polynomial};
//! use psmd_multidouble::Dd;
//! use psmd_series::Series;
//!
//! // p = 1 + 3 x0 x1, evaluated at z0 = 1 + t, z1 = 1 - t (double-double).
//! let d = 2;
//! let constant = Series::constant(Dd::from_f64(1.0), d);
//! let coeff = Series::constant(Dd::from_f64(3.0), d);
//! let p = Polynomial::new(2, constant, vec![Monomial::new(coeff, vec![0, 1])]);
//! let z = vec![
//!     Series::<Dd>::from_f64_coeffs(&[1.0, 1.0, 0.0]),
//!     Series::<Dd>::from_f64_coeffs(&[1.0, -1.0, 0.0]),
//! ];
//! let engine = Engine::builder().build();
//! let plan = engine.compile(p.clone());
//! let eval = plan.request(&z).run().into_single();
//! assert_eq!(eval.value.coeff(0).to_f64(), 4.0);      // 1 + 3
//! assert_eq!(eval.value.coeff(2).to_f64(), -3.0);     // -3 t^2
//! assert_eq!(eval.gradient[0].coeff(1).to_f64(), -3.0);
//! assert!(eval.max_difference(&evaluate_naive(&p, &z)) < 1e-30);
//! ```
//!
//! The historical borrowing front-ends (`ScheduledEvaluator`,
//! `BatchEvaluator`, `SystemEvaluator`) and the five-method `evaluate*`
//! shim family have been removed; [`Engine::compile`] + [`Plan::request`]
//! is the one entry point.
//!
//! Batched evaluation additionally packs instances into SIMD lane groups
//! when the hardware supports it (AVX-512, AVX2, NEON) — bitwise identical
//! per lane to the scalar path and controlled by [`SimdMode`] /
//! `PSMD_SIMD`; see [`lanes`] and `psmd_multidouble::lanes`.

#![warn(missing_docs)]

pub mod batch;
pub mod counts;
pub mod crossover;
pub mod engine;
pub mod error;
pub mod evaluate;
pub mod generators;
pub mod lanes;
pub mod monomial;
pub mod newton;
pub mod options;
pub mod polynomial;
pub mod schedule;
pub mod system;
pub mod workspace;

pub use batch::BatchEvaluation;
pub use counts::{
    achieved_gflops, coefficient_ops, coefficient_ops_for, workload_shape, CoefficientOps,
};
pub use crossover::{auto_kernel, crossover_for, Crossover, CROSSOVER_TABLE};
pub use engine::{
    AnyEvalOutput, AnyEvalRequest, AnyInputs, AnyPlan, AnyPolySource, BoundAnyEvalRequest,
    BoundEvalRequest, Engine, EngineBuilder, EvalOutput, EvalRequest, GraphPlanStats, Inputs,
    OwnedInputs, Plan, PlanCacheStats, PlanStats, PolySource,
};
pub use error::Error;
pub use evaluate::{evaluate_naive, ConvolutionKernel, Evaluation, ExecMode};
pub use generators::{
    banded_supports, binomial, combinations, polynomial_with_supports, random_inputs,
    random_polynomial,
};
pub use lanes::{LaneLayout, LaneUnit};
pub use monomial::Monomial;
pub use newton::{
    try_newton_system, try_newton_system_parallel, try_solve_linearized, try_solve_linearized_into,
    LinearSolveWorkspace, NewtonOptions, NewtonResult, NewtonTrace,
};
pub use options::{EvalOptions, SimdMode};
pub use polynomial::Polynomial;
pub use psmd_runtime::CancelToken;
pub use schedule::{AddJob, ConvJob, DataLayout, GraphPlan, ResultLocation, Schedule};
pub use system::{
    evaluate_naive_system, SystemBatchEvaluation, SystemEvaluation, SystemLayout, SystemSchedule,
};
pub use workspace::{PooledWorkspace, Workspace, WorkspacePool};
