//! Newton's method on polynomial systems at power series — the paper's
//! motivating application (Section 1), built on the fused system schedule
//! (see [`SystemSchedule`]).
//!
//! One Newton step at the current series vector `z(t)` solves the linearized
//! system
//!
//! ```text
//! J(z(t)) · Δ(t) = -F(z(t))
//! ```
//!
//! where `F` collects the equation values and `J` is the `n × n` Jacobian of
//! power series, both produced by a **single** fused evaluation pass.  The
//! linear solve is *staged* degree by degree (the standard linearization of
//! power-series solving): writing `J(t) = J_0 + J_1 t + …` and
//! `Δ(t) = Δ_0 + Δ_1 t + …`, the constant matrix `J_0` is LU-factored once
//! per step and every coefficient vector follows by back-substitution from
//!
//! ```text
//! J_0 · Δ_k = -F_k - Σ_{j=1..k} J_j · Δ_{k-j}
//! ```
//!
//! so one step costs one fused evaluation, one `O(n^3)` factorization of the
//! constant coefficients and `d + 1` cheap triangular solves.  With an exact
//! constant-term solution as the starting point, the number of correct
//! series coefficients doubles every iteration.
//!
//! The whole iteration is **allocation-stable**: one evaluation
//! [`Workspace`], one [`SystemEvaluation`] and one [`LinearSolveWorkspace`]
//! are created up front and reused by every Newton step, so steps after the
//! first neither re-stage the arena nor re-allocate the LU / staging buffers
//! of the degree-by-degree solves.
//!
//! The fallible entry points ([`try_newton_system`],
//! [`try_solve_linearized_into`]) follow the `try_build`/`try_compile`
//! convention: a non-square system is an [`Error::Config`] and a singular
//! constant-term Jacobian an [`Error::Numerical`], so iterative callers —
//! the path tracker above all — can react (shrink the step, escalate the
//! precision) instead of aborting.  Each run reports a [`NewtonTrace`]: the
//! per-iteration residual norms, the convergence verdict and a pivot-ratio
//! conditioning estimate of the last factorization, which is exactly the
//! trajectory the tracker's escalation policy inspects.

use crate::error::Error;
use crate::options::EvalOptions;
use crate::polynomial::Polynomial;
use crate::schedule::GraphPlan;
use crate::system::{run_system, SystemEvaluation, SystemSchedule};
use crate::workspace::Workspace;
use psmd_multidouble::RealCoeff;
use psmd_runtime::WorkerPool;
use psmd_series::Series;
use std::sync::OnceLock;

/// Options of the Newton iteration.
#[derive(Debug, Clone, Copy)]
pub struct NewtonOptions {
    /// Maximum number of Newton steps.
    pub max_iterations: usize,
    /// Stop early once the residual magnitude (the largest coefficient of
    /// any equation value) falls below this threshold.
    pub tolerance: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self {
            max_iterations: 8,
            tolerance: 0.0,
        }
    }
}

/// The per-iteration trajectory of a Newton run: what the convergence
/// verdict was decided on, exposed so that callers (the path tracker's
/// escalation policy, the examples, the tests) all read the same numbers.
#[derive(Debug, Clone, Default)]
pub struct NewtonTrace {
    /// The residual magnitude `max_i |f_i(z)|` *before* each executed step,
    /// plus — when the iteration stopped without meeting the tolerance — the
    /// residual of the final iterate.
    pub residuals: Vec<f64>,
    /// Number of steps executed.
    pub iterations: usize,
    /// True when the final residual fell below the tolerance.
    pub converged: bool,
    /// Pivot-ratio conditioning estimate of the last constant-term
    /// factorization (see [`LinearSolveWorkspace::conditioning`]); `0.0`
    /// when no step executed.
    pub conditioning: f64,
}

impl NewtonTrace {
    /// The residual of the final iterate ([`f64::INFINITY`] when the run
    /// never evaluated).
    pub fn final_residual(&self) -> f64 {
        self.residuals.last().copied().unwrap_or(f64::INFINITY)
    }

    /// How much the last executed step improved the residual:
    /// `residuals[n-2] / residuals[n-1]`.  Returns [`f64::INFINITY`] when
    /// fewer than two residuals were recorded or the last residual is zero —
    /// both mean "no evidence of stagnation".  An escalation policy treats a
    /// ratio near 1 as stalling at the working precision's roundoff floor.
    pub fn last_improvement(&self) -> f64 {
        let n = self.residuals.len();
        if n < 2 {
            return f64::INFINITY;
        }
        let last = self.residuals[n - 1];
        if last == 0.0 {
            return f64::INFINITY;
        }
        self.residuals[n - 2] / last
    }
}

/// The outcome of a Newton run: the final iterate plus the
/// [`NewtonTrace`] it was accepted (or rejected) on.
#[derive(Debug, Clone)]
pub struct NewtonResult<C> {
    /// The series vector after the last step.
    pub solution: Vec<Series<C>>,
    /// The per-iteration residual trajectory and convergence verdict.
    pub trace: NewtonTrace,
}

impl<C> NewtonResult<C> {
    /// True when the final residual fell below the tolerance.
    pub fn converged(&self) -> bool {
        self.trace.converged
    }

    /// Number of steps executed.
    pub fn iterations(&self) -> usize {
        self.trace.iterations
    }

    /// The residual magnitude before each executed step (see
    /// [`NewtonTrace::residuals`]).
    pub fn residuals(&self) -> &[f64] {
        &self.trace.residuals
    }
}

/// Runs Newton's method on a square polynomial system at power series,
/// evaluating values and Jacobian with one fused system-schedule pass
/// per step (sequential kernels).
///
/// # Errors
///
/// [`Error::Config`] when the system is not square (`m != n`) or the initial
/// guess has the wrong length or degree; [`Error::Numerical`] when the
/// constant-term Jacobian turns (numerically) singular at some iterate.
pub fn try_newton_system<C: RealCoeff>(
    polys: &[Polynomial<C>],
    initial: &[Series<C>],
    options: &NewtonOptions,
) -> Result<NewtonResult<C>, Error> {
    try_newton_system_impl(polys, initial, options, None)
}

/// Like [`try_newton_system`], but runs every fused evaluation on the worker
/// pool (one launch per merged job layer).
pub fn try_newton_system_parallel<C: RealCoeff>(
    polys: &[Polynomial<C>],
    initial: &[Series<C>],
    options: &NewtonOptions,
    pool: &WorkerPool,
) -> Result<NewtonResult<C>, Error> {
    try_newton_system_impl(polys, initial, options, Some(pool))
}

fn try_newton_system_impl<C: RealCoeff>(
    polys: &[Polynomial<C>],
    initial: &[Series<C>],
    options: &NewtonOptions,
    pool: Option<&WorkerPool>,
) -> Result<NewtonResult<C>, Error> {
    let n = polys.len();
    if n == 0 {
        return Err(Error::config("a system needs at least one equation"));
    }
    if polys[0].num_variables() != n {
        return Err(Error::config(format!(
            "newton_system needs a square system (m equations in m variables), \
             got {} equations in {} variables",
            n,
            polys[0].num_variables()
        )));
    }
    if initial.len() != n {
        return Err(Error::config(format!(
            "initial guess has the wrong length: {} for {n} variables",
            initial.len()
        )));
    }
    let degree = polys[0].degree();
    for z in initial {
        if z.degree() != degree {
            return Err(Error::config(format!(
                "initial guess degree mismatch: {} for truncation degree {degree}",
                z.degree()
            )));
        }
    }
    // The merged schedule is built once and reused by every step, and so is
    // every buffer: the evaluation workspace (arena, per-worker scratch),
    // the evaluation output, the negated right-hand side, the update, and
    // the staged-solve workspace.  Steps after the first allocate nothing.
    let schedule = SystemSchedule::build(polys);
    let graph: OnceLock<GraphPlan> = OnceLock::new();
    let mut ws = Workspace::new(pool.map_or(1, WorkerPool::parallelism));
    let mut eval = SystemEvaluation::empty();
    let mut rhs: Vec<Series<C>> = Vec::new();
    let mut delta: Vec<Series<C>> = Vec::new();
    let mut solver = LinearSolveWorkspace::new();
    let mut z: Vec<Series<C>> = initial.to_vec();
    let mut trace = NewtonTrace::default();
    let residual_of = |eval: &SystemEvaluation<C>| {
        eval.values
            .iter()
            .map(Series::max_magnitude)
            .fold(0.0, f64::max)
    };
    for _ in 0..options.max_iterations {
        run_system(
            polys,
            &schedule,
            EvalOptions::default(),
            &graph,
            &z,
            pool,
            None,
            &mut ws,
            &mut eval,
        );
        let residual = residual_of(&eval);
        trace.residuals.push(residual);
        if residual <= options.tolerance {
            trace.converged = true;
            break;
        }
        rhs.resize_with(n, || Series::zero(0));
        for (r, v) in rhs.iter_mut().zip(eval.values.iter()) {
            v.neg_into(r);
        }
        try_solve_linearized_into(&eval.jacobian, &rhs, &mut solver, &mut delta)?;
        trace.conditioning = solver.conditioning();
        for (zi, di) in z.iter_mut().zip(delta.iter()) {
            zi.add_assign(di);
        }
        trace.iterations += 1;
    }
    if !trace.converged {
        // Report the residual of the final iterate.
        run_system(
            polys,
            &schedule,
            EvalOptions::default(),
            &graph,
            &z,
            pool,
            None,
            &mut ws,
            &mut eval,
        );
        let residual = residual_of(&eval);
        trace.residuals.push(residual);
        trace.converged = residual <= options.tolerance;
    }
    Ok(NewtonResult { solution: z, trace })
}

/// Reusable buffers of the staged linearized solve: the flat `n × n` LU
/// factorization of `J_0`, the pivot permutation, and the per-degree
/// right-hand-side staging.  Create it once and hand it to
/// [`try_solve_linearized_into`] for every Newton step — after the first
/// call the solve allocates nothing.
#[derive(Debug, Default)]
pub struct LinearSolveWorkspace<C> {
    /// Row-major `n × n` LU factors of the constant-term Jacobian.
    lu: Vec<C>,
    /// Row permutation of the partial pivoting.
    perm: Vec<usize>,
    /// The right-hand side of the current degree.
    rhs_k: Vec<C>,
    /// The permuted/solved coefficient vector of the current degree.
    y: Vec<C>,
    /// Magnitude of the smallest surviving pivot of the last factorization.
    pivot_min: f64,
    /// Magnitude of the largest surviving pivot of the last factorization.
    pivot_max: f64,
}

impl<C: RealCoeff> LinearSolveWorkspace<C> {
    /// An empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self {
            lu: Vec::new(),
            perm: Vec::new(),
            rhs_k: Vec::new(),
            y: Vec::new(),
            pivot_min: 0.0,
            pivot_max: 0.0,
        }
    }

    /// Pivot-ratio conditioning estimate of the last factorization:
    /// `max |pivot| / min |pivot|` of the partially-pivoted LU of `J_0`.
    /// A cheap lower-bound proxy for the condition number — it costs
    /// nothing beyond the factorization itself — that grows as the iterate
    /// approaches a singular Jacobian, which is exactly the signal the path
    /// tracker's precision-escalation policy watches.  Returns `0.0` before
    /// the first solve and [`f64::INFINITY`] when the last factorization
    /// failed on a zero pivot.
    pub fn conditioning(&self) -> f64 {
        if self.pivot_max == 0.0 {
            0.0
        } else if self.pivot_min == 0.0 {
            f64::INFINITY
        } else {
            self.pivot_max / self.pivot_min
        }
    }
}

/// Solves the linear system `J(t) · x(t) = b(t)` over truncated power
/// series with the staged (linearized) scheme: LU-factor the constant
/// matrix `J_0` once with partial pivoting, then obtain every coefficient
/// vector `x_k` by back-substitution from
/// `J_0 x_k = b_k - Σ_{j=1..k} J_j x_{k-j}`.
///
/// `jacobian[i][j]` is the series entry in row `i`, column `j`; `rhs[i]` the
/// series right-hand side of row `i`.  All entries must share one truncation
/// degree.
///
/// # Errors
///
/// [`Error::Config`] when the matrix is not square or the shapes disagree;
/// [`Error::Numerical`] when `J_0` is numerically singular (a zero pivot
/// survives partial pivoting).
pub fn try_solve_linearized<C: RealCoeff>(
    jacobian: &[Vec<Series<C>>],
    rhs: &[Series<C>],
) -> Result<Vec<Series<C>>, Error> {
    let mut ws = LinearSolveWorkspace::new();
    let mut solution = Vec::new();
    try_solve_linearized_into(jacobian, rhs, &mut ws, &mut solution)?;
    Ok(solution)
}

/// Like [`try_solve_linearized`], but all staging lives in the reusable
/// [`LinearSolveWorkspace`] and the solution is written into `solution`
/// (resized in place) — the allocation-free form the Newton iteration and
/// the path tracker's corrector run every step.
///
/// # Errors
///
/// See [`try_solve_linearized`].  On error the workspace and `solution`
/// hold unspecified intermediate values; both are reusable for the next
/// solve.
pub fn try_solve_linearized_into<C: RealCoeff>(
    jacobian: &[Vec<Series<C>>],
    rhs: &[Series<C>],
    ws: &mut LinearSolveWorkspace<C>,
    solution: &mut Vec<Series<C>>,
) -> Result<(), Error> {
    let n = jacobian.len();
    if n == 0 {
        return Err(Error::config("empty linear system"));
    }
    if rhs.len() != n {
        return Err(Error::config(format!(
            "right-hand side length mismatch: {} rows for {n} equations",
            rhs.len()
        )));
    }
    let degree = rhs[0].degree();
    for row in jacobian {
        if row.len() != n {
            return Err(Error::config(format!(
                "the matrix must be square: a row holds {} entries for {n} rows",
                row.len()
            )));
        }
        for entry in row {
            if entry.degree() != degree {
                return Err(Error::config("degree mismatch in the matrix"));
            }
        }
    }
    for b in rhs {
        if b.degree() != degree {
            return Err(Error::config("degree mismatch in the right-hand side"));
        }
    }
    // LU factorization of J_0 with partial pivoting, kept in place in the
    // reusable flat row-major buffer.
    let lu = &mut ws.lu;
    lu.clear();
    lu.reserve(n * n);
    for row in jacobian {
        lu.extend(row.iter().map(|s| s.coeff(0)));
    }
    ws.perm.clear();
    ws.perm.extend(0..n);
    ws.pivot_min = f64::INFINITY;
    ws.pivot_max = 0.0;
    for col in 0..n {
        let mut pivot_row = col;
        let mut best = lu[col * n + col].magnitude();
        // `>=` keeps the historical tie-break of `Iterator::max_by`, which
        // returned the last of several equal pivots.
        for row in col + 1..n {
            let m = lu[row * n + col].magnitude();
            if m >= best {
                best = m;
                pivot_row = row;
            }
        }
        ws.pivot_min = ws.pivot_min.min(best);
        ws.pivot_max = ws.pivot_max.max(best);
        if best <= 0.0 {
            ws.pivot_min = 0.0;
            return Err(Error::numerical(format!(
                "the constant-term Jacobian is singular (column {col})"
            )));
        }
        if pivot_row != col {
            for c in 0..n {
                lu.swap(col * n + c, pivot_row * n + c);
            }
            ws.perm.swap(col, pivot_row);
        }
        let pivot = lu[col * n + col];
        for row in col + 1..n {
            let factor = lu[row * n + col].div(&pivot);
            lu[row * n + col] = factor;
            for c in col + 1..n {
                let sub = factor.mul(&lu[col * n + c]);
                lu[row * n + c] = lu[row * n + c].sub(&sub);
            }
        }
    }
    // Stage the solution degree by degree.
    solution.resize_with(n, || Series::zero(0));
    for s in solution.iter_mut() {
        s.fill_zero(degree);
    }
    for k in 0..=degree {
        ws.rhs_k.clear();
        ws.rhs_k.extend(rhs.iter().map(|r| r.coeff(k)));
        // b_k -= Σ_{j=1..k} J_j x_{k-j}
        for j in 1..=k {
            for (i, row) in jacobian.iter().enumerate() {
                for (c, entry) in row.iter().enumerate() {
                    let sub = entry.coeff(j).mul(&solution[c].coeff(k - j));
                    ws.rhs_k[i] = ws.rhs_k[i].sub(&sub);
                }
            }
        }
        // One triangular solve with the factored J_0.
        ws.y.clear();
        ws.y.extend(ws.perm.iter().map(|&p| ws.rhs_k[p]));
        for row in 1..n {
            for col in 0..row {
                let sub = lu[row * n + col].mul(&ws.y[col]);
                ws.y[row] = ws.y[row].sub(&sub);
            }
        }
        for row in (0..n).rev() {
            for col in row + 1..n {
                let sub = lu[row * n + col].mul(&ws.y[col]);
                ws.y[row] = ws.y[row].sub(&sub);
            }
            ws.y[row] = ws.y[row].div(&lu[row * n + row]);
        }
        for (c, &x) in ws.y.iter().enumerate() {
            solution[c].set_coeff(k, x);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial::Monomial;
    use psmd_multidouble::{Deca, Qd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pad(prefix: &[f64], degree: usize) -> Vec<f64> {
        let mut v = prefix.to_vec();
        v.resize(degree + 1, 0.0);
        v
    }

    #[test]
    fn solve_linearized_recovers_a_known_solution() {
        let d = 8;
        let mut rng = StdRng::seed_from_u64(5);
        let n = 3;
        // Random well-conditioned J: random series entries plus a dominant
        // constant diagonal.
        let mut jacobian: Vec<Vec<Series<Qd>>> = (0..n)
            .map(|_| (0..n).map(|_| Series::random(&mut rng, d)).collect())
            .collect();
        for (i, row) in jacobian.iter_mut().enumerate() {
            let bump = Series::constant(Qd::from_f64(4.0 + i as f64), d);
            row[i] = row[i].add(&bump);
        }
        let x: Vec<Series<Qd>> = (0..n).map(|_| Series::random(&mut rng, d)).collect();
        // b = J x in series arithmetic.
        let b: Vec<Series<Qd>> = (0..n)
            .map(|i| {
                let mut acc = Series::zero(d);
                for (j, xj) in x.iter().enumerate() {
                    acc.add_assign(&jacobian[i][j].mul(xj));
                }
                acc
            })
            .collect();
        let got = try_solve_linearized(&jacobian, &b).unwrap();
        for (a, e) in got.iter().zip(x.iter()) {
            assert!(a.distance(e) < 1e-55, "distance {}", a.distance(e));
        }
    }

    #[test]
    fn solve_linearized_into_reuses_its_workspace_across_solves() {
        // Two solves of different systems through one workspace must both be
        // correct (stale LU/permutation state would corrupt the second).
        let s = |v: &[f64]| Series::<Qd>::from_f64_coeffs(v);
        let mut ws = LinearSolveWorkspace::new();
        let mut sol = Vec::new();
        let j1 = vec![
            vec![s(&[2.0, 0.0]), s(&[0.0, 0.0])],
            vec![s(&[0.0, 0.0]), s(&[4.0, 0.0])],
        ];
        let b1 = vec![s(&[2.0, 4.0]), s(&[8.0, -4.0])];
        try_solve_linearized_into(&j1, &b1, &mut ws, &mut sol).unwrap();
        assert!(sol[0].distance(&s(&[1.0, 2.0])) < 1e-60);
        assert!(sol[1].distance(&s(&[2.0, -1.0])) < 1e-60);
        // The diagonal factorization's pivot ratio is exactly 4/2.
        assert_eq!(ws.conditioning(), 2.0);
        // A different (permuted, 3x3) system through the same buffers.
        let j2 = vec![
            vec![s(&[0.0, 0.0]), s(&[1.0, 0.0]), s(&[0.0, 0.0])],
            vec![s(&[1.0, 0.0]), s(&[0.0, 0.0]), s(&[0.0, 0.0])],
            vec![s(&[0.0, 0.0]), s(&[0.0, 0.0]), s(&[2.0, 0.0])],
        ];
        let x = [s(&[1.0, 1.0]), s(&[-1.0, 0.5]), s(&[3.0, 0.0])];
        let b2 = vec![x[1].clone(), x[0].clone(), x[2].scale(&Qd::from_f64(2.0))];
        try_solve_linearized_into(&j2, &b2, &mut ws, &mut sol).unwrap();
        for (a, e) in sol.iter().zip(x.iter()) {
            assert!(a.distance(e) < 1e-60, "distance {}", a.distance(e));
        }
    }

    #[test]
    fn solve_linearized_pivots_on_a_zero_leading_entry() {
        // J_0 = [[0, 1], [1, 0]] requires a row swap.
        let s = |v: &[f64]| Series::<Qd>::from_f64_coeffs(v);
        let jacobian = vec![
            vec![s(&[0.0, 1.0, 0.0]), s(&[1.0, 0.0, 0.0])],
            vec![s(&[1.0, 0.0, 0.0]), s(&[0.0, 0.0, 1.0])],
        ];
        let x = [s(&[1.0, 2.0, 3.0]), s(&[-1.0, 0.5, 0.0])];
        let b: Vec<Series<Qd>> = (0..2)
            .map(|i| jacobian[i][0].mul(&x[0]).add(&jacobian[i][1].mul(&x[1])))
            .collect();
        let got = try_solve_linearized(&jacobian, &b).unwrap();
        assert!(got[0].distance(&x[0]) < 1e-60);
        assert!(got[1].distance(&x[1]) < 1e-60);
    }

    #[test]
    fn singular_constant_jacobian_is_a_numerical_error() {
        let s = |v: &[f64]| Series::<Qd>::from_f64_coeffs(v);
        let jacobian = vec![
            vec![s(&[1.0, 0.0]), s(&[2.0, 0.0])],
            vec![s(&[2.0, 0.0]), s(&[4.0, 0.0])],
        ];
        let b = vec![s(&[1.0, 0.0]), s(&[1.0, 0.0])];
        let err = try_solve_linearized(&jacobian, &b).unwrap_err();
        assert!(matches!(err, Error::Numerical(_)), "got {err:?}");
        assert!(err.message().contains("singular"));
        // The workspace flags the failed factorization as unconditioned.
        let mut ws = LinearSolveWorkspace::<Qd>::new();
        let mut sol = Vec::new();
        assert!(try_solve_linearized_into(&jacobian, &b, &mut ws, &mut sol).is_err());
        assert_eq!(ws.conditioning(), f64::INFINITY);
    }

    #[test]
    fn shape_mismatches_are_config_errors() {
        let s = |v: &[f64]| Series::<Qd>::from_f64_coeffs(v);
        let jacobian = vec![vec![s(&[1.0, 0.0])], vec![s(&[2.0, 0.0])]];
        let b = vec![s(&[1.0, 0.0]), s(&[1.0, 0.0])];
        let err = try_solve_linearized(&jacobian, &b).unwrap_err();
        assert!(matches!(err, Error::Config(_)), "got {err:?}");
        assert!(err.message().contains("square"));
    }

    /// A 2x2 multilinear system with the exact solution x = 1 + t,
    /// y = 2 - t:  f1 = x y - c1(t),  f2 = x + y - 3.
    fn multilinear_system(degree: usize) -> (Vec<Polynomial<Deca>>, Vec<Series<Deca>>) {
        type C = Deca;
        let x_exact = Series::<C>::from_f64_coeffs(&pad(&[1.0, 1.0], degree));
        let y_exact = Series::<C>::from_f64_coeffs(&pad(&[2.0, -1.0], degree));
        let c1 = x_exact.mul(&y_exact);
        let one = Series::constant(C::from_f64(1.0), degree);
        let f1 = Polynomial::new(2, c1.neg(), vec![Monomial::new(one.clone(), vec![0, 1])]);
        let f2 = Polynomial::new(
            2,
            Series::constant(C::from_f64(-3.0), degree),
            vec![
                Monomial::new(one.clone(), vec![0]),
                Monomial::new(one, vec![1]),
            ],
        );
        (vec![f1, f2], vec![x_exact, y_exact])
    }

    #[test]
    fn newton_converges_quadratically_on_the_multilinear_system() {
        type C = Deca;
        let degree = 16;
        let (system, exact) = multilinear_system(degree);
        // Start from the constant solution (correct at t = 0).
        let initial = vec![
            Series::constant(C::from_f64(1.0), degree),
            Series::constant(C::from_f64(2.0), degree),
        ];
        let result = try_newton_system(
            &system,
            &initial,
            &NewtonOptions {
                max_iterations: 8,
                tolerance: 1e-100,
            },
        )
        .unwrap();
        assert!(result.converged(), "residuals: {:?}", result.residuals());
        for (got, want) in result.solution.iter().zip(exact.iter()) {
            assert!(
                got.distance(want) < 1e-100,
                "distance {}",
                got.distance(want)
            );
        }
        // Quadratic convergence doubles the number of correct series
        // coefficients per step: 16 coefficients need at most ~5 steps (the
        // residual max-magnitude is NOT monotone — higher-order coefficients
        // transiently grow while the correct prefix extends).
        assert!(
            result.iterations() <= 6,
            "took {} iterations, residuals: {:?}",
            result.iterations(),
            result.residuals()
        );
        assert!(result.trace.final_residual() <= 1e-100);
        // The trace carries a conditioning estimate of the last step.
        assert!(result.trace.conditioning >= 1.0);
    }

    #[test]
    fn newton_parallel_matches_sequential_bitwise() {
        let degree = 8;
        let (system, _) = multilinear_system(degree);
        let initial = vec![
            Series::constant(Deca::from_f64(1.0), degree),
            Series::constant(Deca::from_f64(2.0), degree),
        ];
        let opts = NewtonOptions {
            max_iterations: 4,
            tolerance: 0.0,
        };
        let seq = try_newton_system(&system, &initial, &opts).unwrap();
        let pool = WorkerPool::new(3);
        let par = try_newton_system_parallel(&system, &initial, &opts, &pool).unwrap();
        assert_eq!(seq.solution, par.solution);
        assert_eq!(seq.trace.residuals, par.trace.residuals);
    }

    #[test]
    fn non_square_systems_are_config_errors() {
        let d = 2;
        let one = Series::<Qd>::one(d);
        let f1 = Polynomial::new(3, Series::zero(d), vec![Monomial::new(one, vec![0, 1])]);
        let initial = vec![Series::zero(d)];
        let err = try_newton_system(&[f1], &initial, &NewtonOptions::default()).unwrap_err();
        assert!(matches!(err, Error::Config(_)), "got {err:?}");
        assert!(err.message().contains("square system"));
    }

    #[test]
    fn trace_improvement_reads_the_last_step() {
        let trace = NewtonTrace {
            residuals: vec![1e-2, 1e-6, 5e-7],
            iterations: 2,
            converged: false,
            conditioning: 3.0,
        };
        assert_eq!(trace.final_residual(), 5e-7);
        assert_eq!(trace.last_improvement(), 2.0);
        assert_eq!(NewtonTrace::default().last_improvement(), f64::INFINITY);
        assert_eq!(NewtonTrace::default().final_residual(), f64::INFINITY);
    }
}
