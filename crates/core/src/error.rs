//! Fallible configuration and compilation: the error type behind
//! [`EngineBuilder::try_build`](crate::EngineBuilder::try_build) and
//! [`Engine::try_compile`](crate::Engine::try_compile).
//!
//! The panicking entry points ([`EngineBuilder::build`](crate::EngineBuilder::build),
//! [`Engine::compile`](crate::Engine::compile)) stay the ergonomic default
//! for programs whose polynomials are compiled from trusted code; long-lived
//! services that accept sources over a wire route through the `try_*`
//! variants so a malformed request degrades into an error reply instead of
//! aborting the process.

use std::fmt;

/// Why an engine could not be built or a source could not be compiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The engine configuration is invalid (thread-count misuse, a broken
    /// `PSMD_THREADS` override, ...).
    Config(String),
    /// The polynomial source is structurally invalid (empty system,
    /// mismatched variable counts or degrees, out-of-range variable
    /// indices, ...) and cannot be compiled into a plan.
    Source(String),
    /// A numerical method failed on valid inputs: the constant-term
    /// Jacobian of a staged linear solve is singular, a Newton corrector
    /// cannot proceed, ...  Unlike the other variants this is a property of
    /// the *data*, not the request, so callers typically react by changing
    /// the iterate (or, in the path tracker, shrinking the step or
    /// escalating the working precision) rather than rejecting the input.
    Numerical(String),
}

impl Error {
    /// A configuration error with the given message.
    pub fn config(message: impl Into<String>) -> Self {
        Error::Config(message.into())
    }

    /// A source-validation error with the given message.
    pub fn source(message: impl Into<String>) -> Self {
        Error::Source(message.into())
    }

    /// A numerical-failure error with the given message.
    pub fn numerical(message: impl Into<String>) -> Self {
        Error::Numerical(message.into())
    }

    /// The human-readable message, whichever variant it is.
    pub fn message(&self) -> &str {
        match self {
            Error::Config(m) | Error::Source(m) | Error::Numerical(m) => m,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(m) => write!(f, "invalid engine configuration: {m}"),
            Error::Source(m) => write!(f, "invalid polynomial source: {m}"),
            Error::Numerical(m) => write!(f, "numerical failure: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_the_variant() {
        let c = Error::config("threads");
        assert_eq!(c.message(), "threads");
        assert!(c.to_string().contains("configuration"));
        let s = Error::source("empty system");
        assert!(s.to_string().contains("source"));
    }
}
