//! The engine: one owned, shareable entry point for every evaluator.
//!
//! The paper's central observation is that the expensive artifact is the
//! *schedule* — "the coordinates of the jobs depend only on the structure of
//! the monomials and are computed only once" (Section 5) — while the
//! evaluation is the cheap, endlessly repeated part.  The engine makes that
//! split explicit and production-shaped:
//!
//! * [`EngineBuilder`] configures precision, kernel, execution mode and
//!   thread count once; [`Engine`] owns its [`WorkerPool`] and is
//!   `Send + Sync`.
//! * [`Engine::compile`] turns a [`PolySource`] (a single polynomial or a
//!   system) into an [`Arc<Plan>`]: an **owned** (`'static`) compiled
//!   schedule with no borrowed polynomials, shareable across threads and
//!   cacheable behind a long-lived handle.  Compiling the same source twice
//!   hits an internal plan cache keyed by a structural hash of the
//!   polynomial, so repeat compiles are free.  The `try_*` twins
//!   ([`EngineBuilder::try_build`], [`Engine::try_compile`]) return a
//!   [`crate::Error`] instead of panicking, for services that must degrade
//!   gracefully on untrusted configuration or sources.
//! * [`Plan::request`] is the single evaluation entry point: it accepts
//!   unified [`Inputs`] (one input vector or a whole batch) and returns an
//!   [`EvalRequest`] builder whose [`run`](EvalRequest::run) produces a
//!   unified [`EvalOutput`] (single, batched or system evaluation) with
//!   full kernel timings, including the pool rendezvous paid by the run.
//!   (The historical `evaluate*` method family has been removed; the
//!   request builder is the only entry point.)
//! * [`AnyPlan`] erases the coefficient type behind a [`Precision`] tag, so
//!   non-generic callers — the bench harness, servers — pick the precision
//!   with a *value* instead of monomorphizing through a macro.
//! * Evaluation memory lives in pooled [`Workspace`]s (see
//!   [`crate::workspace`]): a bare `plan.request(&z).run()` transparently
//!   checks one out of the engine's lock-free pool, and the builder's
//!   [`workspace`](EvalRequest::workspace) / [`into`](EvalRequest::into)
//!   stages let callers manage workspace and output reuse explicitly —
//!   steady-state evaluation then performs **zero heap allocations**.
//!
//! ```
//! use psmd_core::{Engine, Inputs, Monomial, Polynomial};
//! use psmd_multidouble::Dd;
//! use psmd_series::Series;
//! use std::sync::Arc;
//!
//! // p = 1 + 3 x0 x1 at z0 = 1 + t, z1 = 1 - t (double-double).
//! let d = 2;
//! let c = |x: f64| Series::constant(Dd::from_f64(x), d);
//! let p = Polynomial::new(2, c(1.0), vec![Monomial::new(c(3.0), vec![0, 1])]);
//! let z = vec![
//!     Series::<Dd>::from_f64_coeffs(&[1.0, 1.0, 0.0]),
//!     Series::<Dd>::from_f64_coeffs(&[1.0, -1.0, 0.0]),
//! ];
//!
//! let engine = Engine::builder().build();
//! let plan = engine.compile(p.clone());          // compiled once...
//! let again = engine.compile(p);                 // ...the second compile is a cache hit
//! assert!(Arc::ptr_eq(&plan, &again));
//!
//! let eval = plan.request(Inputs::Single(&z)).run().into_single();
//! assert_eq!(eval.value.coeff(0).to_f64(), 4.0); // 1 + 3
//! assert_eq!(eval.value.coeff(2).to_f64(), -3.0);
//!
//! // The builder's stages compose: reuse a workspace and an output buffer,
//! // or run on the calling thread only.
//! let mut ws = plan.create_workspace();
//! let mut out = plan.request(&z).run();
//! plan.request(&z).workspace(&mut ws).into(&mut out).run();
//! let seq = plan.request(&z).sequential().run();
//! assert!(out.bitwise_eq(&seq));
//! ```

use crate::batch::{run_batch, BatchEvaluation};
use crate::error::Error;
use crate::evaluate::{run_single, Evaluation};
use crate::monomial::Monomial;
use crate::options::EvalOptions;
use crate::polynomial::Polynomial;
use crate::schedule::{GraphPlan, Schedule};
use crate::system::{
    run_system, run_system_batch, SystemBatchEvaluation, SystemEvaluation, SystemSchedule,
};
use crate::workspace::{Workspace, WorkspacePool};
use parking_lot::Mutex;
use psmd_multidouble::{Coeff, Md, Precision};
use psmd_runtime::{CancelToken, KernelTimings, WorkerPool};
use psmd_series::Series;
use std::any::{Any, TypeId};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// What a [`Plan`] is compiled from: one polynomial or a whole system.
///
/// The source is stored **by value** inside the plan — unlike the historical
/// borrowing evaluators there is no `'p` lifetime, which is what lets plans
/// live in caches, cross threads and outlive the code that built them.
#[derive(Debug, Clone, PartialEq)]
pub enum PolySource<C> {
    /// One polynomial: supports single and batched evaluation.
    Single(Polynomial<C>),
    /// A system of polynomials over shared variables: one merged,
    /// deduplicated schedule produces all values plus the full Jacobian.
    System(Vec<Polynomial<C>>),
}

impl<C: Coeff> PolySource<C> {
    /// Number of variables of the source.
    pub fn num_variables(&self) -> usize {
        match self {
            PolySource::Single(p) => p.num_variables(),
            PolySource::System(ps) => ps.first().map_or(0, Polynomial::num_variables),
        }
    }

    /// Common truncation degree of the source.
    pub fn degree(&self) -> usize {
        match self {
            PolySource::Single(p) => p.degree(),
            PolySource::System(ps) => ps.first().map_or(0, Polynomial::degree),
        }
    }

    /// Number of equations (1 for a single polynomial).
    pub fn num_equations(&self) -> usize {
        match self {
            PolySource::Single(_) => 1,
            PolySource::System(ps) => ps.len(),
        }
    }

    /// A structural hash of the source: variable structure, truncation
    /// degree and the exact coefficient bits.  Two sources hash equally
    /// exactly when they would compile to interchangeable plans; the plan
    /// cache confirms hash hits with [`PolySource::bitwise_eq`] before
    /// reusing a plan.
    pub fn structural_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash_structure(&mut h);
        h.finish()
    }

    /// True when the two sources are bit-for-bit identical: same variable
    /// structure, same degrees and the exact same coefficient bit patterns.
    /// Unlike `PartialEq`, this treats equal-bit NaN coefficients as equal
    /// and distinguishes `-0.0` from `0.0` — it is the confirmation the
    /// plan cache pairs with [`PolySource::structural_hash`], so sources
    /// with NaN coefficients still hit the cache.  Streams and early-exits;
    /// no allocation.
    pub fn bitwise_eq(&self, other: &PolySource<C>) -> bool {
        match (self, other) {
            (PolySource::Single(a), PolySource::Single(b)) => polynomial_bits_eq(a, b),
            (PolySource::System(a), PolySource::System(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|(x, y)| polynomial_bits_eq(x, y))
            }
            _ => false,
        }
    }

    fn hash_structure<H: Hasher>(&self, h: &mut H) {
        match self {
            PolySource::Single(p) => {
                0u8.hash(h);
                hash_polynomial(p, h);
            }
            PolySource::System(ps) => {
                1u8.hash(h);
                ps.len().hash(h);
                for p in ps {
                    hash_polynomial(p, h);
                }
            }
        }
    }
}

impl<C: Coeff> From<Polynomial<C>> for PolySource<C> {
    fn from(poly: Polynomial<C>) -> Self {
        PolySource::Single(poly)
    }
}

impl<C: Coeff> From<Vec<Polynomial<C>>> for PolySource<C> {
    fn from(polys: Vec<Polynomial<C>>) -> Self {
        PolySource::System(polys)
    }
}

/// A stack-buffer "hasher" that records the exact byte stream of **one**
/// coefficient's [`Coeff::hash_bits`] call, so bit patterns can be compared
/// directly (`PartialEq` on floats rejects identical NaNs and conflates
/// `±0.0`) without heap allocation.  The largest coefficient is
/// `Complex<Md<10>>` at 160 bytes; the buffer leaves headroom.
struct CoeffBits {
    buf: [u8; 256],
    len: usize,
}

impl CoeffBits {
    fn of<C: Coeff>(value: &C) -> Self {
        let mut bits = Self {
            buf: [0; 256],
            len: 0,
        };
        value.hash_bits(&mut bits);
        bits
    }

    fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len]
    }
}

impl Hasher for CoeffBits {
    fn finish(&self) -> u64 {
        0
    }

    fn write(&mut self, bytes: &[u8]) {
        let end = self.len + bytes.len();
        debug_assert!(end <= self.buf.len(), "coefficient exceeds the bit buffer");
        self.buf[self.len..end].copy_from_slice(bytes);
        self.len = end;
    }
}

fn hash_series<C: Coeff, H: Hasher>(series: &Series<C>, state: &mut H) {
    series.degree().hash(state);
    for coeff in series.coeffs() {
        coeff.hash_bits(state);
    }
}

/// Bit-for-bit equality of two coefficients.
fn coeff_bits_eq<C: Coeff>(a: &C, b: &C) -> bool {
    CoeffBits::of(a).as_slice() == CoeffBits::of(b).as_slice()
}

/// Bit-for-bit equality of two series (degree and exact coefficient bits),
/// streaming with early exit.
fn series_bits_eq<C: Coeff>(a: &Series<C>, b: &Series<C>) -> bool {
    a.degree() == b.degree()
        && a.coeffs()
            .iter()
            .zip(b.coeffs().iter())
            .all(|(x, y)| coeff_bits_eq(x, y))
}

/// Bit-for-bit equality of two series slices.
fn series_slice_bits_eq<C: Coeff>(a: &[Series<C>], b: &[Series<C>]) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| series_bits_eq(x, y))
}

/// Bit-for-bit equality of two polynomials (variable structure, degrees and
/// exact coefficient bits).
fn polynomial_bits_eq<C: Coeff>(a: &Polynomial<C>, b: &Polynomial<C>) -> bool {
    a.num_variables() == b.num_variables()
        && a.degree() == b.degree()
        && series_bits_eq(a.constant(), b.constant())
        && a.num_monomials() == b.num_monomials()
        && a.monomials()
            .iter()
            .zip(b.monomials().iter())
            .all(|(x, y)| {
                x.variables == y.variables && series_bits_eq(&x.coefficient, &y.coefficient)
            })
}

fn hash_polynomial<C: Coeff, H: Hasher>(poly: &Polynomial<C>, state: &mut H) {
    poly.num_variables().hash(state);
    poly.degree().hash(state);
    hash_series(poly.constant(), state);
    poly.num_monomials().hash(state);
    for m in poly.monomials() {
        m.variables.hash(state);
        hash_series(&m.coefficient, state);
    }
}

/// Unified evaluation inputs: one input-series vector or a whole batch.
///
/// Built from references — evaluation never consumes the inputs — with
/// `From` conversions so call sites can pass `&inputs` directly.
#[derive(Debug, Clone, Copy)]
pub enum Inputs<'a, C> {
    /// One vector of input series (one series per variable).
    Single(&'a [Series<C>]),
    /// Many independent input vectors evaluated in one arena with shared
    /// launches (single-polynomial plans produce a [`BatchEvaluation`],
    /// system plans a [`SystemBatchEvaluation`]).
    Batch(&'a [Vec<Series<C>>]),
}

impl<'a, C> From<&'a [Series<C>]> for Inputs<'a, C> {
    fn from(inputs: &'a [Series<C>]) -> Self {
        Inputs::Single(inputs)
    }
}

impl<'a, C> From<&'a Vec<Series<C>>> for Inputs<'a, C> {
    fn from(inputs: &'a Vec<Series<C>>) -> Self {
        Inputs::Single(inputs)
    }
}

impl<'a, C> From<&'a [Vec<Series<C>>]> for Inputs<'a, C> {
    fn from(batch: &'a [Vec<Series<C>>]) -> Self {
        Inputs::Batch(batch)
    }
}

impl<'a, C> From<&'a Vec<Vec<Series<C>>>> for Inputs<'a, C> {
    fn from(batch: &'a Vec<Vec<Series<C>>>) -> Self {
        Inputs::Batch(batch)
    }
}

/// Unified evaluation result: the variant matches the plan kind and the
/// input shape (`Single` plan × `Single` inputs → `Single`, `Single` plan ×
/// `Batch` inputs → `Batch`, `System` plan × `Single` inputs → `System`,
/// `System` plan × `Batch` inputs → `SystemBatch`).
#[derive(Debug, Clone)]
pub enum EvalOutput<C> {
    /// Value and gradient of one polynomial at one input vector.
    Single(Evaluation<C>),
    /// Values and gradients of one polynomial at every batch instance.
    Batch(BatchEvaluation<C>),
    /// All equation values and the full Jacobian of a system.
    System(SystemEvaluation<C>),
    /// All values and Jacobians of a system at every batch instance.
    SystemBatch(SystemBatchEvaluation<C>),
}

impl<C: Coeff> EvalOutput<C> {
    /// The kernel timings of the run, whichever variant it is.  The
    /// [`KernelTimings::pool_rendezvous`] field carries the pool rendezvous
    /// paid by this evaluation, so the one-rendezvous invariant of graph
    /// mode is checkable from the result alone.
    pub fn timings(&self) -> &KernelTimings {
        match self {
            EvalOutput::Single(e) => &e.timings,
            EvalOutput::Batch(e) => &e.timings,
            EvalOutput::System(e) => &e.timings,
            EvalOutput::SystemBatch(e) => &e.timings,
        }
    }

    fn timings_mut(&mut self) -> &mut KernelTimings {
        match self {
            EvalOutput::Single(e) => &mut e.timings,
            EvalOutput::Batch(e) => &mut e.timings,
            EvalOutput::System(e) => &mut e.timings,
            EvalOutput::SystemBatch(e) => &mut e.timings,
        }
    }

    /// The single evaluation, if this is the `Single` variant.
    pub fn as_single(&self) -> Option<&Evaluation<C>> {
        match self {
            EvalOutput::Single(e) => Some(e),
            _ => None,
        }
    }

    /// The batch evaluation, if this is the `Batch` variant.
    pub fn as_batch(&self) -> Option<&BatchEvaluation<C>> {
        match self {
            EvalOutput::Batch(e) => Some(e),
            _ => None,
        }
    }

    /// The system evaluation, if this is the `System` variant.
    pub fn as_system(&self) -> Option<&SystemEvaluation<C>> {
        match self {
            EvalOutput::System(e) => Some(e),
            _ => None,
        }
    }

    /// The batched system evaluation, if this is the `SystemBatch` variant.
    pub fn as_system_batch(&self) -> Option<&SystemBatchEvaluation<C>> {
        match self {
            EvalOutput::SystemBatch(e) => Some(e),
            _ => None,
        }
    }

    /// Unwraps the `Single` variant.
    ///
    /// # Panics
    ///
    /// Panics when the output is not a single evaluation.
    pub fn into_single(self) -> Evaluation<C> {
        match self {
            EvalOutput::Single(e) => e,
            _ => panic!("expected a single evaluation output"),
        }
    }

    /// Unwraps the `Batch` variant.
    ///
    /// # Panics
    ///
    /// Panics when the output is not a batch evaluation.
    pub fn into_batch(self) -> BatchEvaluation<C> {
        match self {
            EvalOutput::Batch(e) => e,
            _ => panic!("expected a batch evaluation output"),
        }
    }

    /// Unwraps the `System` variant.
    ///
    /// # Panics
    ///
    /// Panics when the output is not a system evaluation.
    pub fn into_system(self) -> SystemEvaluation<C> {
        match self {
            EvalOutput::System(e) => e,
            _ => panic!("expected a system evaluation output"),
        }
    }

    /// Unwraps the `SystemBatch` variant.
    ///
    /// # Panics
    ///
    /// Panics when the output is not a batched system evaluation.
    pub fn into_system_batch(self) -> SystemBatchEvaluation<C> {
        match self {
            EvalOutput::SystemBatch(e) => e,
            _ => panic!("expected a batched system evaluation output"),
        }
    }

    /// True when both outputs are the same variant and every series — value,
    /// gradient, Jacobian — is **bit-for-bit** identical (timings are
    /// ignored).  Unlike float `PartialEq`, equal-bit NaNs compare equal and
    /// `-0.0` differs from `0.0`, so this really is the bitwise-identity
    /// check the graph-vs-layered guarantee is stated in terms of.
    pub fn bitwise_eq(&self, other: &EvalOutput<C>) -> bool {
        let eval_eq = |a: &Evaluation<C>, b: &Evaluation<C>| {
            series_bits_eq(&a.value, &b.value) && series_slice_bits_eq(&a.gradient, &b.gradient)
        };
        let system_eq = |a: &SystemEvaluation<C>, b: &SystemEvaluation<C>| {
            series_slice_bits_eq(&a.values, &b.values)
                && a.jacobian.len() == b.jacobian.len()
                && a.jacobian
                    .iter()
                    .zip(b.jacobian.iter())
                    .all(|(x, y)| series_slice_bits_eq(x, y))
        };
        match (self, other) {
            (EvalOutput::Single(a), EvalOutput::Single(b)) => eval_eq(a, b),
            (EvalOutput::Batch(a), EvalOutput::Batch(b)) => {
                a.instances.len() == b.instances.len()
                    && a.instances
                        .iter()
                        .zip(b.instances.iter())
                        .all(|(x, y)| eval_eq(x, y))
            }
            (EvalOutput::System(a), EvalOutput::System(b)) => system_eq(a, b),
            (EvalOutput::SystemBatch(a), EvalOutput::SystemBatch(b)) => {
                a.instances.len() == b.instances.len()
                    && a.instances
                        .iter()
                        .zip(b.instances.iter())
                        .all(|(x, y)| system_eq(x, y))
            }
            _ => false,
        }
    }
}

/// Structure counts of a compiled plan, for reports and capacity planning.
/// All fields derive from the job schedule alone; the dependency-graph
/// numbers live in [`GraphPlanStats`] so that reading these does not force
/// graph-plan construction on layered-mode plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanStats {
    /// Number of equations (1 for a single-polynomial plan).
    pub equations: usize,
    /// Number of variables.
    pub num_variables: usize,
    /// Truncation degree.
    pub degree: usize,
    /// Convolution layers (kernel launches per layered evaluation).
    pub convolution_layers: usize,
    /// Addition layers.
    pub addition_layers: usize,
    /// Total convolution jobs.
    pub convolution_jobs: usize,
    /// Total addition jobs.
    pub addition_jobs: usize,
    /// Unique monomials after system merging (equals `total_monomials` for a
    /// single-polynomial plan).
    pub unique_monomials: usize,
    /// Total monomial instances across all equations.
    pub total_monomials: usize,
}

/// Structure counts of a plan's dependency graph (see
/// [`Plan::graph_stats`]; building them constructs the graph plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphPlanStats {
    /// Blocks of the dependency graph (convolution plus addition jobs).
    pub blocks: usize,
    /// Dependency edges of the graph plan.
    pub edges: usize,
    /// Longest dependency chain, in blocks.
    pub critical_path: usize,
}

/// The compiled schedule of one [`PolySource`].
enum PlanKind {
    Single(Schedule),
    System(SystemSchedule),
}

/// An owned, compiled evaluation plan: the polynomial source, its job
/// schedule, layout and (lazily built) dependency-graph plan, plus a handle
/// to the worker pool it evaluates on.
///
/// Plans are `'static`, `Send + Sync` and handed out as [`Arc<Plan>`] by
/// [`Engine::compile`]: clone the `Arc` freely, evaluate from as many
/// threads as you like, keep it alive after the engine is gone.
pub struct Plan<C: Coeff> {
    source: PolySource<C>,
    kind: PlanKind,
    options: EvalOptions,
    pool: Arc<WorkerPool>,
    workspaces: Arc<WorkspacePool<C>>,
    graph: OnceLock<GraphPlan>,
}

impl<C: Coeff> Plan<C> {
    fn build(
        source: PolySource<C>,
        mut options: EvalOptions,
        pool: Arc<WorkerPool>,
        workspaces: Arc<WorkspacePool<C>>,
    ) -> Self {
        let kind = match &source {
            PolySource::Single(p) => PlanKind::Single(Schedule::build(p)),
            PolySource::System(ps) => PlanKind::System(SystemSchedule::build(ps)),
        };
        // Resolve `Auto` once, at compile time, against the measured
        // crossover table for this (precision, degree) pair; evaluation
        // never re-decides per job.  The plan cache keys on the *requested*
        // options plus the structural hash (which covers the degree), so
        // Auto plans of different degrees never collide.
        if options.kernel == crate::ConvolutionKernel::Auto {
            options.kernel = crate::crossover::auto_kernel(C::component_limbs(), source.degree());
        }
        // Same one-shot resolution for the SIMD mode: `Auto` collapses to the
        // `PSMD_SIMD` override or the detected lane width here, so evaluation
        // (and the plan's warm workspaces) see a concrete width.
        options.simd = options.simd.resolved();
        Self {
            source,
            kind,
            options,
            pool,
            workspaces,
            graph: OnceLock::new(),
        }
    }

    /// The polynomial source the plan owns.
    pub fn source(&self) -> &PolySource<C> {
        &self.source
    }

    /// The options the plan was compiled with.
    pub fn options(&self) -> EvalOptions {
        self.options
    }

    /// The single-polynomial schedule, if this is a single plan.
    pub fn schedule(&self) -> Option<&Schedule> {
        match &self.kind {
            PlanKind::Single(s) => Some(s),
            PlanKind::System(_) => None,
        }
    }

    /// The merged system schedule, if this is a system plan.
    pub fn system_schedule(&self) -> Option<&SystemSchedule> {
        match &self.kind {
            PlanKind::Single(_) => None,
            PlanKind::System(s) => Some(s),
        }
    }

    /// The block-level dependency-graph plan, built once on first use and
    /// shared by every graph-mode evaluation of this plan.
    pub fn graph_plan(&self) -> &GraphPlan {
        self.graph.get_or_init(|| match &self.kind {
            PlanKind::Single(s) => s.graph_plan(),
            PlanKind::System(s) => s.graph_plan(),
        })
    }

    /// Structure counts of the compiled schedule.  Cheap: reads the job
    /// schedule only; the dependency-graph numbers are in
    /// [`Plan::graph_stats`] (which does build the graph plan).
    pub fn stats(&self) -> PlanStats {
        let (conv_layers, add_layers, conv_jobs, add_jobs, unique, total) = match &self.kind {
            PlanKind::Single(s) => {
                let monomials = match &self.source {
                    PolySource::Single(p) => p.num_monomials(),
                    PolySource::System(_) => unreachable!("single plan with system source"),
                };
                (
                    s.convolution_layers.len(),
                    s.addition_layers.len(),
                    s.convolution_jobs(),
                    s.addition_jobs(),
                    monomials,
                    monomials,
                )
            }
            PlanKind::System(s) => (
                s.convolution_layers.len(),
                s.addition_layers.len(),
                s.convolution_jobs(),
                s.addition_jobs(),
                s.unique_monomials(),
                s.total_monomials(),
            ),
        };
        PlanStats {
            equations: self.source.num_equations(),
            num_variables: self.source.num_variables(),
            degree: self.source.degree(),
            convolution_layers: conv_layers,
            addition_layers: add_layers,
            convolution_jobs: conv_jobs,
            addition_jobs: add_jobs,
            unique_monomials: unique,
            total_monomials: total,
        }
    }

    /// Structure counts of the dependency graph, building (and caching) the
    /// graph plan on first call.
    pub fn graph_stats(&self) -> GraphPlanStats {
        let graph = self.graph_plan();
        GraphPlanStats {
            blocks: graph.blocks(),
            edges: graph.graph.num_edges(),
            critical_path: graph.graph.critical_path_len(),
        }
    }

    /// A workspace pre-sized for this plan: scratch lanes for every
    /// participant of the engine's pool, arena capacity for one
    /// (non-batched) evaluation, and graph scratch for the whole block
    /// graph.  Pass it to [`EvalRequest::workspace`] to manage reuse
    /// explicitly.  The workspace-side buffers are warm from the start
    /// (including the SIMD lane panels at the plan's resolved lane width),
    /// so even the *first* `request(..).workspace(&mut ws).into(&mut out)`
    /// run through it (with a warm output, on a zero-worker engine)
    /// allocates nothing; a bare `workspace(&mut ws).run()` still builds
    /// its returned output, and threaded pools pay their constant
    /// per-launch control allocations.
    pub fn create_workspace(&self) -> Workspace<C> {
        let per;
        let arena;
        let blocks;
        match &self.kind {
            PlanKind::Single(s) => {
                per = s.layout.coeffs_per_slot();
                arena = s.layout.total_coefficients();
                blocks = s.convolution_jobs() + s.addition_jobs();
            }
            PlanKind::System(s) => {
                per = s.layout.coeffs_per_slot();
                arena = s.layout.total_coefficients();
                blocks = s.convolution_jobs() + s.addition_jobs();
            }
        }
        let mut ws = Workspace::new(self.pool.parallelism());
        ws.warm_for(arena, per, blocks, self.options.kernel);
        ws.warm_lanes(per, self.options.simd.lane_width());
        ws
    }

    /// Starts an evaluation request — **the** evaluation entry point.
    ///
    /// The returned [`EvalRequest`] runs on the engine's worker pool with a
    /// pooled workspace and a fresh output by default; its stages opt into
    /// reuse and sequential execution:
    ///
    /// * [`EvalRequest::workspace`] — evaluate through a caller-managed
    ///   [`Workspace`] (see [`Plan::create_workspace`]) instead of checking
    ///   one out of the engine's pool;
    /// * [`EvalRequest::into`] — write into an existing [`EvalOutput`],
    ///   reusing its buffers (the zero-allocation steady state);
    /// * [`EvalRequest::sequential`] — run on the calling thread only,
    ///   bitwise identical to the pooled run;
    /// * [`EvalRequest::run`] — execute.
    ///
    /// ```
    /// # use psmd_core::{Engine, Monomial, Polynomial};
    /// # use psmd_multidouble::Dd;
    /// # use psmd_series::Series;
    /// # let d = 2;
    /// # let c = |x: f64| Series::constant(Dd::from_f64(x), d);
    /// # let p = Polynomial::new(2, c(1.0), vec![Monomial::new(c(3.0), vec![0, 1])]);
    /// # let z = vec![
    /// #     Series::<Dd>::from_f64_coeffs(&[1.0, 1.0, 0.0]),
    /// #     Series::<Dd>::from_f64_coeffs(&[1.0, -1.0, 0.0]),
    /// # ];
    /// # let engine = Engine::builder().threads(0).build();
    /// # let plan = engine.compile(p);
    /// let mut ws = plan.create_workspace();
    /// let mut out = plan.request(&z).run();                         // simple form
    /// plan.request(&z).workspace(&mut ws).into(&mut out).run();     // full reuse
    /// ```
    ///
    /// The output's timings carry the pool-rendezvous delta of this run;
    /// the counter is shared per pool, so when several threads evaluate on
    /// one engine concurrently a run may be charged with rendezvous its
    /// neighbors paid (see [`KernelTimings::pool_rendezvous`]).
    ///
    /// Running the request panics when a system plan is given batched
    /// inputs, or when the input shape does not match the source (wrong
    /// variable count or degree).
    pub fn request<'r>(&'r self, inputs: impl Into<Inputs<'r, C>>) -> EvalRequest<'r, C> {
        EvalRequest {
            plan: self,
            inputs: inputs.into(),
            workspace: None,
            parallel: true,
            cancel: None,
        }
    }

    /// An empty output of the variant the inputs will produce.
    fn empty_output(&self, inputs: &Inputs<'_, C>) -> EvalOutput<C> {
        match (&self.kind, inputs) {
            (PlanKind::Single(_), Inputs::Single(_)) => EvalOutput::Single(Evaluation::empty()),
            (PlanKind::Single(_), Inputs::Batch(_)) => EvalOutput::Batch(BatchEvaluation::empty()),
            (PlanKind::System(_), Inputs::Single(_)) => {
                EvalOutput::System(SystemEvaluation::empty())
            }
            (PlanKind::System(_), Inputs::Batch(_)) => {
                EvalOutput::SystemBatch(SystemBatchEvaluation::empty())
            }
        }
    }

    /// Replaces `out` with an empty output of the right variant when its
    /// current variant does not match what the run will produce (the
    /// matching-variant steady state keeps every buffer).
    fn reshape_output(&self, inputs: &Inputs<'_, C>, out: &mut EvalOutput<C>) {
        let matches = matches!(
            (&self.kind, inputs, &*out),
            (
                PlanKind::Single(_),
                Inputs::Single(_),
                EvalOutput::Single(_)
            ) | (PlanKind::Single(_), Inputs::Batch(_), EvalOutput::Batch(_))
                | (
                    PlanKind::System(_),
                    Inputs::Single(_),
                    EvalOutput::System(_)
                )
                | (
                    PlanKind::System(_),
                    Inputs::Batch(_),
                    EvalOutput::SystemBatch(_)
                )
        );
        if !matches {
            *out = self.empty_output(inputs);
        }
    }

    fn run_into(
        &self,
        inputs: Inputs<'_, C>,
        parallel: bool,
        cancel: Option<&CancelToken>,
        ws: &mut Workspace<C>,
        out: &mut EvalOutput<C>,
    ) {
        let pool = parallel.then_some(self.pool.as_ref());
        // Sequential runs never touch the pool: report zero rendezvous
        // without reading the shared counter, so concurrent parallel
        // evaluations on the same pool cannot be misattributed to them.
        let before = parallel.then(|| self.pool.rendezvous_count());
        match (&self.kind, inputs, &mut *out) {
            (PlanKind::Single(schedule), Inputs::Single(z), EvalOutput::Single(single)) => {
                let PolySource::Single(poly) = &self.source else {
                    unreachable!("single plan with system source")
                };
                run_single(
                    poly,
                    schedule,
                    self.options,
                    &self.graph,
                    z,
                    pool,
                    cancel,
                    ws,
                    single,
                );
            }
            (PlanKind::Single(schedule), Inputs::Batch(batch), EvalOutput::Batch(batched)) => {
                let PolySource::Single(poly) = &self.source else {
                    unreachable!("single plan with system source")
                };
                run_batch(
                    poly,
                    schedule,
                    self.options,
                    &self.graph,
                    batch,
                    pool,
                    cancel,
                    ws,
                    batched,
                );
            }
            (PlanKind::System(schedule), Inputs::Single(z), EvalOutput::System(system)) => {
                let PolySource::System(polys) = &self.source else {
                    unreachable!("system plan with single source")
                };
                run_system(
                    polys,
                    schedule,
                    self.options,
                    &self.graph,
                    z,
                    pool,
                    cancel,
                    ws,
                    system,
                );
            }
            (
                PlanKind::System(schedule),
                Inputs::Batch(batch),
                EvalOutput::SystemBatch(batched),
            ) => {
                let PolySource::System(polys) = &self.source else {
                    unreachable!("system plan with single source")
                };
                run_system_batch(
                    polys,
                    schedule,
                    self.options,
                    &self.graph,
                    batch,
                    pool,
                    cancel,
                    ws,
                    batched,
                );
            }
            _ => unreachable!("output variant reshaped before the run"),
        }
        out.timings_mut().pool_rendezvous = match before {
            Some(before) => self.pool.rendezvous_count().saturating_sub(before),
            None => 0,
        };
    }
}

/// A configured evaluation: what [`Plan::request`] returns.
///
/// The builder starts from the defaults — pooled workspace, fresh output,
/// parallel execution on the engine's pool — and each stage opts into reuse
/// or sequential execution.  [`EvalRequest::run`] executes and returns the
/// output; binding an output buffer first with [`EvalRequest::into`] yields
/// a [`BoundEvalRequest`] whose `run` writes in place instead.
#[must_use = "an evaluation request does nothing until `run()`"]
pub struct EvalRequest<'r, C: Coeff> {
    plan: &'r Plan<C>,
    inputs: Inputs<'r, C>,
    workspace: Option<&'r mut Workspace<C>>,
    parallel: bool,
    cancel: Option<&'r CancelToken>,
}

impl<'r, C: Coeff> EvalRequest<'r, C> {
    /// Evaluates through a caller-managed [`Workspace`] (see
    /// [`Plan::create_workspace`]) instead of checking one out of the
    /// engine's pool.
    pub fn workspace(mut self, ws: &'r mut Workspace<C>) -> Self {
        self.workspace = Some(ws);
        self
    }

    /// Runs on the calling thread only — the correctness reference for the
    /// parallel path, bitwise identical to it.
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Arms the run with a cooperative [`CancelToken`]: if the token trips
    /// mid-run, the schedule is abandoned at the next block boundary, the
    /// output's [`KernelTimings::cancelled`] flag is set and its value
    /// buffers are left unspecified (discard them).  The token is polled
    /// **between** block claims — one relaxed atomic load — so arming an
    /// uncancelled run costs nothing measurable and stays bitwise identical
    /// to an unarmed run.  The workspace comes back clean either way; the
    /// next evaluation through it is correct and allocation-free.
    ///
    /// ```
    /// # use psmd_core::{CancelToken, Engine, Monomial, Polynomial};
    /// # use psmd_multidouble::Dd;
    /// # use psmd_series::Series;
    /// # let d = 2;
    /// # let c = |x: f64| Series::constant(Dd::from_f64(x), d);
    /// # let p = Polynomial::new(2, c(1.0), vec![Monomial::new(c(3.0), vec![0, 1])]);
    /// # let z: Vec<Series<Dd>> = vec![Series::zero(d); 2];
    /// # let engine = Engine::builder().threads(0).build();
    /// # let plan = engine.compile(p);
    /// let token = CancelToken::new();
    /// token.cancel(); // trip before the run: every block is skipped
    /// let out = plan.request(&z).cancel(&token).run();
    /// assert!(out.timings().cancelled);
    /// ```
    pub fn cancel(mut self, token: &'r CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Binds an existing [`EvalOutput`] for the result, reusing its
    /// buffers.  With a warm output of the same shape (the usual steady
    /// state: same plan, same input shape) the whole run — staging,
    /// kernels, extraction — performs **zero heap allocations**;
    /// `tests/workspace_alloc.rs` enforces this with a counting allocator.
    /// An output of a different shape (or variant) is reshaped in place.
    pub fn into(self, out: &'r mut EvalOutput<C>) -> BoundEvalRequest<'r, C> {
        BoundEvalRequest { request: self, out }
    }

    /// Executes the request and returns a freshly built output.
    ///
    /// # Panics
    ///
    /// Panics when a system plan is given batched inputs, or when the
    /// input shape does not match the source (wrong variable count or
    /// degree).
    pub fn run(self) -> EvalOutput<C> {
        let mut out = self.plan.empty_output(&self.inputs);
        self.dispatch(&mut out);
        out
    }

    /// Runs with either the bound workspace or a pooled checkout.
    fn dispatch(self, out: &mut EvalOutput<C>) {
        match self.workspace {
            Some(ws) => self
                .plan
                .run_into(self.inputs, self.parallel, self.cancel, ws, out),
            None => {
                let mut ws = self.plan.workspaces.checkout();
                self.plan
                    .run_into(self.inputs, self.parallel, self.cancel, &mut ws, out);
            }
        }
    }
}

/// An [`EvalRequest`] bound to a caller-owned output buffer (see
/// [`EvalRequest::into`]); its [`run`](BoundEvalRequest::run) writes in
/// place instead of returning a fresh output.
#[must_use = "an evaluation request does nothing until `run()`"]
pub struct BoundEvalRequest<'r, C: Coeff> {
    request: EvalRequest<'r, C>,
    out: &'r mut EvalOutput<C>,
}

impl<'r, C: Coeff> BoundEvalRequest<'r, C> {
    /// Evaluates through a caller-managed [`Workspace`] (see
    /// [`EvalRequest::workspace`]).
    pub fn workspace(mut self, ws: &'r mut Workspace<C>) -> Self {
        self.request.workspace = Some(ws);
        self
    }

    /// Runs on the calling thread only (see [`EvalRequest::sequential`]).
    pub fn sequential(mut self) -> Self {
        self.request.parallel = false;
        self
    }

    /// Arms the run with a cooperative [`CancelToken`] (see
    /// [`EvalRequest::cancel`]).
    pub fn cancel(mut self, token: &'r CancelToken) -> Self {
        self.request.cancel = Some(token);
        self
    }

    /// Executes the request into the bound output.
    ///
    /// # Panics
    ///
    /// Panics in the same cases as [`EvalRequest::run`].
    pub fn run(self) {
        self.request
            .plan
            .reshape_output(&self.request.inputs, self.out);
        self.request.dispatch(self.out);
    }
}

/// Statistics of the engine's plan cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Plans currently cached.
    pub entries: usize,
    /// Maximum number of cached plans (0 disables caching).
    pub capacity: usize,
    /// Compiles answered from the cache.
    pub hits: u64,
    /// Compiles that built a new plan.
    pub misses: u64,
    /// Plans displaced from the cache: LRU evictions to make room, plus
    /// replacements of a slot by a hash-colliding or concurrently compiled
    /// source.
    pub evictions: u64,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    type_id: TypeId,
    structural_hash: u64,
    options: EvalOptions,
}

struct CacheEntry {
    plan: Arc<dyn Any + Send + Sync>,
    last_used: u64,
}

struct PlanCache {
    entries: HashMap<PlanKey, CacheEntry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

/// Configures and builds an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    precision: Precision,
    options: EvalOptions,
    threads: Option<usize>,
    plan_cache_capacity: usize,
}

impl EngineBuilder {
    /// The default configuration: double-double precision, zero-insertion
    /// kernel, layered execution, `PSMD_THREADS`/hardware-sized pool, 64
    /// cached plans.
    pub fn new() -> Self {
        Self {
            precision: Precision::D2,
            options: EvalOptions::default(),
            threads: None,
            plan_cache_capacity: 64,
        }
    }

    /// Sets the engine's default [`Precision`] — used by the value-level
    /// (dyn-erased) entry points such as [`Engine::compile_single_f64`].
    /// Typed [`Engine::compile`] calls fix the precision through their
    /// coefficient type instead.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the convolution kernel variant of compiled plans.
    pub fn kernel(mut self, kernel: crate::ConvolutionKernel) -> Self {
        self.options.kernel = kernel;
        self
    }

    /// Sets the pool execution mode of compiled plans.
    pub fn exec_mode(mut self, exec_mode: crate::ExecMode) -> Self {
        self.options.exec_mode = exec_mode;
        self
    }

    /// Sets the SIMD lane mode of compiled plans ([`crate::SimdMode::Auto`] by
    /// default: the `PSMD_SIMD` override, else the widest lane width the
    /// host supports).
    pub fn simd(mut self, simd: crate::SimdMode) -> Self {
        self.options.simd = simd;
        self
    }

    /// Sets both evaluation knobs at once.
    pub fn options(mut self, options: EvalOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the number of worker threads of the engine's pool (the launching
    /// thread always participates, so 0 degenerates to sequential
    /// execution).  Defaults to [`WorkerPool::default_worker_threads`]
    /// (the `PSMD_THREADS` override, else hardware parallelism minus one).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the plan-cache capacity (0 disables plan caching).
    pub fn plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.plan_cache_capacity = capacity;
        self
    }

    /// Builds the engine, spawning its worker pool.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration — see
    /// [`EngineBuilder::try_build`] for the fallible form services should
    /// use.
    pub fn build(self) -> Engine {
        match self.try_build() {
            Ok(engine) => engine,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds the engine, returning a [`crate::Error`] instead of panicking
    /// on an invalid configuration: a non-integer `PSMD_THREADS` override,
    /// an unrecognized `PSMD_SIMD` override, or a thread count beyond
    /// [`EngineBuilder::MAX_WORKER_THREADS`] (spawning an absurd number of
    /// OS threads is always a configuration bug, and a long-lived service
    /// should refuse it instead of dying mid-spawn).
    pub fn try_build(self) -> Result<Engine, Error> {
        let threads = match self.threads {
            Some(threads) => threads,
            None => match WorkerPool::try_threads_from_env() {
                Ok(Some(threads)) => threads,
                Ok(None) => WorkerPool::default_worker_threads(),
                Err(message) => return Err(Error::config(message)),
            },
        };
        // Surface a malformed PSMD_SIMD override at build time, mirroring
        // PSMD_THREADS: services fail fast on misconfiguration instead of
        // panicking inside the first plan compile.
        if let Err(message) = crate::SimdMode::try_from_env() {
            return Err(Error::config(message));
        }
        if threads > Self::MAX_WORKER_THREADS {
            return Err(Error::config(format!(
                "{threads} worker threads requested; the supported maximum is {}",
                Self::MAX_WORKER_THREADS
            )));
        }
        Ok(Engine {
            pool: Arc::new(WorkerPool::new(threads)),
            options: self.options,
            precision: self.precision,
            cache: Mutex::new(PlanCache::new(self.plan_cache_capacity)),
            workspaces: Mutex::new(HashMap::new()),
        })
    }
}

impl EngineBuilder {
    /// The largest worker-thread count [`EngineBuilder::try_build`]
    /// accepts.  Far beyond any real machine; a request above it is treated
    /// as a configuration error rather than an instruction to spawn
    /// thousands of OS threads.
    pub const MAX_WORKER_THREADS: usize = 4096;
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// The owned evaluation engine: a worker pool, default [`EvalOptions`] and a
/// structural plan cache behind one `Send + Sync` handle.
///
/// Compile once, evaluate many times, from as many threads as you like —
/// see the [module documentation](self) for the full picture.
pub struct Engine {
    pool: Arc<WorkerPool>,
    options: EvalOptions,
    precision: Precision,
    cache: Mutex<PlanCache>,
    /// One lock-free workspace pool per coefficient type, shared by every
    /// plan of that precision (the registry lock is taken at compile time
    /// only; evaluation checks workspaces out of the typed pool without
    /// locking).
    workspaces: Mutex<HashMap<TypeId, Arc<dyn Any + Send + Sync>>>,
}

impl Engine {
    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// An engine with the default configuration.
    pub fn new() -> Self {
        EngineBuilder::new().build()
    }

    /// The engine's worker pool (shared with every plan it compiles).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Total pool rendezvous performed by this engine's worker pool so far
    /// — the launch counter the serving layer's coalescing proof is stated
    /// in terms of: fewer rendezvous (and fewer service-level launches)
    /// than requests means requests shared launches.  See
    /// [`WorkerPool::rendezvous_count`] for what counts as a rendezvous.
    pub fn rendezvous_count(&self) -> usize {
        self.pool.rendezvous_count()
    }

    /// The default evaluation options of compiled plans.
    pub fn options(&self) -> EvalOptions {
        self.options
    }

    /// The default precision of the value-level entry points.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Compiles a polynomial source into an owned, shareable plan using the
    /// engine's default options.  Repeat compiles of a structurally
    /// identical source return the cached `Arc` without rebuilding the
    /// schedule.
    ///
    /// # Panics
    ///
    /// Panics on a structurally invalid source — see
    /// [`Engine::try_compile`] for the fallible form services should use.
    pub fn compile<C: Coeff>(&self, source: impl Into<PolySource<C>>) -> Arc<Plan<C>> {
        self.compile_with_options(source, self.options)
    }

    /// Like [`Engine::compile`], but with per-plan option overrides; plans
    /// compiled from the same source with different options coexist in the
    /// cache.
    ///
    /// # Panics
    ///
    /// Panics on a structurally invalid source — see
    /// [`Engine::try_compile_with_options`].
    pub fn compile_with_options<C: Coeff>(
        &self,
        source: impl Into<PolySource<C>>,
        options: EvalOptions,
    ) -> Arc<Plan<C>> {
        match self.try_compile_with_options(source, options) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    /// Compiles a polynomial source with the engine's default options,
    /// returning a [`crate::Error`] instead of panicking when the source is
    /// structurally invalid (empty system, mismatched variable counts or
    /// degrees across equations, out-of-range variable indices) — the
    /// compile path for services accepting sources over a wire.
    pub fn try_compile<C: Coeff>(
        &self,
        source: impl Into<PolySource<C>>,
    ) -> Result<Arc<Plan<C>>, Error> {
        self.try_compile_with_options(source, self.options)
    }

    /// Like [`Engine::try_compile`], but with per-plan option overrides.
    pub fn try_compile_with_options<C: Coeff>(
        &self,
        source: impl Into<PolySource<C>>,
        options: EvalOptions,
    ) -> Result<Arc<Plan<C>>, Error> {
        let source = source.into();
        validate_source(&source)?;
        let key = PlanKey {
            type_id: TypeId::of::<C>(),
            structural_hash: source.structural_hash(),
            options,
        };
        {
            let mut cache = self.cache.lock();
            cache.tick += 1;
            let tick = cache.tick;
            if let Some(entry) = cache.entries.get_mut(&key) {
                if let Ok(plan) = Arc::clone(&entry.plan).downcast::<Plan<C>>() {
                    // A structural-hash hit is confirmed with bit-level
                    // equality before reuse, so hash collisions cannot alias
                    // plans — and NaN coefficients (where `PartialEq` would
                    // always say "different") still hit the cache.
                    if plan.source().bitwise_eq(&source) {
                        entry.last_used = tick;
                        cache.hits += 1;
                        return Ok(plan);
                    }
                }
            }
            cache.misses += 1;
        }
        // Compile outside the lock: schedule construction is the expensive
        // part and must not serialize concurrent compiles of different
        // sources.
        let plan = Arc::new(Plan::build(
            source,
            options,
            Arc::clone(&self.pool),
            self.workspace_pool::<C>(),
        ));
        let mut cache = self.cache.lock();
        if cache.capacity > 0 {
            if cache.entries.len() >= cache.capacity && !cache.entries.contains_key(&key) {
                // Evict the least-recently-used plan (callers holding its
                // Arc keep it alive; only the cache slot is reclaimed).
                if let Some(lru) = cache
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                {
                    cache.entries.remove(&lru);
                    cache.evictions += 1;
                }
            }
            let tick = cache.tick;
            let displaced = cache
                .entries
                .insert(
                    key,
                    CacheEntry {
                        plan: Arc::clone(&plan) as Arc<dyn Any + Send + Sync>,
                        last_used: tick,
                    },
                )
                .is_some();
            if displaced {
                // A hash-colliding source (or a concurrent compile of the
                // same source) occupied the slot: its plan is displaced and
                // counted, so cache churn is visible in the stats.
                cache.evictions += 1;
            }
        }
        Ok(plan)
    }

    /// The engine's workspace pool for coefficient type `C`, created on
    /// first use and shared by every plan of that precision.  Sized by the
    /// worker pool: one scratch lane per participant, and enough slots that
    /// as many concurrent evaluations as the pool has lanes recycle
    /// workspaces instead of building fresh ones.
    pub fn workspace_pool<C: Coeff>(&self) -> Arc<WorkspacePool<C>> {
        let mut map = self.workspaces.lock();
        let entry = map
            .entry(TypeId::of::<C>())
            .or_insert_with(|| {
                let participants = self.pool.parallelism();
                Arc::new(WorkspacePool::<C>::new(participants + 2, participants))
                    as Arc<dyn Any + Send + Sync>
            })
            .clone();
        entry
            .downcast::<WorkspacePool<C>>()
            .expect("workspace pool registry keyed by TypeId")
    }

    /// Plan-cache statistics (entries, hits, misses, evictions).
    pub fn cache_stats(&self) -> PlanCacheStats {
        let cache = self.cache.lock();
        PlanCacheStats {
            entries: cache.entries.len(),
            capacity: cache.capacity,
            hits: cache.hits,
            misses: cache.misses,
            evictions: cache.evictions,
        }
    }

    /// Drops every cached plan (outstanding `Arc<Plan>` handles stay valid).
    pub fn clear_plan_cache(&self) {
        self.cache.lock().entries.clear();
    }

    /// Compiles a single polynomial given as plain doubles at the engine's
    /// default [`Precision`] — the fully value-level entry point for callers
    /// (servers, FFI) that never see a coefficient type.  Each monomial is a
    /// `(coefficient, variables)` pair; constant and coefficients are
    /// embedded at the selected precision.
    pub fn compile_single_f64(
        &self,
        num_variables: usize,
        degree: usize,
        constant: f64,
        monomials: &[(f64, Vec<usize>)],
    ) -> AnyPlan {
        self.compile_any(AnyPolySource::single_from_f64(
            self.precision,
            num_variables,
            degree,
            constant,
            monomials,
        ))
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

/// Structural validation behind [`Engine::try_compile`]: rejects sources
/// the schedule builder would either panic on or silently mis-compile.
fn validate_source<C: Coeff>(source: &PolySource<C>) -> Result<(), Error> {
    fn validate_poly<C: Coeff>(p: &Polynomial<C>, equation: Option<usize>) -> Result<(), Error> {
        let context = |msg: String| match equation {
            Some(i) => Error::source(format!("equation {i}: {msg}")),
            None => Error::source(msg),
        };
        for (i, m) in p.monomials().iter().enumerate() {
            if let Some(&v) = m.variables.iter().find(|&&v| v >= p.num_variables()) {
                return Err(context(format!(
                    "monomial {i} references variable {v} but the polynomial has {} variables",
                    p.num_variables()
                )));
            }
        }
        Ok(())
    }
    match source {
        PolySource::Single(p) => validate_poly(p, None),
        PolySource::System(ps) => {
            let Some(first) = ps.first() else {
                return Err(Error::source(
                    "a system source needs at least one polynomial",
                ));
            };
            let (nv, d) = (first.num_variables(), first.degree());
            for (i, p) in ps.iter().enumerate() {
                if p.num_variables() != nv || p.degree() != d {
                    return Err(Error::source(format!(
                        "equation {i} has {} variables at degree {} but equation 0 has {nv} \
                         variables at degree {d}; a system shares one variable set and degree",
                        p.num_variables(),
                        p.degree()
                    )));
                }
                validate_poly(p, Some(i))?;
            }
            Ok(())
        }
    }
}

fn single_poly_from_f64<C: Coeff>(
    num_variables: usize,
    degree: usize,
    constant: f64,
    monomials: &[(f64, Vec<usize>)],
) -> Polynomial<C> {
    Polynomial::new(
        num_variables,
        Series::constant(C::from_f64(constant), degree),
        monomials
            .iter()
            .map(|(coefficient, variables)| {
                Monomial::new(
                    Series::constant(C::from_f64(*coefficient), degree),
                    variables.clone(),
                )
            })
            .collect(),
    )
}

/// Owned evaluation inputs for the precision-erased API (the borrowed
/// [`Inputs`] enum needs a lifetime, which a value-level handle cannot
/// carry).
#[derive(Debug, Clone)]
pub enum OwnedInputs<C> {
    /// One vector of input series.
    Single(Vec<Series<C>>),
    /// Many independent input vectors.
    Batch(Vec<Vec<Series<C>>>),
}

impl<C: Coeff> OwnedInputs<C> {
    /// Borrows the owned inputs as the unified [`Inputs`] view.
    pub fn as_inputs(&self) -> Inputs<'_, C> {
        match self {
            OwnedInputs::Single(z) => Inputs::Single(z),
            OwnedInputs::Batch(b) => Inputs::Batch(b),
        }
    }
}

macro_rules! define_any_api {
    ($(($variant:ident, $limbs:literal)),+ $(,)?) => {
        /// A [`PolySource`] whose precision is a run-time [`Precision`]
        /// value: one variant per `Md<N>` instantiation of the paper.
        #[derive(Debug, Clone)]
        pub enum AnyPolySource {
            $(
                #[doc = concat!("A source over `Md<", stringify!($limbs), ">` (`", stringify!($variant), "`).")]
                $variant(PolySource<Md<$limbs>>),
            )+
        }

        /// Owned inputs whose precision is a run-time [`Precision`] value.
        #[derive(Debug, Clone)]
        pub enum AnyInputs {
            $(
                #[doc = concat!("Inputs over `Md<", stringify!($limbs), ">` (`", stringify!($variant), "`).")]
                $variant(OwnedInputs<Md<$limbs>>),
            )+
        }

        /// A compiled plan whose precision is a run-time [`Precision`]
        /// value — the dyn-erased handle non-generic callers evaluate
        /// through.  Cloning clones the inner `Arc`.
        #[derive(Clone)]
        pub enum AnyPlan {
            $(
                #[doc = concat!("A plan over `Md<", stringify!($limbs), ">` (`", stringify!($variant), "`).")]
                $variant(Arc<Plan<Md<$limbs>>>),
            )+
        }

        /// An evaluation result whose precision is a run-time
        /// [`Precision`] value.
        #[derive(Debug, Clone)]
        pub enum AnyEvalOutput {
            $(
                #[doc = concat!("Output over `Md<", stringify!($limbs), ">` (`", stringify!($variant), "`).")]
                $variant(EvalOutput<Md<$limbs>>),
            )+
        }

        impl AnyPolySource {
            /// The precision tag of the source.
            pub fn precision(&self) -> Precision {
                match self {
                    $( AnyPolySource::$variant(_) => Precision::$variant, )+
                }
            }

            /// Builds a single-polynomial source from plain doubles at a
            /// run-time precision: each monomial is a `(coefficient,
            /// variables)` pair.
            pub fn single_from_f64(
                precision: Precision,
                num_variables: usize,
                degree: usize,
                constant: f64,
                monomials: &[(f64, Vec<usize>)],
            ) -> Self {
                match precision {
                    $(
                        Precision::$variant => AnyPolySource::$variant(PolySource::Single(
                            single_poly_from_f64::<Md<$limbs>>(
                                num_variables,
                                degree,
                                constant,
                                monomials,
                            ),
                        )),
                    )+
                }
            }
        }

        impl AnyInputs {
            /// The precision tag of the inputs.
            pub fn precision(&self) -> Precision {
                match self {
                    $( AnyInputs::$variant(_) => Precision::$variant, )+
                }
            }

            /// Builds one input-series vector from plain doubles at a
            /// run-time precision (`series[v]` holds the coefficients of
            /// variable `v`, constant term first).
            pub fn single_from_f64(precision: Precision, series: &[Vec<f64>]) -> Self {
                match precision {
                    $(
                        Precision::$variant => AnyInputs::$variant(OwnedInputs::Single(
                            series.iter().map(|coeffs| Series::from_f64_coeffs(coeffs)).collect(),
                        )),
                    )+
                }
            }
        }

        impl AnyPlan {
            /// The precision tag of the plan.
            pub fn precision(&self) -> Precision {
                match self {
                    $( AnyPlan::$variant(_) => Precision::$variant, )+
                }
            }

            /// Structure counts of the compiled schedule (cheap; see
            /// [`Plan::stats`]).
            pub fn stats(&self) -> PlanStats {
                match self {
                    $( AnyPlan::$variant(plan) => plan.stats(), )+
                }
            }

            /// Structure counts of the dependency graph, building (and
            /// caching) the graph plan on first call.
            pub fn graph_stats(&self) -> GraphPlanStats {
                match self {
                    $( AnyPlan::$variant(plan) => plan.graph_stats(), )+
                }
            }

            /// The single-polynomial schedule, if this is a single plan
            /// (cheaper than [`AnyPlan::stats`], which also builds the
            /// graph plan).
            pub fn schedule(&self) -> Option<&Schedule> {
                match self {
                    $( AnyPlan::$variant(plan) => plan.schedule(), )+
                }
            }

            /// The merged system schedule, if this is a system plan.
            pub fn system_schedule(&self) -> Option<&SystemSchedule> {
                match self {
                    $( AnyPlan::$variant(plan) => plan.system_schedule(), )+
                }
            }

            /// The options the plan was compiled with.
            pub fn options(&self) -> EvalOptions {
                match self {
                    $( AnyPlan::$variant(plan) => plan.options(), )+
                }
            }

            /// Starts a precision-erased evaluation request — the
            /// [`AnyPlan`] mirror of [`Plan::request`].  The returned
            /// [`AnyEvalRequest`] supports the same stages minus the typed
            /// workspace binding (workspaces carry the coefficient type;
            /// erased callers rely on the engine's pooled workspaces).
            pub fn request<'r>(&'r self, inputs: &'r AnyInputs) -> AnyEvalRequest<'r> {
                AnyEvalRequest {
                    plan: self,
                    inputs,
                    parallel: true,
                }
            }

        }

        /// A configured precision-erased evaluation: what
        /// [`AnyPlan::request`] returns.  Runs parallel with pooled
        /// memory by default; [`AnyEvalRequest::sequential`] pins the run
        /// to the calling thread and [`AnyEvalRequest::into`] binds an
        /// output buffer for reuse.
        #[must_use = "an evaluation request does nothing until `run()`"]
        pub struct AnyEvalRequest<'r> {
            plan: &'r AnyPlan,
            inputs: &'r AnyInputs,
            parallel: bool,
        }

        impl<'r> AnyEvalRequest<'r> {
            /// Runs on the calling thread only — bitwise identical to the
            /// pooled run.
            pub fn sequential(mut self) -> Self {
                self.parallel = false;
                self
            }

            /// Binds an existing [`AnyEvalOutput`] for the result, reusing
            /// its buffers: with a warm output of the matching precision
            /// and shape, the run performs zero heap allocations.  An
            /// output of another precision (or shape) is replaced.
            pub fn into(self, out: &'r mut AnyEvalOutput) -> BoundAnyEvalRequest<'r> {
                BoundAnyEvalRequest { request: self, out }
            }

            /// Executes the request and returns a freshly built output.
            ///
            /// # Panics
            ///
            /// Panics when the inputs carry a different precision tag than
            /// the plan, and in the same cases as [`EvalRequest::run`].
            pub fn run(self) -> AnyEvalOutput {
                match (self.plan, self.inputs) {
                    $(
                        (AnyPlan::$variant(plan), AnyInputs::$variant(inputs)) => {
                            let request = plan.request(inputs.as_inputs());
                            let request = if self.parallel {
                                request
                            } else {
                                request.sequential()
                            };
                            AnyEvalOutput::$variant(request.run())
                        }
                    )+
                    (plan, inputs) => panic!(
                        "precision mismatch: the plan is {} but the inputs are {}",
                        plan.precision(),
                        inputs.precision()
                    ),
                }
            }
        }

        /// An [`AnyEvalRequest`] bound to a caller-owned output buffer
        /// (see [`AnyEvalRequest::into`]).
        #[must_use = "an evaluation request does nothing until `run()`"]
        pub struct BoundAnyEvalRequest<'r> {
            request: AnyEvalRequest<'r>,
            out: &'r mut AnyEvalOutput,
        }

        impl<'r> BoundAnyEvalRequest<'r> {
            /// Runs on the calling thread only (see
            /// [`AnyEvalRequest::sequential`]).
            pub fn sequential(mut self) -> Self {
                self.request.parallel = false;
                self
            }

            /// Executes the request into the bound output.
            ///
            /// # Panics
            ///
            /// Panics in the same cases as [`AnyEvalRequest::run`].
            pub fn run(self) {
                match (self.request.plan, self.request.inputs) {
                    $(
                        (AnyPlan::$variant(plan), AnyInputs::$variant(inputs)) => {
                            if let AnyEvalOutput::$variant(out) = self.out {
                                let request = plan.request(inputs.as_inputs()).into(out);
                                let request = if self.request.parallel {
                                    request
                                } else {
                                    request.sequential()
                                };
                                request.run();
                            } else {
                                let request = plan.request(inputs.as_inputs());
                                let request = if self.request.parallel {
                                    request
                                } else {
                                    request.sequential()
                                };
                                *self.out = AnyEvalOutput::$variant(request.run());
                            }
                        }
                    )+
                    (plan, inputs) => panic!(
                        "precision mismatch: the plan is {} but the inputs are {}",
                        plan.precision(),
                        inputs.precision()
                    ),
                }
            }
        }

        impl AnyEvalOutput {
            /// The precision tag of the output.
            pub fn precision(&self) -> Precision {
                match self {
                    $( AnyEvalOutput::$variant(_) => Precision::$variant, )+
                }
            }

            /// The kernel timings of the run.
            pub fn timings(&self) -> &KernelTimings {
                match self {
                    $( AnyEvalOutput::$variant(out) => out.timings(), )+
                }
            }

            /// True when both outputs share a precision tag and are bitwise
            /// identical (see [`EvalOutput::bitwise_eq`]).
            pub fn bitwise_eq(&self, other: &AnyEvalOutput) -> bool {
                match (self, other) {
                    $(
                        (AnyEvalOutput::$variant(a), AnyEvalOutput::$variant(b)) => a.bitwise_eq(b),
                    )+
                    _ => false,
                }
            }

            /// The value series of a single evaluation rounded to doubles
            /// (for display and transport), if this is a single output.
            pub fn single_value_f64(&self) -> Option<Vec<f64>> {
                match self {
                    $(
                        AnyEvalOutput::$variant(out) => out
                            .as_single()
                            .map(|e| e.value.coeffs().iter().map(|c| c.to_f64()).collect()),
                    )+
                }
            }
        }

        impl Engine {
            /// Compiles a precision-erased source with the engine's default
            /// options; the returned [`AnyPlan`] carries the source's
            /// precision tag.  Shares the same plan cache as the typed
            /// [`Engine::compile`].
            ///
            /// # Panics
            ///
            /// Panics on a structurally invalid source — see
            /// [`Engine::try_compile_any`].
            pub fn compile_any(&self, source: AnyPolySource) -> AnyPlan {
                self.compile_any_with_options(source, self.options)
            }

            /// Like [`Engine::compile_any`] with per-plan option overrides.
            ///
            /// # Panics
            ///
            /// Panics on a structurally invalid source — see
            /// [`Engine::try_compile_any_with_options`].
            pub fn compile_any_with_options(
                &self,
                source: AnyPolySource,
                options: EvalOptions,
            ) -> AnyPlan {
                match self.try_compile_any_with_options(source, options) {
                    Ok(plan) => plan,
                    Err(e) => panic!("{e}"),
                }
            }

            /// The fallible form of [`Engine::compile_any`]: a
            /// structurally invalid source becomes a [`crate::Error`]
            /// instead of a panic.
            pub fn try_compile_any(&self, source: AnyPolySource) -> Result<AnyPlan, Error> {
                self.try_compile_any_with_options(source, self.options)
            }

            /// Like [`Engine::try_compile_any`] with per-plan option
            /// overrides.
            pub fn try_compile_any_with_options(
                &self,
                source: AnyPolySource,
                options: EvalOptions,
            ) -> Result<AnyPlan, Error> {
                match source {
                    $(
                        AnyPolySource::$variant(source) => {
                            Ok(AnyPlan::$variant(self.try_compile_with_options(source, options)?))
                        }
                    )+
                }
            }
        }

        $(
            impl From<PolySource<Md<$limbs>>> for AnyPolySource {
                fn from(source: PolySource<Md<$limbs>>) -> Self {
                    AnyPolySource::$variant(source)
                }
            }

            impl From<Polynomial<Md<$limbs>>> for AnyPolySource {
                fn from(poly: Polynomial<Md<$limbs>>) -> Self {
                    AnyPolySource::$variant(PolySource::Single(poly))
                }
            }

            impl From<Vec<Polynomial<Md<$limbs>>>> for AnyPolySource {
                fn from(polys: Vec<Polynomial<Md<$limbs>>>) -> Self {
                    AnyPolySource::$variant(PolySource::System(polys))
                }
            }

            impl From<OwnedInputs<Md<$limbs>>> for AnyInputs {
                fn from(inputs: OwnedInputs<Md<$limbs>>) -> Self {
                    AnyInputs::$variant(inputs)
                }
            }

            impl From<Vec<Series<Md<$limbs>>>> for AnyInputs {
                fn from(inputs: Vec<Series<Md<$limbs>>>) -> Self {
                    AnyInputs::$variant(OwnedInputs::Single(inputs))
                }
            }

            impl From<Vec<Vec<Series<Md<$limbs>>>>> for AnyInputs {
                fn from(batch: Vec<Vec<Series<Md<$limbs>>>>) -> Self {
                    AnyInputs::$variant(OwnedInputs::Batch(batch))
                }
            }
        )+
    };
}

define_any_api! {
    (D1, 1),
    (D2, 2),
    (D3, 3),
    (D4, 4),
    (D5, 5),
    (D8, 8),
    (D10, 10),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{random_inputs, random_polynomial};
    use crate::{ConvolutionKernel, ExecMode};
    use psmd_multidouble::{Dd, Qd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn coeff(c: f64, d: usize) -> Series<Qd> {
        Series::constant(Qd::from_f64(c), d)
    }

    fn paper_example(d: usize) -> Polynomial<Qd> {
        Polynomial::new(
            6,
            coeff(0.5, d),
            vec![
                Monomial::new(coeff(1.0, d), vec![0, 2, 5]),
                Monomial::new(coeff(2.0, d), vec![0, 1, 4, 5]),
                Monomial::new(coeff(3.0, d), vec![1, 2, 3]),
            ],
        )
    }

    fn random_z(n: usize, d: usize, seed: u64) -> Vec<Series<Qd>> {
        let mut rng = StdRng::seed_from_u64(seed);
        random_inputs::<Qd, _>(n, d, &mut rng)
    }

    #[test]
    fn engine_and_plan_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<Plan<Qd>>();
        assert_send_sync::<Arc<Plan<Dd>>>();
        assert_send_sync::<AnyPlan>();
        assert_send_sync::<EvalOutput<Qd>>();
    }

    #[test]
    fn single_plan_evaluates_single_and_batch_inputs() {
        let d = 4;
        let p = paper_example(d);
        let engine = Engine::builder().threads(2).build();
        let plan = engine.compile(p);
        let z = random_z(6, d, 3);
        let single = plan.request(Inputs::Single(&z)).run().into_single();
        let sequential = plan.request(&z).sequential().run().into_single();
        assert_eq!(single.value, sequential.value);
        assert_eq!(single.gradient, sequential.gradient);
        let batch: Vec<Vec<Series<Qd>>> = (0..3).map(|i| random_z(6, d, 10 + i)).collect();
        let batched = plan.request(&batch).run().into_batch();
        assert_eq!(batched.len(), 3);
        for (inputs, got) in batch.iter().zip(batched.instances.iter()) {
            let want = plan.request(inputs).sequential().run().into_single();
            assert_eq!(got.value, want.value);
            assert_eq!(got.gradient, want.gradient);
        }
    }

    #[test]
    fn system_plan_produces_values_and_jacobian() {
        let d = 3;
        let f1 = paper_example(d);
        let mut rng = StdRng::seed_from_u64(5);
        let f2: Polynomial<Qd> = random_polynomial(6, 4, 3, d, &mut rng);
        let engine = Engine::builder().threads(2).build();
        let plan = engine.compile(vec![f1, f2]);
        let z = random_z(6, d, 9);
        let out = plan.request(&z).run().into_system();
        assert_eq!(out.values.len(), 2);
        assert_eq!(out.jacobian.len(), 2);
        assert_eq!(out.jacobian[0].len(), 6);
        let seq = plan.request(&z).sequential().run().into_system();
        assert_eq!(out.values, seq.values);
        assert_eq!(out.jacobian, seq.jacobian);
    }

    #[test]
    fn system_plan_evaluates_batched_inputs_bitwise_like_per_instance() {
        let d = 3;
        let f1 = paper_example(d);
        let mut rng = StdRng::seed_from_u64(5);
        let f2: Polynomial<Qd> = random_polynomial(6, 4, 3, d, &mut rng);
        let engine = Engine::builder().threads(2).build();
        let plan = engine.compile(vec![f1, f2]);
        let batch: Vec<Vec<Series<Qd>>> = (0..4).map(|i| random_z(6, d, 20 + i)).collect();
        let batched = plan.request(&batch).run().into_system_batch();
        assert_eq!(batched.len(), batch.len());
        for (z, got) in batch.iter().zip(batched.instances.iter()) {
            let want = plan.request(z).sequential().run().into_system();
            // Same merged schedule, same arithmetic, same order: bitwise
            // identical to the single-instance system evaluation.
            assert_eq!(got.values, want.values);
            assert_eq!(got.jacobian, want.jacobian);
        }
        // Launch counts equal the merged layer counts — independent of the
        // batch size — with batch × jobs blocks per launch.
        let schedule = plan.system_schedule().expect("system plan");
        assert_eq!(
            batched.timings.convolution_launches,
            schedule.convolution_layers.len()
        );
        assert_eq!(
            batched.timings.convolution_blocks,
            batch.len() * schedule.convolution_jobs()
        );
    }

    #[test]
    fn empty_system_batch_returns_no_instances() {
        let engine = Engine::builder().threads(0).build();
        let plan = engine.compile(vec![paper_example(2)]);
        let result = plan
            .request(&Vec::<Vec<Series<Qd>>>::new())
            .sequential()
            .run()
            .into_system_batch();
        assert!(result.is_empty());
        assert_eq!(result.timings.convolution_launches, 0);
    }

    #[test]
    fn plan_cache_hits_on_structural_equality() {
        let d = 3;
        let engine = Engine::builder().threads(0).build();
        let a = engine.compile(paper_example(d));
        // A fresh but structurally identical polynomial hits the cache.
        let b = engine.compile(paper_example(d));
        assert!(Arc::ptr_eq(&a, &b));
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        // Different coefficients are a different plan.
        let mut other = paper_example(d);
        other = Polynomial::new(
            other.num_variables(),
            coeff(0.25, d),
            other.monomials().to_vec(),
        );
        let c = engine.compile(other);
        assert!(!Arc::ptr_eq(&a, &c));
        // Different options coexist with the default-options plan.
        let g = engine.compile_with_options(
            paper_example(d),
            EvalOptions::new().with_exec_mode(ExecMode::Graph),
        );
        assert!(!Arc::ptr_eq(&a, &g));
        assert_eq!(engine.cache_stats().entries, 3);
    }

    #[test]
    fn plan_cache_evicts_least_recently_used() {
        let d = 2;
        let engine = Engine::builder().threads(0).plan_cache_capacity(2).build();
        let mut rng = StdRng::seed_from_u64(77);
        let polys: Vec<Polynomial<Dd>> = (0..3)
            .map(|_| random_polynomial(4, 6, 3, d, &mut rng))
            .collect();
        let a = engine.compile(polys[0].clone());
        let _b = engine.compile(polys[1].clone());
        // Touch the first plan so the second becomes the LRU victim.
        let a2 = engine.compile(polys[0].clone());
        assert!(Arc::ptr_eq(&a, &a2));
        let _c = engine.compile(polys[2].clone());
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        // The surviving first plan still hits; the evicted second plan
        // recompiles as a miss (displacing the LRU survivor in turn).
        let a3 = engine.compile(polys[0].clone());
        assert!(Arc::ptr_eq(&a, &a3));
        let misses = stats.misses;
        let _b2 = engine.compile(polys[1].clone());
        assert_eq!(engine.cache_stats().misses, misses + 1);
    }

    #[test]
    fn nan_coefficients_still_hit_the_cache() {
        // PartialEq would reject NaN == NaN forever; the cache confirms
        // hash hits with bit-level equality instead, so a source with NaN
        // coefficients compiles once and then hits like any other.
        let d = 1;
        let nan_poly = || {
            Polynomial::new(
                2,
                Series::constant(Qd::from_f64(f64::NAN), d),
                vec![Monomial::new(
                    Series::constant(Qd::from_f64(2.0), d),
                    vec![0, 1],
                )],
            )
        };
        let engine = Engine::builder().threads(0).build();
        let a = engine.compile(nan_poly());
        let b = engine.compile(nan_poly());
        assert!(Arc::ptr_eq(&a, &b));
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        // bitwise_eq on outputs likewise treats equal-bit NaNs as equal.
        let z = vec![Series::<Qd>::one(d), Series::<Qd>::one(d)];
        let x = a.request(&z).sequential().run();
        let y = b.request(&z).sequential().run();
        assert!(x.bitwise_eq(&y));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let engine = Engine::builder().threads(0).plan_cache_capacity(0).build();
        let a = engine.compile(paper_example(2));
        let b = engine.compile(paper_example(2));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(engine.cache_stats().entries, 0);
    }

    #[test]
    fn graph_mode_pays_one_rendezvous_visible_in_timings() {
        let d = 6;
        let engine = Engine::builder()
            .threads(3)
            .exec_mode(ExecMode::Graph)
            .build();
        let plan = engine.compile(paper_example(d));
        let z = random_z(6, d, 11);
        let out = plan.request(&z).run();
        assert_eq!(out.timings().pool_rendezvous, 1);
        assert_eq!(out.timings().graph_launches, 1);
        let seq = plan.request(&z).sequential().run();
        assert_eq!(seq.timings().pool_rendezvous, 0);
        assert!(out.bitwise_eq(&seq));
    }

    #[test]
    fn plan_stats_report_the_schedule_structure() {
        let d = 2;
        let engine = Engine::builder().threads(0).build();
        let plan = engine.compile(paper_example(d));
        let stats = plan.stats();
        assert_eq!(stats.equations, 1);
        assert_eq!(stats.num_variables, 6);
        assert_eq!(stats.degree, d);
        // Equation (4): 21 convolutions, 7 additions.
        assert_eq!(stats.convolution_jobs, 21);
        assert_eq!(stats.addition_jobs, 7);
        assert_eq!(stats.unique_monomials, 3);
        assert_eq!(stats.total_monomials, 3);
        let graph = plan.graph_stats();
        assert_eq!(graph.blocks, 28);
        assert!(graph.edges > 0);
        assert!(graph.critical_path > 1);
    }

    #[test]
    fn any_plan_round_trips_f64_sources() {
        // A value-level caller: no generic parameter anywhere.
        let engine = Engine::builder()
            .threads(0)
            .precision(Precision::D4)
            .build();
        let plan = engine.compile_single_f64(2, 2, 1.0, &[(3.0, vec![0, 1])]);
        assert_eq!(plan.precision(), Precision::D4);
        let inputs =
            AnyInputs::single_from_f64(Precision::D4, &[vec![1.0, 1.0, 0.0], vec![1.0, -1.0, 0.0]]);
        let out = plan.request(&inputs).run();
        assert_eq!(out.precision(), Precision::D4);
        let value = out.single_value_f64().unwrap();
        assert_eq!(value, vec![4.0, 0.0, -3.0]); // 1 + 3 (1+t)(1-t)
                                                 // Compiling the same f64 source again hits the cache.
        let hits = engine.cache_stats().hits;
        let _again = engine.compile_single_f64(2, 2, 1.0, &[(3.0, vec![0, 1])]);
        assert_eq!(engine.cache_stats().hits, hits + 1);
    }

    #[test]
    #[should_panic(expected = "precision mismatch")]
    fn any_plan_rejects_mismatched_input_precision() {
        let engine = Engine::builder().threads(0).build();
        let plan = engine.compile_single_f64(1, 1, 0.0, &[(1.0, vec![0])]);
        let wrong = AnyInputs::single_from_f64(Precision::D10, &[vec![1.0, 0.0]]);
        let _ = plan.request(&wrong).run();
    }

    #[test]
    fn request_builder_matches_every_legacy_entry_point() {
        let d = 3;
        let engine = Engine::builder().threads(2).build();
        let plan = engine.compile(paper_example(d));
        let z = random_z(6, d, 31);
        let reference = plan.request(&z).run();
        // Workspace-bound, output-bound and sequential stages all agree
        // bitwise with the bare request.
        let mut ws = plan.create_workspace();
        assert!(plan
            .request(&z)
            .workspace(&mut ws)
            .run()
            .bitwise_eq(&reference));
        let mut out = EvalOutput::Single(Evaluation::empty());
        plan.request(&z).into(&mut out).run();
        assert!(out.bitwise_eq(&reference));
        plan.request(&z).workspace(&mut ws).into(&mut out).run();
        assert!(out.bitwise_eq(&reference));
        assert!(plan.request(&z).sequential().run().bitwise_eq(&reference));
        plan.request(&z).into(&mut out).sequential().run();
        assert!(out.bitwise_eq(&reference));
    }

    #[test]
    fn any_request_builder_matches_typed_requests() {
        let engine = Engine::builder().threads(0).build();
        let plan = engine.compile_single_f64(2, 2, 1.0, &[(3.0, vec![0, 1])]);
        let inputs =
            AnyInputs::single_from_f64(Precision::D2, &[vec![1.0, 1.0, 0.0], vec![1.0, -1.0, 0.0]]);
        let out = plan.request(&inputs).run();
        let seq = plan.request(&inputs).sequential().run();
        assert!(out.bitwise_eq(&seq));
        let mut bound = plan.request(&inputs).run();
        plan.request(&inputs).into(&mut bound).run();
        assert!(bound.bitwise_eq(&out));
        // A bound output of the wrong precision is replaced, not corrupted.
        let mut wrong = AnyEvalOutput::D10(EvalOutput::Single(Evaluation::empty()));
        plan.request(&inputs).into(&mut wrong).run();
        assert_eq!(wrong.precision(), Precision::D2);
        assert!(wrong.bitwise_eq(&out));
    }

    #[test]
    fn try_build_rejects_absurd_thread_counts() {
        let err = Engine::builder()
            .threads(EngineBuilder::MAX_WORKER_THREADS + 1)
            .try_build()
            .err()
            .unwrap();
        assert!(matches!(err, Error::Config(_)));
        assert!(err.to_string().contains("worker threads"));
        // The panicking wrapper forwards the same message.
        assert!(Engine::builder().threads(2).try_build().is_ok());
    }

    #[test]
    fn try_compile_rejects_structurally_invalid_sources() {
        let engine = Engine::builder().threads(0).build();
        // Empty system.
        let err = engine
            .try_compile(Vec::<Polynomial<Qd>>::new())
            .err()
            .unwrap();
        assert!(matches!(err, Error::Source(_)));
        // Mismatched degrees across equations.
        let err = engine
            .try_compile(vec![paper_example(2), paper_example(3)])
            .err()
            .unwrap();
        assert!(err.to_string().contains("degree"));
        // Out-of-range variable index: `Monomial`'s fields are public, so a
        // literal with unsorted indices (last in range) slips past the
        // constructors' checks — the compile-time validation still rejects
        // it.
        let d = 2;
        let bad = Polynomial::new(
            2,
            coeff(1.0, d),
            vec![Monomial {
                coefficient: coeff(1.0, d),
                variables: vec![7, 0],
            }],
        );
        let err = engine.try_compile(bad).err().unwrap();
        assert!(err.to_string().contains("variable 7"));
        // A valid source still compiles (and hits the cache on repeat).
        assert!(engine.try_compile(paper_example(d)).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid polynomial source")]
    fn compile_panics_on_invalid_source_with_the_error_message() {
        let engine = Engine::builder().threads(0).build();
        let _ = engine.compile(Vec::<Polynomial<Qd>>::new());
    }

    #[test]
    fn per_plan_option_overrides_apply() {
        let d = 4;
        let engine = Engine::builder().threads(2).build();
        let zero = engine.compile(paper_example(d));
        let direct = engine.compile_with_options(
            paper_example(d),
            EvalOptions::new().with_kernel(ConvolutionKernel::Direct),
        );
        assert_eq!(direct.options().kernel, ConvolutionKernel::Direct);
        let z = random_z(6, d, 21);
        let a = zero.request(&z).run().into_single();
        let b = direct.request(&z).run().into_single();
        // Different kernels round differently but agree to precision.
        assert!(a.max_difference(&b) < 1e-55);
    }
}
