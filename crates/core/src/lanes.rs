//! Lane-group decomposition of the batch axis: which instances of a batched
//! evaluation run packed into SIMD lane panels and which drain scalar.
//!
//! Batched evaluation runs the identical job schedule over `instances`
//! disjoint arena regions — the textbook SIMD lane axis.  [`LaneLayout`]
//! splits those instances into `instances / W` full lane groups plus a
//! scalar remainder, and the runners below execute one schedule job for a
//! whole lane group: gather the group's operand slots from the flat arena
//! into transposed structure-of-arrays panels, run the vectorized panel
//! kernel of [`psmd_series::lanes`], and scatter the output panel back.
//! The flat [`DataLayout`](crate::schedule::DataLayout) and the
//! single/system evaluation paths are untouched: lanes exist only between
//! the gather and the scatter.
//!
//! Per lane the panel kernels are bitwise identical to the scalar kernels
//! (see `psmd_multidouble::lanes`), and the gather/scatter transposes are
//! exact-bit `write_limbs`/`from_limbs` round trips — so a lane group
//! produces exactly the arena bytes the scalar path produces for the same
//! instances.  `tests/simd_consistency.rs` gates this end to end.

use crate::evaluate::{run_addition_job, run_convolution_job, ConvolutionKernel};
use crate::schedule::{AddJob, ConvJob, GraphPlan};
use crate::workspace::ConvScratch;
use psmd_multidouble::Coeff;
use psmd_runtime::SharedSlice;
use psmd_series::lanes::{convolve_panels_dyn, gather_into_panel, panel_f64s, scatter_from_panel};

/// How `instances` batch instances decompose into SIMD lane groups of
/// `width` plus a scalar remainder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneLayout {
    width: usize,
    groups: usize,
    remainder: usize,
}

/// One schedulable unit of a [`LaneLayout`]: a full lane group or a single
/// scalar instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneUnit {
    /// A full group of `width` instances starting at instance `first`.
    Group {
        /// Index of the group's first instance.
        first: usize,
    },
    /// One remainder instance executed scalar.
    Scalar {
        /// The instance index.
        instance: usize,
    },
}

impl LaneLayout {
    /// Decomposes `instances` into lane groups of `width` (widths below 2
    /// mean no grouping: every instance is a scalar unit).
    pub fn new(instances: usize, width: usize) -> Self {
        if width >= 2 {
            Self {
                width,
                groups: instances / width,
                remainder: instances % width,
            }
        } else {
            Self {
                width: 1,
                groups: 0,
                remainder: instances,
            }
        }
    }

    /// The lane width of the full groups.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of full lane groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Number of schedulable units: full groups plus scalar remainder
    /// instances.  With width 1 this is exactly `instances`, so the
    /// unit-indexed launch degenerates to the historical per-instance grid.
    pub fn units(&self) -> usize {
        self.groups + self.remainder
    }

    /// Resolves unit `u` (`u < self.units()`): groups come first, then the
    /// scalar remainder in instance order.
    pub fn unit(&self, u: usize) -> LaneUnit {
        if u < self.groups {
            LaneUnit::Group {
                first: u * self.width,
            }
        } else {
            LaneUnit::Scalar {
                instance: self.groups * self.width + (u - self.groups),
            }
        }
    }
}

/// Executes one convolution job for a whole lane group: gathers the group's
/// operand slots into the workspace's lane panels, convolves all lanes with
/// one vectorized kernel pass, and scatters the result back into each
/// instance's output slot.
///
/// Only the schoolbook kernels have lane variants; any other kernel
/// (Karatsuba, FFT) falls back to per-lane scalar execution, which keeps
/// this runner total without changing any bits.  Gathering happens before
/// the first scatter, so the in-place `b := b * a` job shape needs no extra
/// staging here.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_convolution_job_lanes<C: Coeff>(
    shared: &SharedSlice<'_, C>,
    job: &ConvJob,
    per: usize,
    kernel: ConvolutionKernel,
    scratch: &mut ConvScratch<C>,
    width: usize,
    first_instance: usize,
    map_slot: &(impl Fn(usize, usize) -> usize + Sync),
) {
    let kernel = match kernel {
        ConvolutionKernel::Auto => crate::crossover::auto_kernel(C::component_limbs(), per - 1),
        k => k,
    };
    let zero_insert = match kernel {
        ConvolutionKernel::ZeroInsertion => true,
        ConvolutionKernel::Direct => false,
        _ => {
            for l in 0..width {
                let instance = first_instance + l;
                let mapped = ConvJob {
                    in1: map_slot(instance, job.in1),
                    in2: map_slot(instance, job.in2),
                    out: map_slot(instance, job.out),
                };
                run_convolution_job(shared, &mapped, per, kernel, scratch);
            }
            return;
        }
    };
    let panel = panel_f64s::<C>(per, width);
    let panels = scratch.ensure_lanes(3 * panel);
    let (xp, rest) = panels.split_at_mut(panel);
    let (yp, zp) = rest.split_at_mut(panel);
    for l in 0..width {
        let instance = first_instance + l;
        // Safety (reads): the schedule guarantees that within one layer (or
        // graph dependency frontier) no other job writes these input ranges;
        // the output range is written only after both gathers complete.
        let x: &[C] = unsafe { shared.slice(map_slot(instance, job.in1) * per, per) };
        let y: &[C] = unsafe { shared.slice(map_slot(instance, job.in2) * per, per) };
        gather_into_panel(x, xp, l, width);
        gather_into_panel(y, yp, l, width);
    }
    convolve_panels_dyn::<C>(width, zero_insert, xp, yp, zp, per);
    for l in 0..width {
        let instance = first_instance + l;
        // Safety: the schedule guarantees each instance's output range is
        // written by this job only.
        let out = unsafe { shared.slice_mut(map_slot(instance, job.out) * per, per) };
        scatter_from_panel(zp, out, l, width);
    }
}

/// Executes one graph node for a whole lane group: convolution nodes run
/// through [`run_convolution_job_lanes`], addition nodes loop the lanes
/// scalar (additions are memory-bound slice updates; gathering them into
/// panels would only move the same bytes twice).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_graph_node_lanes<C: Coeff>(
    plan: &GraphPlan,
    node: usize,
    shared: &SharedSlice<'_, C>,
    per: usize,
    kernel: ConvolutionKernel,
    scratch: &mut ConvScratch<C>,
    width: usize,
    first_instance: usize,
    map_slot: &(impl Fn(usize, usize) -> usize + Sync),
) {
    let n_conv = plan.conv.len();
    if node < n_conv {
        run_convolution_job_lanes(
            shared,
            &plan.conv[node],
            per,
            kernel,
            scratch,
            width,
            first_instance,
            map_slot,
        );
    } else {
        let job = plan.add[node - n_conv];
        for l in 0..width {
            let instance = first_instance + l;
            let mapped = AddJob {
                src: map_slot(instance, job.src),
                dst: map_slot(instance, job.dst),
            };
            run_addition_job(shared, &mapped, per);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_partitions_every_instance_exactly_once() {
        for (instances, width) in [(0, 4), (3, 4), (4, 4), (5, 4), (11, 4), (16, 8), (7, 1)] {
            let layout = LaneLayout::new(instances, width);
            let mut seen = vec![0usize; instances];
            for u in 0..layout.units() {
                match layout.unit(u) {
                    LaneUnit::Group { first } => {
                        for l in 0..layout.width() {
                            seen[first + l] += 1;
                        }
                    }
                    LaneUnit::Scalar { instance } => seen[instance] += 1,
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "{instances} @ {width}");
        }
    }

    #[test]
    fn width_one_degenerates_to_per_instance_units() {
        let layout = LaneLayout::new(5, 1);
        assert_eq!(layout.units(), 5);
        assert_eq!(layout.groups(), 0);
        for u in 0..5 {
            assert_eq!(layout.unit(u), LaneUnit::Scalar { instance: u });
        }
    }

    #[test]
    fn groups_precede_the_scalar_remainder() {
        let layout = LaneLayout::new(11, 4);
        assert_eq!(layout.groups(), 2);
        assert_eq!(layout.units(), 2 + 3);
        assert_eq!(layout.unit(0), LaneUnit::Group { first: 0 });
        assert_eq!(layout.unit(1), LaneUnit::Group { first: 4 });
        assert_eq!(layout.unit(2), LaneUnit::Scalar { instance: 8 });
        assert_eq!(layout.unit(4), LaneUnit::Scalar { instance: 10 });
    }
}
