//! Data staging and job scheduling (Section 5 of the paper).
//!
//! The evaluation of a polynomial and its gradient at power series is turned
//! into two sequences of jobs:
//!
//! * **convolution jobs** compute the forward, backward and cross products
//!   of every monomial (Section 3); each job multiplies two power series
//!   addressed by their positions in one flat data array and stores the
//!   product at a third position;
//! * **addition jobs** sum the evaluated monomials into the value and the
//!   gradient with a tree summation.
//!
//! Jobs are grouped into *layers*: all jobs of a layer are independent (their
//! outputs are pairwise disjoint and no job reads what another job of the
//! same layer writes), so one layer corresponds to one kernel launch with one
//! block per job.

use crate::monomial::Monomial;
use crate::polynomial::Polynomial;
use psmd_multidouble::Coeff;
use psmd_runtime::{TaskGraph, TaskGraphBuilder};
use psmd_series::Series;

/// One convolution job: `data[out] := data[in1] * data[in2]` where the three
/// indices address power series *slots* of the flat data array (multiply by
/// `d + 1` coefficients per slot to obtain the paper's double offsets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvJob {
    /// Slot of the first input series.
    pub in1: usize,
    /// Slot of the second input series.
    pub in2: usize,
    /// Slot of the output series (may equal `in1` for the in-place update of
    /// the last backward product with the coefficient).
    pub out: usize,
}

/// One addition job: `data[dst] += data[src]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddJob {
    /// Slot of the series added into the destination.
    pub src: usize,
    /// Slot updated in place.
    pub dst: usize,
}

/// Positions of every series in the flat data array, following the layout of
/// Figure 1: the constant term, the monomial coefficients, the input series,
/// then for every monomial its forward, backward and cross products.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataLayout {
    /// Truncation degree `d`.
    pub degree: usize,
    /// Total number of series slots.
    pub num_slots: usize,
    /// Slot of the constant term `a_0` (always 0).
    pub constant_slot: usize,
    /// Slot of each monomial coefficient `a_k`.
    pub coefficient_slots: Vec<usize>,
    /// Slot of each input series `z_i`.
    pub input_slots: Vec<usize>,
    /// Forward product slots per monomial (`n_k` of them).
    pub forward_slots: Vec<Vec<usize>>,
    /// Backward product slots per monomial (`max(1, n_k - 2)` for `n_k >= 2`,
    /// none for a single-variable monomial).
    pub backward_slots: Vec<Vec<usize>>,
    /// Cross product slots per monomial (`n_k - 2` for `n_k >= 3`).
    pub cross_slots: Vec<Vec<usize>>,
    /// Scratch accumulator slots for degenerate outputs (outputs whose every
    /// contribution is a read-only input slot).
    pub scratch_slots: Vec<usize>,
}

impl DataLayout {
    /// Builds the layout for a polynomial.
    pub fn new<C: Coeff>(poly: &Polynomial<C>) -> Self {
        let n_mono = poly.num_monomials();
        let n_vars = poly.num_variables();
        let mut next = 0usize;
        let mut take = |count: usize| {
            let start = next;
            next += count;
            (start..start + count).collect::<Vec<usize>>()
        };
        let constant_slot = take(1)[0];
        let coefficient_slots = take(n_mono);
        let input_slots = take(n_vars);
        let mut forward_slots = Vec::with_capacity(n_mono);
        let mut backward_slots = Vec::with_capacity(n_mono);
        let mut cross_slots = Vec::with_capacity(n_mono);
        for m in poly.monomials() {
            let nk = m.num_variables();
            forward_slots.push(take(nk));
            backward_slots.push(take(if nk >= 2 { (nk - 2).max(1) } else { 0 }));
            cross_slots.push(take(nk.saturating_sub(2)));
        }
        Self {
            degree: poly.degree(),
            num_slots: next,
            constant_slot,
            coefficient_slots,
            input_slots,
            forward_slots,
            backward_slots,
            cross_slots,
            scratch_slots: Vec::new(),
        }
    }

    /// Number of coefficients per slot.
    pub fn coeffs_per_slot(&self) -> usize {
        self.degree + 1
    }

    /// Offset (in coefficients) of a slot in the flat data array, i.e. the
    /// paper's index triplet entries `(d + 1) * slot`.
    pub fn offset(&self, slot: usize) -> usize {
        slot * self.coeffs_per_slot()
    }

    /// Total number of coefficients of the data array (the quantity `e /
    /// (d+1)` of Equation (7), plus any scratch slots).
    pub fn total_coefficients(&self) -> usize {
        self.num_slots * self.coeffs_per_slot()
    }

    /// Slot addressing a series of batch instance `instance` when `batch`
    /// instances of this layout are laid out back-to-back in one flat arena
    /// (the batched evaluation engine): instance `i` occupies slots
    /// `i * num_slots .. (i + 1) * num_slots`.
    pub fn batch_slot(&self, instance: usize, slot: usize) -> usize {
        debug_assert!(slot < self.num_slots);
        instance * self.num_slots + slot
    }

    /// Offset (in coefficients) of the start of batch instance `instance` in
    /// the flat arena.
    pub fn batch_instance_offset(&self, instance: usize) -> usize {
        instance * self.total_coefficients()
    }

    /// Total number of coefficients of an arena holding `batch` instances.
    pub fn batch_total_coefficients(&self, batch: usize) -> usize {
        batch * self.total_coefficients()
    }

    /// The slot holding the derivative of monomial `k` with respect to the
    /// variable at position `pos` of its index tuple, or `None` when the
    /// derivative is the read-only coefficient itself (single-variable
    /// monomials).
    pub fn derivative_slot(
        &self,
        monomial: &Monomial<impl Coeff>,
        k: usize,
        pos: usize,
    ) -> Option<usize> {
        derivative_slot_in(
            monomial.num_variables(),
            pos,
            &self.forward_slots[k],
            &self.backward_slots[k],
            &self.cross_slots[k],
        )
    }
}

/// Checks the layer invariants of any two-stage job schedule: within one
/// layer, outputs are pairwise distinct and no job reads a slot that another
/// job of the same layer writes.  Returns a description of the first
/// violation, if any.  Shared by the single-polynomial and the system
/// schedules so both enforce exactly the same invariant.
pub(crate) fn validate_job_layers(
    convolution_layers: &[Vec<ConvJob>],
    addition_layers: &[Vec<AddJob>],
) -> Result<(), String> {
    for (l, layer) in convolution_layers.iter().enumerate() {
        let mut outputs = std::collections::HashSet::new();
        for job in layer {
            if !outputs.insert(job.out) {
                return Err(format!(
                    "convolution layer {l}: duplicate output slot {}",
                    job.out
                ));
            }
        }
        for job in layer {
            let reads_foreign_output = |slot: usize| outputs.contains(&slot) && slot != job.out;
            if reads_foreign_output(job.in1) || reads_foreign_output(job.in2) {
                return Err(format!(
                    "convolution layer {l}: job {job:?} reads a slot written by another job"
                ));
            }
        }
    }
    for (l, layer) in addition_layers.iter().enumerate() {
        let mut outputs = std::collections::HashSet::new();
        for job in layer {
            if !outputs.insert(job.dst) {
                return Err(format!(
                    "addition layer {l}: duplicate destination {}",
                    job.dst
                ));
            }
        }
        for job in layer {
            if outputs.contains(&job.src) {
                return Err(format!(
                    "addition layer {l}: job {job:?} reads a destination of the same layer"
                ));
            }
        }
    }
    Ok(())
}

/// A schedule lowered to block granularity for the dependency-driven
/// executor: the flattened job lists (convolutions first, then additions, in
/// layered reference order) plus the [`TaskGraph`] of their data-hazard
/// edges.
///
/// Block `b` of a graph launch runs `conv[b]` when `b < conv.len()` and
/// `add[b - conv.len()]` otherwise.  Because the graph preserves, per data
/// slot, the exact operation order of the layered schedule, any execution
/// respecting the edges is bitwise identical to the layered result.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphPlan {
    /// The block-level dependency graph over `conv.len() + add.len()` nodes.
    pub graph: TaskGraph,
    /// Every convolution job, in layered order.
    pub conv: Vec<ConvJob>,
    /// Every addition job, in layered order.
    pub add: Vec<AddJob>,
}

impl GraphPlan {
    /// Total number of blocks (graph nodes).
    pub fn blocks(&self) -> usize {
        self.conv.len() + self.add.len()
    }
}

/// Lowers layered convolution and addition schedules to a [`GraphPlan`]:
/// every job becomes one graph node whose read/write slots derive the
/// dependency edges (convolutions read their two operand slots and write
/// their output; additions read `src` and update `dst` in place).  Shared by
/// the single-polynomial and the system schedules.
pub(crate) fn build_graph_plan(
    convolution_layers: &[Vec<ConvJob>],
    addition_layers: &[Vec<AddJob>],
) -> GraphPlan {
    let mut builder = TaskGraphBuilder::new();
    let mut conv = Vec::new();
    let mut add = Vec::new();
    for layer in convolution_layers {
        for job in layer {
            builder.add_task(&[job.in1, job.in2], &[job.out]);
            conv.push(*job);
        }
    }
    for layer in addition_layers {
        for job in layer {
            builder.add_task(&[job.src, job.dst], &[job.dst]);
            add.push(*job);
        }
    }
    GraphPlan {
        graph: builder.build(),
        conv,
        add,
    }
}

/// The slot holding the derivative with respect to the variable at position
/// `pos` of an `nk`-variable monomial, given the monomial's forward, backward
/// and cross slot ranges, or `None` when the derivative is the read-only
/// coefficient itself (single-variable monomials).
pub(crate) fn derivative_slot_in(
    nk: usize,
    pos: usize,
    forward: &[usize],
    backward: &[usize],
    cross: &[usize],
) -> Option<usize> {
    match nk {
        1 => None,
        2 => {
            if pos == 0 {
                Some(backward[0])
            } else {
                Some(forward[0])
            }
        }
        _ => {
            if pos == 0 {
                Some(backward[nk - 3])
            } else if pos == nk - 1 {
                Some(forward[nk - 2])
            } else {
                Some(cross[pos - 1])
            }
        }
    }
}

/// Where the result of an output (the value or one gradient component) ends
/// up after the addition stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultLocation {
    /// The output is identically zero (no monomial contributes).
    Zero,
    /// The output lives in this slot of the data array.
    Slot(usize),
}

/// Extracts the result series at `location` from a populated data array of
/// `per`-coefficient slots into `out`, reusing its buffer — the shared body
/// of [`Schedule::extract_into`] and
/// [`SystemSchedule::extract_into`](crate::SystemSchedule::extract_into).
pub(crate) fn extract_location_into<C: Coeff>(
    data: &[C],
    location: ResultLocation,
    per: usize,
    degree: usize,
    out: &mut Series<C>,
) {
    match location {
        ResultLocation::Zero => out.fill_zero(degree),
        ResultLocation::Slot(slot) => {
            let off = slot * per;
            out.copy_from_coeffs(&data[off..off + per]);
        }
    }
}

/// The complete two-stage job schedule for one polynomial.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// The data layout the job indices refer to.
    pub layout: DataLayout,
    /// Convolution jobs grouped in layers (one kernel launch per layer).
    pub convolution_layers: Vec<Vec<ConvJob>>,
    /// Addition jobs grouped in layers.
    pub addition_layers: Vec<Vec<AddJob>>,
    /// Location of the polynomial value after the addition stage.
    pub value_location: ResultLocation,
    /// Location of each gradient component after the addition stage.
    pub gradient_locations: Vec<ResultLocation>,
}

impl Schedule {
    /// Builds the full schedule for a polynomial.
    pub fn build<C: Coeff>(poly: &Polynomial<C>) -> Self {
        let mut layout = DataLayout::new(poly);
        let convolution_layers = build_convolution_layers(poly, &layout);
        let (addition_layers, value_location, gradient_locations) =
            build_addition_layers(poly, &mut layout);
        let schedule = Self {
            layout,
            convolution_layers,
            addition_layers,
            value_location,
            gradient_locations,
        };
        debug_assert!(schedule.validate_layers().is_ok());
        schedule
    }

    /// Total number of convolution jobs.
    pub fn convolution_jobs(&self) -> usize {
        self.convolution_layers.iter().map(Vec::len).sum()
    }

    /// Total number of addition jobs.
    pub fn addition_jobs(&self) -> usize {
        self.addition_layers.iter().map(Vec::len).sum()
    }

    /// Blocks per convolution kernel launch.
    pub fn convolution_layer_sizes(&self) -> Vec<usize> {
        self.convolution_layers.iter().map(Vec::len).collect()
    }

    /// Blocks per addition kernel launch.
    pub fn addition_layer_sizes(&self) -> Vec<usize> {
        self.addition_layers.iter().map(Vec::len).collect()
    }

    /// Checks the layer invariants: within one layer, outputs are pairwise
    /// distinct and no job reads a slot that another job of the same layer
    /// writes.  Returns a description of the first violation, if any.
    pub fn validate_layers(&self) -> Result<(), String> {
        validate_job_layers(&self.convolution_layers, &self.addition_layers)
    }

    /// Lowers the schedule to block granularity for the dependency-driven
    /// executor: the flattened jobs plus the [`TaskGraph`] of their
    /// data-hazard edges (each convolution depends on the jobs producing its
    /// operand slots; output sums depend on their monomial convolutions).
    pub fn graph_plan(&self) -> GraphPlan {
        build_graph_plan(&self.convolution_layers, &self.addition_layers)
    }

    /// Populates the flat data array with the polynomial's coefficient
    /// series and the input series; product slots are zero-initialized.
    pub fn build_data_array<C: Coeff>(&self, poly: &Polynomial<C>, inputs: &[Series<C>]) -> Vec<C> {
        let mut data = vec![C::zero(); self.layout.total_coefficients()];
        self.fill_data_array(poly, inputs, &mut data);
        data
    }

    /// Populates one instance's region of a (possibly batched) flat data
    /// array: writes the constant, the monomial coefficients and the input
    /// series into their slots and leaves every product slot untouched (the
    /// caller provides a zero-initialized slice).
    pub fn fill_data_array<C: Coeff>(
        &self,
        poly: &Polynomial<C>,
        inputs: &[Series<C>],
        data: &mut [C],
    ) {
        assert_eq!(inputs.len(), poly.num_variables(), "wrong number of inputs");
        assert_eq!(
            data.len(),
            self.layout.total_coefficients(),
            "data slice does not match the layout"
        );
        let per = self.layout.coeffs_per_slot();
        let write_slot = |slot: usize, series: &Series<C>, data: &mut [C]| {
            assert_eq!(series.degree(), self.layout.degree, "degree mismatch");
            let off = slot * per;
            data[off..off + per].copy_from_slice(series.coeffs());
        };
        write_slot(self.layout.constant_slot, poly.constant(), data);
        for (k, m) in poly.monomials().iter().enumerate() {
            write_slot(self.layout.coefficient_slots[k], &m.coefficient, data);
        }
        for (i, z) in inputs.iter().enumerate() {
            write_slot(self.layout.input_slots[i], z, data);
        }
    }

    /// Extracts a result series from the populated data array.
    pub fn extract<C: Coeff>(&self, data: &[C], location: ResultLocation) -> Series<C> {
        let per = self.layout.coeffs_per_slot();
        match location {
            ResultLocation::Zero => Series::zero(self.layout.degree),
            ResultLocation::Slot(slot) => {
                let off = slot * per;
                Series::from_coeffs(data[off..off + per].to_vec())
            }
        }
    }

    /// Extracts a result series into `out`, reusing its buffer — the
    /// allocation-free counterpart of [`Schedule::extract`] used by the
    /// workspace-reusing evaluation paths.
    pub fn extract_into<C: Coeff>(
        &self,
        data: &[C],
        location: ResultLocation,
        out: &mut Series<C>,
    ) {
        extract_location_into(
            data,
            location,
            self.layout.coeffs_per_slot(),
            self.layout.degree,
            out,
        );
    }
}

/// Builds the convolution layers by walking every monomial's forward,
/// backward and cross products and assigning each job to the earliest layer
/// in which both of its inputs are available (dependency-driven version of
/// the paper's level assignment; it reproduces the launch structure reported
/// for the test polynomials).
fn build_convolution_layers<C: Coeff>(
    poly: &Polynomial<C>,
    layout: &DataLayout,
) -> Vec<Vec<ConvJob>> {
    let mut layers: Vec<Vec<ConvJob>> = Vec::new();
    for (k, m) in poly.monomials().iter().enumerate() {
        let z_slots: Vec<usize> = m.variables.iter().map(|&v| layout.input_slots[v]).collect();
        schedule_monomial_convolutions(
            layout.coefficient_slots[k],
            &z_slots,
            &layout.forward_slots[k],
            &layout.backward_slots[k],
            &layout.cross_slots[k],
            &mut layers,
        );
    }
    layers
}

/// Schedules the forward, backward and cross products of one monomial into
/// the shared convolution layers: job `j` of each chain lands in the earliest
/// layer in which both of its inputs are available (Section 3 of the paper).
///
/// `a_slot` is the monomial's coefficient slot, `z_slots` the input slots of
/// its variables in tuple order, and `forward`/`backward`/`cross` the product
/// slot ranges reserved for it.
pub(crate) fn schedule_monomial_convolutions(
    a_slot: usize,
    z_slots: &[usize],
    forward: &[usize],
    backward: &[usize],
    cross: &[usize],
    layers: &mut Vec<Vec<ConvJob>>,
) {
    let nk = z_slots.len();
    let push = |layer: usize, job: ConvJob, layers: &mut Vec<Vec<ConvJob>>| {
        while layers.len() <= layer {
            layers.push(Vec::new());
        }
        layers[layer].push(job);
    };
    let z = |j: usize| z_slots[j];
    let f = forward;
    // Forward products: f_1 = a * z_{i1}, f_j = f_{j-1} * z_{ij}.
    push(
        0,
        ConvJob {
            in1: a_slot,
            in2: z(0),
            out: f[0],
        },
        layers,
    );
    for j in 1..nk {
        push(
            j,
            ConvJob {
                in1: f[j - 1],
                in2: z(j),
                out: f[j],
            },
            layers,
        );
    }
    if nk == 1 {
        return;
    }
    let b = backward;
    if nk == 2 {
        // Special case: the only backward product is z_{i2} * a_k, the
        // derivative with respect to the first variable.
        push(
            0,
            ConvJob {
                in1: z(1),
                in2: a_slot,
                out: b[0],
            },
            layers,
        );
        return;
    }
    // Backward products: b_1 = z_{ink} * z_{ink-1},
    // b_j = b_{j-1} * z_{ink-j}, and finally b_{nk-2} *= a_k.
    push(
        0,
        ConvJob {
            in1: z(nk - 1),
            in2: z(nk - 2),
            out: b[0],
        },
        layers,
    );
    for j in 1..nk - 2 {
        // Paper (1-based): b_{j+1} = b_j * z_{nk-(j+1)}, i.e. the next
        // variable below the ones already folded into b_j.
        push(
            j,
            ConvJob {
                in1: b[j - 1],
                in2: z(nk - 2 - j),
                out: b[j],
            },
            layers,
        );
    }
    // In-place update of the last backward product with the coefficient;
    // it depends on b_{nk-2}, which becomes available after nk-2 layers.
    push(
        nk - 2,
        ConvJob {
            in1: b[nk - 3],
            in2: a_slot,
            out: b[nk - 3],
        },
        layers,
    );
    // Cross products: c_j = f_j * b_{nk-2-j} for j = 1 .. nk-3, plus
    // c_{nk-2} = f_{nk-2} * z_{ink}.  (The derivative with respect to the
    // variable at position j is f_j times the product of the variables
    // above position j.)
    let c = cross;
    for j in 1..=nk - 3 {
        // f_j available after layer j (0-based index j-1), b_{nk-2-j}
        // after layer nk-2-j (0-based index nk-3-j).
        let layer = j.max(nk - 2 - j);
        push(
            layer,
            ConvJob {
                in1: f[j - 1],
                in2: b[nk - 3 - j],
                out: c[j - 1],
            },
            layers,
        );
    }
    push(
        nk - 2,
        ConvJob {
            in1: f[nk - 3],
            in2: z(nk - 1),
            out: c[nk - 3],
        },
        layers,
    );
}

/// One summation problem: read-only contributions plus writable accumulator
/// slots to be combined into a single result.
pub(crate) struct OutputSum {
    /// Slots that may be updated in place (monomial product slots).
    pub(crate) targets: Vec<usize>,
    /// Slots that may only be read (the constant term, coefficients of
    /// single-variable monomials, products shared between equations).
    pub(crate) read_only: Vec<usize>,
}

impl OutputSum {
    fn location(&self) -> ResultLocation {
        if let Some(&slot) = self.targets.first() {
            ResultLocation::Slot(slot)
        } else if self.read_only.len() == 1 {
            ResultLocation::Slot(self.read_only[0])
        } else {
            ResultLocation::Zero
        }
    }
}

/// Schedules every output's summation and merges the per-output layers into
/// shared kernel launches (layer `i` of every output lands in launch `i`;
/// slots of different outputs are disjoint by construction).
///
/// Every output is summed with a binary tree over its writable slots; read-
/// only contributions are folded into writable slots in dedicated leading
/// layers.  Outputs whose every contribution is read-only receive a scratch
/// accumulator slot taken from `next_slot` and recorded in `scratch_slots`.
/// Returns the merged layers and the result location of every output, in
/// input order.
pub(crate) fn schedule_output_sums(
    mut outputs: Vec<OutputSum>,
    next_slot: &mut usize,
    scratch_slots: &mut Vec<usize>,
) -> (Vec<Vec<AddJob>>, Vec<ResultLocation>) {
    // Degenerate outputs (more than one contribution but no writable slot)
    // receive a scratch accumulator appended to the layout.
    for out in outputs.iter_mut() {
        if out.targets.is_empty() && out.read_only.len() > 1 {
            let slot = *next_slot;
            *next_slot += 1;
            scratch_slots.push(slot);
            out.targets.push(slot);
        }
    }
    // Schedule every output independently, then merge layer-by-layer.
    let mut merged: Vec<Vec<AddJob>> = Vec::new();
    let push = |layer: usize, job: AddJob, merged: &mut Vec<Vec<AddJob>>| {
        while merged.len() <= layer {
            merged.push(Vec::new());
        }
        merged[layer].push(job);
    };
    for out in &outputs {
        if out.targets.is_empty() {
            continue;
        }
        let mut layer = 0usize;
        // Fold read-only contributions into distinct targets, as many per
        // layer as there are targets.
        for chunk in out.read_only.chunks(out.targets.len()) {
            for (i, &src) in chunk.iter().enumerate() {
                push(
                    layer,
                    AddJob {
                        src,
                        dst: out.targets[i],
                    },
                    &mut merged,
                );
            }
            layer += 1;
        }
        // Binary tree over the targets.
        let mut current = out.targets.clone();
        while current.len() > 1 {
            let mut next = Vec::with_capacity(current.len().div_ceil(2));
            let mut i = 0;
            while i + 1 < current.len() {
                push(
                    layer,
                    AddJob {
                        src: current[i + 1],
                        dst: current[i],
                    },
                    &mut merged,
                );
                next.push(current[i]);
                i += 2;
            }
            if i < current.len() {
                next.push(current[i]);
            }
            current = next;
            layer += 1;
        }
    }
    let locations = outputs.iter().map(|o| o.location()).collect();
    (merged, locations)
}

/// Builds the addition layers for the value and every gradient component by
/// assembling one [`OutputSum`] per output and handing them to the shared
/// scheduler [`schedule_output_sums`].
fn build_addition_layers<C: Coeff>(
    poly: &Polynomial<C>,
    layout: &mut DataLayout,
) -> (Vec<Vec<AddJob>>, ResultLocation, Vec<ResultLocation>) {
    // Assemble the summation problem of every output.
    let mut outputs: Vec<OutputSum> = Vec::with_capacity(1 + poly.num_variables());
    // The polynomial value: a_0 plus the last forward product of every
    // monomial.
    outputs.push(OutputSum {
        targets: (0..poly.num_monomials())
            .map(|k| {
                let f = &layout.forward_slots[k];
                f[f.len() - 1]
            })
            .collect(),
        read_only: vec![layout.constant_slot],
    });
    // Each gradient component.
    for v in 0..poly.num_variables() {
        let mut targets = Vec::new();
        let mut read_only = Vec::new();
        for (k, m) in poly.monomials().iter().enumerate() {
            if let Some(pos) = m.position_of(v) {
                match layout.derivative_slot(m, k, pos) {
                    Some(slot) => targets.push(slot),
                    None => read_only.push(layout.coefficient_slots[k]),
                }
            }
        }
        outputs.push(OutputSum { targets, read_only });
    }
    let (merged, mut locations) =
        schedule_output_sums(outputs, &mut layout.num_slots, &mut layout.scratch_slots);
    let gradient_locations = locations.split_off(1);
    (merged, locations[0], gradient_locations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psmd_multidouble::Qd;
    use psmd_series::Series;

    fn coeff(c: f64, d: usize) -> Series<Qd> {
        Series::constant(Qd::from_f64(c), d)
    }

    /// The example polynomial of Equation (4).
    fn paper_example(d: usize) -> Polynomial<Qd> {
        Polynomial::new(
            6,
            coeff(0.5, d),
            vec![
                Monomial::new(coeff(1.0, d), vec![0, 2, 5]),
                Monomial::new(coeff(2.0, d), vec![0, 1, 4, 5]),
                Monomial::new(coeff(3.0, d), vec![1, 2, 3]),
            ],
        )
    }

    #[test]
    fn layout_follows_figure_1() {
        let p = paper_example(3);
        let layout = DataLayout::new(&p);
        assert_eq!(layout.constant_slot, 0);
        assert_eq!(layout.coefficient_slots, vec![1, 2, 3]);
        assert_eq!(layout.input_slots, vec![4, 5, 6, 7, 8, 9]);
        // Figure 1: f1 has 3 slots, f2 has 4, f3 has 3; b1 1, b2 2, b3 1;
        // c1 1, c2 2, c3 1.
        assert_eq!(layout.forward_slots[0].len(), 3);
        assert_eq!(layout.forward_slots[1].len(), 4);
        assert_eq!(layout.forward_slots[2].len(), 3);
        assert_eq!(layout.backward_slots[0].len(), 1);
        assert_eq!(layout.backward_slots[1].len(), 2);
        assert_eq!(layout.backward_slots[2].len(), 1);
        assert_eq!(layout.cross_slots[0].len(), 1);
        assert_eq!(layout.cross_slots[1].len(), 2);
        assert_eq!(layout.cross_slots[2].len(), 1);
        // Total slots: 1 + 3 + 6 + (3+4+3) + (1+2+1) + (1+2+1) = 28,
        // matching the 28 boxes of Figure 1.
        assert_eq!(layout.num_slots, 28);
        // The offset of f1,1 (first forward slot of monomial 1) is 10 (d+1),
        // as in the triplet example of Section 5.
        assert_eq!(layout.forward_slots[0][0], 10);
        assert_eq!(layout.offset(layout.forward_slots[0][0]), 10 * (3 + 1));
    }

    #[test]
    fn example_schedule_has_21_convolutions_in_4_layers() {
        let p = paper_example(2);
        let s = Schedule::build(&p);
        assert_eq!(s.convolution_jobs(), 21);
        // Display (5) of the paper arranges the 21 convolutions in 4 layers
        // of 9, 6 (wait: 6+3), ... our dependency-driven layering yields 4
        // layers whose sizes sum to 21 and whose first layer holds the 6
        // first-step jobs (f_{k,1} and b_{k,1} for each monomial).
        assert_eq!(s.convolution_layers.len(), 4);
        let sizes = s.convolution_layer_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 21);
        assert_eq!(sizes[0], 6);
        assert_eq!(s.addition_jobs(), 7);
        s.validate_layers().unwrap();
    }

    #[test]
    fn schedule_counts_match_polynomial_counts() {
        let p = paper_example(2);
        let s = Schedule::build(&p);
        assert_eq!(s.convolution_jobs(), p.convolution_jobs());
        assert_eq!(s.addition_jobs(), p.addition_jobs());
    }

    #[test]
    fn single_and_two_variable_monomials() {
        let d = 1;
        let p = Polynomial::new(
            3,
            coeff(1.0, d),
            vec![
                Monomial::new(coeff(2.0, d), vec![0]),
                Monomial::new(coeff(3.0, d), vec![0, 2]),
            ],
        );
        let s = Schedule::build(&p);
        // Single-variable monomial: 1 convolution; two-variable: 3.
        assert_eq!(s.convolution_jobs(), 4);
        // Value: 2 additions (2 monomials, a0 folded in); gradient x0: the
        // derivative of the first monomial is the read-only coefficient a_1
        // and of the second the backward product -> 1 addition; x2: single
        // contribution -> 0.
        assert_eq!(s.addition_jobs(), 3);
        s.validate_layers().unwrap();
        match s.gradient_locations[1] {
            ResultLocation::Zero => {}
            other => panic!("variable 1 does not occur, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_gradient_gets_a_scratch_slot() {
        // Two single-variable monomials in the same variable: both
        // derivatives are read-only coefficient slots, so a scratch
        // accumulator must be allocated.
        let d = 0;
        let p = Polynomial::new(
            1,
            coeff(0.0, d),
            vec![
                Monomial::new(coeff(2.0, d), vec![0]),
                Monomial::new(coeff(5.0, d), vec![0]),
            ],
        );
        let s = Schedule::build(&p);
        assert_eq!(s.layout.scratch_slots.len(), 1);
        assert_eq!(s.addition_jobs(), 2 + 2); // value: 2, gradient: 2 into scratch
        s.validate_layers().unwrap();
    }

    #[test]
    fn validation_catches_conflicting_layers() {
        let p = paper_example(2);
        let mut s = Schedule::build(&p);
        // Force a duplicate output in the first layer.
        let job = s.convolution_layers[0][0];
        s.convolution_layers[0].push(job);
        assert!(s.validate_layers().is_err());
    }

    #[test]
    fn data_array_round_trip() {
        let p = paper_example(2);
        let s = Schedule::build(&p);
        let inputs: Vec<Series<Qd>> = (0..6)
            .map(|i| Series::from_f64_coeffs(&[i as f64 + 1.0, 0.5, 0.25]))
            .collect();
        let data = s.build_data_array(&p, &inputs);
        assert_eq!(data.len(), s.layout.total_coefficients());
        // The constant term sits in slot 0.
        let v = s.extract(&data, ResultLocation::Slot(s.layout.constant_slot));
        assert_eq!(v.coeff(0).to_f64(), 0.5);
        // Input z3 sits in its slot.
        let z3 = s.extract(&data, ResultLocation::Slot(s.layout.input_slots[3]));
        assert_eq!(z3.coeff(0).to_f64(), 4.0);
        assert_eq!(z3.coeff(2).to_f64(), 0.25);
        // Product slots start out zero.
        let f11 = s.extract(&data, ResultLocation::Slot(s.layout.forward_slots[0][0]));
        assert!(f11.is_zero());
        // Zero extraction.
        assert!(s.extract(&data, ResultLocation::Zero).is_zero());
    }

    #[test]
    fn graph_plan_matches_the_layer_structure_of_the_paper_example() {
        let p = paper_example(2);
        let s = Schedule::build(&p);
        let plan = s.graph_plan();
        assert_eq!(plan.blocks(), s.convolution_jobs() + s.addition_jobs());
        assert_eq!(plan.conv.len(), s.convolution_jobs());
        assert_eq!(plan.add.len(), s.addition_jobs());
        plan.graph.validate().unwrap();
        // No monomial of the example has a single variable, so the blocks
        // that are ready at launch are exactly the first-layer convolutions.
        assert_eq!(plan.graph.roots().len(), s.convolution_layers[0].len());
        // The critical path must thread through every convolution layer and
        // at least one addition.
        assert!(plan.graph.critical_path_len() > s.convolution_layers.len());
        // Flattened order is the layered reference order.
        assert_eq!(
            plan.conv[..s.convolution_layers[0].len()],
            s.convolution_layers[0][..]
        );
    }

    #[test]
    fn graph_plan_chains_every_accumulation_into_a_slot() {
        // Duplicate single-variable monomials force scratch accumulation;
        // both `scratch += coefficient` additions update the same slot and
        // must be chained by an edge (order decides the floating-point
        // result).
        let d = 0;
        let p = Polynomial::new(
            1,
            coeff(0.0, d),
            vec![
                Monomial::new(coeff(2.0, d), vec![0]),
                Monomial::new(coeff(5.0, d), vec![0]),
            ],
        );
        let plan = Schedule::build(&p).graph_plan();
        plan.graph.validate().unwrap();
        let n_conv = plan.conv.len();
        for (i, a) in plan.add.iter().enumerate() {
            for (j, b) in plan.add.iter().enumerate().skip(i + 1) {
                if a.dst == b.dst {
                    assert!(
                        plan.graph
                            .successors(n_conv + i)
                            .contains(&((n_conv + j) as u32)),
                        "additions {i} and {j} into slot {} are unordered",
                        a.dst
                    );
                }
            }
        }
    }

    #[test]
    fn p1_like_monomials_reproduce_the_paper_launch_structure() {
        // All 4-variable monomials over 8 variables (a scaled-down p1):
        // every monomial contributes 2, 3, 3, 1 jobs to layers 1-4.
        let d = 1;
        let vars: Vec<Vec<usize>> = {
            let mut v = Vec::new();
            for a in 0..8usize {
                for b in a + 1..8 {
                    for c in b + 1..8 {
                        for e in c + 1..8 {
                            v.push(vec![a, b, c, e]);
                        }
                    }
                }
            }
            v
        };
        let n_mono = vars.len();
        assert_eq!(n_mono, 70); // C(8,4)
        let monomials = vars
            .into_iter()
            .map(|v| Monomial::new(coeff(1.0, d), v))
            .collect();
        let p = Polynomial::new(8, coeff(1.0, d), monomials);
        let s = Schedule::build(&p);
        assert_eq!(
            s.convolution_layer_sizes(),
            vec![2 * n_mono, 3 * n_mono, 3 * n_mono, n_mono]
        );
        assert_eq!(s.convolution_jobs(), 9 * n_mono);
        s.validate_layers().unwrap();
    }
}
