//! Generators for test polynomials and random evaluation data.
//!
//! The paper's benchmark polynomials (Table 2) are all instances of two
//! structural families: "all products of exactly `m` out of `n` variables"
//! (p1 and p3) and "`N` monomials of `m` consecutive variables" (p2).  Both
//! are provided here, along with a fully random generator used by the
//! property tests.

use crate::monomial::Monomial;
use crate::polynomial::Polynomial;
use psmd_multidouble::{Coeff, RandomCoeff};
use psmd_series::Series;
use rand::Rng;

/// All strictly increasing index tuples of length `m` drawn from `0..n`
/// (the supports of the monomials of p1 and p3).
pub fn combinations(n: usize, m: usize) -> Vec<Vec<usize>> {
    assert!(m >= 1 && m <= n, "need 1 <= m <= n, got m={m}, n={n}");
    let mut result = Vec::new();
    let mut current: Vec<usize> = (0..m).collect();
    loop {
        result.push(current.clone());
        // Advance to the next combination in lexicographic order.
        let mut i = m;
        loop {
            if i == 0 {
                return result;
            }
            i -= 1;
            if current[i] != i + n - m {
                break;
            }
            if i == 0 {
                return result;
            }
        }
        current[i] += 1;
        for j in i + 1..m {
            current[j] = current[j - 1] + 1;
        }
    }
}

/// Binomial coefficient `C(n, m)` (used to validate the generators).
pub fn binomial(n: usize, m: usize) -> usize {
    if m > n {
        return 0;
    }
    let m = m.min(n - m);
    let mut result = 1usize;
    for i in 0..m {
        result = result * (n - i) / (i + 1);
    }
    result
}

/// The supports of a "banded" polynomial: `count` monomials, the `k`-th using
/// the `width` consecutive variables starting at `k` (modulo `n`), sorted.
/// This realizes the structure of the paper's p2: few monomials, each with
/// many variables.
pub fn banded_supports(n: usize, width: usize, count: usize) -> Vec<Vec<usize>> {
    assert!(width >= 1 && width <= n);
    (0..count)
        .map(|k| {
            let mut vars: Vec<usize> = (0..width).map(|j| (k + j) % n).collect();
            vars.sort_unstable();
            vars
        })
        .collect()
}

/// Builds a polynomial with the given supports, random unit coefficient
/// series and a random constant term.
pub fn polynomial_with_supports<C, R>(
    supports: Vec<Vec<usize>>,
    num_variables: usize,
    degree: usize,
    rng: &mut R,
) -> Polynomial<C>
where
    C: Coeff + RandomCoeff,
    R: Rng + ?Sized,
{
    let monomials = supports
        .into_iter()
        .map(|vars| Monomial::new(Series::random_unit(rng, degree), vars))
        .collect();
    Polynomial::new(num_variables, Series::random_unit(rng, degree), monomials)
}

/// A fully random polynomial: `num_monomials` monomials with distinct random
/// supports of size between 1 and `max_support`.
pub fn random_polynomial<C, R>(
    num_variables: usize,
    num_monomials: usize,
    max_support: usize,
    degree: usize,
    rng: &mut R,
) -> Polynomial<C>
where
    C: Coeff + RandomCoeff,
    R: Rng + ?Sized,
{
    let max_support = max_support.clamp(1, num_variables);
    let mut supports = Vec::with_capacity(num_monomials);
    for _ in 0..num_monomials {
        let size = rng.gen_range(1..=max_support);
        let mut vars = Vec::with_capacity(size);
        while vars.len() < size {
            let v = rng.gen_range(0..num_variables);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        vars.sort_unstable();
        supports.push(vars);
    }
    polynomial_with_supports(supports, num_variables, degree, rng)
}

/// Random input series (one per variable), with well-conditioned leading
/// coefficients, as used for the paper's experiments.
pub fn random_inputs<C, R>(num_variables: usize, degree: usize, rng: &mut R) -> Vec<Series<C>>
where
    C: Coeff + RandomCoeff,
    R: Rng + ?Sized,
{
    (0..num_variables)
        .map(|_| Series::random_unit(rng, degree))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psmd_multidouble::Qd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn combinations_enumerate_all_subsets() {
        let c = combinations(5, 3);
        assert_eq!(c.len(), binomial(5, 3));
        assert_eq!(c[0], vec![0, 1, 2]);
        assert_eq!(c[c.len() - 1], vec![2, 3, 4]);
        // All distinct and sorted.
        for v in &c {
            assert!(v.windows(2).all(|w| w[0] < w[1]));
        }
        let mut sorted = c.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), c.len());
    }

    #[test]
    fn combinations_match_paper_table_2_counts() {
        // p1: all products of exactly 4 of 16 variables -> 1820 monomials.
        assert_eq!(combinations(16, 4).len(), 1_820);
        assert_eq!(binomial(16, 4), 1_820);
        // p3: all products of 2 of 128 variables -> 8128 monomials.
        assert_eq!(binomial(128, 2), 8_128);
    }

    #[test]
    fn combinations_edge_cases() {
        assert_eq!(combinations(4, 4), vec![vec![0, 1, 2, 3]]);
        assert_eq!(combinations(3, 1), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(3, 7), 0);
    }

    #[test]
    fn banded_supports_have_the_requested_shape() {
        let s = banded_supports(128, 64, 128);
        assert_eq!(s.len(), 128);
        for vars in &s {
            assert_eq!(vars.len(), 64);
            assert!(vars.windows(2).all(|w| w[0] < w[1]));
            assert!(*vars.last().unwrap() < 128);
        }
        // Different monomials have different supports.
        let mut dedup = s.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 128);
    }

    #[test]
    fn random_polynomial_is_well_formed_and_reproducible() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let p1: Polynomial<Qd> = random_polynomial(10, 25, 5, 3, &mut r1);
        let p2: Polynomial<Qd> = random_polynomial(10, 25, 5, 3, &mut r2);
        assert_eq!(p1, p2);
        assert_eq!(p1.num_monomials(), 25);
        assert!(p1.max_variables_per_monomial() <= 5);
        let z = random_inputs::<Qd, _>(10, 3, &mut r1);
        assert_eq!(z.len(), 10);
        assert!(z.iter().all(|s| s.degree() == 3));
    }
}
