//! Reusable evaluation memory: the [`Workspace`] and its lock-free pool.
//!
//! The paper's GPU kernels stage every convolution operand in pre-sized
//! shared memory and never allocate mid-kernel; the CPU reproduction used to
//! heap-allocate on every evaluation instead — a fresh arena per call,
//! two operand copies plus a kernel scratch vector per convolution job, and
//! fresh output vectors.  A [`Workspace`] makes the memory of one evaluation
//! shape explicit and reusable:
//!
//! * the **arena** — the flat coefficient array of Figure 1 (one instance
//!   region per batch element for batched evaluation);
//! * one **convolution scratch** per worker-pool participant lane, holding
//!   the zero-insertion staging area of Section 2 plus room to stage an
//!   operand that aliases the job's output (the in-place `b := b * a`
//!   update), so convolution jobs borrow instead of allocate;
//! * the **inline graph scratch** (pending counters, ready stack) of
//!   dependency-order execution on zero-worker pools.
//!
//! All three grow on shape change and are reused verbatim while the shape is
//! stable, which is what makes steady-state evaluation **allocation-free**
//! (enforced by `tests/workspace_alloc.rs`).
//!
//! Workspaces are checked out of a [`WorkspacePool`] owned by the engine —
//! a fixed array of lock-free slots (`AtomicPtr` swaps only, no locks, no
//! ABA hazard because slots are only ever swapped whole) sized by the
//! engine's thread count.  Callers that want explicit control create one
//! with [`crate::Plan::create_workspace`] and lend it to a request via
//! [`crate::EvalRequest::workspace`].

use crate::evaluate::ConvolutionKernel;
use psmd_multidouble::Coeff;
use psmd_runtime::InlineGraphScratch;
use psmd_series::{fft_scratch_f64_len, karatsuba_scratch_len, zero_insertion_scratch_len};
use std::ops::{Deref, DerefMut};
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

/// Per-participant convolution scratch: operand staging plus the selected
/// kernel's working memory (the zero-insertion shared-memory stand-in, the
/// Karatsuba recursion buffers, or the FFT digit planes), grown on demand
/// and reused across jobs, layers and evaluations.
#[derive(Debug, Default)]
pub struct ConvScratch<C> {
    buf: Vec<C>,
    fft: Vec<f64>,
    lanes: Vec<f64>,
}

/// Coefficients of one per-participant convolution-scratch lane at `per`
/// coefficients per slot under the default (zero-insertion) kernel: two
/// operand staging slots (for the in-place `b := b * a` update) plus the
/// zero-insertion kernel scratch of the paper's shared-memory staging.
/// Exposed for capacity planning and the bench reports; see
/// [`conv_scratch_coeffs_for`] for the other kernels of the ladder.
pub const fn conv_scratch_coeffs(per: usize) -> usize {
    2 * per + zero_insertion_scratch_len(per)
}

/// Coefficients of one convolution-scratch lane at `per` coefficients per
/// slot under a specific kernel: two operand staging slots plus that
/// kernel's own coefficient scratch (the FFT kernel keeps its digit planes
/// in a separate `f64` buffer instead, sized by `ConvScratch::ensure_for`).
/// `Auto` must be resolved by the caller before sizing.
pub fn conv_scratch_coeffs_for(kernel: ConvolutionKernel, per: usize) -> usize {
    match kernel {
        ConvolutionKernel::ZeroInsertion => conv_scratch_coeffs(per),
        ConvolutionKernel::Direct | ConvolutionKernel::Fft => 2 * per,
        ConvolutionKernel::Karatsuba => 2 * per + karatsuba_scratch_len(per),
        ConvolutionKernel::Auto => conv_scratch_coeffs_for(ConvolutionKernel::ZeroInsertion, per)
            .max(conv_scratch_coeffs_for(ConvolutionKernel::Karatsuba, per)),
    }
}

/// `f64` slots of one convolution-scratch lane's SIMD panel buffer at `per`
/// coefficients per slot and lane width `width`: three transposed
/// structure-of-arrays panels (two operands, one output).
pub fn lane_scratch_f64s<C: Coeff>(per: usize, width: usize) -> usize {
    3 * psmd_series::lanes::panel_f64s::<C>(per, width)
}

impl<C: Coeff> ConvScratch<C> {
    /// An empty scratch (grows on first use).
    pub fn new() -> Self {
        Self {
            buf: Vec::new(),
            fft: Vec::new(),
            lanes: Vec::new(),
        }
    }

    /// The scratch buffers for jobs of `per` coefficients per slot under
    /// `kernel`, growing them if needed (allocation-free once warm): the
    /// coefficient buffer (operand staging + kernel scratch) and the `f64`
    /// digit-plane buffer of the FFT kernel (empty for the other kernels).
    pub(crate) fn ensure_for(
        &mut self,
        per: usize,
        kernel: ConvolutionKernel,
    ) -> (&mut [C], &mut [f64]) {
        let need = conv_scratch_coeffs_for(kernel, per);
        if self.buf.len() < need {
            self.buf.resize(need, C::zero());
        }
        let fft_need = if kernel == ConvolutionKernel::Fft {
            fft_scratch_f64_len::<C>(per)
        } else {
            0
        };
        if self.fft.len() < fft_need {
            self.fft.resize(fft_need, 0.0);
        }
        (&mut self.buf[..need], &mut self.fft[..fft_need])
    }

    /// The SIMD lane-panel buffer of at least `f64s` slots, growing it if
    /// needed (allocation-free once warm, like the other scratch buffers).
    pub(crate) fn ensure_lanes(&mut self, f64s: usize) -> &mut [f64] {
        if self.lanes.len() < f64s {
            self.lanes.resize(f64s, 0.0);
        }
        &mut self.lanes[..f64s]
    }
}

/// The reusable memory of one evaluation shape: arena, per-participant
/// convolution scratch and inline graph scratch.  See the [module
/// documentation](self).
pub struct Workspace<C> {
    arena: Vec<C>,
    scratch: Vec<parking_lot::Mutex<ConvScratch<C>>>,
    graph_scratch: InlineGraphScratch,
}

impl<C: Coeff> Workspace<C> {
    /// A workspace with `participants` convolution-scratch lanes (the worker
    /// pool's `parallelism()`; buffers grow on first use).
    pub fn new(participants: usize) -> Self {
        let mut ws = Self {
            arena: Vec::new(),
            scratch: Vec::new(),
            graph_scratch: InlineGraphScratch::new(),
        };
        ws.ensure_participants(participants.max(1));
        ws
    }

    /// Number of convolution-scratch lanes.
    pub fn participants(&self) -> usize {
        self.scratch.len()
    }

    /// Current arena capacity, in coefficients.
    pub fn arena_capacity(&self) -> usize {
        self.arena.capacity()
    }

    /// Grows the scratch-lane array to at least `participants` lanes.
    pub(crate) fn ensure_participants(&mut self, participants: usize) {
        while self.scratch.len() < participants.max(1) {
            self.scratch
                .push(parking_lot::Mutex::new(ConvScratch::new()));
        }
    }

    /// Pre-sizes every buffer for an evaluation of `arena_coeffs` arena
    /// coefficients at `per` coefficients per slot over `graph_blocks`
    /// graph blocks.  Growth happens in place and nothing ever shrinks, so
    /// re-warming an already-warm workspace is free.
    pub fn warm(&mut self, arena_coeffs: usize, per: usize, graph_blocks: usize) {
        self.warm_for(
            arena_coeffs,
            per,
            graph_blocks,
            ConvolutionKernel::ZeroInsertion,
        );
    }

    /// Like [`Workspace::warm`] but sizes the convolution-scratch lanes for
    /// a specific kernel of the ladder, so the first evaluation under that
    /// kernel is already allocation-free.  `Auto` warms for the largest
    /// coefficient footprint of the ladder.
    pub fn warm_for(
        &mut self,
        arena_coeffs: usize,
        per: usize,
        graph_blocks: usize,
        kernel: ConvolutionKernel,
    ) {
        self.arena
            .reserve(arena_coeffs.saturating_sub(self.arena.len()));
        for lane in &self.scratch {
            lane.lock().ensure_for(per, kernel);
        }
        self.graph_scratch.reserve(graph_blocks);
    }

    /// Pre-sizes every convolution-scratch lane's SIMD panel buffer for
    /// batched evaluation at `per` coefficients per slot and lane width
    /// `width`, so the first lane-group launch is already allocation-free.
    /// A no-op for widths below 2 (the scalar path uses no panels).
    pub fn warm_lanes(&mut self, per: usize, width: usize) {
        if width < 2 {
            return;
        }
        let f64s = lane_scratch_f64s::<C>(per, width);
        for lane in &self.scratch {
            lane.lock().ensure_lanes(f64s);
        }
    }

    /// Splits the workspace into the three disjoint borrows one run needs:
    /// the arena (reset to `arena_coeffs` zeros, reusing its buffer), the
    /// scratch lanes (shared — each lane has interior mutability and is
    /// locked by the participant that uses it) and the inline graph scratch.
    /// Grows the lane array to `participants` first.
    pub(crate) fn parts(
        &mut self,
        arena_coeffs: usize,
        participants: usize,
    ) -> (
        &mut [C],
        &[parking_lot::Mutex<ConvScratch<C>>],
        &mut InlineGraphScratch,
    ) {
        self.ensure_participants(participants);
        self.arena.clear();
        self.arena.resize(arena_coeffs, C::zero());
        (&mut self.arena, &self.scratch, &mut self.graph_scratch)
    }
}

/// A fixed array of lock-free workspace slots, owned by the engine and
/// shared by every plan it compiles (per coefficient type).
///
/// Checkout swaps a slot pointer out (or builds a fresh workspace when all
/// slots are empty — the warm-up path); check-in swaps it back (or drops the
/// workspace when every slot is full, which cannot happen in steady state
/// because the checkout emptied one).  Plain `AtomicPtr` swaps, never a
/// compare of a recycled pointer, so the classic ABA hazard does not arise.
pub struct WorkspacePool<C> {
    slots: Box<[AtomicPtr<Workspace<C>>]>,
    participants: usize,
}

impl<C: Coeff> WorkspacePool<C> {
    /// A pool of `capacity` slots building workspaces with `participants`
    /// scratch lanes.
    pub fn new(capacity: usize, participants: usize) -> Self {
        let slots = (0..capacity.max(1))
            .map(|_| AtomicPtr::new(ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            participants,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of workspaces currently parked in the pool (a racy snapshot,
    /// for tests and introspection).
    pub fn parked(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !s.load(Ordering::Relaxed).is_null())
            .count()
    }

    /// Checks a workspace out: the first non-empty slot, or a fresh
    /// workspace when the pool is empty.  The guard returns it on drop.
    pub fn checkout(self: &Arc<Self>) -> PooledWorkspace<C> {
        for slot in self.slots.iter() {
            let p = slot.swap(ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // Safety: the pointer came from `Box::into_raw` in `checkin`
                // and the swap made this thread its only owner.
                let ws = unsafe { Box::from_raw(p) };
                return PooledWorkspace {
                    ws: Some(ws),
                    pool: Arc::clone(self),
                };
            }
        }
        PooledWorkspace {
            ws: Some(Box::new(Workspace::new(self.participants))),
            pool: Arc::clone(self),
        }
    }

    /// Parks a workspace in the first empty slot; drops it when the pool is
    /// full.
    fn checkin(&self, ws: Box<Workspace<C>>) {
        let p = Box::into_raw(ws);
        for slot in self.slots.iter() {
            if slot
                .compare_exchange(ptr::null_mut(), p, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
        // Safety: the pointer was produced by `Box::into_raw` above and no
        // slot accepted it, so this thread still owns it.
        drop(unsafe { Box::from_raw(p) });
    }
}

impl<C> Drop for WorkspacePool<C> {
    fn drop(&mut self) {
        for slot in self.slots.iter() {
            let p = slot.swap(ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // Safety: exclusive access in drop; the pointer came from
                // `Box::into_raw`.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

/// RAII checkout of a [`WorkspacePool`]: dereferences to the [`Workspace`]
/// and returns it to the pool on drop.
pub struct PooledWorkspace<C: Coeff> {
    ws: Option<Box<Workspace<C>>>,
    pool: Arc<WorkspacePool<C>>,
}

impl<C: Coeff> Deref for PooledWorkspace<C> {
    type Target = Workspace<C>;
    fn deref(&self) -> &Workspace<C> {
        self.ws.as_ref().expect("workspace taken")
    }
}

impl<C: Coeff> DerefMut for PooledWorkspace<C> {
    fn deref_mut(&mut self) -> &mut Workspace<C> {
        self.ws.as_mut().expect("workspace taken")
    }
}

impl<C: Coeff> Drop for PooledWorkspace<C> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            self.pool.checkin(ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psmd_multidouble::Qd;

    #[test]
    fn parts_resets_the_arena_and_reuses_capacity() {
        let mut ws: Workspace<Qd> = Workspace::new(2);
        {
            let (arena, scratch, _) = ws.parts(16, 2);
            assert_eq!(arena.len(), 16);
            assert!(arena.iter().all(|c| c.is_zero()));
            arena[3] = Qd::from_f64(7.0);
            assert_eq!(scratch.len(), 2);
        }
        let cap = ws.arena_capacity();
        let (arena, _, _) = ws.parts(8, 2);
        assert_eq!(arena.len(), 8);
        assert!(arena.iter().all(|c| c.is_zero()), "arena must be re-zeroed");
        assert_eq!(ws.arena_capacity(), cap, "shrinking must not reallocate");
    }

    #[test]
    fn parts_grows_the_lane_array_on_demand() {
        let mut ws: Workspace<Qd> = Workspace::new(1);
        assert_eq!(ws.participants(), 1);
        let (_, scratch, _) = ws.parts(4, 5);
        assert_eq!(scratch.len(), 5);
        assert_eq!(ws.participants(), 5);
    }

    #[test]
    fn conv_scratch_grows_once_and_is_stable() {
        let mut s: ConvScratch<Qd> = ConvScratch::new();
        let zi = ConvolutionKernel::ZeroInsertion;
        let len = s.ensure_for(9, zi).0.len();
        assert_eq!(len, conv_scratch_coeffs(9));
        let cap = s.buf.capacity();
        // Smaller and equal requests reuse the buffer.
        s.ensure_for(4, zi);
        s.ensure_for(9, zi);
        assert_eq!(s.buf.capacity(), cap);
    }

    #[test]
    fn kernel_scratch_footprints_cover_the_ladder() {
        // Every kernel stages two operand slots; the kernel scratch on top
        // of that is kernel-specific, and the FFT digit planes live in a
        // separate f64 buffer.
        let per = 33;
        assert_eq!(
            conv_scratch_coeffs_for(ConvolutionKernel::ZeroInsertion, per),
            conv_scratch_coeffs(per)
        );
        assert_eq!(
            conv_scratch_coeffs_for(ConvolutionKernel::Direct, per),
            2 * per
        );
        assert!(conv_scratch_coeffs_for(ConvolutionKernel::Karatsuba, per) > 2 * per);
        assert_eq!(
            conv_scratch_coeffs_for(ConvolutionKernel::Fft, per),
            2 * per
        );
        let auto = conv_scratch_coeffs_for(ConvolutionKernel::Auto, per);
        assert!(auto >= conv_scratch_coeffs(per));
        assert!(auto >= conv_scratch_coeffs_for(ConvolutionKernel::Karatsuba, per));

        let mut s: ConvScratch<Qd> = ConvScratch::new();
        let (buf, fft) = s.ensure_for(per, ConvolutionKernel::Fft);
        assert_eq!(buf.len(), 2 * per);
        assert_eq!(fft.len(), psmd_series::fft_scratch_f64_len::<Qd>(per));
        // Re-ensuring under another kernel keeps the fft buffer parked.
        let (_, fft) = s.ensure_for(per, ConvolutionKernel::Karatsuba);
        assert!(fft.is_empty());
    }

    #[test]
    fn pool_round_trips_workspaces_through_slots() {
        let pool: Arc<WorkspacePool<Qd>> = Arc::new(WorkspacePool::new(2, 3));
        assert_eq!(pool.capacity(), 2);
        assert_eq!(pool.parked(), 0);
        let mut a = pool.checkout();
        a.parts(32, 3);
        let a_cap = a.arena_capacity();
        drop(a);
        assert_eq!(pool.parked(), 1);
        // The parked workspace comes back warm.
        let b = pool.checkout();
        assert_eq!(pool.parked(), 0);
        assert_eq!(b.arena_capacity(), a_cap);
        drop(b);
        assert_eq!(pool.parked(), 1);
    }

    #[test]
    fn pool_overflow_drops_instead_of_leaking() {
        let pool: Arc<WorkspacePool<Qd>> = Arc::new(WorkspacePool::new(1, 1));
        let a = pool.checkout();
        let b = pool.checkout();
        drop(a);
        assert_eq!(pool.parked(), 1);
        // The single slot is occupied; returning b drops it silently.
        drop(b);
        assert_eq!(pool.parked(), 1);
    }

    #[test]
    fn concurrent_checkouts_never_share_a_workspace() {
        let pool: Arc<WorkspacePool<Qd>> = Arc::new(WorkspacePool::new(4, 1));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let mut ws = pool.checkout();
                        let (arena, _, _) = ws.parts(8, 1);
                        // Exclusive ownership: a stale value would mean two
                        // threads held the same workspace.
                        assert!(arena.iter().all(|c| c.is_zero()));
                        arena[0] = Qd::from_f64(1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(pool.parked() >= 1);
    }

    #[test]
    fn warm_presizes_all_buffers() {
        let mut ws: Workspace<Qd> = Workspace::new(2);
        ws.warm(64, 5, 30);
        assert!(ws.arena_capacity() >= 64);
        for lane in &ws.scratch {
            assert!(lane.lock().buf.len() >= conv_scratch_coeffs(5));
        }
    }
}
