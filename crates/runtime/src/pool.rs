//! A persistent worker pool executing "grids of blocks" on CPU threads.
//!
//! The paper launches CUDA kernels with one thread block per job; this pool
//! is the CPU stand-in for that execution model.  Two launch shapes exist:
//!
//! * [`WorkerPool::launch_grid`] — the layered reference path: a launch
//!   hands the pool a closure and a number of blocks; worker threads claim
//!   block indices from a shared atomic counter and run the closure for each
//!   claimed block.  One launch per job layer reproduces the paper's
//!   kernel-per-layer execution, including its global barrier between
//!   layers.
//! * [`WorkerPool::launch_graph`] — the dependency-driven path: the launch
//!   hands the pool a [`TaskGraph`] whose blocks are released to per-worker
//!   work-stealing deques as their predecessors retire, so the whole
//!   multi-layer computation costs **one** pool rendezvous instead of one
//!   per layer.
//!
//! The launching thread participates in the work, so a pool of `T` workers
//! provides `T + 1`-way parallelism and a launch never deadlocks even if the
//! pool has zero worker threads.

use crate::cancel::CancelToken;
use crate::graph::TaskGraph;
use crossbeam::channel::{unbounded, Sender};
use crossbeam::deque::{Steal, Stealer, Worker};
use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// Completion rendezvous shared by the launcher and the workers of one
/// launch: the last participant to finish wakes the launcher.
struct Completion {
    /// Number of participants that have not yet finished.
    pending: AtomicUsize,
    done_lock: Mutex<bool>,
    done_cv: Condvar,
}

impl Completion {
    fn new(participants: usize) -> Self {
        Self {
            pending: AtomicUsize::new(participants),
            done_lock: Mutex::new(false),
            done_cv: Condvar::new(),
        }
    }

    /// Marks one participant as finished; the last one signals the launcher.
    fn finish_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = self.done_lock.lock();
            *done = true;
            self.done_cv.notify_all();
        }
    }

    /// Blocks until every participant has finished.
    fn wait(&self) {
        let mut done = self.done_lock.lock();
        while !*done {
            self.done_cv.wait(&mut done);
        }
    }
}

/// One unit of pool work: a whole launch (grid or graph) that every
/// participating thread helps to drain.
trait PoolTask: Send + Sync {
    /// Runs this participant's share of the launch and signals completion.
    /// `index` identifies the participant (workers `0..T`, launcher `T`).
    fn run_participant(&self, index: usize);
}

/// State shared between the launcher and the workers for one grid launch.
struct GridLaunchState {
    /// The per-block body, also told which participant lane runs the block
    /// (workers pass their thread index, the launcher passes `threads`), so
    /// bodies can borrow per-participant scratch instead of allocating.
    body: Box<dyn Fn(usize, usize) + Send + Sync>,
    /// Next block index to claim.
    next_block: AtomicUsize,
    /// Total number of blocks in the grid.
    blocks: usize,
    /// Cooperative cancellation: checked between block claims, never inside
    /// a block body.  `None` for uncancellable launches.
    cancel: Option<CancelToken>,
    /// Set when a participant observed the cancelled token and skipped at
    /// least one unclaimed block.
    abandoned: AtomicBool,
    /// Set when any block body panicked.
    poisoned: AtomicBool,
    /// Completion signalling.
    completion: Completion,
}

impl GridLaunchState {
    /// Claims and runs blocks until the counter is exhausted or the launch
    /// is cancelled.  The cancellation check sits between the claim and the
    /// body, so no new block body starts after the token trips; blocks
    /// already running in other participants finish normally.
    fn drain(&self, participant: usize) {
        loop {
            let b = self.next_block.fetch_add(1, Ordering::Relaxed);
            if b >= self.blocks {
                break;
            }
            if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                self.abandoned.store(true, Ordering::Release);
                break;
            }
            let result = catch_unwind(AssertUnwindSafe(|| (self.body)(participant, b)));
            if result.is_err() {
                self.poisoned.store(true, Ordering::Release);
            }
        }
    }
}

impl PoolTask for GridLaunchState {
    fn run_participant(&self, index: usize) {
        // A worker may drain more than one message of this launch (the
        // channel is MPMC, not broadcast), but it does so sequentially on
        // one thread, so its participant lane is never used concurrently.
        self.drain(index);
        self.completion.finish_one();
    }
}

/// State shared between the launcher and the workers for one graph launch:
/// per-participant work-stealing deques, an atomic remaining-dependency
/// counter per block, and blocks released to the deques as their
/// predecessors retire.
struct GraphLaunchState {
    /// The per-block body, also told which participant lane runs the block
    /// (the claimed deque slot, in `0..participants`).
    body: Box<dyn Fn(usize, usize) + Send + Sync>,
    /// The dependency graph of one instance (lifetime-erased; the launcher
    /// waits for completion before returning, so the reference stays valid
    /// for the whole launch).
    graph: &'static TaskGraph,
    /// Nodes per instance.
    nodes: usize,
    /// Total blocks across all instances (`instances * nodes`).
    total_blocks: usize,
    /// Remaining-predecessor count per block.
    pending: Vec<AtomicU32>,
    /// Nodes ready at launch (zero in-degree), shared by every instance.
    roots: Vec<u32>,
    /// Next root to claim, indexing the virtual `instances × roots` list.
    /// Roots are claimed from this shared counter exactly like the layered
    /// path claims blocks — no deque traffic for the launch wavefront; the
    /// deques only carry blocks released at fan-outs.
    next_root: AtomicUsize,
    /// One work-stealing deque per participant, taken by its owner at the
    /// start of the launch.
    deques: Vec<Mutex<Option<Worker<usize>>>>,
    /// Stealers over every participant's deque.
    stealers: Vec<Stealer<usize>>,
    /// Next unclaimed deque.  The pool channel is MPMC, not broadcast: one
    /// worker may receive several copies of this launch (and another none),
    /// so participants claim deque slots here instead of using their worker
    /// index.  Exactly `participants` messages exist (threads sends plus the
    /// launcher), so every slot is claimed exactly once.
    next_participant: AtomicUsize,
    /// Bumped whenever a fan-out pushes stealable work to a deque.  Idle
    /// participants read it before scanning and park on `idle_cv` only if it
    /// is unchanged afterwards, so they sleep through the serial tail of a
    /// launch instead of busy-spinning on the deque mutexes.
    work_epoch: AtomicUsize,
    /// Parking lot for idle participants (no ready work anywhere).
    idle_lock: Mutex<()>,
    /// Notified on fan-out pushes and on final retirement.
    idle_cv: Condvar,
    /// Number of retired blocks (termination condition).
    retired: AtomicUsize,
    /// Cooperative cancellation: checked before each block body, never
    /// inside one.  `None` for uncancellable launches.
    cancel: Option<CancelToken>,
    /// Set when at least one block body was skipped because the token
    /// tripped (the launch result is partial).
    abandoned: AtomicBool,
    /// Set when any block body panicked.
    poisoned: AtomicBool,
    /// Completion signalling.
    completion: Completion,
}

impl GraphLaunchState {
    fn new(
        body: Box<dyn Fn(usize, usize) + Send + Sync>,
        graph: &'static TaskGraph,
        instances: usize,
        participants: usize,
        cancel: Option<CancelToken>,
    ) -> Self {
        let nodes = graph.len();
        let total_blocks = instances * nodes;
        let mut pending = Vec::with_capacity(total_blocks);
        for _ in 0..instances {
            for n in 0..nodes {
                pending.push(AtomicU32::new(graph.in_degree(n)));
            }
        }
        let workers: Vec<Worker<usize>> = (0..participants).map(|_| Worker::new_lifo()).collect();
        let stealers = workers.iter().map(Worker::stealer).collect();
        let roots = graph.roots().iter().map(|&n| n as u32).collect();
        let deques = workers.into_iter().map(|w| Mutex::new(Some(w))).collect();
        Self {
            body,
            graph,
            nodes,
            total_blocks,
            pending,
            roots,
            next_root: AtomicUsize::new(0),
            deques,
            stealers,
            next_participant: AtomicUsize::new(0),
            work_epoch: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            retired: AtomicUsize::new(0),
            cancel,
            abandoned: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            completion: Completion::new(participants),
        }
    }

    /// Claims the next unclaimed root block (launch wavefront), if any.
    fn claim_root(&self) -> Option<usize> {
        let instances = self.total_blocks / self.nodes;
        let i = self.next_root.fetch_add(1, Ordering::Relaxed);
        if i >= self.roots.len() * instances {
            return None;
        }
        let instance = i / self.roots.len();
        let node = self.roots[i % self.roots.len()] as usize;
        Some(instance * self.nodes + node)
    }

    /// Runs one block and releases its successors.  The first successor
    /// whose last predecessor retires is returned as the **continuation** —
    /// the caller runs it directly, so a dependency chain executes with no
    /// deque traffic at all (the dominant pattern: forward/backward product
    /// chains and tree summations).  Any further released successors are
    /// pushed onto this participant's deque for other workers to steal.
    fn execute(&self, me: usize, block: usize, local: &Worker<usize>) -> Option<usize> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            // Cancelled: skip the body but still release the successors and
            // retire the block below, exactly like the panic-poisoning path
            // — the graph must drain so the launch terminates and the pool
            // stays usable.  The remaining blocks race through this skip arm
            // at pointer speed.
            self.abandoned.store(true, Ordering::Release);
        } else {
            let result = catch_unwind(AssertUnwindSafe(|| (self.body)(me, block)));
            if result.is_err() {
                // Poison the launch but still release the successors below:
                // the graph must drain so the launch terminates, exactly
                // like the layered path runs the remaining blocks after a
                // panic.  The launcher re-raises the panic once every block
                // has retired.
                self.poisoned.store(true, Ordering::Release);
            }
        }
        let node = block % self.nodes;
        let instance_base = block - node;
        let mut continuation = None;
        let mut pushed = false;
        for &s in self.graph.successors(node) {
            let succ_block = instance_base + s as usize;
            if self.pending[succ_block].fetch_sub(1, Ordering::AcqRel) == 1 {
                if continuation.is_none() {
                    continuation = Some(succ_block);
                } else {
                    local.push(succ_block);
                    pushed = true;
                }
            }
        }
        if pushed {
            // Wake parked participants: new stealable work exists.  Bumping
            // the epoch before taking the lock closes the race against a
            // scanner that found nothing and is about to park.
            self.work_epoch.fetch_add(1, Ordering::Release);
            let _guard = self.idle_lock.lock();
            self.idle_cv.notify_all();
        }
        if self.retired.fetch_add(1, Ordering::AcqRel) + 1 == self.total_blocks {
            // Final retirement: wake everyone so they observe termination.
            let _guard = self.idle_lock.lock();
            self.idle_cv.notify_all();
        }
        continuation
    }

    /// Steals ready blocks from another participant's deque: one batched
    /// steal moves about half the victim's queue into `local` and returns
    /// one block, so the thief works from its own deque afterwards.
    fn steal(&self, me: usize, local: &Worker<usize>) -> Option<usize> {
        let n = self.stealers.len();
        for k in 1..n {
            let target = (me + k) % n;
            loop {
                match self.stealers[target].steal_batch_and_pop(local) {
                    Steal::Success(block) => return Some(block),
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }
}

impl PoolTask for GraphLaunchState {
    fn run_participant(&self, _index: usize) {
        // Claim a deque slot (not the worker index: a worker may drain more
        // than one message of this launch, see `next_participant`).
        let me = self.next_participant.fetch_add(1, Ordering::AcqRel);
        let local = self.deques[me]
            .lock()
            .take()
            .expect("participant deque already taken");
        loop {
            // Snapshot the work epoch BEFORE scanning: if a fan-out pushes
            // work while we scan, the epoch moves and we rescan instead of
            // parking past it.
            let epoch = self.work_epoch.load(Ordering::Acquire);
            let block = local
                .pop()
                .or_else(|| self.claim_root())
                .or_else(|| self.steal(me, &local));
            match block {
                Some(b) => {
                    // Run the block, then chase its continuation chain:
                    // each retired block hands over the successor it just
                    // made ready, so chains run back to back without
                    // touching the deque.
                    let mut current = b;
                    while let Some(next) = self.execute(me, current, &local) {
                        current = next;
                    }
                }
                None => {
                    if self.retired.load(Ordering::Acquire) >= self.total_blocks {
                        break;
                    }
                    // Park instead of spinning: idle participants would
                    // otherwise contend on the deque mutexes the working
                    // threads need.  Wakers take `idle_lock` after bumping
                    // the epoch / retiring the last block, so re-checking
                    // both under the lock makes the park race-free; the
                    // timeout is pure insurance.
                    let mut guard = self.idle_lock.lock();
                    if self.retired.load(Ordering::Acquire) >= self.total_blocks {
                        break;
                    }
                    if self.work_epoch.load(Ordering::Acquire) == epoch {
                        let _ = self
                            .idle_cv
                            .wait_for(&mut guard, std::time::Duration::from_millis(1));
                    }
                }
            }
        }
        self.completion.finish_one();
    }
}

/// A persistent pool of worker threads executing grid and graph launches.
pub struct WorkerPool {
    sender: Sender<Arc<dyn PoolTask>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    /// Total number of pool rendezvous performed (launches that woke the
    /// workers and waited for them; inline fast paths do not count).
    rendezvous: AtomicUsize,
}

impl WorkerPool {
    /// Creates a pool with `threads` worker threads (the launching thread
    /// always helps, so `threads == 0` degenerates to sequential execution).
    pub fn new(threads: usize) -> Self {
        let (sender, receiver) = unbounded::<Arc<dyn PoolTask>>();
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = receiver.clone();
            let handle = std::thread::Builder::new()
                .name(format!("psmd-worker-{i}"))
                .spawn(move || {
                    while let Ok(task) = rx.recv() {
                        task.run_participant(i);
                    }
                })
                .expect("failed to spawn worker thread");
            workers.push(handle);
        }
        Self {
            sender,
            workers,
            threads,
            rendezvous: AtomicUsize::new(0),
        }
    }

    /// Creates a pool sized to the available hardware parallelism, or to the
    /// `PSMD_THREADS` environment variable when set (the value is the number
    /// of worker threads; `0` degenerates to sequential execution).  CI runs
    /// the test suite under `PSMD_THREADS=0,1,4` to exercise the executor
    /// under no, little and real contention.
    pub fn with_default_parallelism() -> Self {
        Self::new(Self::default_worker_threads())
    }

    /// The worker-thread count [`Self::with_default_parallelism`] would use:
    /// the `PSMD_THREADS` override when set, otherwise one less than the
    /// hardware parallelism (the launcher always participates).  Callers
    /// that need the count without building a pool (harness reports,
    /// examples) should use this instead of constructing a throwaway pool.
    pub fn default_worker_threads() -> usize {
        if let Some(threads) = Self::threads_from_env() {
            return threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// The worker-thread count requested via `PSMD_THREADS`, if any.
    ///
    /// # Panics
    ///
    /// Panics when the variable is set but not an integer: the CI thread
    /// matrix exists to pin specific worker counts, and a typo that
    /// silently fell back to hardware sizing would green-light CI while
    /// never testing the configurations it claims to.  Long-lived callers
    /// that must degrade instead of aborting (the serve path) use
    /// [`WorkerPool::try_threads_from_env`].
    pub fn threads_from_env() -> Option<usize> {
        match Self::try_threads_from_env() {
            Ok(threads) => threads,
            Err(message) => panic!("{message}"),
        }
    }

    /// The fallible form of [`WorkerPool::threads_from_env`]: a set but
    /// non-integer `PSMD_THREADS` becomes an `Err` describing the problem
    /// instead of a panic, so services can surface a configuration error.
    pub fn try_threads_from_env() -> Result<Option<usize>, String> {
        let Ok(value) = std::env::var("PSMD_THREADS") else {
            return Ok(None);
        };
        match value.trim().parse() {
            Ok(threads) => Ok(Some(threads)),
            Err(_) => Err(format!(
                "PSMD_THREADS must be an integer worker-thread count, got '{value}'"
            )),
        }
    }

    /// Number of worker threads (excluding the launching thread).
    pub fn worker_threads(&self) -> usize {
        self.threads
    }

    /// Total parallel lanes used by a launch (workers plus the launcher).
    pub fn parallelism(&self) -> usize {
        self.threads + 1
    }

    /// Total number of pool rendezvous performed so far: launches that woke
    /// the worker threads and waited for all of them to finish.  The layered
    /// path pays one rendezvous per job layer; the graph path pays one per
    /// evaluation.  Inline fast paths (zero workers, single-block grids) do
    /// not count.
    pub fn rendezvous_count(&self) -> usize {
        self.rendezvous.load(Ordering::Relaxed)
    }

    /// Hands a launch to every worker, participates as the last index, and
    /// waits for completion — the one pool-wide rendezvous of a launch.
    fn rendezvous(&self, task: Arc<dyn PoolTask>) {
        self.rendezvous.fetch_add(1, Ordering::Relaxed);
        for _ in 0..self.threads {
            self.sender
                .send(Arc::clone(&task))
                .expect("worker channel closed");
        }
        // The launcher participates too, as the highest participant index.
        task.run_participant(self.threads);
    }

    /// Executes `body` once for every block index in `0..blocks`, returning
    /// when all blocks have completed.
    ///
    /// Panics if any block body panicked.
    pub fn launch_grid<F>(&self, blocks: usize, body: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        self.launch_grid_indexed(blocks, |_, b| body(b));
    }

    /// Like [`WorkerPool::launch_grid`], but the body is also told which
    /// **participant lane** runs the block: lanes are in
    /// `0..self.parallelism()`, a lane is never used by two threads
    /// concurrently within one launch, and the inline fast path uses lane 0.
    /// Evaluation workspaces use the lane to hand each block pre-allocated
    /// per-worker scratch instead of allocating inside the block.
    ///
    /// Panics if any block body panicked.
    pub fn launch_grid_indexed<F>(&self, blocks: usize, body: F)
    where
        F: Fn(usize, usize) + Send + Sync,
    {
        self.launch_grid_indexed_cancellable(blocks, None, body);
    }

    /// Like [`WorkerPool::launch_grid_indexed`], but the launch polls
    /// `cancel` between block claims: once the token trips, no further
    /// block body starts (blocks already running finish).  Returns `true`
    /// when every block ran, `false` when the launch was abandoned with
    /// blocks skipped — the caller must treat the grid's output as partial.
    ///
    /// Passing `None` is exactly [`WorkerPool::launch_grid_indexed`].  The
    /// poll is one relaxed atomic load per block claim; uncancelled launches
    /// are unaffected (bitwise-identical results, no extra synchronization).
    ///
    /// Panics if any block body panicked.
    pub fn launch_grid_indexed_cancellable<F>(
        &self,
        blocks: usize,
        cancel: Option<&CancelToken>,
        body: F,
    ) -> bool
    where
        F: Fn(usize, usize) + Send + Sync,
    {
        if blocks == 0 {
            return true;
        }
        // Small grids are not worth waking the pool for.
        if self.threads == 0 || blocks == 1 {
            for b in 0..blocks {
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    return false;
                }
                body(0, b);
            }
            return true;
        }
        // The body only needs to live for the duration of this call: workers
        // are joined (via the condition variable) before we return, so it is
        // sound to erase the lifetime.  This mirrors what scoped thread pools
        // do internally.
        let body_static: Box<dyn Fn(usize, usize) + Send + Sync> = unsafe {
            std::mem::transmute::<Box<dyn Fn(usize, usize) + Send + Sync + '_>, _>(Box::new(body))
        };
        let participants = self.threads + 1;
        let state = Arc::new(GridLaunchState {
            body: body_static,
            next_block: AtomicUsize::new(0),
            blocks,
            cancel: cancel.cloned(),
            abandoned: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            completion: Completion::new(participants),
        });
        self.rendezvous(Arc::clone(&state) as Arc<dyn PoolTask>);
        // Wait for every participant to finish before returning (and before
        // `body` is dropped).
        state.completion.wait();
        if state.poisoned.load(Ordering::Acquire) {
            panic!("a block of the grid launch panicked");
        }
        !state.abandoned.load(Ordering::Acquire)
    }

    /// Executes `body` once for every block of `instances` independent
    /// copies of `graph`, releasing each block as soon as its predecessors
    /// have retired — no per-layer barrier, exactly **one** pool rendezvous
    /// for the whole launch.
    ///
    /// Block `b` runs node `b % graph.len()` of instance `b / graph.len()`;
    /// dependency edges apply within each instance, and instances share no
    /// edges (the batched arena gives every instance disjoint slots).
    ///
    /// Panics if any block body panicked (the remaining blocks still run
    /// first, like the layered path).
    pub fn launch_graph<F>(&self, graph: &TaskGraph, instances: usize, body: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        self.launch_graph_indexed(graph, instances, |_, b| body(b));
    }

    /// Like [`WorkerPool::launch_graph`], but the body is also told which
    /// **participant lane** runs the block (the claimed deque slot, in
    /// `0..self.parallelism()`; the inline fast path uses lane 0).  See
    /// [`WorkerPool::launch_grid_indexed`] for the lane contract.
    ///
    /// Panics if any block body panicked (the remaining blocks still run
    /// first, like the layered path).
    pub fn launch_graph_indexed<F>(&self, graph: &TaskGraph, instances: usize, body: F)
    where
        F: Fn(usize, usize) + Send + Sync,
    {
        self.launch_graph_indexed_cancellable(graph, instances, None, body);
    }

    /// Like [`WorkerPool::launch_graph_indexed`], but the launch polls
    /// `cancel` before each block body: once the token trips, remaining
    /// blocks are *skipped* instead of run — they still release their
    /// successors and retire (exactly like the panic-poisoning path), so
    /// the graph drains, the single rendezvous completes and the pool stays
    /// usable.  Returns `true` when every block ran, `false` when at least
    /// one was skipped — the caller must treat the output as partial.
    ///
    /// Passing `None` is exactly [`WorkerPool::launch_graph_indexed`]; the
    /// poll is one relaxed atomic load per block, outside the block body.
    ///
    /// Panics if any block body panicked (the remaining blocks still run
    /// first, like the layered path).
    pub fn launch_graph_indexed_cancellable<F>(
        &self,
        graph: &TaskGraph,
        instances: usize,
        cancel: Option<&CancelToken>,
        body: F,
    ) -> bool
    where
        F: Fn(usize, usize) + Send + Sync,
    {
        let blocks = instances * graph.len();
        if blocks == 0 {
            return true;
        }
        // Lifetime erasure is sound for the same reason as in `launch_grid`:
        // the launcher waits for every participant before returning.
        let body_static: Box<dyn Fn(usize, usize) + Send + Sync> = unsafe {
            std::mem::transmute::<Box<dyn Fn(usize, usize) + Send + Sync + '_>, _>(Box::new(body))
        };
        let graph_static: &'static TaskGraph =
            unsafe { std::mem::transmute::<&TaskGraph, &'static TaskGraph>(graph) };
        if self.threads == 0 || blocks == 1 {
            // Inline fast path: one participant drains the whole graph in
            // dependency order without waking the pool.
            let state =
                GraphLaunchState::new(body_static, graph_static, instances, 1, cancel.cloned());
            state.run_participant(0);
            if state.poisoned.load(Ordering::Acquire) {
                panic!("a block of the graph launch panicked");
            }
            return !state.abandoned.load(Ordering::Acquire);
        }
        let participants = self.threads + 1;
        let state = Arc::new(GraphLaunchState::new(
            body_static,
            graph_static,
            instances,
            participants,
            cancel.cloned(),
        ));
        self.rendezvous(Arc::clone(&state) as Arc<dyn PoolTask>);
        state.completion.wait();
        if state.poisoned.load(Ordering::Acquire) {
            panic!("a block of the graph launch panicked");
        }
        !state.abandoned.load(Ordering::Acquire)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel terminates the workers.
        let (dummy_tx, _) = unbounded();
        let old = std::mem::replace(&mut self.sender, dummy_tx);
        drop(old);
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The process-wide default pool, sized to the hardware parallelism (or to
/// `PSMD_THREADS` when set).
pub fn global_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(WorkerPool::with_default_parallelism)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraphBuilder;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_block_runs_exactly_once() {
        let pool = WorkerPool::new(3);
        let blocks = 1000;
        let hits: Vec<AtomicUsize> = (0..blocks).map(|_| AtomicUsize::new(0)).collect();
        pool.launch_grid(blocks, |b| {
            hits[b].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_and_one_block_grids() {
        let pool = WorkerPool::new(2);
        let count = AtomicUsize::new(0);
        pool.launch_grid(0, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
        pool.launch_grid(1, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sequential_pool_still_executes() {
        let pool = WorkerPool::new(0);
        let sum = AtomicU64::new(0);
        pool.launch_grid(100, |b| {
            sum.fetch_add(b as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn results_match_sequential_reference() {
        let pool = WorkerPool::new(4);
        let n = 4096;
        let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.launch_grid(n, |b| {
            // A small amount of per-block work with a data-dependent result.
            let mut acc = b as u64;
            for i in 0..50u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            out[b].store(acc, Ordering::Relaxed);
        });
        for (b, slot) in out.iter().enumerate() {
            let mut acc = b as u64;
            for i in 0..50u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            assert_eq!(slot.load(Ordering::Relaxed), acc);
        }
    }

    #[test]
    fn panics_inside_blocks_are_propagated() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.launch_grid(16, |b| {
                if b == 7 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must remain usable afterwards.
        let count = AtomicUsize::new(0);
        pool.launch_grid(8, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn global_pool_is_shared_and_parallel() {
        let p1 = global_pool();
        let p2 = global_pool();
        assert!(std::ptr::eq(p1, p2));
        assert!(p1.parallelism() >= 1);
    }

    #[test]
    fn zero_block_launch_is_a_no_op_on_any_pool_size() {
        for threads in [0, 1, 4] {
            let pool = WorkerPool::new(threads);
            let count = AtomicUsize::new(0);
            pool.launch_grid(0, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 0, "threads = {threads}");
            // The pool stays usable after the empty launch.
            pool.launch_grid(3, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 3, "threads = {threads}");
        }
    }

    #[test]
    fn zero_worker_pool_reports_its_parallelism() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.worker_threads(), 0);
        // The launcher always participates.
        assert_eq!(pool.parallelism(), 1);
    }

    #[test]
    fn zero_worker_pool_propagates_panics_and_survives() {
        // With no workers the launch runs inline; the panic must still reach
        // the caller and must not wedge the pool.
        let pool = WorkerPool::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.launch_grid(4, |b| {
                if b == 2 {
                    panic!("inline boom");
                }
            });
        }));
        assert!(result.is_err());
        let count = AtomicUsize::new(0);
        pool.launch_grid(4, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn single_block_panic_propagates_on_the_inline_fast_path() {
        // blocks == 1 takes the inline fast path even on a threaded pool.
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.launch_grid(1, |_| panic!("one-block boom"));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn poisoning_is_reported_even_when_many_blocks_panic() {
        let pool = WorkerPool::new(3);
        let survivors = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.launch_grid(64, |b| {
                if b % 2 == 0 {
                    panic!("boom {b}");
                }
                survivors.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        // Panicking blocks do not abort the grid: the odd blocks all ran.
        assert_eq!(survivors.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn concurrent_launches_from_multiple_threads_are_isolated() {
        // The batch engine launches from the evaluation thread while other
        // evaluations may be in flight on other threads; each launch must
        // run each of its own blocks exactly once.
        let pool = std::sync::Arc::new(WorkerPool::new(3));
        let launchers: Vec<_> = (0..4)
            .map(|l| {
                let pool = std::sync::Arc::clone(&pool);
                std::thread::spawn(move || {
                    let blocks = 100 + l;
                    let hits: Vec<AtomicUsize> = (0..blocks).map(|_| AtomicUsize::new(0)).collect();
                    for _ in 0..10 {
                        pool.launch_grid(blocks, |b| {
                            hits[b].fetch_add(1, Ordering::Relaxed);
                        });
                    }
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 10)
                })
            })
            .collect();
        for launcher in launchers {
            assert!(launcher.join().unwrap(), "a launch lost or repeated blocks");
        }
    }

    #[test]
    fn launches_can_be_nested_sequentially() {
        // Launch-from-within-launch is not supported in CUDA either; what we
        // check is that back-to-back launches on the same pool reuse workers.
        let pool = WorkerPool::new(2);
        for round in 0..20 {
            let counter = AtomicUsize::new(0);
            pool.launch_grid(round + 1, |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), round + 1);
        }
    }

    #[test]
    fn indexed_launches_hand_out_exclusive_in_bounds_lanes() {
        // The per-worker scratch contract: every lane is < parallelism() and
        // no lane is used by two blocks concurrently.
        for threads in [0usize, 1, 4] {
            let pool = WorkerPool::new(threads);
            let lanes = pool.parallelism();
            let in_use: Vec<AtomicUsize> = (0..lanes).map(|_| AtomicUsize::new(0)).collect();
            let overlap = AtomicUsize::new(0);
            let body = |lane: usize, _b: usize| {
                assert!(lane < lanes, "lane {lane} out of bounds");
                if in_use[lane].fetch_add(1, Ordering::SeqCst) != 0 {
                    overlap.fetch_add(1, Ordering::SeqCst);
                }
                // A little work to give overlaps a chance to show.
                std::hint::black_box((0..50).sum::<usize>());
                in_use[lane].fetch_sub(1, Ordering::SeqCst);
            };
            pool.launch_grid_indexed(64, body);
            let mut b = TaskGraphBuilder::new();
            for c in 0..16usize {
                b.add_task(&[], &[2 * c]);
                b.add_task(&[2 * c], &[2 * c + 1]);
            }
            let g = b.build();
            pool.launch_graph_indexed(&g, 4, body);
            assert_eq!(
                overlap.load(Ordering::SeqCst),
                0,
                "threads = {threads}: a lane was used concurrently"
            );
        }
    }

    /// A diamond graph: 0 -> {1, 2} -> 3.
    fn diamond() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        b.add_task(&[], &[0]);
        b.add_task(&[0], &[1]);
        b.add_task(&[0], &[2]);
        b.add_task(&[1, 2], &[3]);
        b.build()
    }

    #[test]
    fn graph_launch_respects_dependency_order() {
        for threads in [0, 1, 4] {
            let pool = WorkerPool::new(threads);
            let g = diamond();
            let stamp = AtomicUsize::new(0);
            let order: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
            pool.launch_graph(&g, 1, |b| {
                order[b].store(stamp.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
            });
            let at = |i: usize| order[i].load(Ordering::SeqCst);
            assert!(at(0) < at(1), "threads = {threads}");
            assert!(at(0) < at(2), "threads = {threads}");
            assert!(at(1) < at(3), "threads = {threads}");
            assert!(at(2) < at(3), "threads = {threads}");
        }
    }

    #[test]
    fn graph_launch_runs_every_block_of_every_instance_once() {
        let pool = WorkerPool::new(3);
        let g = diamond();
        let instances = 25;
        let hits: Vec<AtomicUsize> = (0..4 * instances).map(|_| AtomicUsize::new(0)).collect();
        pool.launch_graph(&g, instances, |b| {
            hits[b].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn graph_launch_performs_exactly_one_rendezvous() {
        let pool = WorkerPool::new(3);
        let g = diamond();
        let before = pool.rendezvous_count();
        pool.launch_graph(&g, 8, |_| {});
        assert_eq!(pool.rendezvous_count(), before + 1);
        // The layered equivalent of a 4-deep chain pays one rendezvous per
        // layer.
        let before = pool.rendezvous_count();
        for _ in 0..3 {
            pool.launch_grid(8, |_| {});
        }
        assert_eq!(pool.rendezvous_count(), before + 3);
    }

    #[test]
    fn empty_graph_and_zero_instances_are_no_ops() {
        let pool = WorkerPool::new(2);
        let empty = TaskGraphBuilder::new().build();
        let count = AtomicUsize::new(0);
        let before = pool.rendezvous_count();
        pool.launch_graph(&empty, 5, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        let g = diamond();
        pool.launch_graph(&g, 0, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
        assert_eq!(pool.rendezvous_count(), before);
        // The pool stays usable.
        pool.launch_graph(&g, 1, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn graph_panics_poison_the_launch_and_the_pool_survives() {
        for threads in [0, 2] {
            let pool = WorkerPool::new(threads);
            let g = diamond();
            let ran = AtomicUsize::new(0);
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.launch_graph(&g, 4, |b| {
                    if b % 4 == 1 {
                        panic!("graph boom {b}");
                    }
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }));
            assert!(result.is_err(), "threads = {threads}");
            // The panicking node still releases its successors, so the
            // graph drains: 3 surviving blocks per instance.
            assert_eq!(ran.load(Ordering::Relaxed), 12, "threads = {threads}");
            // The pool stays usable afterwards.
            let count = AtomicUsize::new(0);
            pool.launch_graph(&g, 2, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 8, "threads = {threads}");
        }
    }

    #[test]
    fn deep_chain_executes_in_order_under_stealing() {
        // A single long chain forces the executor through the release path
        // for every block; any ordering bug corrupts the running product.
        let mut b = TaskGraphBuilder::new();
        let n = 500usize;
        for i in 0..n {
            if i == 0 {
                b.add_task(&[], &[0]);
            } else {
                b.add_task(&[i - 1], &[i]);
            }
        }
        let g = b.build();
        assert_eq!(g.critical_path_len(), n);
        let pool = WorkerPool::new(4);
        let acc = AtomicU64::new(1);
        pool.launch_graph(&g, 1, |b| {
            // acc := acc * 3 + b, order-sensitive.
            let prev = acc.load(Ordering::Acquire);
            acc.store(
                prev.wrapping_mul(3).wrapping_add(b as u64),
                Ordering::Release,
            );
        });
        let mut want = 1u64;
        for i in 0..n as u64 {
            want = want.wrapping_mul(3).wrapping_add(i);
        }
        assert_eq!(acc.load(Ordering::Relaxed), want);
    }

    #[test]
    fn pre_cancelled_grid_launch_runs_no_blocks() {
        for threads in [0usize, 1, 4] {
            let pool = WorkerPool::new(threads);
            let token = CancelToken::new();
            token.cancel();
            let ran = AtomicUsize::new(0);
            let completed = pool.launch_grid_indexed_cancellable(64, Some(&token), |_, _| {
                ran.fetch_add(1, Ordering::Relaxed);
            });
            assert!(!completed, "threads = {threads}");
            assert_eq!(ran.load(Ordering::Relaxed), 0, "threads = {threads}");
            // The pool stays usable and uncancelled launches run everything.
            let completed = pool.launch_grid_indexed_cancellable(8, None, |_, _| {
                ran.fetch_add(1, Ordering::Relaxed);
            });
            assert!(completed, "threads = {threads}");
            assert_eq!(ran.load(Ordering::Relaxed), 8, "threads = {threads}");
        }
    }

    #[test]
    fn grid_cancel_mid_flight_stops_claiming_blocks() {
        // Inline path (threads = 0): cancelling from block 0 deterministically
        // abandons blocks 1..; on threaded pools the stop is best-effort, so
        // only consistency is asserted there (see the test below).
        let pool = WorkerPool::new(0);
        let token = CancelToken::new();
        let ran = AtomicUsize::new(0);
        let completed = pool.launch_grid_indexed_cancellable(100, Some(&token), |_, b| {
            if b == 0 {
                token.cancel();
            }
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert!(!completed);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn threaded_grid_cancel_reports_abandonment_consistently() {
        let pool = WorkerPool::new(4);
        let token = CancelToken::new();
        let ran = AtomicUsize::new(0);
        let blocks = 512;
        let completed = pool.launch_grid_indexed_cancellable(blocks, Some(&token), |_, b| {
            if b == 0 {
                token.cancel();
            }
            ran.fetch_add(1, Ordering::Relaxed);
        });
        let ran = ran.load(Ordering::Relaxed);
        // `completed == false` iff blocks were skipped; either way the count
        // matches the report and the pool survives.
        assert_eq!(completed, ran == blocks, "ran {ran} of {blocks}");
        let again = AtomicUsize::new(0);
        pool.launch_grid(16, |_| {
            again.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(again.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn pre_cancelled_graph_launch_drains_without_running_bodies() {
        for threads in [0usize, 1, 4] {
            let pool = WorkerPool::new(threads);
            let g = diamond();
            let token = CancelToken::new();
            token.cancel();
            let ran = AtomicUsize::new(0);
            let completed = pool.launch_graph_indexed_cancellable(&g, 8, Some(&token), |_, _| {
                ran.fetch_add(1, Ordering::Relaxed);
            });
            assert!(!completed, "threads = {threads}");
            assert_eq!(ran.load(Ordering::Relaxed), 0, "threads = {threads}");
            // The skipped blocks still drained: the pool is immediately
            // reusable for an uncancelled launch of the same graph.
            let completed = pool.launch_graph_indexed_cancellable(&g, 2, None, |_, _| {
                ran.fetch_add(1, Ordering::Relaxed);
            });
            assert!(completed, "threads = {threads}");
            assert_eq!(ran.load(Ordering::Relaxed), 8, "threads = {threads}");
        }
    }

    #[test]
    fn graph_cancel_mid_flight_skips_the_dependents() {
        // A long chain run inline: cancel at block 3, blocks 4.. must skip.
        let mut b = TaskGraphBuilder::new();
        let n = 50usize;
        for i in 0..n {
            if i == 0 {
                b.add_task(&[], &[0]);
            } else {
                b.add_task(&[i - 1], &[i]);
            }
        }
        let g = b.build();
        let pool = WorkerPool::new(0);
        let token = CancelToken::new();
        let ran = AtomicUsize::new(0);
        let completed = pool.launch_graph_indexed_cancellable(&g, 1, Some(&token), |_, blk| {
            if blk == 3 {
                token.cancel();
            }
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert!(!completed);
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn armed_but_untripped_token_changes_nothing() {
        let pool = WorkerPool::new(3);
        let g = diamond();
        let token = CancelToken::new();
        let ran = AtomicUsize::new(0);
        assert!(
            pool.launch_grid_indexed_cancellable(64, Some(&token), |_, _| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
        );
        assert!(
            pool.launch_graph_indexed_cancellable(&g, 4, Some(&token), |_, _| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
        );
        assert_eq!(ran.load(Ordering::Relaxed), 64 + 16);
    }

    #[test]
    fn wide_graph_saturates_all_deques() {
        // 64 independent 3-chains per instance, several instances: exercises
        // round-robin seeding plus stealing.
        let mut b = TaskGraphBuilder::new();
        for c in 0..64usize {
            b.add_task(&[], &[3 * c]);
            b.add_task(&[3 * c], &[3 * c + 1]);
            b.add_task(&[3 * c + 1], &[3 * c + 2]);
        }
        let g = b.build();
        let pool = WorkerPool::new(5);
        let instances = 4;
        let hits: Vec<AtomicUsize> = (0..g.len() * instances)
            .map(|_| AtomicUsize::new(0))
            .collect();
        pool.launch_graph(&g, instances, |blk| {
            hits[blk].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
