//! A persistent worker pool executing "grids of blocks" on CPU threads.
//!
//! The paper launches CUDA kernels with one thread block per job; this pool
//! is the CPU stand-in for that execution model.  A launch hands the pool a
//! closure and a number of blocks; worker threads repeatedly claim block
//! indices from a shared atomic counter and run the closure for each claimed
//! block, so blocks execute in parallel across the machine's cores exactly
//! like blocks execute in parallel across streaming multiprocessors.
//!
//! The launching thread participates in the work, so a pool of `T` workers
//! provides `T + 1`-way parallelism and a launch never deadlocks even if the
//! pool has zero worker threads.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// State shared between the launcher and the workers for one grid launch.
struct LaunchState {
    /// The per-block body.
    body: Box<dyn Fn(usize) + Send + Sync>,
    /// Next block index to claim.
    next_block: AtomicUsize,
    /// Total number of blocks in the grid.
    blocks: usize,
    /// Number of workers that have not yet drained the counter.
    pending_workers: AtomicUsize,
    /// Set when any block body panicked.
    poisoned: AtomicBool,
    /// Completion signalling.
    done_lock: Mutex<bool>,
    done_cv: Condvar,
}

impl LaunchState {
    /// Claims and runs blocks until the counter is exhausted.
    fn drain(&self) {
        loop {
            let b = self.next_block.fetch_add(1, Ordering::Relaxed);
            if b >= self.blocks {
                break;
            }
            let result = catch_unwind(AssertUnwindSafe(|| (self.body)(b)));
            if result.is_err() {
                self.poisoned.store(true, Ordering::Release);
            }
        }
    }

    /// Marks one worker as finished; the last one signals the launcher.
    fn finish_worker(&self) {
        if self.pending_workers.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = self.done_lock.lock();
            *done = true;
            self.done_cv.notify_all();
        }
    }
}

/// A persistent pool of worker threads executing grid launches.
pub struct WorkerPool {
    sender: Sender<Arc<LaunchState>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool with `threads` worker threads (the launching thread
    /// always helps, so `threads == 0` degenerates to sequential execution).
    pub fn new(threads: usize) -> Self {
        let (sender, receiver): (Sender<Arc<LaunchState>>, Receiver<Arc<LaunchState>>) =
            unbounded();
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = receiver.clone();
            let handle = std::thread::Builder::new()
                .name(format!("psmd-worker-{i}"))
                .spawn(move || {
                    while let Ok(state) = rx.recv() {
                        state.drain();
                        state.finish_worker();
                    }
                })
                .expect("failed to spawn worker thread");
            workers.push(handle);
        }
        Self {
            sender,
            workers,
            threads,
        }
    }

    /// Creates a pool sized to the available hardware parallelism.
    pub fn with_default_parallelism() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(cores.saturating_sub(1))
    }

    /// Number of worker threads (excluding the launching thread).
    pub fn worker_threads(&self) -> usize {
        self.threads
    }

    /// Total parallel lanes used by a launch (workers plus the launcher).
    pub fn parallelism(&self) -> usize {
        self.threads + 1
    }

    /// Executes `body` once for every block index in `0..blocks`, returning
    /// when all blocks have completed.
    ///
    /// Panics if any block body panicked.
    pub fn launch_grid<F>(&self, blocks: usize, body: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        if blocks == 0 {
            return;
        }
        // Small grids are not worth waking the pool for.
        if self.threads == 0 || blocks == 1 {
            for b in 0..blocks {
                body(b);
            }
            return;
        }
        // The body only needs to live for the duration of this call: workers
        // are joined (via the condition variable) before we return, so it is
        // sound to erase the lifetime.  This mirrors what scoped thread pools
        // do internally.
        let body_static: Box<dyn Fn(usize) + Send + Sync> = unsafe {
            std::mem::transmute::<Box<dyn Fn(usize) + Send + Sync + '_>, _>(Box::new(body))
        };
        let participants = self.threads + 1;
        let state = Arc::new(LaunchState {
            body: body_static,
            next_block: AtomicUsize::new(0),
            blocks,
            pending_workers: AtomicUsize::new(participants),
            poisoned: AtomicBool::new(false),
            done_lock: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        for _ in 0..self.threads {
            self.sender
                .send(Arc::clone(&state))
                .expect("worker channel closed");
        }
        // The launcher participates too.
        state.drain();
        state.finish_worker();
        // Wait for every participant to finish before returning (and before
        // `body` is dropped).
        {
            let mut done = state.done_lock.lock();
            while !*done {
                state.done_cv.wait(&mut done);
            }
        }
        if state.poisoned.load(Ordering::Acquire) {
            panic!("a block of the grid launch panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel terminates the workers.
        let (dummy_tx, _) = unbounded();
        let old = std::mem::replace(&mut self.sender, dummy_tx);
        drop(old);
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The process-wide default pool, sized to the hardware parallelism.
pub fn global_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(WorkerPool::with_default_parallelism)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_block_runs_exactly_once() {
        let pool = WorkerPool::new(3);
        let blocks = 1000;
        let hits: Vec<AtomicUsize> = (0..blocks).map(|_| AtomicUsize::new(0)).collect();
        pool.launch_grid(blocks, |b| {
            hits[b].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_and_one_block_grids() {
        let pool = WorkerPool::new(2);
        let count = AtomicUsize::new(0);
        pool.launch_grid(0, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
        pool.launch_grid(1, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sequential_pool_still_executes() {
        let pool = WorkerPool::new(0);
        let sum = AtomicU64::new(0);
        pool.launch_grid(100, |b| {
            sum.fetch_add(b as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn results_match_sequential_reference() {
        let pool = WorkerPool::new(4);
        let n = 4096;
        let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.launch_grid(n, |b| {
            // A small amount of per-block work with a data-dependent result.
            let mut acc = b as u64;
            for i in 0..50u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            out[b].store(acc, Ordering::Relaxed);
        });
        for (b, slot) in out.iter().enumerate() {
            let mut acc = b as u64;
            for i in 0..50u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            assert_eq!(slot.load(Ordering::Relaxed), acc);
        }
    }

    #[test]
    fn panics_inside_blocks_are_propagated() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.launch_grid(16, |b| {
                if b == 7 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must remain usable afterwards.
        let count = AtomicUsize::new(0);
        pool.launch_grid(8, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn global_pool_is_shared_and_parallel() {
        let p1 = global_pool();
        let p2 = global_pool();
        assert!(std::ptr::eq(p1, p2));
        assert!(p1.parallelism() >= 1);
    }

    #[test]
    fn zero_block_launch_is_a_no_op_on_any_pool_size() {
        for threads in [0, 1, 4] {
            let pool = WorkerPool::new(threads);
            let count = AtomicUsize::new(0);
            pool.launch_grid(0, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 0, "threads = {threads}");
            // The pool stays usable after the empty launch.
            pool.launch_grid(3, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 3, "threads = {threads}");
        }
    }

    #[test]
    fn zero_worker_pool_reports_its_parallelism() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.worker_threads(), 0);
        // The launcher always participates.
        assert_eq!(pool.parallelism(), 1);
    }

    #[test]
    fn zero_worker_pool_propagates_panics_and_survives() {
        // With no workers the launch runs inline; the panic must still reach
        // the caller and must not wedge the pool.
        let pool = WorkerPool::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.launch_grid(4, |b| {
                if b == 2 {
                    panic!("inline boom");
                }
            });
        }));
        assert!(result.is_err());
        let count = AtomicUsize::new(0);
        pool.launch_grid(4, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn single_block_panic_propagates_on_the_inline_fast_path() {
        // blocks == 1 takes the inline fast path even on a threaded pool.
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.launch_grid(1, |_| panic!("one-block boom"));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn poisoning_is_reported_even_when_many_blocks_panic() {
        let pool = WorkerPool::new(3);
        let survivors = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.launch_grid(64, |b| {
                if b % 2 == 0 {
                    panic!("boom {b}");
                }
                survivors.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        // Panicking blocks do not abort the grid: the odd blocks all ran.
        assert_eq!(survivors.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn concurrent_launches_from_multiple_threads_are_isolated() {
        // The batch engine launches from the evaluation thread while other
        // evaluations may be in flight on other threads; each launch must
        // run each of its own blocks exactly once.
        let pool = std::sync::Arc::new(WorkerPool::new(3));
        let launchers: Vec<_> = (0..4)
            .map(|l| {
                let pool = std::sync::Arc::clone(&pool);
                std::thread::spawn(move || {
                    let blocks = 100 + l;
                    let hits: Vec<AtomicUsize> = (0..blocks).map(|_| AtomicUsize::new(0)).collect();
                    for _ in 0..10 {
                        pool.launch_grid(blocks, |b| {
                            hits[b].fetch_add(1, Ordering::Relaxed);
                        });
                    }
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 10)
                })
            })
            .collect();
        for launcher in launchers {
            assert!(launcher.join().unwrap(), "a launch lost or repeated blocks");
        }
    }

    #[test]
    fn launches_can_be_nested_sequentially() {
        // Launch-from-within-launch is not supported in CUDA either; what we
        // check is that back-to-back launches on the same pool reuse workers.
        let pool = WorkerPool::new(2);
        for round in 0..20 {
            let counter = AtomicUsize::new(0);
            pool.launch_grid(round + 1, |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), round + 1);
        }
    }
}
